/**
 * @file
 * The paper's grep case study (§3.3, Figure 6): grep's hot loop is
 * dominated by infrequently-taken exit branches. Full predication
 * combines them through OR-type predicate defines (issuable
 * simultaneously — wired OR) behind a single exit; partial
 * predication needs a logical-OR chain that the or-tree optimization
 * rebalances to log2(n) depth. This example measures grep with and
 * without those two optimizations.
 */

#include <iostream>

#include "driver/pipeline.hh"
#include "support/string_utils.hh"
#include "workloads/workloads.hh"

using namespace predilp;

namespace
{

std::uint64_t
run(const Workload &grep, const std::string &input, Model model,
    bool combining, bool orTree)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    opts.ablation.branchCombining = combining;
    opts.partial.orTree = orTree;
    SimConfig sim;
    sim.machine = opts.machine;
    return runModel(grep.source, input, opts, sim).cycles;
}

} // namespace

int
main()
{
    const Workload *grep = findWorkload("grep");
    std::string input = grep->makeInput(2);

    std::uint64_t sb =
        run(*grep, input, Model::Superblock, true, true);
    std::uint64_t fpPlain =
        run(*grep, input, Model::FullPred, false, true);
    std::uint64_t fpCombined =
        run(*grep, input, Model::FullPred, true, true);
    std::uint64_t cmChain =
        run(*grep, input, Model::CondMove, true, false);
    std::uint64_t cmTree =
        run(*grep, input, Model::CondMove, true, true);

    std::cout << "grep case study (8-issue, 1-branch)\n\n";
    std::cout << "Superblock baseline:                   " << sb
              << " cycles\n";
    std::cout << "Full predication, no branch combining: "
              << fpPlain << " cycles\n";
    std::cout << "Full predication, combining on:        "
              << fpCombined << " cycles\n";
    std::cout << "Cond. move, serial OR chain:           "
              << cmChain << " cycles\n";
    std::cout << "Cond. move, or-tree rebalanced:        "
              << cmTree << " cycles\n\n";

    auto pct = [](std::uint64_t base, std::uint64_t other) {
        return formatFixed(
            (static_cast<double>(base) /
                 static_cast<double>(other) -
             1.0) * 100.0,
            1);
    };
    std::cout << "Full predication vs superblock: "
              << pct(sb, fpCombined) << "% faster\n";
    std::cout << "or-tree's contribution to cond. move: "
              << pct(cmChain, cmTree) << "%\n";
    std::cout << "\nPaper (§3.3): full predication cut the loop from "
                 "14 to 6 cycles; partial predication with the "
                 "or-tree reached 10.\n";
    return 0;
}
