/**
 * @file
 * Quickstart: the paper's Figure 1, end to end.
 *
 * Compiles the source fragment
 *
 *     if (a == 0 || b == 0) { if (c != 0) k++; else k--; }
 *     else j++;
 *     i++;
 *
 * through the PredILP pipeline, shows the branchy code, if-converts
 * it into a hyperblock of predicated instructions (full predication),
 * lowers it to conditional-move form (partial predication), and runs
 * all three on the emulator to show they agree.
 */

#include <iostream>

#include "driver/pipeline.hh"
#include "frontend/irgen.hh"
#include "ir/printer.hh"
#include "opt/passes.hh"

using namespace predilp;

namespace
{

// The Figure 1 kernel, iterated over a small input so the profile
// has something to say. getc drives the a/b/c values.
const char *const source = R"ILC(
int main() {
    int i = 300, j = 100, k = 200;
    int c0 = getc();
    while (c0 >= 0) {
        int a = c0 & 1;
        int b = c0 & 2;
        int c = c0 & 4;
        if (a == 0 || b == 0) {
            if (c != 0) { k = k + 1; }
            else { k = k - 1; }
        } else {
            j = j + 1;
        }
        i = i + 1;
        c0 = getc();
    }
    return i * 1000000 + j * 1000 + k;
}
)ILC";

std::string
makeInput()
{
    std::string input;
    for (int i = 0; i < 64; ++i)
        input.push_back(static_cast<char>('0' + (i * 7) % 8));
    return input;
}

void
show(const std::string &title, Program &prog)
{
    std::cout << "=== " << title << " ===\n";
    PrintOptions opts;
    opts.showIssueCycles = true;
    printFunction(std::cout, *prog.function("main"), opts);
}

} // namespace

int
main()
{
    std::string input = makeInput();

    // 1. The branchy code the frontend produces (Figure 1(b)).
    {
        auto prog = compileSource(source);
        optimizeProgram(*prog);
        std::cout << "=== branchy code (Figure 1(b) analogue) ===\n";
        printFunction(std::cout, *prog->function("main"));
    }

    // 2..4. The three processor models of the paper.
    SimConfig sim;
    sim.machine = issue8Branch1();

    std::int64_t reference = 0;
    for (Model model :
         {Model::Superblock, Model::FullPred, Model::CondMove}) {
        CompileOptions opts;
        opts.model = model;
        opts.machine = sim.machine;
        opts.profileInput = input;
        opts.ablation.unrolling = false; // keep the listings readable.
        auto prog = compileForModel(source, opts);
        show(modelName(model), *prog);

        SimResult result = simulate(*prog, input, sim);
        std::cout << modelName(model) << ": cycles=" << result.cycles
                  << " instrs=" << result.dynInstrs
                  << " branches=" << result.branches
                  << " nullified=" << result.nullified
                  << " exit=" << result.exitValue << "\n\n";
        if (model == Model::Superblock)
            reference = result.exitValue;
        else if (result.exitValue != reference)
            std::cout << "!! models disagree\n";
    }
    std::cout << "All three models computed the same result.\n";
    return 0;
}
