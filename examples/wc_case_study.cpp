/**
 * @file
 * The paper's wc case study (§3.3, Figure 5): compile the wc
 * benchmark for all three processor models, print the scheduled
 * inner loop for full and partial predication, and report the
 * per-model cycle counts — the 8-vs-10-cycle schedule comparison and
 * the dynamic instruction blowup the paper walks through.
 */

#include <iostream>

#include "driver/pipeline.hh"
#include "ir/printer.hh"
#include "workloads/workloads.hh"

using namespace predilp;

namespace
{

/** Print the hottest block (the formed loop) of main(). */
void
printHottestBlock(Program &prog, const std::string &input)
{
    ProgramProfile profile(prog);
    EmuOptions opts;
    opts.profile = &profile;
    Emulator emu(prog);
    emu.run(input, opts);

    Function *main = prog.function("main");
    const FunctionProfile *fp = profile.find("main");
    BlockId hottest = main->layout().front();
    for (BlockId id : main->layout()) {
        if (fp->blockCount(id) > fp->blockCount(hottest))
            hottest = id;
    }
    PrintOptions popts;
    popts.showIssueCycles = true;
    printBlock(std::cout, *main, *main->block(hottest), popts);

    int length = 0;
    for (const auto &instr : main->block(hottest)->instrs())
        length = std::max(length, instr.issueCycle() + 1);
    std::cout << "    ; " << main->block(hottest)->instrs().size()
              << " instructions in " << length << " cycles\n";
}

} // namespace

int
main()
{
    const Workload *wc = findWorkload("wc");
    std::string input = wc->makeInput(1);

    SimConfig sim;
    sim.machine = issue8Branch1();

    std::uint64_t cycles[3];
    std::uint64_t instrs[3];
    int index = 0;
    for (Model model :
         {Model::Superblock, Model::CondMove, Model::FullPred}) {
        CompileOptions opts;
        opts.model = model;
        opts.machine = sim.machine;
        opts.profileInput = input;
        opts.ablation.unrolling = false; // show the plain schedule.
        auto prog = compileForModel(wc->source, opts);

        if (model != Model::Superblock) {
            std::cout << "=== " << modelName(model)
                      << ": hottest loop schedule ===\n";
            printHottestBlock(*prog, input);
            std::cout << "\n";
        }

        SimResult result = simulate(*prog, input, sim);
        cycles[index] = result.cycles;
        instrs[index] = result.dynInstrs;
        std::cout << modelName(model) << ": cycles="
                  << result.cycles << " dynamic instructions="
                  << result.dynInstrs << " branches="
                  << result.branches << " mispredicts="
                  << result.mispredicts << "\n\n";
        index += 1;
    }

    std::cout << "Paper's wc story (§3.3): partial predication "
                 "executes ~2x the instructions of full predication\n"
              << "and both eliminate most branches. Measured "
                 "instruction ratio (partial/full): "
              << static_cast<double>(instrs[1]) /
                     static_cast<double>(instrs[2])
              << "\nMeasured cycle ratio (partial/full): "
              << static_cast<double>(cycles[1]) /
                     static_cast<double>(cycles[2])
              << " (paper's loop segment: 10/8 = 1.25)\n";
    return 0;
}
