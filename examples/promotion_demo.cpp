/**
 * @file
 * The paper's Figure 2: predicate promotion. Builds the fully
 * predicated sequence
 *
 *     load temp1, [addrx + offx]   (Pin)
 *     mul  temp2, temp1, 2         (Pin)
 *     add  y,     temp2, 3         (Pin)
 *
 * by hand, runs promotion, and prints the before/after IR plus the
 * partial-predication lowering of both — reproducing the four
 * quadrants of the figure (promotion shrinks the cmov code from six
 * instructions to four).
 */

#include <iostream>

#include "emu/emulator.hh"
#include "hyperblock/hyperblock.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "partial/partial.hh"
#include "support/logging.hh"

using namespace predilp;

namespace
{

/** Build the Figure 2 block inside a fresh program. */
std::unique_ptr<Program>
buildFigure2()
{
    auto prog = std::make_unique<Program>();
    std::int64_t addrx = prog->allocGlobal("x", 8, 8, false);

    Function *fn = prog->newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *bb = b.startBlock();
    bb->setKind(BlockKind::Hyperblock);

    Reg pin = fn->newPredReg();
    Reg temp1 = fn->newIntReg();
    Reg temp2 = fn->newIntReg();
    Reg y = fn->newIntReg();

    // Give Pin a value (true when the stored word is nonzero).
    b.predDefine(Opcode::PredNe, PredDest{pin, PredType::U},
                 Operand::imm(1), Operand::imm(0));
    b.load(Opcode::Ld, temp1, Operand::imm(addrx), Operand::imm(0))
        .setGuard(pin);
    b.emit(Opcode::Mul, temp2, Operand(temp1), Operand::imm(2))
        .setGuard(pin);
    b.emit(Opcode::Add, y, Operand(temp2), Operand::imm(3))
        .setGuard(pin);
    b.ret(Operand(y));
    return prog;
}

void
dump(const char *title, Program &prog)
{
    std::cout << "--- " << title << " ---\n";
    printFunction(std::cout, *prog.function("main"));
}

} // namespace

int
main()
{
    // Top-left quadrant: fully predicated, before promotion.
    auto before = buildFigure2();
    panicIf(!verifyProgram(*before).empty(), "bad IR");
    dump("fully predicated, before promotion", *before);

    // Top-right: its partial-predication lowering (3 cmovs).
    {
        auto prog = buildFigure2();
        lowerToPartial(*prog);
        dump("partial predication, before promotion", *prog);
    }

    // Bottom-left: after promotion (only the final add guarded).
    auto promoted = buildFigure2();
    int count = promotePredicates(*promoted);
    std::cout << "promotion removed " << count << " guards\n";
    dump("fully predicated, after promotion", *promoted);

    // Bottom-right: lowering the promoted code (single cmov).
    {
        auto prog = buildFigure2();
        promotePredicates(*prog);
        lowerToPartial(*prog);
        dump("partial predication, after promotion", *prog);
    }

    // The emulator agrees in all four quadrants.
    std::int64_t expected = 0 * 2 + 3; // x starts zeroed.
    for (bool promote : {false, true}) {
        for (bool partial : {false, true}) {
            auto prog = buildFigure2();
            if (promote)
                promotePredicates(*prog);
            if (partial)
                lowerToPartial(*prog);
            Emulator emu(*prog);
            std::int64_t got = emu.run("").exitValue;
            panicIf(got != expected, "variant diverged");
        }
    }
    std::cout << "all four variants compute y = " << expected
              << "\n";
    return 0;
}
