/**
 * @file
 * Replay-kernel microbenchmark: compile the largest workload
 * (espresso) once for Full Predication, capture its trace once, then
 * hammer replay() repeatedly — isolating the hot loop this repo's
 * packed 4-byte entries, dense scoreboard, and chunked ChunkCursor
 * path optimize. Reports records/second through the replay kernel
 * and the packed format's bytes-per-entry into
 * BENCH_replay_hot.json, which CI tracks (scripts/bench_json.sh).
 */

#include <fstream>
#include <iostream>

#include "driver/pipeline.hh"
#include "sched/machine.hh"
#include "support/logging.hh"
#include "support/stats_registry.hh"
#include "support/timer.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;

    const Workload *workload = findWorkload("espresso");
    panicIf(workload == nullptr, "espresso workload missing");
    std::string input = workload->input();

    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    std::unique_ptr<Program> prog =
        compileForModel(workload->source, opts);

    std::unique_ptr<TraceBuffer> trace = capture(*prog, input);
    const std::uint64_t records = trace->size();
    const std::uint64_t bytes = trace->memoryBytes();
    panicIf(records == 0, "empty trace");

    SimConfig sim;
    sim.machine = issue8Branch1();
    sim.perfectCaches = true;

    // One warm-up pass (page in the buffer), then timed passes.
    SimResult expected = replay(*trace, sim);
    constexpr int passes = 8;
    WallTimer replayTimer;
    for (int i = 0; i < passes; ++i) {
        SimResult result = replay(*trace, sim);
        panicIf(result.cycles != expected.cycles,
                "replay is not deterministic");
    }
    double replaySeconds = replayTimer.seconds();

    StatsSnapshot s;
    s.setSeconds("elapsed_seconds", wall.seconds());
    s.setSeconds("phases.replay_seconds", replaySeconds);
    s.setCounter("counters.replay_passes", passes);
    s.setCounter("counters.trace_records", records);
    s.setCounter("counters.trace_bytes", bytes);
    s.setCounter("counters.cycles", expected.cycles);
    s.setSeconds("throughput.replay_records_per_sec",
                 static_cast<double>(records) * passes /
                     replaySeconds);
    s.setSeconds("throughput.trace_bytes_per_entry",
                 static_cast<double>(bytes) /
                     static_cast<double>(records));

    std::cout << "replay_hot: " << records << " records, " << bytes
              << " bytes ("
              << static_cast<double>(bytes) /
                     static_cast<double>(records)
              << " B/entry), " << passes << " passes in "
              << replaySeconds << "s = "
              << static_cast<double>(records) * passes /
                     replaySeconds / 1e6
              << " Mrec/s\n";

    std::ofstream os("BENCH_replay_hot.json");
    panicIf(!os, "cannot write BENCH_replay_hot.json");
    os << "{\n  \"bench\": \"replay_hot\",\n  \"timing\": "
       << s.toJson(2) << "\n}\n";
    return 0;
}
