/**
 * @file
 * Reproduces Figure 9: 8-issue processor with 2 branches per cycle,
 * perfect caches. The paper's headline: the extra branch slot lifts
 * the Superblock baseline, collapsing Cond. Move's margin (~3%)
 * while Full Predication stays well ahead (~35%).
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    EvalRequest request;
    request.sim = SimConfig::paperMachine();
    request.sim.machine = issue8Branch2();
    SuiteEvaluator evaluator;
    auto results = evaluator.evaluate(request).results;
    printSpeedupFigure(
        std::cout,
        "Figure 9: speedup, 8-issue / 2-branch, perfect caches",
        results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("fig09_issue8_br2", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
