/**
 * @file
 * Reproduces Figure 9: 8-issue processor with 2 branches per cycle,
 * perfect caches. The paper's headline: the extra branch slot lifts
 * the Superblock baseline, collapsing Cond. Move's margin (~3%)
 * while Full Predication stays well ahead (~35%).
 */

#include <iostream>

#include "driver/report.hh"

int
main()
{
    using namespace predilp;
    SuiteConfig config;
    config.machine = issue8Branch2();
    config.perfectCaches = true;
    auto results = evaluateSuite(config);
    printSpeedupFigure(
        std::cout,
        "Figure 9: speedup, 8-issue / 2-branch, perfect caches",
        results);
    return 0;
}
