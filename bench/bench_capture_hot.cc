/**
 * @file
 * Capture-kernel microbenchmark: compile the largest workload
 * (espresso) once for Full Predication, then hammer trace capture —
 * the cold-path cost the pre-decoded threaded backend
 * (emu/decoded.hh) attacks. One timed interpreter pass anchors the
 * baseline; the decode is timed separately (it is paid once and
 * cached by the evaluator); then repeated threaded passes measure
 * the steady-state capture kernel. Every threaded pass must remain
 * bit-identical to the interpreter's trace. Reports
 * emulate_records_per_sec and decode_ms into BENCH_capture_hot.json,
 * which CI tracks (scripts/bench_json.sh).
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "driver/pipeline.hh"
#include "emu/decoded.hh"
#include "sched/machine.hh"
#include "support/logging.hh"
#include "support/stats_registry.hh"
#include "support/timer.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace
{

/** Byte-level equality of the two packed streams + run results. */
void
checkIdentical(const predilp::TraceBuffer &a,
               const predilp::TraceBuffer &b)
{
    using predilp::panicIf;
    panicIf(a.size() != b.size() || a.chunkCount() != b.chunkCount(),
            "backend divergence: record/chunk counts differ");
    for (std::size_t i = 0; i < a.chunkCount(); ++i) {
        auto x = a.chunk(i);
        auto y = b.chunk(i);
        panicIf(x.entryCount != y.entryCount ||
                    std::memcmp(x.entries, y.entries,
                                x.entryCount *
                                    sizeof(predilp::TraceEntry)) !=
                        0,
                "backend divergence: entry stream differs in chunk ",
                i);
        panicIf(x.memSize != y.memSize ||
                    std::memcmp(x.memBytes, y.memBytes, x.memSize) !=
                        0,
                "backend divergence: memory stream differs in chunk ",
                i);
    }
    panicIf(a.run().exitValue != b.run().exitValue ||
                a.run().memHash != b.run().memHash ||
                a.run().output != b.run().output,
            "backend divergence: run results differ");
}

} // namespace

int
main()
{
    using namespace predilp;
    WallTimer wall;

    const Workload *workload = findWorkload("espresso");
    panicIf(workload == nullptr, "espresso workload missing");
    std::string input = workload->input();

    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    std::unique_ptr<Program> prog =
        compileForModel(workload->source, opts);

    // Baseline: one interpreter capture (also the bit-identity
    // oracle for every threaded pass below).
    WallTimer interpTimer;
    std::unique_ptr<TraceBuffer> reference =
        capture(*prog, input, 2'000'000'000ull, EmuBackend::Interp);
    double interpSeconds = interpTimer.seconds();
    const std::uint64_t records = reference->size();
    const std::uint64_t bytes = reference->memoryBytes();
    panicIf(records == 0, "empty trace");

    // The one-time lowering cost the evaluator's decoded cache
    // amortizes across captures.
    WallTimer decodeTimer;
    DecodedProgram decoded(*prog);
    double decodeSeconds = decodeTimer.seconds();

    // One warm-up threaded pass, then timed passes.
    checkIdentical(*reference,
                   *captureDecoded(decoded, input));
    constexpr int passes = 8;
    WallTimer captureTimer;
    for (int i = 0; i < passes; ++i) {
        std::unique_ptr<TraceBuffer> trace =
            captureDecoded(decoded, input);
        checkIdentical(*reference, *trace);
    }
    double captureSeconds = captureTimer.seconds();

    double threadedRate =
        static_cast<double>(records) * passes / captureSeconds;
    double interpRate = static_cast<double>(records) / interpSeconds;

    StatsSnapshot s;
    s.setSeconds("elapsed_seconds", wall.seconds());
    s.setSeconds("phases.capture_seconds", captureSeconds);
    s.setSeconds("phases.interp_seconds", interpSeconds);
    s.setSeconds("emu.decode_seconds", decodeSeconds);
    s.setSeconds("emu.decode_ms", decodeSeconds * 1e3);
    s.setCounter("emu.decoded_bytes", decoded.memoryBytes());
    s.setCounter("counters.capture_passes", passes);
    s.setCounter("counters.trace_records", records);
    s.setCounter("counters.trace_bytes", bytes);
    s.setSeconds("throughput.emulate_records_per_sec", threadedRate);
    s.setSeconds("throughput.interp_records_per_sec", interpRate);
    s.setSeconds("throughput.speedup_vs_interp",
                 threadedRate / interpRate);
    s.setSeconds("throughput.trace_bytes_per_entry",
                 static_cast<double>(bytes) /
                     static_cast<double>(records));

    std::cout << "capture_hot: " << records << " records, decode "
              << decodeSeconds * 1e3 << " ms, " << passes
              << " threaded passes in " << captureSeconds << "s = "
              << threadedRate / 1e6 << " Mrec/s vs interp "
              << interpRate / 1e6 << " Mrec/s ("
              << threadedRate / interpRate << "x)\n";

    std::ofstream os("BENCH_capture_hot.json");
    panicIf(!os, "cannot write BENCH_capture_hot.json");
    os << "{\n  \"bench\": \"capture_hot\",\n  \"timing\": "
       << s.toJson(2) << "\n}\n";
    return 0;
}
