/**
 * @file
 * Reproduces Figure 8 of the paper: effectiveness of full and
 * partial predicate support for an 8-issue, 1-branch processor with
 * perfect caches. Speedups are relative to the 1-issue baseline.
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    EvalRequest request;
    request.sim = SimConfig::paperMachine();
    SuiteEvaluator evaluator;
    auto results = evaluator.evaluate(request).results;
    printSpeedupFigure(
        std::cout,
        "Figure 8: speedup, 8-issue / 1-branch, perfect caches",
        results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("fig08_issue8_br1", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
