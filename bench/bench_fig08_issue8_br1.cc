/**
 * @file
 * Reproduces Figure 8 of the paper: effectiveness of full and
 * partial predicate support for an 8-issue, 1-branch processor with
 * perfect caches. Speedups are relative to the 1-issue baseline.
 */

#include <iostream>

#include "driver/report.hh"

int
main()
{
    using namespace predilp;
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    auto results = evaluateSuite(config);
    printSpeedupFigure(
        std::cout,
        "Figure 8: speedup, 8-issue / 1-branch, perfect caches",
        results);
    return 0;
}
