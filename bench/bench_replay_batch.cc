/**
 * @file
 * Batched-replay microbenchmark: compile the largest workload
 * (espresso) once for Full Predication, capture its trace once, then
 * price a batch of 8 heterogeneous SimConfigs two ways — 8
 * sequential replay() calls versus one replayBatch() pass with lanes
 * spread over a thread pool sized to the hardware — and verify the
 * results agree cycle for cycle. Reports the single-config kernel
 * rate (replay_records_per_sec), the batch's amortized per-config
 * rate (replay_batch_records_per_sec_per_config), the aggregate
 * batch rate, and batch_speedup_vs_sequential into
 * BENCH_replay_batch.json, which CI tracks (scripts/bench_json.sh).
 * pool_threads is reported alongside so the speedup floor can be
 * interpreted against the parallelism that was actually available.
 */

#include <fstream>
#include <iostream>
#include <span>
#include <thread>
#include <vector>

#include "driver/pipeline.hh"
#include "sched/machine.hh"
#include "support/logging.hh"
#include "support/stats_registry.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;

    const Workload *workload = findWorkload("espresso");
    panicIf(workload == nullptr, "espresso workload missing");
    std::string input = workload->input();

    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    std::unique_ptr<Program> prog =
        compileForModel(workload->source, opts);

    std::unique_ptr<TraceBuffer> trace = capture(*prog, input);
    const std::uint64_t records = trace->size();
    const std::uint64_t bytes = trace->memoryBytes();
    panicIf(records == 0, "empty trace");

    // The acceptance batch: 8 configs with the hardware axes the
    // sweep grids actually vary (width, BTB geometry, predictor,
    // penalty, perfect/real caches), so lanes mix address-reading
    // and address-skipping models like a real sweep shard does.
    const MachineConfig machines[] = {issue8Branch1(), issue1(),
                                      issue4Branch1(),
                                      issue8Branch2()};
    std::vector<SimConfig> configs;
    for (std::size_t i = 0; i < 8; ++i) {
        SimConfig sim;
        sim.machine = machines[i % 4];
        sim.machine.mispredictPenalty =
            4 + static_cast<int>(i % 3) * 3;
        sim.perfectCaches = (i % 2) == 0;
        sim.btbEntries = 64u << (i % 4);
        if (i % 3 == 1)
            sim.predictor = BranchPredictor::OneBit;
        configs.push_back(sim);
    }

    // Warm-up: page the buffer in and grab reference results.
    std::vector<SimResult> expected;
    for (const SimConfig &sim : configs)
        expected.push_back(replay(*trace, sim));

    // Single-config kernel rate (same contract bench_replay_hot
    // tracks, measured here on the batch's first config; best-of-N
    // like the mode comparison below).
    constexpr int singlePasses = 4;
    double singleSeconds = 0;
    for (int i = 0; i < singlePasses; ++i) {
        WallTimer singleTimer;
        SimResult result = replay(*trace, configs[0]);
        const double seconds = singleTimer.seconds();
        if (i == 0 || seconds < singleSeconds)
            singleSeconds = seconds;
        panicIf(result.cycles != expected[0].cycles,
                "single replay is not deterministic");
    }

    // Best-of-N timing, modes interleaved within each pass so a
    // slow system phase penalizes both sides alike: one pass of
    // either mode is short enough that scheduler noise swamps a
    // ~15% serial amortization win, and min-time is the standard
    // estimator for the noise-free cost of a deterministic kernel.
    constexpr int timedPasses = 5;
    const int poolThreads = std::max(
        1u, std::thread::hardware_concurrency());
    ThreadPool pool(poolThreads);
    double seqSeconds = 0;
    double batchSeconds = 0;
    for (int pass = 0; pass < timedPasses; ++pass) {
        // Sequential baseline: one replay() call per config.
        WallTimer seqTimer;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            SimResult result = replay(*trace, configs[i]);
            panicIf(result.cycles != expected[i].cycles,
                    "sequential replay is not deterministic");
        }
        const double seq = seqTimer.seconds();
        if (pass == 0 || seq < seqSeconds)
            seqSeconds = seq;

        // Batched: one streaming pass, lanes spread over the pool.
        WallTimer batchTimer;
        std::vector<SimResult> batched =
            replayBatch(*trace, configs, &pool);
        const double batch = batchTimer.seconds();
        if (pass == 0 || batch < batchSeconds)
            batchSeconds = batch;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            panicIf(batched[i].cycles != expected[i].cycles ||
                        batched[i].dynInstrs !=
                            expected[i].dynInstrs,
                    "batched replay diverges from sequential "
                    "replay");
        }
    }

    const double nConfigs = static_cast<double>(configs.size());
    const double singleRate =
        static_cast<double>(records) / singleSeconds;
    const double aggregateRate =
        static_cast<double>(records) * nConfigs / batchSeconds;
    const double perConfigRate = aggregateRate / nConfigs;
    const double speedup = seqSeconds / batchSeconds;

    StatsSnapshot s;
    s.setSeconds("elapsed_seconds", wall.seconds());
    s.setSeconds("phases.replay_seconds",
                 singleSeconds + seqSeconds + batchSeconds);
    s.setCounter("counters.replay_passes",
                 singlePasses +
                     2 * timedPasses * configs.size());
    s.setCounter("counters.batch_configs", configs.size());
    s.setCounter("counters.pool_threads",
                 static_cast<std::uint64_t>(poolThreads));
    s.setCounter("counters.trace_records", records);
    s.setCounter("counters.trace_bytes", bytes);
    s.setSeconds("throughput.trace_bytes_per_entry",
                 static_cast<double>(bytes) /
                     static_cast<double>(records));
    s.setSeconds("throughput.replay_records_per_sec", singleRate);
    s.setSeconds("throughput.replay_batch_records_per_sec",
                 aggregateRate);
    s.setSeconds(
        "throughput.replay_batch_records_per_sec_per_config",
        perConfigRate);
    s.setSeconds("throughput.batch_speedup_vs_sequential", speedup);

    std::cout << "replay_batch: " << records << " records x "
              << configs.size() << " configs, sequential "
              << seqSeconds << "s, batched " << batchSeconds
              << "s (" << poolThreads << " threads) = "
              << aggregateRate / 1e6 << " Mrec/s aggregate, "
              << perConfigRate / 1e6 << " Mrec/s per config, "
              << speedup << "x vs sequential (single-config "
              << singleRate / 1e6 << " Mrec/s)\n";

    std::ofstream os("BENCH_replay_batch.json");
    panicIf(!os, "cannot write BENCH_replay_batch.json");
    os << "{\n  \"bench\": \"replay_batch\",\n  \"timing\": "
       << s.toJson(2) << "\n}\n";
    return 0;
}
