/**
 * @file
 * google-benchmark microbenchmarks of the library's own components:
 * emulator throughput, compilation pipeline phases, the timing
 * simulator, and the predicate truth table. These measure the
 * reproduction's machinery, not the paper's system.
 */

#include <benchmark/benchmark.h>

#include "driver/pipeline.hh"
#include "emu/emulator.hh"
#include "frontend/irgen.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "sim/cache.hh"
#include "workloads/workloads.hh"

using namespace predilp;

namespace
{

const Workload &
wc()
{
    return *findWorkload("wc");
}

void
BM_PredTruthTable(benchmark::State &state)
{
    int i = 0;
    for (auto _ : state) {
        auto type = static_cast<PredType>(i % 6);
        benchmark::DoNotOptimize(
            applyPredType(type, i & 1, i & 2, i & 4));
        i += 1;
    }
}
BENCHMARK(BM_PredTruthTable);

void
BM_FrontendCompile(benchmark::State &state)
{
    for (auto _ : state) {
        auto prog = compileSource(wc().source);
        benchmark::DoNotOptimize(prog);
    }
}
BENCHMARK(BM_FrontendCompile);

void
BM_Optimize(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto prog = compileSource(wc().source);
        state.ResumeTiming();
        optimizeProgram(*prog);
    }
}
BENCHMARK(BM_Optimize);

void
BM_FullPipeline(benchmark::State &state)
{
    std::string input = wc().makeInput(1);
    for (auto _ : state) {
        CompileOptions opts;
        opts.model = Model::FullPred;
        opts.machine = issue8Branch1();
        opts.profileInput = input;
        auto prog = compileForModel(wc().source, opts);
        benchmark::DoNotOptimize(prog);
    }
}
BENCHMARK(BM_FullPipeline);

void
BM_EmulatorThroughput(benchmark::State &state)
{
    auto prog = compileSource(wc().source);
    optimizeProgram(*prog);
    std::string input = wc().makeInput(2);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Emulator emu(*prog);
        RunResult r = emu.run(input);
        instrs += r.dynInstrs;
        benchmark::DoNotOptimize(r.exitValue);
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorThroughput);

void
BM_TimingSimulator(benchmark::State &state)
{
    std::string input = wc().makeInput(2);
    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    auto prog = compileForModel(wc().source, opts);
    SimConfig sim;
    sim.machine = opts.machine;
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        SimResult r = simulate(*prog, input, sim);
        instrs += r.dynInstrs;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingSimulator);

void
BM_DirectMappedCache(benchmark::State &state)
{
    DirectMappedCache cache(64 * 1024, 64);
    std::int64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr * 1103515245 + 12345) & 0xFFFFF;
    }
}
BENCHMARK(BM_DirectMappedCache);

void
BM_BranchTargetBuffer(benchmark::State &state)
{
    BranchTargetBuffer btb(1024);
    std::int64_t addr = 0;
    for (auto _ : state) {
        bool taken = (addr & 3) != 0;
        benchmark::DoNotOptimize(btb.predictTaken(addr));
        btb.update(addr, taken);
        addr += 4;
    }
}
BENCHMARK(BM_BranchTargetBuffer);

} // namespace

BENCHMARK_MAIN();
