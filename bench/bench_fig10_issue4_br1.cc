/**
 * @file
 * Reproduces Figure 10: 4-issue processor, 1 branch per cycle,
 * perfect caches. The paper's headline: Cond. Move's extra
 * instructions saturate the narrow machine and it loses to
 * Superblock on most benchmarks, while Full Predication still wins.
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    EvalRequest request;
    request.sim = SimConfig::paperMachine();
    request.sim.machine = issue4Branch1();
    SuiteEvaluator evaluator;
    auto results = evaluator.evaluate(request).results;
    printSpeedupFigure(
        std::cout,
        "Figure 10: speedup, 4-issue / 1-branch, perfect caches",
        results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("fig10_issue4_br1", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
