/**
 * @file
 * Reproduces Figure 10: 4-issue processor, 1 branch per cycle,
 * perfect caches. The paper's headline: Cond. Move's extra
 * instructions saturate the narrow machine and it loses to
 * Superblock on most benchmarks, while Full Predication still wins.
 */

#include <iostream>

#include "driver/report.hh"

int
main()
{
    using namespace predilp;
    SuiteConfig config;
    config.machine = issue4Branch1();
    config.perfectCaches = true;
    auto results = evaluateSuite(config);
    printSpeedupFigure(
        std::cout,
        "Figure 10: speedup, 4-issue / 1-branch, perfect caches",
        results);
    return 0;
}
