/**
 * @file
 * Reproduces Table 2: dynamic instruction counts per model, with the
 * ratios against the Superblock baseline the paper prints in
 * parentheses. Expected shape: Cond. Move executes substantially
 * more instructions (paper mean 1.46x), Full Predication only
 * slightly more (paper mean 1.07x).
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    SuiteEvaluator evaluator(config.threads);
    auto results =
        evaluator.evaluate(EvalRequest::fromSuiteConfig(config))
            .results;
    printInstructionTable(std::cout, results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("table2_dyncount", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
