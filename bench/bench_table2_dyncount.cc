/**
 * @file
 * Reproduces Table 2: dynamic instruction counts per model, with the
 * ratios against the Superblock baseline the paper prints in
 * parentheses. Expected shape: Cond. Move executes substantially
 * more instructions (paper mean 1.46x), Full Predication only
 * slightly more (paper mean 1.07x).
 */

#include <iostream>

#include "driver/report.hh"

int
main()
{
    using namespace predilp;
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    auto results = evaluateSuite(config);
    printInstructionTable(std::cout, results);
    return 0;
}
