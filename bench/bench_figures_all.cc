/**
 * @file
 * One-process reproduction of every figure and table in §5 of the
 * paper, sharing a single SuiteEvaluator so work is never repeated:
 *
 *  - the 1-issue Superblock baseline is compiled/traced once and
 *    priced for all four figures;
 *  - Figure 11 replays Figure 8's 8-issue/1-branch traces under the
 *    real-cache pricing (caches never change the instruction stream);
 *  - Tables 2 and 3 are read straight out of Figure 8's results
 *    (result-cache hits, no new work at all).
 *
 * Compare the phase timing printed here against running the four
 * bench_fig* binaries separately to see the trace-once/replay-many
 * savings.
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    SuiteEvaluator evaluator;

    EvalRequest fig08;
    fig08.sim = SimConfig::paperMachine();

    EvalRequest fig09 = fig08;
    fig09.sim.machine = issue8Branch2();

    EvalRequest fig10 = fig08;
    fig10.sim.machine = issue4Branch1();

    EvalRequest fig11 = fig08;
    fig11.sim.perfectCaches = false;

    // Figure 11 replays Figure 8's traces (only the pricing
    // differs), so evaluate it right after Figure 8 and drop the
    // captured traces before each remaining machine sweep: peak
    // trace residency is one machine's worth instead of three, and
    // every counter (compiles, captures, cache hits) is unchanged —
    // Figures 9/10 share only priced results, which survive
    // releaseTraces().
    auto r08 = evaluator.evaluate(fig08).results;
    auto r11 = evaluator.evaluate(fig11).results;
    evaluator.releaseTraces();
    auto r09 = evaluator.evaluate(fig09).results;
    evaluator.releaseTraces();
    auto r10 = evaluator.evaluate(fig10).results;

    printSpeedupFigure(
        std::cout,
        "Figure 8: speedup, 8-issue / 1-branch, perfect caches", r08);
    printSpeedupFigure(
        std::cout,
        "Figure 9: speedup, 8-issue / 2-branch, perfect caches", r09);
    printSpeedupFigure(
        std::cout,
        "Figure 10: speedup, 4-issue / 1-branch, perfect caches",
        r10);
    printSpeedupFigure(
        std::cout,
        "Figure 11: speedup, 8-issue / 1-branch, 64K real caches",
        r11);
    printInstructionTable(std::cout, r08);
    printBranchTable(std::cout, r08);

    std::vector<BenchmarkResult> all;
    auto addPrefixed = [&](const char *prefix,
                           const std::vector<BenchmarkResult> &rs) {
        for (BenchmarkResult r : rs) {
            r.name = std::string(prefix) + "/" + r.name;
            all.push_back(std::move(r));
        }
    };
    addPrefixed("fig08", r08);
    addPrefixed("fig09", r09);
    addPrefixed("fig10", r10);
    addPrefixed("fig11", r11);

    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("figures_all", all, timing, wall.seconds(),
                   evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
