/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out: each
 * row disables one ingredient of the Full Predication or Cond. Move
 * pipeline and reports the mean speedup across the suite at 8-issue,
 * 1-branch, perfect caches.
 *
 *  - no-promotion:     predicate promotion off (paper Fig. 2)
 *  - no-combining:     exit branch combining off (grep discussion)
 *  - no-height-red:    OR-chain control height reduction off
 *  - no-or-tree:       partial predication OR-tree rebalancing off
 *  - with-select:      partial predication uses select fusion (§2.2)
 *
 * All rows share one SuiteEvaluator: the 1-issue Superblock baseline
 * and any row whose flag cannot affect a model's code (e.g.
 * no-combining for Cond. Move) are compiled and traced exactly once.
 */

#include <iostream>

#include "driver/bench_io.hh"
#include "support/stats.hh"
#include "support/string_utils.hh"

using namespace predilp;

namespace
{

std::vector<BenchmarkResult> allResults;

double
meanSpeedup(SuiteEvaluator &evaluator, const std::string &rowName,
            const SuiteConfig &config, Model model)
{
    // One request per workload, priced as one batch: the row's
    // traces are each walked once for every pending config.
    std::vector<EvalRequest> requests;
    for (const Workload &w : allWorkloads()) {
        EvalRequest request = EvalRequest::fromSuiteConfig(config);
        request.workloads = {w.name};
        request.models = {model};
        requests.push_back(std::move(request));
    }
    std::vector<double> speedups;
    for (EvalResponse &response : evaluator.evaluateBatch(requests)) {
        BenchmarkResult r = std::move(response.results.at(0));
        speedups.push_back(r.speedup(model));
        r.name = rowName + "/" + r.name;
        allResults.push_back(std::move(r));
    }
    return arithmeticMean(speedups);
}

} // namespace

int
main()
{
    WallTimer wall;
    SuiteConfig base;
    base.machine = issue8Branch1();
    SuiteEvaluator evaluator(base.threads);

    TextTable table;
    table.setHeader({"Configuration", "Model", "Mean speedup"});

    auto row = [&](const std::string &name, const SuiteConfig &c,
                   Model m) {
        table.addRow(
            {name, modelName(m),
             formatFixed(meanSpeedup(evaluator, name, c, m), 3)});
        // Rows share priced results (which survive this), never raw
        // traces, so dropping traces per row bounds peak memory
        // without changing any counter.
        evaluator.releaseTraces();
        std::cout << "." << std::flush;
    };

    row("baseline", base, Model::FullPred);
    row("baseline", base, Model::CondMove);

    {
        SuiteConfig c = base;
        c.ablation.promotion = false;
        row("no-promotion", c, Model::FullPred);
        row("no-promotion", c, Model::CondMove);
    }
    {
        SuiteConfig c = base;
        c.ablation.branchCombining = false;
        row("no-combining", c, Model::FullPred);
    }
    {
        SuiteConfig c = base;
        c.ablation.heightReduction = false;
        row("no-height-red", c, Model::FullPred);
        row("no-height-red", c, Model::CondMove);
    }
    {
        SuiteConfig c = base;
        c.ablation.orTree = false;
        row("no-or-tree", c, Model::CondMove);
    }
    {
        SuiteConfig c = base;
        c.ablation.useSelect = true;
        row("with-select", c, Model::CondMove);
    }

    std::cout << "\nAblations (8-issue, 1-branch, perfect caches)\n";
    table.print(std::cout);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("ablations", allResults, timing, wall.seconds(),
                   evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
