/**
 * @file
 * Reproduces Table 3: dynamic branch counts, misprediction counts,
 * and misprediction rates per model. Expected shape: the predicated
 * models execute far fewer branches; absolute mispredictions drop,
 * though the *rate* over surviving branches can rise (the paper's
 * grep observation on branch combining).
 */

#include <iostream>

#include "driver/report.hh"

int
main()
{
    using namespace predilp;
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    auto results = evaluateSuite(config);
    printBranchTable(std::cout, results);
    return 0;
}
