/**
 * @file
 * Reproduces Table 3: dynamic branch counts, misprediction counts,
 * and misprediction rates per model. Expected shape: the predicated
 * models execute far fewer branches; absolute mispredictions drop,
 * though the *rate* over surviving branches can rise (the paper's
 * grep observation on branch combining).
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    SuiteEvaluator evaluator(config.threads);
    auto results =
        evaluator.evaluate(EvalRequest::fromSuiteConfig(config))
            .results;
    printBranchTable(std::cout, results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("table3_branches", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
