/**
 * @file
 * Reproduces Figure 11: 8-issue, 1-branch processor with real 64K
 * direct-mapped instruction and data caches (64-byte blocks, 12-cycle
 * miss penalty, write-through / no-write-allocate). Cache effects
 * compress every model's gains; predication's larger footprint costs
 * it instruction-cache misses.
 */

#include <iostream>

#include "driver/bench_io.hh"

int
main()
{
    using namespace predilp;
    WallTimer wall;
    EvalRequest request;
    request.sim = SimConfig::paperMachine();
    request.sim.perfectCaches = false;
    SuiteEvaluator evaluator;
    auto results = evaluator.evaluate(request).results;
    printSpeedupFigure(
        std::cout,
        "Figure 11: speedup, 8-issue / 1-branch, 64K real caches",
        results);
    BenchTiming timing = evaluator.timing();
    printPhaseTiming(std::cout, timing, wall.seconds(),
                     evaluator.threadCount());
    writeBenchJson("fig11_realcache", results, timing,
                   wall.seconds(), evaluator.threadCount(),
                   evaluator.compileStats());
    return 0;
}
