#!/usr/bin/env bash
# Fault-injection kill matrix for the self-healing sweep/store
# pipeline (src/support/faultpoint.hh, DESIGN.md §6j).
#
# Baseline pass: runs a small grid (2 workers, fresh shared store)
# fault-free and records the merged "cells" array as ground truth.
#
# Matrix pass: arms every registered fault point (discovered via
# predilp_sweep --list-fault-points, so a new point can never dodge
# CI) one at a time as `<point>=once` through PREDILP_FAULTS and
# requires each run to exit 0 with zero degraded cells and a cells
# array byte-identical to the baseline — every injected throw must be
# healed by a retry or a degradation-ladder rung, never absorbed into
# the results.
#
# Kill pass: repeats the worker-lifecycle and store-publish points
# with action `crash` (SIGKILL at the point, including mid-publish
# with the temp artifact staged), `short-write` (torn worker result
# file / truncated artifact), and a `delay` hang reaped by the
# supervisor watchdog.
#
# Serve-no-corruption pass: after the whole matrix has battered the
# shared store, one disarmed healing run republishes anything a torn
# publish left behind, then a warm run must do zero compiles and zero
# captures and still merge to the baseline bytes — proving no corrupt
# artifact was ever served as truth.
#
# Usage: scripts/fault_ci.sh. Assumes scripts/tier1.sh already built.
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP=build/tools/predilp_sweep
OUT=bench-out/fault-ci
rm -rf "${OUT}"
mkdir -p "${OUT}"
export PREDILP_STORE="${PWD}/${OUT}/store"
export PREDILP_STORE_MODE=rw

cat > "${OUT}/grid.json" <<'EOF'
{
  "workloads": ["cmp"],
  "axes": {"issue_width": [4, 8]}
}
EOF

# extract_cells REPORT CELLS_OUT [MIN_RETRIES]: dump the canonical
# cells array and fail on any degraded cell (or too few retries).
extract_cells() {
    python3 - "$@" <<'PYEOF'
import json
import sys

report_path, cells_path = sys.argv[1:3]
min_retries = int(sys.argv[3]) if len(sys.argv) > 3 else 0
with open(report_path) as f:
    report = json.load(f)
if report.get("degraded_cells", 0) != 0:
    sys.exit(f"error: {report_path}: {report['degraded_cells']} "
             f"degraded cell(s); expected full convergence")
retries = report.get("worker_retries", 0)
if retries < min_retries:
    sys.exit(f"error: {report_path}: {retries} worker retries; "
             f"expected >= {min_retries} (fault never bit?)")
with open(cells_path, "w") as f:
    json.dump(report["cells"], f, sort_keys=True)
PYEOF
}

# run_case NAME SPEC MIN_RETRIES [extra sweep args...]: run the grid
# with SPEC armed and require byte-identical convergence.
run_case() {
    local name="$1" spec="$2" min_retries="$3"
    shift 3
    echo "== fault case: ${name} (${spec:-disarmed}) =="
    PREDILP_FAULTS="${spec}" "${SWEEP}" --spec "${OUT}/grid.json" \
        --workers 2 --out "${OUT}/report.json" "$@"
    extract_cells "${OUT}/report.json" "${OUT}/cells.json" \
        "${min_retries}"
    if ! cmp -s "${OUT}/cells.json" "${OUT}/baseline_cells.json"; then
        echo "error: ${name}: cells differ from fault-free baseline" >&2
        diff "${OUT}/baseline_cells.json" "${OUT}/cells.json" >&2 || true
        exit 1
    fi
    echo "ok: ${name} converged to baseline cells"
}

echo "== baseline pass (store: ${PREDILP_STORE}) =="
"${SWEEP}" --spec "${OUT}/grid.json" --workers 2 \
    --out "${OUT}/baseline.json"
extract_cells "${OUT}/baseline.json" "${OUT}/baseline_cells.json"

# Every registered point, armed one at a time. The load-side points
# need the warm store (they fire on real artifact loads); everything
# else gets a cold store so compile/capture/publish actually run and
# the armed point genuinely bites.
points=$("${SWEEP}" --list-fault-points)
if [ -z "${points}" ]; then
    echo "error: --list-fault-points returned nothing" >&2
    exit 1
fi
echo "== matrix pass ($(echo "${points}" | wc -l) registered points) =="
while IFS= read -r point; do
    case "${point}" in
        store.load.*) ;;
        *) rm -rf "${PREDILP_STORE}" ;;
    esac
    run_case "throw ${point}" "${point}=once" 0
done <<< "${points}"

echo "== kill pass =="
# SIGKILL a worker the instant before it writes its result file.
run_case "worker killed mid-publish" \
    "sweep.worker.publish=once:crash" 1
# SIGKILL inside the artifact store's publish window: the temp file
# is staged but the canonical path untouched. Cold store so the
# publish actually happens.
rm -rf "${PREDILP_STORE}"
run_case "store publish killed mid-rename" \
    "store.publish.rename=once:crash" 1
# SIGKILL at worker startup (before any work).
run_case "worker killed at startup" "sweep.worker.start=once:crash" 1
# Worker exits 0 but its result file is torn at half length.
run_case "torn worker result file" \
    "sweep.worker.publish=once:short-write" 1
# Artifact payload truncated at half length before publish (cold
# store); load validation must quarantine and recompute the torn
# artifact, never serve it.
rm -rf "${PREDILP_STORE}"
run_case "truncated artifact publish" \
    "store.publish.write=once:short-write" 0
# Provenance sidecar torn at half length (cold store): the artifact
# lands but its sidecar fails the seal, so the loader must condemn
# the pair and recompute rather than serve unprovenanced bytes.
rm -rf "${PREDILP_STORE}"
run_case "torn provenance sidecar publish" \
    "store.publish.prov=once:short-write" 0
# Certified result record torn at half length (cold store): the
# record fails its seal on read and the next evaluation republishes
# it; figures never change.
rm -rf "${PREDILP_STORE}"
run_case "torn certified result publish" \
    "store.publish.result=once:short-write" 0
# Worker hangs 60s at startup; the supervisor watchdog must SIGKILL
# and retry it (the retry's hit count skips the nth:1 trigger).
run_case "hung worker reaped by watchdog" \
    "sweep.worker.start=nth:1:delay:60000" 1 --watchdog-sec 5

echo "== serve-no-corruption pass =="
# A torn publish may still be sitting in the store; one disarmed run
# is allowed to quarantine and recompute it...
run_case "healing run" "" 0
# ...after which the warm run must find only good artifacts: zero
# compiles, zero captures, baseline bytes.
run_case "warm run" "" 0
python3 - "${OUT}/report.json" <<'PYEOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    counters = json.load(f)["timing"]["counters"]
for key in ("compiles", "captures"):
    if counters.get(key, 0) != 0:
        sys.exit(f"error: warm run after fault matrix did new work "
                 f"({counters[key]} {key}) — a corrupt artifact "
                 f"survived in the store")
print("ok: warm store serves only validated artifacts "
      "(0 compiles, 0 captures)")
PYEOF

# ...and the whole store must pass the provenance contract: every
# artifact parses and carries a sealed, paired sidecar, every
# certified record passes its seal. Anything the fault matrix tore
# must have been healed, not left behind.
build/tools/predilp_diff --verify "${PREDILP_STORE}"

echo "fault-ci: all cases converged byte-identically"
