#!/usr/bin/env bash
# Run a bench binary and validate every BENCH_*.json it emits (the
# StatsSnapshot-serialized observability payload) with a strict JSON
# parser. Usage: scripts/bench_json.sh [bench-binary...]; defaults to
# the Figure 8 benchmark. Assumes scripts/tier1.sh already built.
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
    benches=(bench_fig08_issue8_br1)
fi

mkdir -p bench-out
cd bench-out
for bench in "${benches[@]}"; do
    "../build/bench/${bench}"
done

shopt -s nullglob
jsons=(BENCH_*.json)
if [ "${#jsons[@]}" -eq 0 ]; then
    echo "error: no BENCH_*.json produced" >&2
    exit 1
fi
for json in "${jsons[@]}"; do
    python3 -m json.tool "${json}" > /dev/null
    echo "ok: ${json}"
done
