#!/usr/bin/env bash
# Run each bench binary twice against a persistent artifact store and
# validate every BENCH_*.json it emits (the StatsSnapshot-serialized
# observability payload) with a strict JSON parser.
#
# Cold pass: enforces the packed-trace perf contract — the throughput
# counters must be present and bytes-per-capture / bytes-per-entry
# must stay under the committed thresholds (the packed 4-byte entry +
# varint delta format sits well below them; the old 8-byte format
# would trip both).
#
# Warm pass: reruns the same binaries against the store populated by
# the cold pass and enforces the store contract — every
# evaluator-driven bench (store.hit > 0) must report zero compiles,
# zero captures, zero emulation seconds, and figure output
# bit-identical to the cold run.
#
# Interp-backend pass: reruns everything with PREDILP_EMU=interp
# against a separate (cold) store and requires figure output
# bit-identical to the threaded cold pass, so CI catches
# threaded-vs-interp emulation drift the unit suite might miss.
#
# Usage: scripts/bench_json.sh [bench-binary...]; defaults to the
# Figure 8 benchmark plus the replay-, batched-replay-, and
# capture-kernel microbenchmarks. Assumes scripts/tier1.sh already
# built.
# PREDILP_STORE overrides the store location (default
# bench-out/store).
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
    benches=(bench_fig08_issue8_br1 bench_replay_hot bench_replay_batch bench_capture_hot)
fi

mkdir -p bench-out
export PREDILP_STORE="${PREDILP_STORE:-$PWD/bench-out/store}"
export PREDILP_STORE_MODE="${PREDILP_STORE_MODE:-rw}"
cd bench-out

# Under fault injection the perf floors are meaningless (delay
# faults inflate wall time, degradation rungs re-emulate on purpose),
# so skip them and the warm zero-work counters — but keep every
# shape check and every bit-identity contract: injected faults must
# never change the figures.
if [ -n "${PREDILP_FAULTS:-}" ]; then
    echo "== PREDILP_FAULTS='${PREDILP_FAULTS}': perf floors and" \
        "warm zero-work counters skipped; identity checks kept =="
fi

run_benches() {
    for bench in "${benches[@]}"; do
        "../build/bench/${bench}"
    done
}

# Archive the previous run's certified result records (if any) before
# this run republishes over them, so the drift gate below can compare
# the two runs cell by cell.
rm -rf results-before
if [ -d "${PREDILP_STORE}/results" ]; then
    cp -r "${PREDILP_STORE}/results" results-before
fi

echo "== cold pass (store: ${PREDILP_STORE}) =="
run_benches

shopt -s nullglob
jsons=(BENCH_*.json)
if [ "${#jsons[@]}" -eq 0 ]; then
    echo "error: no BENCH_*.json produced" >&2
    exit 1
fi
for json in "${jsons[@]}"; do
    python3 -m json.tool "${json}" > /dev/null
    echo "ok: ${json}"
done

python3 - "${jsons[@]}" <<'EOF'
import json
import os
import sys

# Perf floors only bind on fault-free runs; see the PREDILP_FAULTS
# note at the top of this script.
FLOORS = not os.environ.get("PREDILP_FAULTS")

# Committed thresholds for the packed trace format. Baselines on the
# old 8-byte format: ~4.2 MB/capture and ~10.8 B/entry; the packed
# format measures ~1.9 MB/capture and ~4.9 B/entry.
MAX_TRACE_BYTES_PER_CAPTURE = 3_000_000
MAX_TRACE_BYTES_PER_ENTRY = 6.0

# Floors for the capture-kernel microbenchmark (the only bench that
# reports speedup_vs_interp). The threaded backend measures
# ~140-180 Mrec/s capture and ~2.5-3x over the interpreter on the dev
# box; the floors sit far enough below that container noise cannot
# trip them, while a regression to interpreter-level dispatch
# (~55 Mrec/s, 1.0x) trips both.
MIN_EMULATE_RECORDS_PER_SEC = 60_000_000
MIN_CAPTURE_SPEEDUP_VS_INTERP = 1.5

# Floors for the replay kernels (benches reporting replay_passes —
# the evaluator-driven benches time whole phases, not the kernel).
# The baked static-op metadata table measures ~63-68 Mrec/s
# single-config on the dev box; the pre-table path measured
# ~36 Mrec/s, so the floor catches a regression to per-record
# StaticOp re-derivation (the committed >=1.3x table win) while
# sitting clear of container noise.
MIN_REPLAY_RECORDS_PER_SEC = 45_000_000

# Amortized per-config floor for the batched-replay kernel: the
# acceptance batch mixes real-cache and narrow-machine configs, so
# per-config throughput sits well below the perfect-cache
# single-config rate (~7 Mrec/s measured serially on the dev box).
MIN_REPLAY_BATCH_PER_CONFIG = 4_000_000

# Aggregate batch speedup vs pricing the same configs with
# sequential replay() calls. The committed contract is >=3x at batch
# 8, delivered by spreading one lane per pool thread — so it is only
# enforceable where the pool actually has threads to spread over.
# With fewer than 4 threads the floor degrades to "batching must not
# meaningfully lose to sequential": serial amortization alone
# measures ~1.05-1.15x on a 1-core container, with ~10% run-to-run
# noise even under best-of-5 timing, so the serial floor sits just
# below parity.
MIN_BATCH_SPEEDUP_PARALLEL = 3.0
MIN_BATCH_SPEEDUP_SERIAL = 0.9

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


def floor_fail(msg):
    if FLOORS:
        fail(msg)
    else:
        print(f"skip (faults armed): {msg}")


for path in sys.argv[1:]:
    with open(path) as f:
        timing = json.load(f)["timing"]
    counters = timing.get("counters", {})
    throughput = timing.get("throughput", {})
    store_hits = timing.get("store", {}).get("hit", 0)

    replays = counters.get("replays", counters.get("replay_passes", 0))
    if replays and "replay_records_per_sec" not in throughput:
        fail(f"{path}: missing throughput.replay_records_per_sec")

    if counters.get("replay_passes", 0):
        rps = throughput.get("replay_records_per_sec", 0.0)
        if rps < MIN_REPLAY_RECORDS_PER_SEC:
            floor_fail(f"{path}: replay_records_per_sec {rps:.3g} below "
                 f"floor {MIN_REPLAY_RECORDS_PER_SEC:.3g}")
        else:
            print(f"ok: {path} replay_records_per_sec {rps:.3g} "
                  f">= {MIN_REPLAY_RECORDS_PER_SEC:.3g}")

    if "replay_batch_records_per_sec_per_config" in throughput:
        per_config = throughput["replay_batch_records_per_sec_per_config"]
        if per_config < MIN_REPLAY_BATCH_PER_CONFIG:
            floor_fail(f"{path}: replay_batch_records_per_sec_per_config "
                 f"{per_config:.3g} below floor "
                 f"{MIN_REPLAY_BATCH_PER_CONFIG:.3g}")
        else:
            print(f"ok: {path} replay_batch per-config {per_config:.3g} "
                  f">= {MIN_REPLAY_BATCH_PER_CONFIG:.3g}")
        threads = counters.get("pool_threads", 1)
        floor = (MIN_BATCH_SPEEDUP_PARALLEL if threads >= 4
                 else MIN_BATCH_SPEEDUP_SERIAL)
        speedup = throughput.get("batch_speedup_vs_sequential", 0.0)
        if speedup < floor:
            floor_fail(f"{path}: batch_speedup_vs_sequential {speedup:.2f} "
                 f"below floor {floor} ({threads} pool threads)")
        else:
            print(f"ok: {path} batch_speedup_vs_sequential "
                  f"{speedup:.2f} >= {floor} ({threads} pool threads)")

    records = counters.get("captured_records",
                           counters.get("trace_records", 0))
    if records:
        if "trace_bytes_per_entry" not in throughput:
            fail(f"{path}: missing throughput.trace_bytes_per_entry")
        else:
            bpe = throughput["trace_bytes_per_entry"]
            if bpe > MAX_TRACE_BYTES_PER_ENTRY:
                floor_fail(f"{path}: trace_bytes_per_entry {bpe:.2f} exceeds "
                     f"threshold {MAX_TRACE_BYTES_PER_ENTRY}")
    elif not store_hits:
        # A bench that neither captured nor loaded traces did no
        # trace work at all; the threshold checks are vacuous.
        pass

    if "speedup_vs_interp" in throughput:
        rps = throughput.get("emulate_records_per_sec", 0.0)
        if rps < MIN_EMULATE_RECORDS_PER_SEC:
            floor_fail(f"{path}: emulate_records_per_sec {rps:.3g} below "
                 f"floor {MIN_EMULATE_RECORDS_PER_SEC:.3g}")
        else:
            print(f"ok: {path} emulate_records_per_sec {rps:.3g} "
                  f">= {MIN_EMULATE_RECORDS_PER_SEC:.3g}")
        speedup = throughput["speedup_vs_interp"]
        if speedup < MIN_CAPTURE_SPEEDUP_VS_INTERP:
            floor_fail(f"{path}: capture speedup_vs_interp {speedup:.2f} below "
                 f"floor {MIN_CAPTURE_SPEEDUP_VS_INTERP}")
        else:
            print(f"ok: {path} speedup_vs_interp {speedup:.2f} "
                  f">= {MIN_CAPTURE_SPEEDUP_VS_INTERP}")

    captures = counters.get("captures", 0)
    captured_bytes = counters.get("captured_bytes", 0)
    if captures and captured_bytes:
        per_capture = captured_bytes / captures
        if per_capture > MAX_TRACE_BYTES_PER_CAPTURE:
            floor_fail(f"{path}: {per_capture:.0f} trace bytes/capture exceeds "
                 f"threshold {MAX_TRACE_BYTES_PER_CAPTURE}")
        else:
            print(f"ok: {path} trace bytes/capture {per_capture:.0f} "
                  f"<= {MAX_TRACE_BYTES_PER_CAPTURE}")

sys.exit(1 if failed else 0)
EOF

# Certified drift gate: join this run's certified records against the
# archived previous run by provenance identity. Cells whose digests
# moved are explained; a cell with identical provenance but different
# figures is unexplained drift and fails the build (predilp_diff
# exits 1). First run on a fresh store just seeds the baseline.
if [ -d results-before ] && [ -d "${PREDILP_STORE}/results" ]; then
    echo "== certified drift gate (vs previous run) =="
    ../build/tools/predilp_diff --before results-before \
        --after "${PREDILP_STORE}/results"
else
    echo "== certified drift gate: no previous results; seeding =="
fi

# Stash the cold JSONs, then rerun against the now-populated store.
mkdir -p cold
for json in "${jsons[@]}"; do
    cp "${json}" "cold/${json}"
done

echo "== warm pass =="
run_benches

python3 - "${jsons[@]}" <<'EOF'
import json
import os
import sys

# Injected faults legitimately break the warm zero-work contract
# (quarantine-and-recompute re-emulates on purpose); the figure
# bit-identity contract below still binds.
ZERO_WORK = not os.environ.get("PREDILP_FAULTS")

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


def zero_work_fail(msg):
    if ZERO_WORK:
        fail(msg)
    else:
        print(f"skip (faults armed): {msg}")


asserted = 0
for path in sys.argv[1:]:
    with open(path) as f:
        warm = json.load(f)
    timing = warm["timing"]
    store = timing.get("store", {})
    if store.get("hit", 0) == 0:
        # Not evaluator-driven (e.g. the replay-kernel
        # microbenchmark bypasses the cache tiers): no store
        # contract to enforce.
        print(f"skip: {path} (no store hits)")
        continue
    asserted += 1

    counters = timing.get("counters", {})
    phases = timing.get("phases", {})
    if store.get("miss", 0) != 0:
        zero_work_fail(f"{path}: warm run missed the store "
                       f"({store['miss']} misses)")
    if counters.get("compiles", 0) != 0:
        zero_work_fail(f"{path}: warm run compiled "
                       f"({counters['compiles']} compiles)")
    if counters.get("captures", 0) != 0:
        zero_work_fail(f"{path}: warm run emulated "
                       f"({counters['captures']} captures)")
    if phases.get("emulate_seconds", 0.0) != 0.0:
        zero_work_fail(f"{path}: warm run spent "
                       f"{phases['emulate_seconds']}s in emulation")

    with open(f"cold/{path}") as f:
        cold = json.load(f)
    if warm["benchmarks"] != cold["benchmarks"]:
        fail(f"{path}: warm figure output differs from cold run")
    else:
        print(f"ok: {path} warm == cold "
              f"({store['hit']} store hits, 0 emulations)")

if asserted == 0:
    fail("no bench exercised the artifact store")
sys.exit(1 if failed else 0)
EOF

# Interp-backend pass: force the interpreter backend against a
# separate, empty store so every evaluator bench actually re-captures
# with the interpreter, then require figure output bit-identical to
# the threaded cold pass. Catches threaded-vs-interp emulation drift.
echo "== interp-backend pass (figures drift check) =="
export PREDILP_EMU=interp
export PREDILP_STORE="${PREDILP_STORE}-interp"
rm -rf "${PREDILP_STORE}"
run_benches

python3 - "${jsons[@]}" <<'EOF'
import json
import sys

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


asserted = 0
for path in sys.argv[1:]:
    with open(path) as f:
        interp = json.load(f)
    if "benchmarks" not in interp:
        # Kernel microbenchmarks carry no figure output; the
        # capture kernel checks interp-vs-threaded bit-identity
        # internally on every pass.
        print(f"skip: {path} (no figure output)")
        continue
    asserted += 1

    emu = interp["timing"].get("emu", {})
    threaded_runs = emu.get("backend", {}).get("threaded", 0)
    if threaded_runs != 0:
        fail(f"{path}: interp pass still used the threaded backend "
             f"({threaded_runs} runs)")
    if emu.get("records", {}).get("interp", 0) == 0:
        fail(f"{path}: interp pass captured no interpreter records")

    with open(f"cold/{path}") as f:
        cold = json.load(f)
    if interp["benchmarks"] != cold["benchmarks"]:
        fail(f"{path}: interpreter-backend figure output differs "
             f"from threaded cold run")
    else:
        print(f"ok: {path} interp figures == threaded figures")

if asserted == 0:
    fail("no bench produced figure output for the backend check")
sys.exit(1 if failed else 0)
EOF
