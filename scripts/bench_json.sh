#!/usr/bin/env bash
# Run a bench binary and validate every BENCH_*.json it emits (the
# StatsSnapshot-serialized observability payload) with a strict JSON
# parser, then enforce the packed-trace perf contract: the throughput
# counters must be present and bytes-per-capture / bytes-per-entry
# must stay under the committed thresholds (the packed 4-byte entry +
# varint delta format sits well below them; the old 8-byte format
# would trip both). Usage: scripts/bench_json.sh [bench-binary...];
# defaults to the Figure 8 benchmark plus the replay-kernel
# microbenchmark. Assumes scripts/tier1.sh already built.
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
    benches=(bench_fig08_issue8_br1 bench_replay_hot)
fi

mkdir -p bench-out
cd bench-out
for bench in "${benches[@]}"; do
    "../build/bench/${bench}"
done

shopt -s nullglob
jsons=(BENCH_*.json)
if [ "${#jsons[@]}" -eq 0 ]; then
    echo "error: no BENCH_*.json produced" >&2
    exit 1
fi
for json in "${jsons[@]}"; do
    python3 -m json.tool "${json}" > /dev/null
    echo "ok: ${json}"
done

python3 - "${jsons[@]}" <<'EOF'
import json
import sys

# Committed thresholds for the packed trace format. Baselines on the
# old 8-byte format: ~4.2 MB/capture and ~10.8 B/entry; the packed
# format measures ~1.9 MB/capture and ~4.9 B/entry.
MAX_TRACE_BYTES_PER_CAPTURE = 3_000_000
MAX_TRACE_BYTES_PER_ENTRY = 6.0

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


for path in sys.argv[1:]:
    with open(path) as f:
        timing = json.load(f)["timing"]
    counters = timing.get("counters", {})
    throughput = timing.get("throughput", {})

    replays = counters.get("replays", counters.get("replay_passes", 0))
    if replays and "replay_records_per_sec" not in throughput:
        fail(f"{path}: missing throughput.replay_records_per_sec")

    records = counters.get("captured_records",
                           counters.get("trace_records", 0))
    if records:
        if "trace_bytes_per_entry" not in throughput:
            fail(f"{path}: missing throughput.trace_bytes_per_entry")
        else:
            bpe = throughput["trace_bytes_per_entry"]
            if bpe > MAX_TRACE_BYTES_PER_ENTRY:
                fail(f"{path}: trace_bytes_per_entry {bpe:.2f} exceeds "
                     f"threshold {MAX_TRACE_BYTES_PER_ENTRY}")

    captures = counters.get("captures", 0)
    captured_bytes = counters.get("captured_bytes", 0)
    if captures and captured_bytes:
        per_capture = captured_bytes / captures
        if per_capture > MAX_TRACE_BYTES_PER_CAPTURE:
            fail(f"{path}: {per_capture:.0f} trace bytes/capture exceeds "
                 f"threshold {MAX_TRACE_BYTES_PER_CAPTURE}")
        else:
            print(f"ok: {path} trace bytes/capture {per_capture:.0f} "
                  f"<= {MAX_TRACE_BYTES_PER_CAPTURE}")

sys.exit(1 if failed else 0)
EOF
