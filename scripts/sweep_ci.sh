#!/usr/bin/env bash
# Exercise the sharded scenario-sweep driver end to end and validate
# its consolidated report.
#
# Cold pass: runs a small grid (2 x 2 x 2 over the cheapest workload)
# with 2 forked workers sharing the artifact store, then checks the
# BENCH_sweep.json shape — cell_count matches, cell indices are
# exactly 0..n-1 (no duplicates, no holes), every cell carries axes /
# digests / per-model figures, and the crossover summary covers every
# axis.
#
# Determinism pass: re-expands the same grid sequentially (1 worker,
# fresh store) and requires the "cells" array to be byte-identical to
# the sharded run's — the sweep's merge contract.
#
# Batching pass: re-runs the sharded sweep with --no-batch (cell-by-
# cell evaluation instead of one batched replay pass per trace) and
# requires the merged cells to be byte-identical to the batched
# run's — the replayBatch pricing contract.
#
# Warm pass: re-runs the sharded sweep against the store the cold
# pass populated and requires zero compiles and zero captures: every
# trace must come off disk.
#
# Usage: scripts/sweep_ci.sh. Assumes scripts/tier1.sh already built.
# PREDILP_STORE overrides the store location (default
# bench-out/sweep-store).
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench-out
export PREDILP_STORE="${PREDILP_STORE:-$PWD/bench-out/sweep-store}"
export PREDILP_STORE_MODE="${PREDILP_STORE_MODE:-rw}"
cd bench-out

cat > sweep_grid.json <<'EOF'
{
  "workloads": ["cmp"],
  "axes": {
    "issue_width": [4, 8],
    "btb_entries": [256, 1024],
    "perfect_caches": [true, false]
  }
}
EOF

echo "== cold sharded pass (store: ${PREDILP_STORE}) =="
../build/tools/predilp_sweep --spec sweep_grid.json --workers 2 \
    --out BENCH_sweep.json

python3 - BENCH_sweep.json <<'EOF'
import json
import sys

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

if report.get("bench") != "sweep":
    fail(f"{path}: bench key is {report.get('bench')!r}, not 'sweep'")

cells = report.get("cells", [])
cell_count = report.get("cell_count")
if cell_count != len(cells):
    fail(f"{path}: cell_count {cell_count} != len(cells) {len(cells)}")
if cell_count != 8:
    fail(f"{path}: expected the 2x2x2 grid's 8 cells, got {cell_count}")

# Completeness: indices must be exactly 0..n-1 — a duplicate or a
# missing cell is a sharding/merge bug.
indices = [cell.get("index") for cell in cells]
if sorted(indices) != list(range(len(cells))):
    dupes = sorted({i for i in indices if indices.count(i) > 1})
    missing = sorted(set(range(len(cells))) - set(indices))
    fail(f"{path}: bad cell indices (duplicates {dupes}, "
         f"missing {missing})")
if indices != sorted(indices):
    fail(f"{path}: cells not in grid order: {indices}")

for cell in cells:
    index = cell.get("index")
    for key in ("axes", "request_digest", "config_digest",
                "benchmarks"):
        if key not in cell:
            fail(f"{path}: cell {index} missing '{key}'")
    for digest_key in ("request_digest", "config_digest"):
        if not str(cell.get(digest_key, "")).startswith("v1:"):
            fail(f"{path}: cell {index} has unversioned "
                 f"{digest_key}")
    for bench in cell.get("benchmarks", []):
        models = bench.get("models", {})
        for model in ("superblock", "cond_move", "full_pred"):
            if model not in models:
                fail(f"{path}: cell {index} benchmark "
                     f"{bench.get('name')!r} missing model "
                     f"{model!r}")
            elif "speedup" not in models[model]:
                fail(f"{path}: cell {index} model {model!r} "
                     f"missing speedup")

crossover = report.get("crossover", [])
spec_axes = {"issue_width", "btb_entries", "perfect_caches"}
summarized = {entry.get("axis") for entry in crossover}
if summarized != spec_axes:
    fail(f"{path}: crossover summarizes {sorted(summarized)}, "
         f"expected {sorted(spec_axes)}")
for entry in crossover:
    if not entry.get("points"):
        fail(f"{path}: crossover axis {entry.get('axis')!r} has no "
             f"points")

if not failed:
    print(f"ok: {path} shape valid ({cell_count} cells, "
          f"{len(crossover)} crossover axes)")
sys.exit(1 if failed else 0)
EOF

echo "== determinism pass (sequential, fresh store) =="
cp BENCH_sweep.json BENCH_sweep_sharded.json
PREDILP_STORE="${PREDILP_STORE}-seq" \
    ../build/tools/predilp_sweep --spec sweep_grid.json --workers 1 \
    --out BENCH_sweep_seq.json
rm -rf "${PREDILP_STORE}-seq"

python3 - BENCH_sweep_sharded.json BENCH_sweep_seq.json <<'EOF'
import json
import sys

sharded_path, seq_path = sys.argv[1:3]
with open(sharded_path) as f:
    sharded = json.load(f)
with open(seq_path) as f:
    seq = json.load(f)
if sharded["cells"] != seq["cells"]:
    print("error: sharded cells differ from the sequential run",
          file=sys.stderr)
    sys.exit(1)
print("ok: 2-worker cells identical to sequential run")
EOF

echo "== batching pass (--no-batch vs batched) =="
PREDILP_STORE="${PREDILP_STORE}-nobatch" \
    ../build/tools/predilp_sweep --spec sweep_grid.json --workers 2 \
    --no-batch --out BENCH_sweep_nobatch.json
rm -rf "${PREDILP_STORE}-nobatch"

python3 - BENCH_sweep_sharded.json BENCH_sweep_nobatch.json <<'EOF'
import json
import sys

batched_path, nobatch_path = sys.argv[1:3]
with open(batched_path) as f:
    batched = json.load(f)
with open(nobatch_path) as f:
    nobatch = json.load(f)
if batched["cells"] != nobatch["cells"]:
    print("error: batched cells differ from the --no-batch run",
          file=sys.stderr)
    sys.exit(1)
print("ok: batched replay cells identical to --no-batch run")
EOF

echo "== warm sharded pass =="
../build/tools/predilp_sweep --spec sweep_grid.json --workers 2 \
    --out BENCH_sweep_warm.json

python3 - BENCH_sweep_warm.json BENCH_sweep_sharded.json <<'EOF'
import json
import sys

failed = False


def fail(msg):
    global failed
    failed = True
    print(f"error: {msg}", file=sys.stderr)


warm_path, cold_path = sys.argv[1:3]
with open(warm_path) as f:
    warm = json.load(f)
timing = warm.get("timing", {})
counters = timing.get("counters", {})
store = timing.get("store", {})
if counters.get("compiles", 0) != 0:
    fail(f"{warm_path}: warm sweep compiled "
         f"({counters['compiles']} compiles)")
if counters.get("captures", 0) != 0:
    fail(f"{warm_path}: warm sweep emulated "
         f"({counters['captures']} captures)")
if store.get("hit", 0) == 0:
    fail(f"{warm_path}: warm sweep never hit the store")

with open(cold_path) as f:
    cold = json.load(f)
if warm["cells"] != cold["cells"]:
    fail(f"{warm_path}: warm cells differ from cold run")

if not failed:
    print(f"ok: warm sweep did no new work "
          f"({store.get('hit', 0)} store hits, 0 compiles, "
          f"0 captures)")
sys.exit(1 if failed else 0)
EOF
