#!/usr/bin/env bash
# Differential-fuzz smoke stage: run the standalone fuzzer over a
# block of seeds, comparing all three models plus ablation flips per
# seed with the post-pass IR verifier on, and fail on any divergence,
# verifier error, or trap. Reproducers for failing seeds land in
# fuzz-reproducers/. Usage: scripts/fuzz.sh [--seeds N] [fuzz_main
# flags...]; defaults to 200 seeds. Assumes scripts/tier1.sh (or any
# build into build/) already ran.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZ_BIN=build/src/fuzz/fuzz_main
if [ ! -x "$FUZZ_BIN" ]; then
    echo "error: $FUZZ_BIN not built (run scripts/tier1.sh first)" >&2
    exit 1
fi

have_seeds=0
for arg in "$@"; do
    if [ "$arg" = "--seeds" ]; then
        have_seeds=1
    fi
done
if [ "$have_seeds" -eq 0 ]; then
    set -- --seeds 200 "$@"
fi

exec "$FUZZ_BIN" "$@"
