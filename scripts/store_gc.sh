#!/usr/bin/env bash
# Size-capped LRU sweep of a persistent artifact store
# (src/store/store.hh). Artifact mtimes are bumped on every load hit,
# so oldest-mtime-first eviction is least-recently-used. Also purges
# the quarantine directory (corrupt artifacts already replaced by
# recompute) and stale temp files from writers that died mid-publish.
#
# Usage: scripts/store_gc.sh [store-dir]
#   store-dir defaults to $PREDILP_STORE, then bench-out/store.
#   PREDILP_STORE_MAX_BYTES caps the objects/ payload (default 256
#   MiB).
set -euo pipefail
cd "$(dirname "$0")/.."

STORE_DIR="${1:-${PREDILP_STORE:-bench-out/store}}"
MAX_BYTES="${PREDILP_STORE_MAX_BYTES:-268435456}"

if [ ! -d "${STORE_DIR}" ]; then
    echo "store-gc: ${STORE_DIR} does not exist; nothing to do"
    exit 0
fi

# Hold the store's advisory lock (the same ${STORE_DIR}/.lock that
# StoreLock in src/store/store.cc flocks around publish, quarantine,
# and repair) for the whole sweep, so GC never deletes an artifact a
# live writer is mid-publishing or mid-repairing.
exec 9>"${STORE_DIR}/.lock"
if ! flock -w 300 9; then
    echo "store-gc: could not acquire ${STORE_DIR}/.lock in 300s" >&2
    exit 1
fi

# Quarantined artifacts have already been repaired by recompute;
# keeping them only burns cache space.
if [ -d "${STORE_DIR}/quarantine" ]; then
    quarantined=$(find "${STORE_DIR}/quarantine" -type f | wc -l)
    rm -rf "${STORE_DIR}/quarantine"
    echo "store-gc: purged ${quarantined} quarantined artifact(s)"
fi

# Temp files older than an hour belong to writers that died between
# staging and rename; live writers publish within seconds.
stale=$(find "${STORE_DIR}" -name '*.tmp.*' -mmin +60 -type f | wc -l)
if [ "${stale}" -gt 0 ]; then
    find "${STORE_DIR}" -name '*.tmp.*' -mmin +60 -type f -delete
    echo "store-gc: removed ${stale} stale temp file(s)"
fi

objects="${STORE_DIR}/objects"
if [ ! -d "${objects}" ]; then
    echo "store-gc: no objects directory; done"
    exit 0
fi

# Orphan provenance sidecars (artifact gone — a writer died between
# sidecar publish and artifact rename, or a prior GC ran before this
# sweep existed) are never served; reclaim them.
orphans=0
while IFS= read -r prov; do
    trc="${prov%.prov.json}"
    if [ ! -f "${trc}" ]; then
        rm -f "${prov}"
        orphans=$((orphans + 1))
    fi
done < <(find "${objects}" -name '*.prov.json' -type f)
if [ "${orphans}" -gt 0 ]; then
    echo "store-gc: removed ${orphans} orphan sidecar(s)"
fi

total=$(find "${objects}" -name '*.trc' -type f -printf '%s\n' |
    awk '{s+=$1} END {print s+0}')
echo "store-gc: ${total} bytes in store (cap ${MAX_BYTES})"
if [ "${total}" -le "${MAX_BYTES}" ]; then
    exit 0
fi

# Evict oldest-mtime first until the store fits under the cap.
evicted=0
while IFS= read -r line; do
    size="${line%% *}"
    rest="${line#* }"
    path="${rest#* }"
    if [ "${total}" -le "${MAX_BYTES}" ]; then
        break
    fi
    # The provenance sidecar travels with its artifact: leaving it
    # behind would strand an orphan the next sweep has to clean up.
    rm -f "${path}" "${path}.prov.json"
    total=$((total - size))
    evicted=$((evicted + 1))
done < <(find "${objects}" -name '*.trc' -type f \
    -printf '%s %T@ %p\n' | sort -k2,2n)

find "${objects}" -mindepth 1 -type d -empty -delete
echo "store-gc: evicted ${evicted} artifact(s), ${total} bytes remain"
