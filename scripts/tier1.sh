#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
# The project itself compiles with -Wall -Wextra -Werror (top-level
# CMakeLists.txt), so a clean build here is also a clean-warnings run.
# Usage: scripts/tier1.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
