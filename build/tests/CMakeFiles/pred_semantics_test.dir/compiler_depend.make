# Empty compiler generated dependencies file for pred_semantics_test.
# This may be replaced when dependencies are built.
