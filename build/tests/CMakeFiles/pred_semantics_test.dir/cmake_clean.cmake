file(REMOVE_RECURSE
  "CMakeFiles/pred_semantics_test.dir/ir/pred_semantics_test.cc.o"
  "CMakeFiles/pred_semantics_test.dir/ir/pred_semantics_test.cc.o.d"
  "pred_semantics_test"
  "pred_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pred_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
