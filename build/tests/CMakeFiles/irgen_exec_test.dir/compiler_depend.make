# Empty compiler generated dependencies file for irgen_exec_test.
# This may be replaced when dependencies are built.
