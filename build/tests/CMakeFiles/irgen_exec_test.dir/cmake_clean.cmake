file(REMOVE_RECURSE
  "CMakeFiles/irgen_exec_test.dir/frontend/irgen_exec_test.cc.o"
  "CMakeFiles/irgen_exec_test.dir/frontend/irgen_exec_test.cc.o.d"
  "irgen_exec_test"
  "irgen_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irgen_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
