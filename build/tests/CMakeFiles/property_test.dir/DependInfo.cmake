
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/property_test.cc" "tests/CMakeFiles/property_test.dir/integration/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/integration/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/predilp_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/predilp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predilp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/predilp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/partial/CMakeFiles/predilp_partial.dir/DependInfo.cmake"
  "/root/repo/build/src/hyperblock/CMakeFiles/predilp_hyperblock.dir/DependInfo.cmake"
  "/root/repo/build/src/superblock/CMakeFiles/predilp_superblock.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/predilp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/predilp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/predilp_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/predilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/predilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/predilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
