# Empty dependencies file for string_utils_test.
# This may be replaced when dependencies are built.
