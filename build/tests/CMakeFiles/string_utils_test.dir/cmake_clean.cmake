file(REMOVE_RECURSE
  "CMakeFiles/string_utils_test.dir/support/string_utils_test.cc.o"
  "CMakeFiles/string_utils_test.dir/support/string_utils_test.cc.o.d"
  "string_utils_test"
  "string_utils_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
