file(REMOVE_RECURSE
  "CMakeFiles/hyperblock_test.dir/hyperblock/hyperblock_test.cc.o"
  "CMakeFiles/hyperblock_test.dir/hyperblock/hyperblock_test.cc.o.d"
  "hyperblock_test"
  "hyperblock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
