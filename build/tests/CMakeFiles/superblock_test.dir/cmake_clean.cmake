file(REMOVE_RECURSE
  "CMakeFiles/superblock_test.dir/superblock/superblock_test.cc.o"
  "CMakeFiles/superblock_test.dir/superblock/superblock_test.cc.o.d"
  "superblock_test"
  "superblock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
