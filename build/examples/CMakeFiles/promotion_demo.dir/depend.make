# Empty dependencies file for promotion_demo.
# This may be replaced when dependencies are built.
