file(REMOVE_RECURSE
  "CMakeFiles/promotion_demo.dir/promotion_demo.cpp.o"
  "CMakeFiles/promotion_demo.dir/promotion_demo.cpp.o.d"
  "promotion_demo"
  "promotion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
