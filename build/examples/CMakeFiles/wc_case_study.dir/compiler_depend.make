# Empty compiler generated dependencies file for wc_case_study.
# This may be replaced when dependencies are built.
