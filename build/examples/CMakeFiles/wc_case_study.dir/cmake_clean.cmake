file(REMOVE_RECURSE
  "CMakeFiles/wc_case_study.dir/wc_case_study.cpp.o"
  "CMakeFiles/wc_case_study.dir/wc_case_study.cpp.o.d"
  "wc_case_study"
  "wc_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
