# Empty dependencies file for grep_case_study.
# This may be replaced when dependencies are built.
