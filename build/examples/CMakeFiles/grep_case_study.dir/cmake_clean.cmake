file(REMOVE_RECURSE
  "CMakeFiles/grep_case_study.dir/grep_case_study.cpp.o"
  "CMakeFiles/grep_case_study.dir/grep_case_study.cpp.o.d"
  "grep_case_study"
  "grep_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grep_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
