file(REMOVE_RECURSE
  "libpredilp_analysis.a"
)
