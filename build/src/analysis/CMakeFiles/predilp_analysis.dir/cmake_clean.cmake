file(REMOVE_RECURSE
  "CMakeFiles/predilp_analysis.dir/cfg.cc.o"
  "CMakeFiles/predilp_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/predilp_analysis.dir/dominators.cc.o"
  "CMakeFiles/predilp_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/predilp_analysis.dir/liveness.cc.o"
  "CMakeFiles/predilp_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/predilp_analysis.dir/loops.cc.o"
  "CMakeFiles/predilp_analysis.dir/loops.cc.o.d"
  "CMakeFiles/predilp_analysis.dir/profile.cc.o"
  "CMakeFiles/predilp_analysis.dir/profile.cc.o.d"
  "libpredilp_analysis.a"
  "libpredilp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
