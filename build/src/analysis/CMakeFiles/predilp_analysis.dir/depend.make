# Empty dependencies file for predilp_analysis.
# This may be replaced when dependencies are built.
