# Empty compiler generated dependencies file for predilp_driver.
# This may be replaced when dependencies are built.
