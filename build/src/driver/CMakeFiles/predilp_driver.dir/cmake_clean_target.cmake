file(REMOVE_RECURSE
  "libpredilp_driver.a"
)
