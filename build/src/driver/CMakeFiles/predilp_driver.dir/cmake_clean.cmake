file(REMOVE_RECURSE
  "CMakeFiles/predilp_driver.dir/pipeline.cc.o"
  "CMakeFiles/predilp_driver.dir/pipeline.cc.o.d"
  "CMakeFiles/predilp_driver.dir/report.cc.o"
  "CMakeFiles/predilp_driver.dir/report.cc.o.d"
  "libpredilp_driver.a"
  "libpredilp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
