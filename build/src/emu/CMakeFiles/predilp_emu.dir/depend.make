# Empty dependencies file for predilp_emu.
# This may be replaced when dependencies are built.
