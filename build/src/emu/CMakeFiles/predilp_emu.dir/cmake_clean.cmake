file(REMOVE_RECURSE
  "CMakeFiles/predilp_emu.dir/context.cc.o"
  "CMakeFiles/predilp_emu.dir/context.cc.o.d"
  "CMakeFiles/predilp_emu.dir/emulator.cc.o"
  "CMakeFiles/predilp_emu.dir/emulator.cc.o.d"
  "libpredilp_emu.a"
  "libpredilp_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
