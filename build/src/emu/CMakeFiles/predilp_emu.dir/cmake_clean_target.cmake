file(REMOVE_RECURSE
  "libpredilp_emu.a"
)
