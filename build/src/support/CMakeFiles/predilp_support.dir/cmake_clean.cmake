file(REMOVE_RECURSE
  "CMakeFiles/predilp_support.dir/bit_vector.cc.o"
  "CMakeFiles/predilp_support.dir/bit_vector.cc.o.d"
  "CMakeFiles/predilp_support.dir/logging.cc.o"
  "CMakeFiles/predilp_support.dir/logging.cc.o.d"
  "CMakeFiles/predilp_support.dir/stats.cc.o"
  "CMakeFiles/predilp_support.dir/stats.cc.o.d"
  "CMakeFiles/predilp_support.dir/string_utils.cc.o"
  "CMakeFiles/predilp_support.dir/string_utils.cc.o.d"
  "libpredilp_support.a"
  "libpredilp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
