file(REMOVE_RECURSE
  "libpredilp_support.a"
)
