# Empty compiler generated dependencies file for predilp_support.
# This may be replaced when dependencies are built.
