file(REMOVE_RECURSE
  "CMakeFiles/predilp_frontend.dir/irgen.cc.o"
  "CMakeFiles/predilp_frontend.dir/irgen.cc.o.d"
  "CMakeFiles/predilp_frontend.dir/lexer.cc.o"
  "CMakeFiles/predilp_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/predilp_frontend.dir/parser.cc.o"
  "CMakeFiles/predilp_frontend.dir/parser.cc.o.d"
  "libpredilp_frontend.a"
  "libpredilp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
