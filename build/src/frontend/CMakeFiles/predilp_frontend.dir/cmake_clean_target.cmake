file(REMOVE_RECURSE
  "libpredilp_frontend.a"
)
