# Empty dependencies file for predilp_frontend.
# This may be replaced when dependencies are built.
