file(REMOVE_RECURSE
  "libpredilp_workloads.a"
)
