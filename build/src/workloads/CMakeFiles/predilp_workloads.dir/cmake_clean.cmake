file(REMOVE_RECURSE
  "CMakeFiles/predilp_workloads.dir/inputs.cc.o"
  "CMakeFiles/predilp_workloads.dir/inputs.cc.o.d"
  "CMakeFiles/predilp_workloads.dir/workloads.cc.o"
  "CMakeFiles/predilp_workloads.dir/workloads.cc.o.d"
  "libpredilp_workloads.a"
  "libpredilp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
