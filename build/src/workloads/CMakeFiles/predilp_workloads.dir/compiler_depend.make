# Empty compiler generated dependencies file for predilp_workloads.
# This may be replaced when dependencies are built.
