file(REMOVE_RECURSE
  "CMakeFiles/predilp_ir.dir/block.cc.o"
  "CMakeFiles/predilp_ir.dir/block.cc.o.d"
  "CMakeFiles/predilp_ir.dir/builder.cc.o"
  "CMakeFiles/predilp_ir.dir/builder.cc.o.d"
  "CMakeFiles/predilp_ir.dir/function.cc.o"
  "CMakeFiles/predilp_ir.dir/function.cc.o.d"
  "CMakeFiles/predilp_ir.dir/instr.cc.o"
  "CMakeFiles/predilp_ir.dir/instr.cc.o.d"
  "CMakeFiles/predilp_ir.dir/opcode.cc.o"
  "CMakeFiles/predilp_ir.dir/opcode.cc.o.d"
  "CMakeFiles/predilp_ir.dir/operand.cc.o"
  "CMakeFiles/predilp_ir.dir/operand.cc.o.d"
  "CMakeFiles/predilp_ir.dir/pred.cc.o"
  "CMakeFiles/predilp_ir.dir/pred.cc.o.d"
  "CMakeFiles/predilp_ir.dir/printer.cc.o"
  "CMakeFiles/predilp_ir.dir/printer.cc.o.d"
  "CMakeFiles/predilp_ir.dir/program.cc.o"
  "CMakeFiles/predilp_ir.dir/program.cc.o.d"
  "CMakeFiles/predilp_ir.dir/reg.cc.o"
  "CMakeFiles/predilp_ir.dir/reg.cc.o.d"
  "CMakeFiles/predilp_ir.dir/verifier.cc.o"
  "CMakeFiles/predilp_ir.dir/verifier.cc.o.d"
  "libpredilp_ir.a"
  "libpredilp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
