# Empty compiler generated dependencies file for predilp_ir.
# This may be replaced when dependencies are built.
