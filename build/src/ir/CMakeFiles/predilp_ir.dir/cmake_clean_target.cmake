file(REMOVE_RECURSE
  "libpredilp_ir.a"
)
