
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/block.cc" "src/ir/CMakeFiles/predilp_ir.dir/block.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/block.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/predilp_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/ir/CMakeFiles/predilp_ir.dir/function.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/function.cc.o.d"
  "/root/repo/src/ir/instr.cc" "src/ir/CMakeFiles/predilp_ir.dir/instr.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/instr.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/ir/CMakeFiles/predilp_ir.dir/opcode.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/opcode.cc.o.d"
  "/root/repo/src/ir/operand.cc" "src/ir/CMakeFiles/predilp_ir.dir/operand.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/operand.cc.o.d"
  "/root/repo/src/ir/pred.cc" "src/ir/CMakeFiles/predilp_ir.dir/pred.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/pred.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/predilp_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/predilp_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/program.cc.o.d"
  "/root/repo/src/ir/reg.cc" "src/ir/CMakeFiles/predilp_ir.dir/reg.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/reg.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/predilp_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/predilp_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/predilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
