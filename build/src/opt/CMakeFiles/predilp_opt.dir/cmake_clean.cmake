file(REMOVE_RECURSE
  "CMakeFiles/predilp_opt.dir/coalesce.cc.o"
  "CMakeFiles/predilp_opt.dir/coalesce.cc.o.d"
  "CMakeFiles/predilp_opt.dir/constfold.cc.o"
  "CMakeFiles/predilp_opt.dir/constfold.cc.o.d"
  "CMakeFiles/predilp_opt.dir/copyprop.cc.o"
  "CMakeFiles/predilp_opt.dir/copyprop.cc.o.d"
  "CMakeFiles/predilp_opt.dir/cse.cc.o"
  "CMakeFiles/predilp_opt.dir/cse.cc.o.d"
  "CMakeFiles/predilp_opt.dir/dce.cc.o"
  "CMakeFiles/predilp_opt.dir/dce.cc.o.d"
  "CMakeFiles/predilp_opt.dir/inline.cc.o"
  "CMakeFiles/predilp_opt.dir/inline.cc.o.d"
  "CMakeFiles/predilp_opt.dir/layout.cc.o"
  "CMakeFiles/predilp_opt.dir/layout.cc.o.d"
  "CMakeFiles/predilp_opt.dir/licm.cc.o"
  "CMakeFiles/predilp_opt.dir/licm.cc.o.d"
  "CMakeFiles/predilp_opt.dir/memforward.cc.o"
  "CMakeFiles/predilp_opt.dir/memforward.cc.o.d"
  "CMakeFiles/predilp_opt.dir/simplify_cfg.cc.o"
  "CMakeFiles/predilp_opt.dir/simplify_cfg.cc.o.d"
  "CMakeFiles/predilp_opt.dir/unroll.cc.o"
  "CMakeFiles/predilp_opt.dir/unroll.cc.o.d"
  "libpredilp_opt.a"
  "libpredilp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
