# Empty dependencies file for predilp_opt.
# This may be replaced when dependencies are built.
