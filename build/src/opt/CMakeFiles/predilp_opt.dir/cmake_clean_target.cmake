file(REMOVE_RECURSE
  "libpredilp_opt.a"
)
