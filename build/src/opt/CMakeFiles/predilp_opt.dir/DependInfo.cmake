
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/coalesce.cc" "src/opt/CMakeFiles/predilp_opt.dir/coalesce.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/coalesce.cc.o.d"
  "/root/repo/src/opt/constfold.cc" "src/opt/CMakeFiles/predilp_opt.dir/constfold.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/constfold.cc.o.d"
  "/root/repo/src/opt/copyprop.cc" "src/opt/CMakeFiles/predilp_opt.dir/copyprop.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/copyprop.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/opt/CMakeFiles/predilp_opt.dir/cse.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/opt/CMakeFiles/predilp_opt.dir/dce.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/dce.cc.o.d"
  "/root/repo/src/opt/inline.cc" "src/opt/CMakeFiles/predilp_opt.dir/inline.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/inline.cc.o.d"
  "/root/repo/src/opt/layout.cc" "src/opt/CMakeFiles/predilp_opt.dir/layout.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/layout.cc.o.d"
  "/root/repo/src/opt/licm.cc" "src/opt/CMakeFiles/predilp_opt.dir/licm.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/licm.cc.o.d"
  "/root/repo/src/opt/memforward.cc" "src/opt/CMakeFiles/predilp_opt.dir/memforward.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/memforward.cc.o.d"
  "/root/repo/src/opt/simplify_cfg.cc" "src/opt/CMakeFiles/predilp_opt.dir/simplify_cfg.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/simplify_cfg.cc.o.d"
  "/root/repo/src/opt/unroll.cc" "src/opt/CMakeFiles/predilp_opt.dir/unroll.cc.o" "gcc" "src/opt/CMakeFiles/predilp_opt.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/predilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/predilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/predilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
