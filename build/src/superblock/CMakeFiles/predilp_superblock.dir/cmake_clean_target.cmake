file(REMOVE_RECURSE
  "libpredilp_superblock.a"
)
