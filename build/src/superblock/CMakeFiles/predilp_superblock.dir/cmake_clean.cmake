file(REMOVE_RECURSE
  "CMakeFiles/predilp_superblock.dir/superblock.cc.o"
  "CMakeFiles/predilp_superblock.dir/superblock.cc.o.d"
  "libpredilp_superblock.a"
  "libpredilp_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
