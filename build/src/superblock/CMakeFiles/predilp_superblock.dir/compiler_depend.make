# Empty compiler generated dependencies file for predilp_superblock.
# This may be replaced when dependencies are built.
