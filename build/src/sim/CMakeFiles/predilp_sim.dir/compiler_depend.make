# Empty compiler generated dependencies file for predilp_sim.
# This may be replaced when dependencies are built.
