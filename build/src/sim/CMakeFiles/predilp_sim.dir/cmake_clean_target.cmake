file(REMOVE_RECURSE
  "libpredilp_sim.a"
)
