file(REMOVE_RECURSE
  "CMakeFiles/predilp_sim.dir/cache.cc.o"
  "CMakeFiles/predilp_sim.dir/cache.cc.o.d"
  "CMakeFiles/predilp_sim.dir/timing.cc.o"
  "CMakeFiles/predilp_sim.dir/timing.cc.o.d"
  "libpredilp_sim.a"
  "libpredilp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
