# Empty compiler generated dependencies file for predilp_partial.
# This may be replaced when dependencies are built.
