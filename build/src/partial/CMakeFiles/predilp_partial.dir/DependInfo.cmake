
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partial/lowering.cc" "src/partial/CMakeFiles/predilp_partial.dir/lowering.cc.o" "gcc" "src/partial/CMakeFiles/predilp_partial.dir/lowering.cc.o.d"
  "/root/repo/src/partial/or_tree.cc" "src/partial/CMakeFiles/predilp_partial.dir/or_tree.cc.o" "gcc" "src/partial/CMakeFiles/predilp_partial.dir/or_tree.cc.o.d"
  "/root/repo/src/partial/select_opt.cc" "src/partial/CMakeFiles/predilp_partial.dir/select_opt.cc.o" "gcc" "src/partial/CMakeFiles/predilp_partial.dir/select_opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/predilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/predilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/predilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
