file(REMOVE_RECURSE
  "libpredilp_partial.a"
)
