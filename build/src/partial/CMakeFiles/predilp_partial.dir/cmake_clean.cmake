file(REMOVE_RECURSE
  "CMakeFiles/predilp_partial.dir/lowering.cc.o"
  "CMakeFiles/predilp_partial.dir/lowering.cc.o.d"
  "CMakeFiles/predilp_partial.dir/or_tree.cc.o"
  "CMakeFiles/predilp_partial.dir/or_tree.cc.o.d"
  "CMakeFiles/predilp_partial.dir/select_opt.cc.o"
  "CMakeFiles/predilp_partial.dir/select_opt.cc.o.d"
  "libpredilp_partial.a"
  "libpredilp_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
