file(REMOVE_RECURSE
  "CMakeFiles/predilp_sched.dir/depgraph.cc.o"
  "CMakeFiles/predilp_sched.dir/depgraph.cc.o.d"
  "CMakeFiles/predilp_sched.dir/machine.cc.o"
  "CMakeFiles/predilp_sched.dir/machine.cc.o.d"
  "CMakeFiles/predilp_sched.dir/scheduler.cc.o"
  "CMakeFiles/predilp_sched.dir/scheduler.cc.o.d"
  "libpredilp_sched.a"
  "libpredilp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
