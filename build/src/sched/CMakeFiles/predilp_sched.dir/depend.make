# Empty dependencies file for predilp_sched.
# This may be replaced when dependencies are built.
