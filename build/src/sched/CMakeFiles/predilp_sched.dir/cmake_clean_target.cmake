file(REMOVE_RECURSE
  "libpredilp_sched.a"
)
