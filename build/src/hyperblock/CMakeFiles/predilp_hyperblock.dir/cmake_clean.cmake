file(REMOVE_RECURSE
  "CMakeFiles/predilp_hyperblock.dir/branch_combine.cc.o"
  "CMakeFiles/predilp_hyperblock.dir/branch_combine.cc.o.d"
  "CMakeFiles/predilp_hyperblock.dir/formation.cc.o"
  "CMakeFiles/predilp_hyperblock.dir/formation.cc.o.d"
  "CMakeFiles/predilp_hyperblock.dir/height_reduce.cc.o"
  "CMakeFiles/predilp_hyperblock.dir/height_reduce.cc.o.d"
  "CMakeFiles/predilp_hyperblock.dir/promotion.cc.o"
  "CMakeFiles/predilp_hyperblock.dir/promotion.cc.o.d"
  "libpredilp_hyperblock.a"
  "libpredilp_hyperblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predilp_hyperblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
