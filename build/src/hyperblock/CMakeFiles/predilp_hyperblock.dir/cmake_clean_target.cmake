file(REMOVE_RECURSE
  "libpredilp_hyperblock.a"
)
