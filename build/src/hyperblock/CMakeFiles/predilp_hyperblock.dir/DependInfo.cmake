
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyperblock/branch_combine.cc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/branch_combine.cc.o" "gcc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/branch_combine.cc.o.d"
  "/root/repo/src/hyperblock/formation.cc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/formation.cc.o" "gcc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/formation.cc.o.d"
  "/root/repo/src/hyperblock/height_reduce.cc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/height_reduce.cc.o" "gcc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/height_reduce.cc.o.d"
  "/root/repo/src/hyperblock/promotion.cc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/promotion.cc.o" "gcc" "src/hyperblock/CMakeFiles/predilp_hyperblock.dir/promotion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/predilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/predilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/superblock/CMakeFiles/predilp_superblock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/predilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
