# Empty dependencies file for predilp_hyperblock.
# This may be replaced when dependencies are built.
