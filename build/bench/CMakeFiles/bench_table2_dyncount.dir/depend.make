# Empty dependencies file for bench_table2_dyncount.
# This may be replaced when dependencies are built.
