file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dyncount.dir/bench_table2_dyncount.cc.o"
  "CMakeFiles/bench_table2_dyncount.dir/bench_table2_dyncount.cc.o.d"
  "bench_table2_dyncount"
  "bench_table2_dyncount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dyncount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
