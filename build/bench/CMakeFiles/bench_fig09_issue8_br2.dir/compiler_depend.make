# Empty compiler generated dependencies file for bench_fig09_issue8_br2.
# This may be replaced when dependencies are built.
