file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_issue8_br2.dir/bench_fig09_issue8_br2.cc.o"
  "CMakeFiles/bench_fig09_issue8_br2.dir/bench_fig09_issue8_br2.cc.o.d"
  "bench_fig09_issue8_br2"
  "bench_fig09_issue8_br2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_issue8_br2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
