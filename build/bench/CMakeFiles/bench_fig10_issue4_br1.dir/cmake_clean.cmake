file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_issue4_br1.dir/bench_fig10_issue4_br1.cc.o"
  "CMakeFiles/bench_fig10_issue4_br1.dir/bench_fig10_issue4_br1.cc.o.d"
  "bench_fig10_issue4_br1"
  "bench_fig10_issue4_br1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_issue4_br1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
