# Empty compiler generated dependencies file for bench_fig10_issue4_br1.
# This may be replaced when dependencies are built.
