file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_realcache.dir/bench_fig11_realcache.cc.o"
  "CMakeFiles/bench_fig11_realcache.dir/bench_fig11_realcache.cc.o.d"
  "bench_fig11_realcache"
  "bench_fig11_realcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_realcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
