# Empty dependencies file for bench_fig11_realcache.
# This may be replaced when dependencies are built.
