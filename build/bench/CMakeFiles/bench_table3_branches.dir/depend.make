# Empty dependencies file for bench_table3_branches.
# This may be replaced when dependencies are built.
