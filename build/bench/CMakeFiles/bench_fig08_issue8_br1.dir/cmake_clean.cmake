file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_issue8_br1.dir/bench_fig08_issue8_br1.cc.o"
  "CMakeFiles/bench_fig08_issue8_br1.dir/bench_fig08_issue8_br1.cc.o.d"
  "bench_fig08_issue8_br1"
  "bench_fig08_issue8_br1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_issue8_br1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
