# Empty compiler generated dependencies file for bench_fig08_issue8_br1.
# This may be replaced when dependencies are built.
