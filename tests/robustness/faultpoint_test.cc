/**
 * @file
 * Fault-point registry tests: the PREDILP_FAULTS spec grammar
 * (valid and invalid entries), trigger semantics (once / nth:K /
 * deterministic prob), action behaviour (throw, delay, short-write
 * cooperation and escalation, crash via fork), counter export, the
 * fork-shared fire state that makes "once" once per process tree,
 * and the unarmed fast path.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>

#include "support/faultpoint.hh"

namespace predilp
{
namespace
{

using faultpoints::FaultAction;

/** Every test starts and ends disarmed. */
class FaultPoint : public ::testing::Test
{
  protected:
    void SetUp() override { faultpoints::resetForTest(); }
    void TearDown() override { faultpoints::resetForTest(); }
};

TEST_F(FaultPoint, UnarmedPollIsNoneAndCheap)
{
    EXPECT_FALSE(faultpoints::armed());
    EXPECT_EQ(faultpoints::poll("store.publish.rename"),
              FaultAction::None);
    EXPECT_NO_THROW(FAULT_POINT("eval.compile"));
}

TEST_F(FaultPoint, BadSpecsFailLoudly)
{
    EXPECT_THROW(faultpoints::armFromSpec("no-equals"), FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("=once"), FatalError);
    // Typos in point names must not silently never fire.
    EXPECT_THROW(faultpoints::armFromSpec("store.publish.renam=once"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=sometimes"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=nth"), FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=nth:0"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=prob:1.5"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=prob:0.5@zz"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=once:explode"),
                 FatalError);
    EXPECT_THROW(faultpoints::armFromSpec("test.x=once:throw:extra"),
                 FatalError);
    // A failed arm leaves nothing armed.
    EXPECT_FALSE(faultpoints::armed());
}

TEST_F(FaultPoint, EveryKnownPointParses)
{
    for (const std::string &name : faultpoints::knownPoints())
        EXPECT_NO_THROW(faultpoints::armFromSpec(name + "=once"));
}

TEST_F(FaultPoint, OnceFiresExactlyOnce)
{
    faultpoints::armFromSpec("test.once=once");
    EXPECT_TRUE(faultpoints::armed());
    EXPECT_EQ(faultpoints::poll("test.once"), FaultAction::Throw);
    EXPECT_EQ(faultpoints::poll("test.once"), FaultAction::None);
    EXPECT_EQ(faultpoints::poll("test.once"), FaultAction::None);
    // Unarmed points are unaffected.
    EXPECT_EQ(faultpoints::poll("test.other"), FaultAction::None);
}

TEST_F(FaultPoint, TriggerThrowsTypedErrorWithPointName)
{
    faultpoints::armFromSpec("test.t=once");
    try {
        FAULT_POINT("test.t");
        FAIL() << "expected FaultInjectedError";
    } catch (const FaultInjectedError &e) {
        EXPECT_EQ(e.point(), "test.t");
    }
    EXPECT_NO_THROW(FAULT_POINT("test.t"));
}

TEST_F(FaultPoint, NthFiresOnExactlyTheKthHit)
{
    faultpoints::armFromSpec("test.n=nth:3");
    EXPECT_EQ(faultpoints::poll("test.n"), FaultAction::None);
    EXPECT_EQ(faultpoints::poll("test.n"), FaultAction::None);
    EXPECT_EQ(faultpoints::poll("test.n"), FaultAction::Throw);
    EXPECT_EQ(faultpoints::poll("test.n"), FaultAction::None);
}

TEST_F(FaultPoint, ProbIsDeterministicPerSeedAndHit)
{
    auto pattern = [](const std::string &spec) {
        faultpoints::armFromSpec(spec);
        std::string fires;
        for (int i = 0; i < 64; ++i) {
            fires += faultpoints::poll("test.p") == FaultAction::Throw
                         ? '1'
                         : '0';
        }
        return fires;
    };
    const std::string a = pattern("test.p=prob:0.5@42");
    const std::string b = pattern("test.p=prob:0.5@42");
    // Same seed, same hit order: bit-identical fault schedule.
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
    // A different seed gives a different (still deterministic) coin.
    EXPECT_NE(pattern("test.p=prob:0.5@43"), a);
    EXPECT_EQ(pattern("test.p=prob:1"), std::string(64, '1'));
    EXPECT_EQ(pattern("test.p=prob:0"), std::string(64, '0'));
}

TEST_F(FaultPoint, DelaySleepsAndReportsNone)
{
    faultpoints::armFromSpec("test.d=once:delay:50");
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(faultpoints::poll("test.d"), FaultAction::None);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    EXPECT_GE(elapsed.count(), 0.045);
    // Fired: the second hit does not sleep again.
    EXPECT_EQ(faultpoints::poll("test.d"), FaultAction::None);
}

TEST_F(FaultPoint, ShortWriteCooperatesAtPollEscalatesAtTrigger)
{
    faultpoints::armFromSpec("test.w=once:short-write");
    // A cooperative site sees the action and truncates its write...
    EXPECT_EQ(faultpoints::poll("test.w"), FaultAction::ShortWrite);
    // ...a non-cooperative site must not swallow the armed fault.
    faultpoints::armFromSpec("test.w=once:short-write");
    EXPECT_THROW(FAULT_POINT("test.w"), FaultInjectedError);
}

TEST_F(FaultPoint, MultiEntrySpecsSplitOnCommaAndSemicolon)
{
    faultpoints::armFromSpec(
        " test.a=once ; test.b=nth:2 ,\n test.c=prob:0 ");
    EXPECT_EQ(faultpoints::poll("test.a"), FaultAction::Throw);
    EXPECT_EQ(faultpoints::poll("test.b"), FaultAction::None);
    EXPECT_EQ(faultpoints::poll("test.b"), FaultAction::Throw);
    EXPECT_EQ(faultpoints::poll("test.c"), FaultAction::None);
    // Disarm: the empty spec.
    faultpoints::armFromSpec("");
    EXPECT_FALSE(faultpoints::armed());
}

TEST_F(FaultPoint, StatsExportHitsAndFired)
{
    faultpoints::armFromSpec("test.s=nth:2");
    (void)faultpoints::poll("test.s");
    (void)faultpoints::poll("test.s");
    (void)faultpoints::poll("test.s");
    StatsSnapshot s = faultpoints::stats();
    EXPECT_EQ(s.counter("fault.test.s.hits"), 3u);
    EXPECT_EQ(s.counter("fault.test.s.fired"), 1u);
}

TEST_F(FaultPoint, ArmFromEnvLatchesOncePerProcess)
{
    ASSERT_EQ(setenv("PREDILP_FAULTS", "test.env=once", 1), 0);
    EXPECT_TRUE(faultpoints::armFromEnv());
    EXPECT_EQ(faultpoints::poll("test.env"), FaultAction::Throw);
    // Latched: later calls are no-ops even after the env changes.
    ASSERT_EQ(unsetenv("PREDILP_FAULTS"), 0);
    EXPECT_TRUE(faultpoints::armFromEnv());
    faultpoints::resetForTest();
    EXPECT_FALSE(faultpoints::armFromEnv());
}

TEST_F(FaultPoint, FireStateIsSharedAcrossFork)
{
    faultpoints::armFromSpec("test.fork=once");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        _exit(faultpoints::poll("test.fork") == FaultAction::Throw
                  ? 0
                  : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0); // the child fired...
    // ...through the MAP_SHARED slot page, so the parent (and any
    // retried sibling) runs clean afterwards.
    EXPECT_EQ(faultpoints::poll("test.fork"), FaultAction::None);
    StatsSnapshot s = faultpoints::stats();
    EXPECT_EQ(s.counter("fault.test.fork.hits"), 2u);
    EXPECT_EQ(s.counter("fault.test.fork.fired"), 1u);
}

TEST_F(FaultPoint, CrashActionDiesBySigkill)
{
    faultpoints::armFromSpec("test.crash=once:crash");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        (void)faultpoints::poll("test.crash"); // never returns.
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    // The fired latch survived the child's death.
    EXPECT_EQ(faultpoints::poll("test.crash"), FaultAction::None);
}

} // namespace
} // namespace predilp
