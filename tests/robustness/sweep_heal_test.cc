/**
 * @file
 * Self-healing sweep tests: workers that are SIGKILLed mid-publish,
 * tear their result file, throw at startup, or hang against the
 * watchdog are detected, attributed, and retried on fresh workers —
 * and the healed sweep's cells array is byte-identical to a clean
 * run's. Shards that exhaust their attempt budget degrade to
 * attributed per-cell records (or fail the sweep under --no-degrade).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "driver/sweep.hh"
#include "support/diag.hh"
#include "support/faultpoint.hh"

namespace predilp
{
namespace
{

namespace fs = std::filesystem;

class SweepHeal : public ::testing::Test
{
  protected:
    void SetUp() override { faultpoints::resetForTest(); }
    void TearDown() override { faultpoints::resetForTest(); }
};

/** A cheap 2-cell grid: one cell per worker at --workers 2. */
SweepSpec
tinySpec()
{
    return SweepSpec::fromJson(JsonValue::parse(R"({
      "workloads": ["cmp"],
      "axes": {"issue_width": [4, 8]}
    })"));
}

/** The clean (fault-free) merged cells array, computed once. */
const std::string &
cleanCells()
{
    static const std::string cells = [] {
        faultpoints::resetForTest();
        return runSweep(tinySpec(), 2, "").cellsJson;
    }();
    return cells;
}

/**
 * Run the tiny sweep with @p spec armed and expect full
 * convergence: every shard healed by retry, zero degraded cells,
 * and a cells array byte-identical to the clean run's.
 */
void
expectHealedRun(const std::string &spec)
{
    const std::string expected = cleanCells();
    faultpoints::armFromSpec(spec);
    SweepOutcome outcome = runSweep(tinySpec(), 2, "");
    faultpoints::resetForTest();
    EXPECT_GE(outcome.workerRetries, 1) << spec;
    EXPECT_EQ(outcome.degradedCells, 0u) << spec;
    EXPECT_EQ(outcome.cellsJson, expected) << spec;
}

TEST_F(SweepHeal, WorkerKilledMidPublishIsRetried)
{
    // SIGKILL the instant before the result file is written: the
    // brutal death the supervisor must detect and re-deal.
    expectHealedRun("sweep.worker.publish=once:crash");
}

TEST_F(SweepHeal, TornResultFileIsRejectedAndRetried)
{
    // The worker exits 0 but its result file is half-written; merge
    // validation must attribute and retry, not merge garbage.
    expectHealedRun("sweep.worker.publish=once:short-write");
}

TEST_F(SweepHeal, WorkerStartupFailureIsRetried)
{
    expectHealedRun("sweep.worker.start=once");
}

TEST_F(SweepHeal, StorePublishCrashConvergesWithSharedStore)
{
    // Die inside the artifact store's publish window (temp staged,
    // canonical path untouched) with all workers sharing one store:
    // the retried worker recomputes and republishes.
    fs::path dir = fs::path(testing::TempDir()) / "sweep_heal_store";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ASSERT_EQ(setenv("PREDILP_STORE", dir.string().c_str(), 1), 0);
    expectHealedRun("store.publish.rename=once:crash");
    // No corrupt artifact was published: a warm sweep over the
    // healed store does zero emulation (a poisoned artifact would
    // force a quarantine-and-recompute, i.e. captures > 0) and
    // still merges to the clean bytes.
    SweepOutcome warm = runSweep(tinySpec(), 2, "");
    ASSERT_EQ(unsetenv("PREDILP_STORE"), 0);
    EXPECT_EQ(warm.timing.captures, 0u);
    EXPECT_GT(warm.timing.storeHits, 0u);
    EXPECT_EQ(warm.cellsJson, cleanCells());
}

TEST_F(SweepHeal, WatchdogKillsHungWorkerAndRetries)
{
    const std::string expected = cleanCells();
    // One worker sleeps 30s at startup; the watchdog must SIGKILL
    // it and the retry (hit != nth 1) runs clean. 2s is generous
    // for the healthy worker's single cell yet far under the hang.
    faultpoints::armFromSpec("sweep.worker.start=nth:1:delay:30000");
    SweepHealPolicy heal;
    heal.watchdogSec = 2.0;
    SweepOutcome outcome = runSweep(tinySpec(), 2, "", true, heal);
    EXPECT_GE(outcome.workerRetries, 1);
    EXPECT_EQ(outcome.degradedCells, 0u);
    EXPECT_EQ(outcome.cellsJson, expected);
}

TEST_F(SweepHeal, ExhaustedShardDegradesWithAttribution)
{
    const std::string dir =
        (fs::path(testing::TempDir()) / "sweep_heal_degraded")
            .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string report = dir + "/BENCH_sweep.json";

    // Every attempt of every worker fails: the sweep must still
    // finish, with every cell degraded and attributed.
    faultpoints::armFromSpec("sweep.worker.start=prob:1");
    SweepHealPolicy heal;
    heal.maxAttempts = 2;
    heal.backoffSec = 0.01;
    SweepOutcome outcome =
        runSweep(tinySpec(), 2, report, true, heal);
    EXPECT_EQ(outcome.degradedCells, 2u);
    EXPECT_EQ(outcome.workerRetries, 2);

    std::ifstream in(report, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    JsonValue doc = JsonValue::parse(text.str());
    EXPECT_EQ(doc.at("degraded_cells").asInt(), 2);
    EXPECT_EQ(doc.at("worker_retries").asInt(), 2);
    const auto &cells = doc.at("cells").items();
    ASSERT_EQ(cells.size(), 2u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const JsonValue &cell = cells[i];
        EXPECT_EQ(cell.at("index").asInt(),
                  static_cast<std::int64_t>(i));
        EXPECT_TRUE(cell.at("degraded").asBool());
        EXPECT_TRUE(cell.find("benchmarks") == nullptr);
        // Attribution: pid, attempt budget, and shard file.
        const std::string message =
            cell.at("error").at("message").asString();
        EXPECT_NE(message.find("pid "), std::string::npos);
        EXPECT_NE(message.find("attempt 2/2"), std::string::npos);
        EXPECT_NE(message.find("worker_"), std::string::npos);
    }
}

TEST_F(SweepHeal, NoDegradeFailsTheSweepWithAttribution)
{
    faultpoints::armFromSpec("sweep.worker.start=prob:1");
    SweepHealPolicy heal;
    heal.maxAttempts = 1;
    heal.degradeCells = false;
    try {
        runSweep(tinySpec(), 2, "", true, heal);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("failed permanently"),
                  std::string::npos);
        EXPECT_NE(message.find("pid "), std::string::npos);
    }
}

TEST_F(SweepHeal, CleanRunReportsZeroHealActivity)
{
    SweepOutcome outcome = runSweep(tinySpec(), 2, "");
    EXPECT_EQ(outcome.workerRetries, 0);
    EXPECT_EQ(outcome.degradedCells, 0u);
    EXPECT_EQ(outcome.cellsJson, cleanCells());
}

} // namespace
} // namespace predilp
