/**
 * @file
 * Evaluator degradation-ladder tests, driven by injected faults: a
 * threaded-capture trap retries on the interpreter oracle, a failed
 * batch group falls back to sequential recompute, an artifact that
 * fails validation is quarantined and recomputed (including two
 * processes racing on the same corrupted artifact), and every rung
 * reproduces the clean run's results bit-identically. Plus the
 * classifyException taxonomy for non-predilp exceptions.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>

#include "driver/evaluator.hh"
#include "support/diag.hh"
#include "support/faultpoint.hh"

namespace predilp
{
namespace
{

namespace fs = std::filesystem;

class SelfHeal : public ::testing::Test
{
  protected:
    void SetUp() override { faultpoints::resetForTest(); }
    void TearDown() override { faultpoints::resetForTest(); }
};

/** Fresh empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

EvalRequest
cmpRequest()
{
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {"cmp"};
    return request;
}

/** Stable digest of every architectural number in a response. */
std::string
fingerprint(const EvalResponse &response)
{
    std::ostringstream os;
    for (const BenchmarkResult &r : response.results) {
        os << r.name << ':' << r.baseCycles;
        for (const auto &[model, sim] : r.models) {
            os << '|' << modelKey(model) << '=' << sim.cycles << ','
               << sim.dynInstrs << ',' << sim.mispredicts << ','
               << sim.exitValue;
        }
        os << '\n';
    }
    return os.str();
}

EvalPolicy
storePolicy(const std::string &dir)
{
    EvalPolicy policy;
    policy.storeMode = StoreMode::ReadWrite;
    policy.storeDir = dir;
    return policy;
}

/** Flip one payload byte in every published artifact under @p dir. */
void
corruptEveryArtifact(const std::string &dir)
{
    std::size_t corrupted = 0;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (entry.path().extension() != ".trc")
            continue;
        std::fstream f(entry.path(),
                       std::ios::binary | std::ios::in |
                           std::ios::out);
        ASSERT_TRUE(f.good()) << entry.path();
        f.seekg(0, std::ios::end);
        const std::streamoff size = f.tellg();
        ASSERT_GT(size, 0) << entry.path();
        f.seekg(size / 2);
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(size / 2);
        f.write(&byte, 1);
        corrupted += 1;
    }
    ASSERT_GT(corrupted, 0u) << "no artifacts under " << dir;
}

TEST_F(SelfHeal, ThreadedCaptureTrapFallsBackToInterpreter)
{
    if (defaultEmuBackend() != EmuBackend::Threaded)
        GTEST_SKIP() << "interp backend has no fallback rung";
    EvalRequest request = cmpRequest();
    SuiteEvaluator clean(2);
    const std::string expected = fingerprint(clean.evaluate(request));

    faultpoints::armFromSpec("emu.threaded.capture=once");
    SuiteEvaluator healed(2);
    EXPECT_EQ(fingerprint(healed.evaluate(request)), expected);
    BenchTiming timing = healed.timing();
    EXPECT_EQ(timing.backendFallbacks, 1u);
    // The fallback capture ran on the interpreter.
    EXPECT_GT(timing.interpRecords, 0u);
}

TEST_F(SelfHeal, FailedBatchGroupRecomputesSequentially)
{
    EvalRequest a = cmpRequest();
    EvalRequest b = cmpRequest();
    b.sim.machine.issueWidth = 4;
    SuiteEvaluator clean(2);
    const std::string expectedA = fingerprint(clean.evaluate(a));
    const std::string expectedB = fingerprint(clean.evaluate(b));

    faultpoints::armFromSpec("eval.replay.batch=once");
    SuiteEvaluator healed(2);
    std::vector<EvalResponse> responses = healed.evaluateBatch({a, b});
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(fingerprint(responses[0]), expectedA);
    EXPECT_EQ(fingerprint(responses[1]), expectedB);
    EXPECT_GE(healed.timing().batchFallbacks, 1u);
}

TEST_F(SelfHeal, IsolatedCellRecordsInjectedFaultKind)
{
    faultpoints::armFromSpec("eval.compile=once");
    SuiteEvaluator evaluator(2);
    EvalPolicy policy;
    policy.isolateFaults = true;
    evaluator.setPolicy(policy);
    EvalResponse response = evaluator.evaluate(cmpRequest());
    ASSERT_EQ(response.results.size(), 1u);
    std::size_t injected = 0;
    for (const CellError &error : response.results[0].errors) {
        EXPECT_EQ(error.kind, "FaultInjectedError");
        injected += 1;
    }
    EXPECT_EQ(injected, 1u);
}

TEST_F(SelfHeal, ClassifyExceptionTypesForeignExceptions)
{
    EXPECT_EQ(classifyException(
                  std::make_exception_ptr(std::bad_alloc())),
              "ResourceError");
    EXPECT_EQ(classifyException(std::make_exception_ptr(
                  std::length_error("resize"))),
              "ResourceError");
    EXPECT_EQ(classifyException(std::make_exception_ptr(42)),
              "UnknownError");
    EXPECT_EQ(classifyException(nullptr), "UnknownError");
    EXPECT_EQ(classifyException(std::make_exception_ptr(
                  FaultInjectedError("test.x"))),
              "FaultInjectedError");
}

TEST_F(SelfHeal, ValidateFaultQuarantinesAndRecomputes)
{
    const std::string dir = freshDir("selfheal_validate_store");
    EvalRequest request = cmpRequest();

    SuiteEvaluator first(2);
    first.setPolicy(storePolicy(dir));
    const std::string expected = fingerprint(first.evaluate(request));
    ASSERT_GT(first.timing().storeWrites, 0u);

    // Every artifact load in this evaluator's cold pass fails
    // validation once; the store must quarantine and recompute.
    faultpoints::armFromSpec("store.load.validate=nth:1");
    SuiteEvaluator second(2);
    second.setPolicy(storePolicy(dir));
    EXPECT_EQ(fingerprint(second.evaluate(request)), expected);
    BenchTiming timing = second.timing();
    EXPECT_GE(timing.storeRepairs, 1u);
    // The recomputed artifact was republished: a third, disarmed
    // evaluator loads it clean with zero emulation.
    faultpoints::resetForTest();
    SuiteEvaluator third(2);
    third.setPolicy(storePolicy(dir));
    EXPECT_EQ(fingerprint(third.evaluate(request)), expected);
    EXPECT_EQ(third.timing().captures, 0u);
    EXPECT_GT(third.timing().storeHits, 0u);
}

TEST_F(SelfHeal, MmapFaultDegradesToRecompute)
{
    const std::string dir = freshDir("selfheal_mmap_store");
    EvalRequest request = cmpRequest();
    SuiteEvaluator first(2);
    first.setPolicy(storePolicy(dir));
    const std::string expected = fingerprint(first.evaluate(request));

    faultpoints::armFromSpec("store.load.mmap=once");
    SuiteEvaluator second(2);
    second.setPolicy(storePolicy(dir));
    EXPECT_EQ(fingerprint(second.evaluate(request)), expected);
    EXPECT_GE(second.timing().storeRepairs, 1u);
}

TEST_F(SelfHeal, RacingEvaluatorsBothRecoverFromCorruption)
{
    const std::string dir = freshDir("selfheal_race_store");
    EvalRequest request = cmpRequest();

    SuiteEvaluator seed(2);
    seed.setPolicy(storePolicy(dir));
    const std::string expected = fingerprint(seed.evaluate(request));

    // Corrupt every published artifact in place, then race two
    // fresh processes on the poisoned store. Each detects the
    // checksum mismatch, quarantines (under the store lock), and
    // recomputes; neither may serve corrupt bytes or trip over the
    // other's quarantine rename.
    corruptEveryArtifact(dir);

    const std::string outA = dir + "/race_a.txt";
    const std::string outB = dir + "/race_b.txt";
    pid_t pids[2];
    const std::string *outs[2] = {&outA, &outB};
    for (int i = 0; i < 2; ++i) {
        pids[i] = ::fork();
        ASSERT_GE(pids[i], 0);
        if (pids[i] == 0) {
            try {
                SuiteEvaluator racer(2);
                racer.setPolicy(storePolicy(dir));
                std::ofstream out(*outs[i], std::ios::binary);
                out << fingerprint(racer.evaluate(request));
                out.close();
                _exit(out ? 0 : 3);
            } catch (...) {
                _exit(2);
            }
        }
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    for (const std::string *path : outs) {
        std::ifstream in(*path, std::ios::binary);
        ASSERT_TRUE(in.good()) << *path;
        std::ostringstream content;
        content << in.rdbuf();
        EXPECT_EQ(content.str(), expected) << *path;
    }
}

} // namespace
} // namespace predilp
