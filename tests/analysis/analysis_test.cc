/**
 * @file
 * Unit tests for the analysis substrate: CFG queries, dominators,
 * loops, liveness (including the superblock side-exit case), and
 * profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "emu/emulator.hh"
#include "ir/builder.hh"
#include "support/logging.hh"

namespace predilp
{
namespace
{

/** Diamond: entry -> (left | right) -> join -> ret. */
struct Diamond
{
    Program prog;
    Function *fn;
    BasicBlock *entry, *left, *right, *join;
    Reg cond, x;

    Diamond()
    {
        fn = prog.newFunction("f");
        IRBuilder b(fn);
        entry = b.startBlock("entry");
        left = fn->newBlock("left");
        right = fn->newBlock("right");
        join = fn->newBlock("join");
        cond = fn->newIntReg();
        x = fn->newIntReg();

        b.setBlock(entry);
        b.mov(cond, Operand::imm(1));
        b.branch(Opcode::Beq, Operand(cond), Operand::imm(0),
                 right->id());
        b.jump(left->id());
        b.setBlock(left);
        b.mov(x, Operand::imm(1));
        b.jump(join->id());
        b.setBlock(right);
        b.mov(x, Operand::imm(2));
        b.jump(join->id());
        b.setBlock(join);
        b.ret(Operand(x));
    }
};

TEST(Cfg, PredsAndSuccsOfDiamond)
{
    Diamond d;
    CfgInfo cfg(*d.fn);
    EXPECT_EQ(cfg.succs(d.entry->id()).size(), 2u);
    EXPECT_EQ(cfg.preds(d.join->id()).size(), 2u);
    EXPECT_EQ(cfg.preds(d.entry->id()).size(), 0u);
    EXPECT_TRUE(cfg.reachable(d.join->id()));
}

TEST(Cfg, ReversePostorderStartsAtEntry)
{
    Diamond d;
    CfgInfo cfg(*d.fn);
    const auto &rpo = cfg.reversePostorder();
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), d.entry->id());
    EXPECT_EQ(rpo.back(), d.join->id());
    EXPECT_EQ(cfg.rpoIndex(d.entry->id()), 0);
}

TEST(Cfg, RegIndexerRoundTrips)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    for (int i = 0; i < 3; ++i)
        fn->newIntReg();
    for (int i = 0; i < 2; ++i)
        fn->newFloatReg();
    fn->newPredReg();
    RegIndexer indexer(*fn);
    EXPECT_EQ(indexer.size(), 6u);
    for (std::size_t i = 0; i < indexer.size(); ++i)
        EXPECT_EQ(indexer.index(indexer.reg(i)), i);
}

TEST(Cfg, CollectUsesIncludesGuardAndMergeReads)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    Reg p0 = fn->newPredReg();
    Reg p1 = fn->newPredReg();
    Reg a = fn->newIntReg();

    Instruction def(Opcode::PredEq);
    def.addPredDest(p1, PredType::Or);
    def.addSrc(Operand(a));
    def.addSrc(Operand::imm(0));
    def.setGuard(p0);

    std::vector<Reg> uses;
    collectUses(def, uses);
    EXPECT_NE(std::find(uses.begin(), uses.end(), a), uses.end());
    EXPECT_NE(std::find(uses.begin(), uses.end(), p0), uses.end());
    // OR dest is also read (merge semantics).
    EXPECT_NE(std::find(uses.begin(), uses.end(), p1), uses.end());
}

TEST(Cfg, DefIsKillingRules)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    Reg p = fn->newPredReg();
    Reg a = fn->newIntReg();

    Instruction plain(Opcode::Add);
    plain.setDest(a);
    EXPECT_TRUE(defIsKilling(plain));

    Instruction guarded(Opcode::Add);
    guarded.setDest(a);
    guarded.setGuard(p);
    EXPECT_FALSE(defIsKilling(guarded));

    Instruction cmov(Opcode::CMov);
    cmov.setDest(a);
    EXPECT_FALSE(defIsKilling(cmov));

    Instruction uDef(Opcode::PredEq);
    uDef.addPredDest(p, PredType::U);
    EXPECT_TRUE(defIsKilling(uDef));

    Instruction orDef(Opcode::PredEq);
    orDef.addPredDest(p, PredType::Or);
    EXPECT_FALSE(defIsKilling(orDef));
}

TEST(Dominators, DiamondStructure)
{
    Diamond d;
    CfgInfo cfg(*d.fn);
    DominatorTree dom(*d.fn, cfg);
    EXPECT_EQ(dom.idom(d.left->id()), d.entry->id());
    EXPECT_EQ(dom.idom(d.right->id()), d.entry->id());
    EXPECT_EQ(dom.idom(d.join->id()), d.entry->id());
    EXPECT_TRUE(dom.dominates(d.entry->id(), d.join->id()));
    EXPECT_FALSE(dom.dominates(d.left->id(), d.join->id()));
    EXPECT_TRUE(dom.dominates(d.join->id(), d.join->id()));
}

/** while loop: entry -> head <-> body; head -> exit. */
struct LoopCfg
{
    Program prog;
    Function *fn;
    BasicBlock *entry, *head, *body, *exit;
    Reg i;

    LoopCfg()
    {
        fn = prog.newFunction("main");
        fn->setRetKind(RetKind::Int);
        IRBuilder b(fn);
        entry = b.startBlock("entry");
        head = fn->newBlock("head");
        body = fn->newBlock("body");
        exit = fn->newBlock("exit");
        i = fn->newIntReg();

        b.setBlock(entry);
        b.mov(i, Operand::imm(0));
        b.jump(head->id());
        b.setBlock(head);
        b.branch(Opcode::Bge, Operand(i), Operand::imm(10),
                 exit->id());
        b.jump(body->id());
        b.setBlock(body);
        b.emit(Opcode::Add, i, Operand(i), Operand::imm(1));
        b.jump(head->id());
        b.setBlock(exit);
        b.ret(Operand(i));
    }
};

TEST(Loops, DetectsNaturalLoop)
{
    LoopCfg l;
    CfgInfo cfg(*l.fn);
    DominatorTree dom(*l.fn, cfg);
    LoopInfo loops(*l.fn, cfg, dom);
    ASSERT_EQ(loops.loops().size(), 1u);
    const Loop &loop = loops.loops().front();
    EXPECT_EQ(loop.header, l.head->id());
    EXPECT_TRUE(loop.contains(l.body->id()));
    EXPECT_FALSE(loop.contains(l.entry->id()));
    EXPECT_FALSE(loop.contains(l.exit->id()));
    EXPECT_EQ(loops.depth(l.body->id()), 1);
    EXPECT_EQ(loops.depth(l.entry->id()), 0);
}

TEST(Loops, NestedDepths)
{
    // entry -> h1 -> h2 <-> b2 ; h2 -> l1latch -> h1 ; h1 -> exit.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *entry = b.startBlock();
    BasicBlock *h1 = fn->newBlock("h1");
    BasicBlock *h2 = fn->newBlock("h2");
    BasicBlock *b2 = fn->newBlock("b2");
    BasicBlock *latch = fn->newBlock("latch");
    BasicBlock *exit = fn->newBlock("exit");
    Reg i = fn->newIntReg();
    Reg j = fn->newIntReg();

    b.setBlock(entry);
    b.mov(i, Operand::imm(0));
    b.mov(j, Operand::imm(0));
    b.jump(h1->id());
    b.setBlock(h1);
    b.branch(Opcode::Bge, Operand(i), Operand::imm(4), exit->id());
    b.jump(h2->id());
    b.setBlock(h2);
    b.branch(Opcode::Bge, Operand(j), Operand::imm(4),
             latch->id());
    b.jump(b2->id());
    b.setBlock(b2);
    b.emit(Opcode::Add, j, Operand(j), Operand::imm(1));
    b.jump(h2->id());
    b.setBlock(latch);
    b.emit(Opcode::Add, i, Operand(i), Operand::imm(1));
    b.mov(j, Operand::imm(0));
    b.jump(h1->id());
    b.setBlock(exit);
    b.ret();

    CfgInfo cfg(*fn);
    DominatorTree dom(*fn, cfg);
    LoopInfo loops(*fn, cfg, dom);
    ASSERT_EQ(loops.loops().size(), 2u);
    // Innermost first.
    EXPECT_EQ(loops.loops()[0].header, h2->id());
    EXPECT_EQ(loops.loops()[0].depth, 2);
    EXPECT_EQ(loops.loops()[1].header, h1->id());
    EXPECT_EQ(loops.depth(b2->id()), 2);
    EXPECT_EQ(loops.depth(latch->id()), 1);
}

TEST(Liveness, DiamondJoin)
{
    Diamond d;
    CfgInfo cfg(*d.fn);
    Liveness live(*d.fn, cfg);
    // x is live into the join (read by ret) and live out of both
    // arms.
    EXPECT_TRUE(live.liveAtEntry(d.x, d.join->id()));
    EXPECT_TRUE(
        live.liveOut(d.left->id()).test(
            live.indexer().index(d.x)));
    // cond is dead after the entry block's branch.
    EXPECT_FALSE(live.liveAtEntry(d.cond, d.join->id()));
}

TEST(Liveness, SideExitKeepsValueLive)
{
    // Regression for the superblock liveness bug: a value read at a
    // mid-block side exit's target must be live above the exit even
    // if the block later overwrites it.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *main = b.startBlock("main");
    BasicBlock *side = fn->newBlock("side");
    Reg v = fn->newIntReg();
    Reg c = fn->newIntReg();

    b.setBlock(main);
    b.mov(v, Operand::imm(1));                     // [0]
    b.mov(c, Operand::imm(0));                     // [1]
    b.branch(Opcode::Bne, Operand(c), Operand::imm(0),
             side->id());                          // [2] side exit
    b.mov(v, Operand::imm(2));                     // [3] kills v
    b.ret(Operand(v));                             // [4]
    b.setBlock(side);
    b.ret(Operand(v)); // reads v: the *first* mov's value.

    CfgInfo cfg(*fn);
    Liveness live(*fn, cfg);
    // v must be live before the branch (position 2).
    BitVector before = live.liveBefore(*fn, main->id(), 2);
    EXPECT_TRUE(before.test(live.indexer().index(v)));
    // And dead right after the branch from the fallthrough path's
    // perspective? No: position 3 redefines it, so before position
    // 3 it is not live on the fallthrough path, but the query at
    // position 3 no longer includes the side exit.
    BitVector atKill = live.liveBefore(*fn, main->id(), 3);
    EXPECT_FALSE(atKill.test(live.indexer().index(v)));
}

TEST(Liveness, LoopCarriedValue)
{
    LoopCfg l;
    CfgInfo cfg(*l.fn);
    Liveness live(*l.fn, cfg);
    EXPECT_TRUE(live.liveAtEntry(l.i, l.head->id()));
    EXPECT_TRUE(live.liveAtEntry(l.i, l.body->id()));
    EXPECT_TRUE(live.liveAtEntry(l.i, l.exit->id()));
}

TEST(Profile, CountsAndProbability)
{
    LoopCfg l;
    ProgramProfile profile(l.prog);
    Emulator emu(l.prog);
    EmuOptions opts;
    opts.profile = &profile;
    emu.run("", opts);

    const FunctionProfile *fp = profile.find("main");
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->blockCount(l.head->id()), 11u);
    EXPECT_EQ(fp->blockCount(l.body->id()), 10u);
    const Instruction &exitBr = l.head->instrs().front();
    EXPECT_EQ(fp->takenCount(exitBr.id()), 1u);
    double p = fp->takenProbability(*l.fn, l.head->id(),
                                    exitBr.id());
    EXPECT_NEAR(p, 1.0 / 11.0, 1e-9);
}

TEST(Profile, AnnotateCopiesWeights)
{
    LoopCfg l;
    ProgramProfile profile(l.prog);
    Emulator emu(l.prog);
    EmuOptions opts;
    opts.profile = &profile;
    emu.run("", opts);
    profile.annotate(l.prog);
    EXPECT_EQ(l.head->weight(), 11u);
}

} // namespace
} // namespace predilp
