#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "support/logging.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"

namespace predilp
{
namespace
{

/** Helper: single-block main returning the value computed by @p gen. */
template <typename Gen>
RunResult
runMain(Gen &&gen, const std::string &input = "")
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    gen(prog, fn, b);
    EXPECT_EQ(verifyProgram(prog), "");
    Emulator emu(prog);
    return emu.run(input);
}

TEST(Emulator, ArithmeticAndLogic)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg a = fn->newIntReg();
        Reg c = fn->newIntReg();
        b.mov(a, Operand::imm(21));
        b.emit(Opcode::Mul, c, Operand(a), Operand::imm(3));
        b.emit(Opcode::Sub, c, Operand(c), Operand::imm(1));
        b.emit(Opcode::Xor, c, Operand(c), Operand::imm(0xf));
        // 21*3-1 = 62; 62^15 = 49
        b.ret(Operand(c));
    });
    EXPECT_EQ(r.exitValue, 49);
}

TEST(Emulator, AndNotOrNot)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg a = fn->newIntReg();
        Reg c = fn->newIntReg();
        b.mov(a, Operand::imm(0b1100));
        b.emit(Opcode::AndNot, c, Operand(a), Operand::imm(0b1010));
        // 1100 & ~1010 = 0100
        b.emit(Opcode::OrNot, c, Operand(c), Operand::imm(-1));
        // 0100 | ~(-1) = 0100
        b.ret(Operand(c));
    });
    EXPECT_EQ(r.exitValue, 0b0100);
}

TEST(Emulator, ShiftsMaskAmounts)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg a = fn->newIntReg();
        b.mov(a, Operand::imm(-16));
        b.emit(Opcode::Sra, a, Operand(a), Operand::imm(2)); // -4
        b.emit(Opcode::Shl, a, Operand(a), Operand::imm(1)); // -8
        b.ret(Operand(a));
    });
    EXPECT_EQ(r.exitValue, -8);
}

TEST(Emulator, DivByZeroFatalUnlessSpeculative)
{
    EXPECT_THROW(
        runMain([](Program &, Function *fn, IRBuilder &b) {
            Reg a = fn->newIntReg();
            b.emit(Opcode::Div, a, Operand::imm(1), Operand::imm(0));
            b.ret(Operand(a));
        }),
        FatalError);

    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg a = fn->newIntReg();
        auto &div =
            b.emit(Opcode::Div, a, Operand::imm(1), Operand::imm(0));
        div.setSpeculative(true); // silent form returns 0.
        b.ret(Operand(a));
    });
    EXPECT_EQ(r.exitValue, 0);
}

TEST(Emulator, MemoryWordAndByte)
{
    RunResult r = runMain([](Program &prog, Function *fn,
                             IRBuilder &b) {
        std::int64_t addr = prog.allocGlobal("g", 16, 8, false);
        Reg v = fn->newIntReg();
        b.store(Opcode::St, Operand::imm(addr), Operand::imm(0),
                Operand::imm(0x1234));
        b.store(Opcode::StB, Operand::imm(addr), Operand::imm(8),
                Operand::imm(0xff));
        Reg w = fn->newIntReg();
        b.load(Opcode::Ld, w, Operand::imm(addr), Operand::imm(0));
        Reg sb = fn->newIntReg();
        b.load(Opcode::LdB, sb, Operand::imm(addr), Operand::imm(8));
        Reg ub = fn->newIntReg();
        b.load(Opcode::LdBu, ub, Operand::imm(addr),
               Operand::imm(8));
        // 0x1234 + (-1) + 255 = 0x1234 + 254
        b.emit(Opcode::Add, v, Operand(w), Operand(sb));
        b.emit(Opcode::Add, v, Operand(v), Operand(ub));
        b.ret(Operand(v));
    });
    EXPECT_EQ(r.exitValue, 0x1234 + 254);
}

TEST(Emulator, SpeculativeLoadFromBadAddressIsSilent)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg v = fn->newIntReg();
        auto &ld = b.load(Opcode::Ld, v, Operand::imm(-100),
                          Operand::imm(0));
        ld.setSpeculative(true);
        b.ret(Operand(v));
    });
    EXPECT_EQ(r.exitValue, 0);

    EXPECT_THROW(
        runMain([](Program &, Function *fn, IRBuilder &b) {
            Reg v = fn->newIntReg();
            b.load(Opcode::Ld, v, Operand::imm(-100),
                   Operand::imm(0));
            b.ret(Operand(v));
        }),
        FatalError);
}

TEST(Emulator, FloatOpsAndConversions)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg f0 = fn->newFloatReg();
        Reg f1 = fn->newFloatReg();
        Reg i = fn->newIntReg();
        b.fmov(f0, Operand::fimm(1.5));
        b.emit(Opcode::FMul, f1, Operand(f0), Operand::fimm(4.0));
        b.emit(Opcode::FAdd, f1, Operand(f1), Operand::fimm(0.25));
        b.emit(Opcode::CvtFi, i, Operand(f1)); // trunc(6.25) = 6
        b.ret(Operand(i));
    });
    EXPECT_EQ(r.exitValue, 6);
}

TEST(Emulator, GetcPutcStreams)
{
    RunResult r = runMain(
        [](Program &, Function *fn, IRBuilder &b) {
            Reg c = fn->newIntReg();
            b.getc(c);
            b.putc(Operand(c));
            b.getc(c);
            b.putc(Operand(c));
            b.getc(c); // EOF -> -1
            b.ret(Operand(c));
        },
        "hi");
    EXPECT_EQ(r.output, "hi");
    EXPECT_EQ(r.exitValue, -1);
}

TEST(Emulator, GuardedInstructionNullified)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg p = fn->newPredReg();
        Reg a = fn->newIntReg();
        b.mov(a, Operand::imm(10));
        b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                     Operand::imm(1), Operand::imm(2)); // p = false
        b.mov(a, Operand::imm(99)).setGuard(p); // nullified
        b.ret(Operand(a));
    });
    EXPECT_EQ(r.exitValue, 10);
}

TEST(Emulator, PredClearAndSet)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg p0 = fn->newPredReg();
        Reg p1 = fn->newPredReg();
        Reg a = fn->newIntReg();
        b.mov(a, Operand::imm(0));
        b.predAll(Opcode::PredSet);
        b.emit(Opcode::Add, a, Operand(a), Operand::imm(1))
            .setGuard(p0);
        b.predAll(Opcode::PredClear);
        b.emit(Opcode::Add, a, Operand(a), Operand::imm(2))
            .setGuard(p1); // nullified
        b.ret(Operand(a));
    });
    EXPECT_EQ(r.exitValue, 1);
}

TEST(Emulator, PredDefineGuardActsAsPinNotNullify)
{
    // A U-type define with a false Pin still writes 0 (Table 1),
    // which is the behavior Figure 1 of the paper relies on.
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg pin = fn->newPredReg();
        Reg p = fn->newPredReg();
        Reg a = fn->newIntReg();
        b.predAll(Opcode::PredSet); // everything true, incl. p.
        b.predDefine(Opcode::PredEq, PredDest{pin, PredType::U},
                     Operand::imm(0), Operand::imm(1)); // pin=false
        b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                     Operand::imm(3), Operand::imm(3), pin);
        // pin=0 so p must be set to 0 even though cmp is true.
        b.mov(a, Operand::imm(7)).setGuard(p);
        b.mov(a, Operand::imm(1)).setGuard(pin);
        Reg result = fn->newIntReg();
        b.mov(result, Operand::imm(0));
        b.emit(Opcode::Add, result, Operand(result), Operand::imm(5))
            .setGuard(p); // nullified: p == 0.
        b.ret(Operand(result));
    });
    EXPECT_EQ(r.exitValue, 0);
}

TEST(Emulator, CmovSelectSemantics)
{
    RunResult r = runMain([](Program &, Function *fn, IRBuilder &b) {
        Reg cond = fn->newIntReg();
        Reg a = fn->newIntReg();
        Reg s = fn->newIntReg();
        b.mov(cond, Operand::imm(1));
        b.mov(a, Operand::imm(5));
        b.cmov(Opcode::CMov, a, Operand::imm(6), Operand(cond));
        // a = 6 (cond true)
        b.cmov(Opcode::CMovCom, a, Operand::imm(7), Operand(cond));
        // unchanged (cond true, com form)
        b.select(Opcode::Select, s, Operand::imm(100),
                 Operand::imm(200), Operand::imm(0));
        // s = 200
        Reg out = fn->newIntReg();
        b.emit(Opcode::Add, out, Operand(a), Operand(s));
        b.ret(Operand(out));
    });
    EXPECT_EQ(r.exitValue, 206);
}

TEST(Emulator, CallAndReturnValues)
{
    Program prog;
    Function *add3 = prog.newFunction("add3");
    add3->setRetKind(RetKind::Int);
    Reg x = add3->newIntReg();
    Reg y = add3->newIntReg();
    Reg z = add3->newIntReg();
    add3->addParam(x);
    add3->addParam(y);
    add3->addParam(z);
    {
        IRBuilder b(add3);
        b.startBlock();
        Reg s = add3->newIntReg();
        b.emit(Opcode::Add, s, Operand(x), Operand(y));
        b.emit(Opcode::Add, s, Operand(s), Operand(z));
        b.ret(Operand(s));
    }

    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    {
        IRBuilder b(fn);
        b.startBlock();
        Reg out = fn->newIntReg();
        b.call("add3", out,
               {Operand::imm(1), Operand::imm(2), Operand::imm(3)});
        b.ret(Operand(out));
    }
    ASSERT_EQ(verifyProgram(prog), "");
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 6);
}

TEST(Emulator, RecursionWorks)
{
    // fact(10) via recursion.
    Program prog;
    Function *fact = prog.newFunction("fact");
    fact->setRetKind(RetKind::Int);
    Reg n = fact->newIntReg();
    fact->addParam(n);
    {
        IRBuilder b(fact);
        BasicBlock *entry = b.startBlock();
        BasicBlock *base = fact->newBlock();
        BasicBlock *rec = fact->newBlock();
        b.setBlock(entry);
        b.branch(Opcode::Ble, Operand(n), Operand::imm(1),
                 base->id());
        b.jump(rec->id());
        b.setBlock(base);
        b.ret(Operand::imm(1));
        b.setBlock(rec);
        Reg m = fact->newIntReg();
        Reg sub = fact->newIntReg();
        b.emit(Opcode::Sub, sub, Operand(n), Operand::imm(1));
        b.call("fact", m, {Operand(sub)});
        Reg out = fact->newIntReg();
        b.emit(Opcode::Mul, out, Operand(n), Operand(m));
        b.ret(Operand(out));
    }
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    {
        IRBuilder b(fn);
        b.startBlock();
        Reg out = fn->newIntReg();
        b.call("fact", out, {Operand::imm(10)});
        b.ret(Operand(out));
    }
    ASSERT_EQ(verifyProgram(prog), "");
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 3628800);
}

TEST(Emulator, ProfileCountsBlocksAndTakenBranches)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *entry = b.startBlock();
    BasicBlock *loop = fn->newBlock();
    BasicBlock *exit = fn->newBlock();
    Reg i = fn->newIntReg();
    b.setBlock(entry);
    b.mov(i, Operand::imm(0));
    b.jump(loop->id());
    b.setBlock(loop);
    b.emit(Opcode::Add, i, Operand(i), Operand::imm(1));
    // Take the id now: the next append may reallocate the block's
    // instruction vector and invalidate the returned reference.
    const int backId = b.branch(Opcode::Blt, Operand(i), Operand::imm(10),
                                loop->id())
                           .id();
    b.jump(exit->id());
    b.setBlock(exit);
    b.ret(Operand(i));

    ProgramProfile profile(prog);
    EmuOptions opts;
    opts.profile = &profile;
    Emulator emu(prog);
    RunResult r = emu.run("", opts);
    EXPECT_EQ(r.exitValue, 10);

    const FunctionProfile *fp = profile.find("main");
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->blockCount(entry->id()), 1u);
    EXPECT_EQ(fp->blockCount(loop->id()), 10u);
    EXPECT_EQ(fp->blockCount(exit->id()), 1u);
    EXPECT_EQ(fp->takenCount(backId), 9u);
}

TEST(Emulator, TraceSinkSeesNullificationAndAddresses)
{
    struct Sink : TraceSink
    {
        int total = 0;
        int nullified = 0;
        int memOps = 0;
        std::int64_t lastAddr = -1;

        void
        onInstr(const DynRecord &rec) override
        {
            total += 1;
            nullified += rec.nullified ? 1 : 0;
            if (rec.hasMemAddr) {
                memOps += 1;
                lastAddr = rec.memAddr;
            }
        }
    } sink;

    Program prog;
    std::int64_t addr = prog.allocGlobal("g", 8, 8, false);
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg p = fn->newPredReg();
    Reg v = fn->newIntReg();
    b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                 Operand::imm(0), Operand::imm(1)); // p = 0.
    b.mov(v, Operand::imm(1)).setGuard(p);          // nullified.
    b.store(Opcode::St, Operand::imm(addr), Operand::imm(0),
            Operand::imm(5));
    b.ret(Operand::imm(0));

    EmuOptions opts;
    opts.sink = &sink;
    Emulator emu(prog);
    RunResult r = emu.run("", opts);
    EXPECT_EQ(r.dynInstrs, 4u);
    EXPECT_EQ(sink.total, 4);
    EXPECT_EQ(sink.nullified, 1);
    EXPECT_EQ(sink.memOps, 1);
    EXPECT_EQ(sink.lastAddr, addr);
}

TEST(Emulator, FuelLimitAborts)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *loop = b.startBlock();
    b.jump(loop->id()); // infinite loop.
    EmuOptions opts;
    opts.maxDynInstrs = 1000;
    Emulator emu(prog);
    EXPECT_THROW(emu.run("", opts), FatalError);
}

/**
 * Figure 1 of the paper, hand-built: the if-converted code of
 *   if (a == 0 || b == 0) j++; else { if (c != 0) k++; else k--; }
 *   i++;
 * Runs the predicated version against all 8 input combinations and
 * checks the source-level semantics.
 */
class Figure1 : public ::testing::TestWithParam<int>
{
};

TEST_P(Figure1, PredicatedCodeMatchesSource)
{
    int bits = GetParam();
    std::int64_t a = bits & 1;
    std::int64_t bv = (bits >> 1) & 1;
    std::int64_t c = (bits >> 2) & 1;

    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();

    Reg ra = fn->newIntReg();
    Reg rb = fn->newIntReg();
    Reg rc = fn->newIntReg();
    Reg rj = fn->newIntReg();
    Reg rk = fn->newIntReg();
    Reg ri = fn->newIntReg();
    b.mov(ra, Operand::imm(a));
    b.mov(rb, Operand::imm(bv));
    b.mov(rc, Operand::imm(c));
    b.mov(rj, Operand::imm(100));
    b.mov(rk, Operand::imm(200));
    b.mov(ri, Operand::imm(300));

    Reg p1 = fn->newPredReg();
    Reg p2 = fn->newPredReg();
    Reg p3 = fn->newPredReg();
    Reg p4 = fn->newPredReg();
    Reg p5 = fn->newPredReg();

    // Figure 1(c), faithfully:
    b.predAll(Opcode::PredClear);
    b.predDefine2(Opcode::PredEq, PredDest{p1, PredType::Or},
                  PredDest{p2, PredType::UBar}, Operand(ra),
                  Operand::imm(0));
    b.predDefine2(Opcode::PredEq, PredDest{p1, PredType::Or},
                  PredDest{p3, PredType::UBar}, Operand(rb),
                  Operand::imm(0), p2);
    b.emit(Opcode::Add, rj, Operand(rj), Operand::imm(1))
        .setGuard(p3);
    b.predDefine2(Opcode::PredNe, PredDest{p4, PredType::U},
                  PredDest{p5, PredType::UBar}, Operand(rc),
                  Operand::imm(0), p1);
    b.emit(Opcode::Add, rk, Operand(rk), Operand::imm(1))
        .setGuard(p4);
    b.emit(Opcode::Sub, rk, Operand(rk), Operand::imm(1))
        .setGuard(p5);
    b.emit(Opcode::Add, ri, Operand(ri), Operand::imm(1));

    // result = j*10000 + k*10 + (i-300)
    Reg out = fn->newIntReg();
    Reg t = fn->newIntReg();
    b.emit(Opcode::Mul, out, Operand(rj), Operand::imm(10000));
    b.emit(Opcode::Mul, t, Operand(rk), Operand::imm(10));
    b.emit(Opcode::Add, out, Operand(out), Operand(t));
    b.emit(Opcode::Add, out, Operand(out), Operand(ri));
    b.emit(Opcode::Sub, out, Operand(out), Operand::imm(300));
    b.ret(Operand(out));

    ASSERT_EQ(verifyProgram(prog), "");
    Emulator emu(prog);
    RunResult r = emu.run("");

    // Reference semantics. NOTE the paper's Figure 1(c) predicate
    // structure: the then-clause of the *inner* if runs under p3
    // (both a==0 and b==0 false ... see paper), j++ under p3 means
    // "a != 0 && b != 0". The outer || controls k via p1.
    std::int64_t j = 100, k = 200, i = 300;
    if (a == 0 || bv == 0) {
        if (c != 0)
            k += 1;
        else
            k -= 1;
    } else {
        j += 1;
    }
    i += 1;
    std::int64_t expected = j * 10000 + k * 10 + (i - 300);
    EXPECT_EQ(r.exitValue, expected);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, Figure1, ::testing::Range(0, 8));

} // namespace
} // namespace predilp
