/**
 * @file
 * The bit-identity gate between the two emulator backends. The
 * interpreter (emu/emulator.cc) is the reference oracle; the
 * pre-decoded threaded engine (emu/threaded.cc) must be an invisible
 * substitution: for every workload and a batch of fuzz-generated
 * programs, both backends must produce byte-identical trace streams
 * (packed entries AND the varint memory side stream, chunk by
 * chunk), field-identical StaticIndex contents, equal RunResults,
 * equal profiles, equal replay figures — and identical EmuTrap
 * kind/pc/steps/message on runs that trap.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/profile.hh"
#include "driver/pipeline.hh"
#include "emu/decoded.hh"
#include "fuzz/generator.hh"
#include "sim/timing.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

void
expectIndexEq(const StaticIndex &a, const StaticIndex &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (RegClass cls :
         {RegClass::Int, RegClass::Float, RegClass::Pred}) {
        EXPECT_EQ(a.regBound(cls), b.regBound(cls));
    }
    for (std::uint32_t id = 0; id < a.size(); ++id) {
        const StaticOp &x = a.op(id);
        const StaticOp &y = b.op(id);
        SCOPED_TRACE("static id " + std::to_string(id));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.guard, y.guard);
        EXPECT_EQ(x.dest, y.dest);
        EXPECT_EQ(x.srcRegCount, y.srcRegCount);
        EXPECT_EQ(x.predDestCount, y.predDestCount);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.isBranch, y.isBranch);
        EXPECT_EQ(x.isLoad, y.isLoad);
        EXPECT_EQ(x.isStore, y.isStore);
        EXPECT_EQ(x.isPredAll, y.isPredAll);
        const Reg *xr = a.regs(x);
        const Reg *yr = b.regs(y);
        const int n = x.srcRegCount + x.predDestCount;
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(xr[i], yr[i]);
    }
}

void
expectRunEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.memHash, b.memHash);
}

/** Byte-for-byte comparison of the two packed trace streams. */
void
expectTraceEq(const TraceBuffer &a, const TraceBuffer &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.chunkCount(), b.chunkCount());
    for (std::size_t i = 0; i < a.chunkCount(); ++i) {
        SCOPED_TRACE("chunk " + std::to_string(i));
        TraceBuffer::ChunkView x = a.chunk(i);
        TraceBuffer::ChunkView y = b.chunk(i);
        ASSERT_EQ(x.entryCount, y.entryCount);
        EXPECT_EQ(std::memcmp(x.entries, y.entries,
                              x.entryCount * sizeof(TraceEntry)),
                  0);
        ASSERT_EQ(x.memSize, y.memSize);
        EXPECT_EQ(std::memcmp(x.memBytes, y.memBytes, x.memSize), 0);
        EXPECT_EQ(x.memCount, y.memCount);
    }
    expectIndexEq(a.index(), b.index());
    expectRunEq(a.run(), b.run());
}

std::unique_ptr<Program>
compiled(const std::string &source, Model model,
         const std::string &input)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    return compileForModel(source, opts);
}

constexpr Model kModels[] = {Model::Superblock, Model::CondMove,
                             Model::FullPred};

TEST(BackendDiff, EveryWorkloadBitIdenticalTrace)
{
    // Each workload runs under one model (rotating) to keep the suite
    // fast; the fuzz batch below covers the full model cross product.
    std::size_t i = 0;
    for (const Workload &workload : allWorkloads()) {
        Model model = kModels[i++ % 3];
        std::string input = workload.makeInput(1);
        auto prog = compiled(workload.source, model, input);
        auto interp =
            capture(*prog, input, 2'000'000'000ull, EmuBackend::Interp);
        auto threaded = capture(*prog, input, 2'000'000'000ull,
                                EmuBackend::Threaded);
        SCOPED_TRACE(workload.name + "/" + modelName(model));
        expectTraceEq(*interp, *threaded);
    }
}

TEST(BackendDiff, ReplayFiguresAgree)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog = compiled(workload->source, Model::FullPred, input);
    auto interp =
        capture(*prog, input, 2'000'000'000ull, EmuBackend::Interp);
    auto threaded =
        capture(*prog, input, 2'000'000'000ull, EmuBackend::Threaded);
    SimConfig sim;
    sim.machine = issue8Branch1();
    sim.perfectCaches = false;
    SimResult a = replay(*interp, sim);
    SimResult b = replay(*threaded, sim);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.nullified, b.nullified);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

TEST(BackendDiff, FuzzBatchBitIdenticalAllModels)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GeneratedProgram gen = generateProgram(seed);
        for (Model model : kModels) {
            auto prog = compiled(gen.source, model, gen.input);
            auto interp = capture(*prog, gen.input, 2'000'000'000ull,
                                  EmuBackend::Interp);
            auto threaded = capture(*prog, gen.input,
                                    2'000'000'000ull,
                                    EmuBackend::Threaded);
            SCOPED_TRACE("seed " + std::to_string(seed) + "/" +
                         modelName(model));
            expectTraceEq(*interp, *threaded);
        }
    }
}

TEST(BackendDiff, RunResultAndProfileAgree)
{
    const Workload *workload = findWorkload("qsort");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiled(workload->source, Model::Superblock, input);

    ProgramProfile interpProfile(*prog);
    EmuOptions interpOpts;
    interpOpts.backend = EmuBackend::Interp;
    interpOpts.profile = &interpProfile;
    RunResult a = Emulator(*prog).run(input, interpOpts);

    ProgramProfile threadedProfile(*prog);
    EmuOptions threadedOpts;
    threadedOpts.backend = EmuBackend::Threaded;
    threadedOpts.profile = &threadedProfile;
    RunResult b = Emulator(*prog).run(input, threadedOpts);

    expectRunEq(a, b);
    for (const auto &fn : prog->functions()) {
        const FunctionProfile &x =
            interpProfile.forFunction(fn->name());
        const FunctionProfile &y =
            threadedProfile.forFunction(fn->name());
        SCOPED_TRACE(fn->name());
        const auto blockIds = static_cast<BlockId>(fn->numBlockIds());
        for (BlockId id = 0; id < blockIds; ++id)
            EXPECT_EQ(x.blockCount(id), y.blockCount(id));
        for (int id = 0; id < fn->instrIdBound(); ++id)
            EXPECT_EQ(x.takenCount(id), y.takenCount(id));
    }
}

/** Capture the EmuTrap a run throws; fail if it completes. */
template <typename Fn>
EmuTrap
expectTrap(Fn &&run)
{
    try {
        run();
    } catch (const EmuTrap &trap) {
        return trap;
    }
    ADD_FAILURE() << "run completed without trapping";
    return EmuTrap(TrapKind::BadProgram, -1, 0, "did not trap");
}

void
expectSameTrap(const Program &prog, const std::string &input,
               std::uint64_t fuel)
{
    EmuOptions interpOpts;
    interpOpts.backend = EmuBackend::Interp;
    interpOpts.maxDynInstrs = fuel;
    EmuOptions threadedOpts;
    threadedOpts.backend = EmuBackend::Threaded;
    threadedOpts.maxDynInstrs = fuel;
    EmuTrap a = expectTrap(
        [&] { Emulator(prog).run(input, interpOpts); });
    EmuTrap b = expectTrap(
        [&] { Emulator(prog).run(input, threadedOpts); });
    EXPECT_EQ(a.kind(), b.kind());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.steps(), b.steps());
    EXPECT_STREQ(a.what(), b.what());
}

TEST(BackendDiff, TrapParityFuelExhausted)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog = compiled(workload->source, Model::FullPred, input);
    expectSameTrap(*prog, input, 1000);
}

TEST(BackendDiff, TrapParityDivideByZero)
{
    // readblock on empty input yields 0, so the divide traps at run
    // time (the divisor is not a compile-time constant).
    const char *source = R"ILC(
byte scratch[16];
int main() {
    int n = readblock(scratch, 0, 16);
    return 100 / n;
}
)ILC";
    // Profile with a benign input (n = 1); trap at run time on "".
    auto prog = compiled(source, Model::FullPred, "x");
    expectSameTrap(*prog, "", 1000000);
}

TEST(BackendDiff, TrapParityMemFault)
{
    // One input byte makes the index huge; the load faults.
    const char *source = R"ILC(
byte scratch[16];
int main() {
    int n = readblock(scratch, 0, 16);
    int wild = n * 1000000000;
    return scratch[wild];
}
)ILC";
    // Profile with empty input (index 0); trap at run time on "x".
    auto prog = compiled(source, Model::FullPred, "");
    expectSameTrap(*prog, "x", 1000000);
}

} // namespace
} // namespace predilp
