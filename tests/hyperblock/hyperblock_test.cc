/**
 * @file
 * Unit tests for hyperblock formation, if-conversion semantics,
 * predicate promotion, control height reduction, and exit branch
 * combining.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "frontend/irgen.hh"
#include "hyperblock/hyperblock.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"

namespace predilp
{
namespace
{

struct Formed
{
    std::unique_ptr<Program> prog;
    HyperblockStats stats;
    std::string referenceOutput;
    std::int64_t reference = 0;
    ProgramProfile profile;

    explicit Formed(const std::string &source,
                    const std::string &input = "",
                    HyperblockOptions opts = {})
    {
        prog = compileSource(source);
        optimizeProgram(*prog);
        {
            Emulator emu(*prog);
            RunResult r = emu.run(input);
            reference = r.exitValue;
            referenceOutput = r.output;
        }
        profile = ProgramProfile(*prog);
        EmuOptions eo;
        eo.profile = &profile;
        {
            Emulator emu(*prog);
            emu.run(input, eo);
        }
        stats = formHyperblocks(*prog, profile, opts);
        EXPECT_EQ(verifyProgram(*prog), "");
    }

    std::int64_t
    result(const std::string &input = "")
    {
        Emulator emu(*prog);
        RunResult r = emu.run(input);
        EXPECT_EQ(r.output, referenceOutput);
        return r.exitValue;
    }

    int
    countGuarded()
    {
        int count = 0;
        for (auto &fn : prog->functions()) {
            for (BlockId id : fn->layout()) {
                for (const auto &instr :
                     fn->block(id)->instrs()) {
                    if (instr.guarded())
                        count += 1;
                }
            }
        }
        return count;
    }
};

const char *const diamondLoop = R"(
    int main() {
        int j = 0, k = 0;
        for (int i = 0; i < 600; i = i + 1) {
            if ((i & 3) == 0) { j = j + 1; }
            else { k = k + 2; }
        }
        return j * 10000 + k;
    }
)";

TEST(Hyperblock, IfConvertsDiamondLoop)
{
    Formed f(diamondLoop);
    EXPECT_GE(f.stats.hyperblocksFormed, 1);
    EXPECT_GE(f.stats.branchesRemoved, 1);
    EXPECT_GE(f.stats.predDefinesInserted, 1);
    EXPECT_GT(f.countGuarded(), 0);
    EXPECT_EQ(f.result(), 150 * 10000 + 450 * 2);
}

TEST(Hyperblock, OrTypeForShortCircuit)
{
    // The Figure 1 shape: (a || b) needs an OR-type predicate.
    Formed f(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 300; i = i + 1) {
                if ((i & 1) == 0 || (i % 3) == 0) { n = n + 1; }
            }
            return n;
        }
    )");
    bool hasOr = false;
    for (auto &fn : f.prog->functions()) {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                for (const auto &pd : instr.predDests()) {
                    if (pd.type == PredType::Or)
                        hasOr = true;
                }
            }
        }
    }
    EXPECT_TRUE(hasOr);
    EXPECT_EQ(f.result(), 200);
}

TEST(Hyperblock, CallBlocksStayOutside)
{
    Formed f(R"(
        int slowpath(int v) { return v * 3; }
        int main() {
            int s = 0;
            for (int i = 0; i < 300; i = i + 1) {
                if (i % 64 == 0) { s = s + slowpath(i); }
                else { s = s + 1; }
            }
            return s;
        }
    )");
    // The call must survive unguarded.
    for (auto &fn : f.prog->functions()) {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                if (instr.isCall()) {
                    EXPECT_FALSE(instr.guarded());
                }
            }
        }
    }
    EXPECT_EQ(f.result(), (0 + 64 + 128 + 192 + 256) * 3 + 295);
}

TEST(Hyperblock, TailDuplicationRemovesSideEntrances)
{
    // A cold arm feeding the hot join forces duplication (the wc
    // maxline pattern).
    Formed f(R"(
        int main() {
            int s = 0, max = 0, run = 0;
            for (int i = 0; i < 2000; i = i + 1) {
                if ((i & 255) == 255) {
                    if (run > max) { max = run; }   // very cold.
                    run = 0;
                } else {
                    run = run + 1;
                }
                s = s + 1;
            }
            return max * 100000 + s;
        }
    )");
    EXPECT_GE(f.stats.hyperblocksFormed, 1);
    EXPECT_EQ(f.result(), 255 * 100000 + 2000);
}

TEST(Hyperblock, NullificationObservedAtRuntime)
{
    Formed f(diamondLoop);
    struct Sink : TraceSink
    {
        std::uint64_t nullified = 0;
        void
        onInstr(const DynRecord &rec) override
        {
            nullified += rec.nullified ? 1 : 0;
        }
    } sink;
    EmuOptions opts;
    opts.sink = &sink;
    Emulator emu(*f.prog);
    emu.run("", opts);
    EXPECT_GT(sink.nullified, 0u);
}

TEST(Promotion, RemovesGuardsFromTemporaries)
{
    // Build Figure 2 by hand inside a hyperblock-marked block.
    Program prog;
    std::int64_t addr = prog.allocGlobal("x", 8, 8, false);
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *bb = b.startBlock();
    bb->setKind(BlockKind::Hyperblock);
    Reg pin = fn->newPredReg();
    Reg t1 = fn->newIntReg();
    Reg t2 = fn->newIntReg();
    Reg y = fn->newIntReg();
    b.predDefine(Opcode::PredNe, PredDest{pin, PredType::U},
                 Operand::imm(1), Operand::imm(0));
    b.load(Opcode::Ld, t1, Operand::imm(addr), Operand::imm(0))
        .setGuard(pin);
    b.emit(Opcode::Mul, t2, Operand(t1), Operand::imm(2))
        .setGuard(pin);
    b.emit(Opcode::Add, y, Operand(t2), Operand::imm(3))
        .setGuard(pin);
    b.ret(Operand(y));

    int promoted = promotePredicates(*fn);
    // Figure 2: the load and the multiply promote; the final add
    // (whose destination is live out) keeps its guard.
    EXPECT_EQ(promoted, 2);
    const auto &instrs = bb->instrs();
    EXPECT_FALSE(instrs[1].guarded());
    EXPECT_TRUE(instrs[1].speculative()); // silent load.
    EXPECT_FALSE(instrs[2].guarded());
    EXPECT_TRUE(instrs[3].guarded());
}

TEST(Promotion, RefusesWhenUsedUnderOtherGuard)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg p = fn->newPredReg();
    Reg q = fn->newPredReg();
    Reg t = fn->newIntReg();
    Reg y = fn->newIntReg();
    b.predDefine2(Opcode::PredNe, PredDest{p, PredType::U},
                  PredDest{q, PredType::UBar}, Operand::imm(1),
                  Operand::imm(0));
    b.mov(y, Operand::imm(9));
    b.emit(Opcode::Add, t, Operand::imm(1), Operand::imm(2))
        .setGuard(p);
    b.emit(Opcode::Add, y, Operand(t), Operand::imm(0))
        .setGuard(q); // different guard: t must stay guarded.
    b.ret(Operand(y));

    EXPECT_EQ(promotePredicates(*fn), 0);
}

TEST(HeightReduction, ParallelizesOrChains)
{
    Formed f(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 400; i = i + 1) {
                int c = i & 255;
                if (c == 32 || c == 10 || c == 9 || c == 13) {
                    n = n + 1;
                }
            }
            return n;
        }
    )");
    std::int64_t expected = f.reference;
    int reduced = reducePredicateHeight(*f.prog);
    EXPECT_GE(reduced, 1);
    EXPECT_EQ(verifyProgram(*f.prog), "");
    EXPECT_EQ(f.result(), expected);

    // After reduction, several defines share an unguarded Pin and
    // accumulate into the same OR register.
    int orDefines = 0;
    for (auto &fn : f.prog->functions()) {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                if (!instr.isPredDefine() || instr.guarded())
                    continue;
                for (const auto &pd : instr.predDests()) {
                    if (pd.type == PredType::Or)
                        orDefines += 1;
                }
            }
        }
    }
    EXPECT_GE(orDefines, 3);
}

TEST(BranchCombine, MergesUnlikelyExits)
{
    // grep-shaped loop: several very rarely taken exits.
    Formed f(R"(
        int main() {
            int i = 0;
            int found = 0;
            while (i < 5000) {
                int c = (i * 37 + 11) & 1023;
                if (c == 1021) { found = found + 1; }
                if (c == 1022) { found = found + 2; }
                if (c == 1023) { found = found + 3; }
                i = i + 1;
            }
            return found * 10 + 1;
        }
    )");
    std::int64_t expected = f.reference;
    FunctionProfile *fp = &f.profile.forFunction("main");
    int combined = combineExitBranches(
        *f.prog->function("main"), *fp);
    EXPECT_EQ(verifyProgram(*f.prog), "");
    EXPECT_EQ(f.result(), expected);
    (void)combined; // combining depends on formation shape.
}

TEST(Hyperblock, SaturationExcludesFatColdArms)
{
    HyperblockOptions opts;
    opts.saturationFactor = 1.05; // almost no slack.
    Formed f(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 500; i = i + 1) {
                if (i % 2 == 0) {
                    s = s + i * 3 + (i >> 1) - (i & 7)
                          + i * 5 - (i >> 3) + (i & 15)
                          + i * 7 - (i >> 2) + (i & 31);
                } else {
                    s = s + 1;
                }
            }
            return s & 0xFFFFFF;
        }
    )",
             "", opts);
    // With such a tight budget the 50%-taken fat arm stays out, but
    // semantics hold regardless.
    EXPECT_EQ(f.result(), f.reference);
}

} // namespace
} // namespace predilp
