/**
 * @file
 * Generator contract tests: same seed reproduces byte-identical
 * programs, distinct seeds diversify, and every generated program
 * honors the safety guarantees the oracle depends on — it compiles,
 * verifies, terminates within a modest fuel budget, and runs clean.
 */

#include <gtest/gtest.h>

#include <set>

#include "driver/pipeline.hh"
#include "fuzz/generator.hh"

namespace predilp
{
namespace
{

TEST(FuzzGenerator, SameSeedIsByteIdentical)
{
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 999ull}) {
        GeneratedProgram a = generateProgram(seed);
        GeneratedProgram b = generateProgram(seed);
        EXPECT_EQ(a.seed, seed);
        EXPECT_EQ(a.source, b.source);
        EXPECT_EQ(a.input, b.input);
        EXPECT_FALSE(a.source.empty());
    }
}

TEST(FuzzGenerator, DistinctSeedsDiversify)
{
    std::set<std::string> sources;
    for (std::uint64_t seed = 0; seed < 20; ++seed)
        sources.insert(generateProgram(seed).source);
    // Near-collisions are tolerable; wholesale repetition is not.
    EXPECT_GE(sources.size(), 18u);
}

TEST(FuzzGenerator, GeneratedProgramsRunCleanAndTerminate)
{
    // The reference pipeline parses, verifies (front and back), and
    // emulates: one call exercises every guarantee the generator
    // makes. The fuel here is far below the oracle's 50M budget, so
    // a trip-count regression in the generator trips this first.
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        GeneratedProgram gen = generateProgram(seed);
        RunResult run;
        ASSERT_NO_THROW(run = runReference(gen.source, gen.input,
                                           10'000'000ull))
            << "seed " << seed << "\n"
            << gen.source;
        // The checksum epilogue always emits three bytes and an
        // exit value folded from them.
        EXPECT_GE(run.output.size(), 3u) << "seed " << seed;
        EXPECT_EQ(run.exitValue & ~0xff, 0) << "seed " << seed;
        EXPECT_GT(run.dynInstrs, 0u);
    }
}

TEST(FuzzGenerator, RespectsSizeKnobs)
{
    GeneratorOptions tiny;
    tiny.maxHelpers = 0;
    tiny.useFloats = false;
    tiny.maxInputBytes = 0;
    GeneratedProgram gen = generateProgram(7, tiny);
    EXPECT_TRUE(gen.input.empty());
    EXPECT_EQ(gen.source.find("float"), std::string::npos);
    EXPECT_EQ(gen.source.find("int h0"), std::string::npos);
    ASSERT_NO_THROW(runReference(gen.source, gen.input));
}

} // namespace
} // namespace predilp
