/**
 * @file
 * The acceptance gate for the differential fuzzer: 500 fixed seeds,
 * each compiled under all three models plus two seed-rotated
 * ablation flips with the post-pass verifier on, must produce zero
 * divergences, verifier failures, or traps. Any failure prints its
 * full oracle record so the seed is reproducible offline via
 * `build/src/fuzz/fuzz_main --start <seed> --seeds 1`.
 */

#include <gtest/gtest.h>

#include "fuzz/oracle.hh"

namespace predilp
{
namespace
{

constexpr std::uint64_t kSeeds = 500;

TEST(FuzzDifferential, FiveHundredSeedsAgreeAcrossAllModels)
{
    OracleOptions opts; // ablations + per-pass verification on.
    std::uint64_t configs = 0;
    std::vector<OracleFailure> failures;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        OracleResult result = runDifferentialOracle(seed, opts);
        configs += result.configsRun;
        failures.insert(failures.end(), result.failures.begin(),
                        result.failures.end());
    }
    for (const OracleFailure &f : failures) {
        ADD_FAILURE() << "seed " << f.seed << " [" << f.config
                      << "] " << f.kind << ": " << f.message;
    }
    EXPECT_TRUE(failures.empty());
    // 3 models + 2 ablation flips per seed.
    EXPECT_EQ(configs, kSeeds * 5);
}

} // namespace
} // namespace predilp
