/**
 * @file
 * SimConfig serialization tests: canonical JSON round-trips exactly,
 * unknown keys are rejected at both nesting levels, configDigest is
 * stable across producing-field order and default materialization,
 * and the generalized cache/BTB models degenerate to the paper's
 * fixed memory system at associativity 1.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

SimConfig
nonDefaultConfig()
{
    SimConfig config;
    config.machine = issue4Branch1();
    config.machine.mispredictPenalty = 5;
    config.perfectCaches = false;
    config.cacheSizeBytes = 16 * 1024;
    config.cacheLineBytes = 32;
    config.cacheAssociativity = 4;
    config.cacheMissPenalty = 20;
    config.btbEntries = 256;
    config.btbAssociativity = 2;
    config.predictor = BranchPredictor::OneBit;
    config.maxDynInstrs = 123456789;
    return config;
}

TEST(SimConfig, JsonRoundTripIsExact)
{
    SimConfig config = nonDefaultConfig();
    SimConfig back =
        SimConfig::fromJson(JsonValue::parse(config.toJson().dump()));
    EXPECT_TRUE(back == config);
    // Canonical form: re-serializing the parsed config is
    // byte-identical.
    EXPECT_EQ(back.toJson().dump(), config.toJson().dump());
}

TEST(SimConfig, AbsentKeysKeepDefaults)
{
    SimConfig parsed =
        SimConfig::fromJson(JsonValue::parse("{\"btb_entries\": 64}"));
    SimConfig expected;
    expected.btbEntries = 64;
    EXPECT_TRUE(parsed == expected);
}

TEST(SimConfig, UnknownKeysRejectedAtBothLevels)
{
    EXPECT_THROW(
        SimConfig::fromJson(JsonValue::parse("{\"btb_size\": 64}")),
        FatalError);
    EXPECT_THROW(SimConfig::fromJson(JsonValue::parse(
                     "{\"machine\": {\"issue\": 8}}")),
                 FatalError);
}

TEST(SimConfig, NonPositiveSizesRejected)
{
    EXPECT_THROW(SimConfig::fromJson(
                     JsonValue::parse("{\"cache_size_bytes\": 0}")),
                 FatalError);
    EXPECT_THROW(SimConfig::fromJson(JsonValue::parse(
                     "{\"machine\": {\"issue_width\": -1}}")),
                 FatalError);
}

TEST(SimConfig, DigestIndependentOfSourceKeyOrder)
{
    // Two spellings of the same config — different key order, one
    // relying on defaults — must produce the same digest, because
    // the digest runs over the canonical re-serialization.
    SimConfig a = SimConfig::fromJson(JsonValue::parse(
        "{\"btb_entries\": 256, \"perfect_caches\": false}"));
    SimConfig b = SimConfig::fromJson(JsonValue::parse(
        "{\"perfect_caches\": false, \"btb_entries\": 256,"
        " \"cache_assoc\": 1, \"predictor\": \"twobit\"}"));
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.configDigest(), b.configDigest());
}

TEST(SimConfig, DigestChangesWithAnyField)
{
    const SimConfig base;
    const std::string baseDigest = base.configDigest();
    EXPECT_EQ(baseDigest.substr(0, 3), "v1:");
    EXPECT_EQ(baseDigest.size(), 3u + 32u);

    SimConfig changed = base;
    changed.predictor = BranchPredictor::OneBit;
    EXPECT_NE(changed.configDigest(), baseDigest);

    changed = base;
    changed.machine.latLoad += 1;
    EXPECT_NE(changed.configDigest(), baseDigest);

    changed = base;
    changed.btbAssociativity = 2;
    EXPECT_NE(changed.configDigest(), baseDigest);
}

TEST(SimConfig, PaperMachineIsTheDefault)
{
    EXPECT_TRUE(SimConfig::paperMachine() == SimConfig{});
    EXPECT_EQ(SimConfig::paperMachine().configDigest(),
              SimConfig{}.configDigest());
}

TEST(SimConfig, PredictorNamesRoundTrip)
{
    for (BranchPredictor p :
         {BranchPredictor::TwoBit, BranchPredictor::OneBit,
          BranchPredictor::StaticTaken,
          BranchPredictor::StaticNotTaken}) {
        EXPECT_EQ(predictorFromName(predictorName(p)), p);
    }
    EXPECT_THROW(predictorFromName("gshare"), FatalError);
}

TEST(SetAssocCache, TwoWaysHoldConflictingLines)
{
    // Two addresses one cache-size apart map to the same set. The
    // direct-mapped cache ping-pongs; a 2-way set holds both.
    const std::int64_t stride = 1024;
    SetAssocCache direct(stride, 64, 1);
    SetAssocCache twoWay(stride, 64, 2);
    for (int round = 0; round < 4; ++round) {
        direct.access(0);
        direct.access(stride);
        twoWay.access(0);
        twoWay.access(stride);
    }
    EXPECT_EQ(direct.hits(), 0u);
    EXPECT_EQ(direct.conflictMisses(), 7u); // all but the cold miss.
    EXPECT_EQ(twoWay.hits(), 6u);
    EXPECT_EQ(twoWay.misses(), 2u);
    EXPECT_EQ(twoWay.conflictMisses(), 0u);
}

TEST(SetAssocCache, WriteMissDoesNotAllocate)
{
    SetAssocCache cache(1024, 64, 2);
    EXPECT_FALSE(cache.writeAccess(0));
    EXPECT_FALSE(cache.present(0));
    EXPECT_TRUE(cache.access(0) == false); // read miss allocates...
    EXPECT_TRUE(cache.writeAccess(0));     // ...then the write hits.
}

TEST(BranchTargetBuffer, TwoBitHysteresisVsOneBit)
{
    BranchTargetBuffer twoBit(16, 1, BranchPredictor::TwoBit);
    BranchTargetBuffer oneBit(16, 1, BranchPredictor::OneBit);
    for (int i = 0; i < 3; ++i) {
        twoBit.update(4, true);
        oneBit.update(4, true);
    }
    EXPECT_TRUE(twoBit.predictTaken(4));
    EXPECT_TRUE(oneBit.predictTaken(4));
    // One not-taken blip: the saturating counter keeps predicting
    // taken (3 -> 2), the last-outcome predictor flips.
    twoBit.update(4, false);
    oneBit.update(4, false);
    EXPECT_TRUE(twoBit.predictTaken(4));
    EXPECT_FALSE(oneBit.predictTaken(4));
    EXPECT_EQ(twoBit.lookups(), 4u);

    // Statics ignore training entirely.
    BranchTargetBuffer taken(16, 1, BranchPredictor::StaticTaken);
    BranchTargetBuffer notTaken(16, 1,
                                BranchPredictor::StaticNotTaken);
    taken.update(4, false);
    notTaken.update(4, true);
    EXPECT_TRUE(taken.predictTaken(4));
    EXPECT_FALSE(notTaken.predictTaken(4));
}

TEST(BranchTargetBuffer, TaglessTableAliases)
{
    // One-way: two branches one table-length apart share a counter
    // (training leaks across), and the stats-only owner tag counts
    // the aliasing as replacements.
    BranchTargetBuffer btb(16, 1, BranchPredictor::TwoBit);
    for (int i = 0; i < 4; ++i)
        btb.update(4, true);
    EXPECT_TRUE(btb.predictTaken(4 + 16 * 4)); // aliased entry.
    EXPECT_EQ(btb.replacements(), 0u);
    btb.update(4 + 16 * 4, true); // aliasing owner change.
    EXPECT_EQ(btb.replacements(), 1u);

    // Two-way tagged: the second branch gets its own entry and
    // predicts not-taken on its tag miss.
    BranchTargetBuffer tagged(16, 2, BranchPredictor::TwoBit);
    for (int i = 0; i < 4; ++i)
        tagged.update(4, true);
    EXPECT_TRUE(tagged.predictTaken(4));
    EXPECT_FALSE(tagged.predictTaken(4 + 16 * 4));
}

} // namespace
} // namespace predilp
