/**
 * @file
 * Unit tests for the timing simulator: caches (direct-mapped,
 * write-through/no-allocate), the 2-bit BTB, the address map, and
 * the in-order pipeline's issue-width / latency / misprediction
 * behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "driver/pipeline.hh"
#include "frontend/irgen.hh"
#include "ir/builder.hh"
#include "opt/passes.hh"
#include "sim/cache.hh"
#include "sim/scoreboard.hh"
#include "sim/timing.hh"

namespace predilp
{
namespace
{

TEST(Cache, HitsAfterFill)
{
    DirectMappedCache cache(64 * 1024, 64);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63));  // same line.
    EXPECT_FALSE(cache.access(64)); // next line.
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, DirectMappedConflicts)
{
    DirectMappedCache cache(64 * 1024, 64);
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(64 * 1024)); // same index, other tag.
    EXPECT_FALSE(cache.access(0));         // evicted.
}

TEST(Cache, WriteNoAllocate)
{
    DirectMappedCache cache(64 * 1024, 64);
    EXPECT_FALSE(cache.writeAccess(128));
    // The write must not have allocated the line.
    EXPECT_FALSE(cache.present(128));
    EXPECT_FALSE(cache.access(128));
    // A write to a present line hits and keeps it.
    EXPECT_TRUE(cache.writeAccess(128));
    EXPECT_TRUE(cache.present(128));
}

TEST(Cache, ResetClears)
{
    DirectMappedCache cache(1024, 64);
    cache.access(0);
    cache.reset();
    EXPECT_FALSE(cache.access(0));
}

TEST(Btb, TwoBitHysteresis)
{
    BranchTargetBuffer btb(16);
    std::int64_t addr = 0x40;
    // Initial counters are weakly not-taken.
    EXPECT_FALSE(btb.predictTaken(addr));
    btb.update(addr, true);
    EXPECT_TRUE(btb.predictTaken(addr)); // 1 -> 2.
    btb.update(addr, true);              // 2 -> 3.
    btb.update(addr, false);             // 3 -> 2: still taken.
    EXPECT_TRUE(btb.predictTaken(addr));
    btb.update(addr, false);             // 2 -> 1.
    EXPECT_FALSE(btb.predictTaken(addr));
}

TEST(Btb, Aliasing)
{
    BranchTargetBuffer btb(4);
    // Entries 4 apart in words share a slot in a 4-entry table.
    std::int64_t a = 0;
    std::int64_t b = 4 * 4;
    btb.update(a, true);
    btb.update(a, true);
    EXPECT_TRUE(btb.predictTaken(b)); // aliased.
}

TEST(AddressMap, SequentialWithinFunction)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    // Capture ids immediately: references into the instruction
    // vector do not survive further appends.
    int id0 = b.mov(a, Operand::imm(1)).id();
    int id1 =
        b.emit(Opcode::Add, a, Operand(a), Operand::imm(2)).id();
    b.ret(Operand(a));

    AddressMap map(prog);
    const Instruction *p0 = nullptr;
    const Instruction *p1 = nullptr;
    for (const auto &instr : fn->entry()->instrs()) {
        if (instr.id() == id0)
            p0 = &instr;
        if (instr.id() == id1)
            p1 = &instr;
    }
    ASSERT_NE(p0, nullptr);
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(map.addressOf(fn, p1) - map.addressOf(fn, p0), 4);
}

/** Compile + simulate a small source at a given config. */
SimResult
simOf(const std::string &source, const MachineConfig &machine,
      bool perfect = true, const std::string &input = "")
{
    CompileOptions opts;
    opts.model = Model::Superblock;
    opts.machine = machine;
    opts.profileInput = input;
    SimConfig sim;
    sim.machine = machine;
    sim.perfectCaches = perfect;
    return runModel(source, input, opts, sim);
}

const char *const loopSource = R"(
    int main() {
        int s = 0;
        for (int i = 0; i < 2000; i = i + 1) {
            s = s + (i ^ 3) - (i >> 1);
        }
        return s & 0xFFFF;
    }
)";

TEST(Timing, WiderMachineIsFaster)
{
    SimResult narrow = simOf(loopSource, issue1());
    SimResult wide = simOf(loopSource, issue8Branch1());
    EXPECT_LT(wide.cycles, narrow.cycles);
    // 1-issue can never beat one instruction per cycle.
    EXPECT_GE(narrow.cycles, narrow.dynInstrs);
}

TEST(Timing, CyclesAtLeastIssueBound)
{
    SimResult r = simOf(loopSource, issue8Branch1());
    EXPECT_GE(r.cycles, r.dynInstrs / 8);
    EXPECT_GE(r.cycles, r.branches); // 1 branch per cycle.
}

TEST(Timing, MispredictsCostCycles)
{
    // A data-dependent unpredictable branch stream.
    const char *const noisy = R"(
        int main() {
            int s = 0, x = 12345;
            for (int i = 0; i < 4000; i = i + 1) {
                x = (x * 1103515245 + 12345) % 2147483647;
                if ((x & 1) == 0) { s = s + 1; }
                else { s = s - 1; }
            }
            return s;
        }
    )";
    CompileOptions opts;
    opts.model = Model::Superblock;
    opts.machine = issue8Branch1();
    SimConfig sim;
    sim.machine = opts.machine;
    SimResult r = runModel(noisy, "", opts, sim);
    EXPECT_GT(r.mispredicts, 500u); // ~50% mispredict rate.
    EXPECT_GT(r.mispredictRate(), 0.1);

    // The same program with a higher penalty costs more cycles.
    CompileOptions opts2 = opts;
    opts2.machine.mispredictPenalty = 10;
    SimConfig sim2;
    sim2.machine = opts2.machine;
    SimResult r2 = runModel(noisy, "", opts2, sim2);
    EXPECT_GT(r2.cycles, r.cycles);
}

TEST(Timing, RealCachesCostCycles)
{
    // Stride through a large array to generate data misses.
    const char *const strider = R"(
        int arr[6000];
        int main() {
            int s = 0;
            for (int pass = 0; pass < 4; pass = pass + 1) {
                for (int i = 0; i < 6000; i = i + 32) {
                    s = s + arr[i];
                    arr[i] = s;
                }
            }
            return s;
        }
    )";
    SimResult perfect = simOf(strider, issue8Branch1(), true);
    SimResult real = simOf(strider, issue8Branch1(), false);
    EXPECT_GT(real.dcacheMisses, 100u);
    EXPECT_GT(real.cycles, perfect.cycles);
    EXPECT_EQ(perfect.dcacheMisses, 0u);
}

TEST(Timing, StatsAreConsistent)
{
    SimResult r = simOf(loopSource, issue8Branch1());
    EXPECT_GT(r.dynInstrs, 0u);
    EXPECT_LE(r.condBranches, r.branches);
    EXPECT_LE(r.mispredicts, r.condBranches);
    EXPECT_EQ(r.nullified, 0u); // superblock code has no guards.
}

TEST(Timing, FullPredNullifiedConsumeSlots)
{
    const char *const branchy = R"(
        int main() {
            int a = 0, b = 0;
            for (int i = 0; i < 3000; i = i + 1) {
                if ((i & 1) == 0) { a = a + 1; }
                else { b = b + 1; }
            }
            return a * 10000 + b;
        }
    )";
    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    SimConfig sim;
    sim.machine = opts.machine;
    SimResult r = runModel(branchy, "", opts, sim);
    EXPECT_GT(r.nullified, 1000u);
    // Nullified instructions are fetched: cycles reflect the full
    // fetch stream, not just the executed subset.
    EXPECT_GE(r.cycles, r.dynInstrs / 8);
}

TEST(Scoreboard, EpochWraparoundHardResetsStaleTags)
{
    // A read-only index is enough to size the boards.
    StaticIndex index({}, {}, {16, 0, 16});
    RegScoreboard board(index);
    board.setDest(intReg(3), 42);
    EXPECT_EQ(board.readyAt(intReg(3)), 42);

    // Jump to the final epoch before the 32-bit counter wraps, as
    // if ~2^32 drains had happened since r3 was written.
    board.presetEpochForTest(
        std::numeric_limits<std::uint32_t>::max());
    EXPECT_EQ(board.readyAt(intReg(3)), 0);
    board.setDest(intReg(7), 99);
    EXPECT_EQ(board.readyAt(intReg(7)), 99);

    // The wrapping drain: the epoch increment overflows to 0 and
    // clear() must hard-reset every tag before restarting at epoch
    // 1. Without that reset, r3's stale tag from the original
    // epoch 1 would alias the fresh epoch and resurrect the ready
    // cycle written ~2^32 drains ago.
    board.clear();
    EXPECT_EQ(board.readyAt(intReg(3)), 0);
    EXPECT_EQ(board.readyAt(intReg(7)), 0);
    EXPECT_EQ(board.maxOutstanding(0), 0);
    board.setDest(intReg(3), 7);
    EXPECT_EQ(board.readyAt(intReg(3)), 7);
    EXPECT_EQ(board.maxOutstanding(0), 7);
}

} // namespace
} // namespace predilp
