/**
 * @file
 * replayBatch() bit-identity tests: pricing one captured trace for N
 * SimConfigs in a single streaming pass must equal N independent
 * replay() calls — every SimResult field and every sim.* stats leaf
 * — for batch sizes 1/2/odd/8+, across all three models, with real
 * and perfect caches mixed in one batch, on suite workloads and on
 * fuzz-generated programs, and with the lane work spread over a
 * ThreadPool.
 */

#include <gtest/gtest.h>

#include <span>

#include "driver/pipeline.hh"
#include "fuzz/generator.hh"
#include "sim/timing.hh"
#include "support/thread_pool.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

void
expectSimEq(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.nullified, b.nullified);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.output, b.output);
    // The detailed sim.* machine counters must agree leaf for leaf.
    EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

/**
 * @p n deterministic, deliberately heterogeneous configs: machine
 * width, BTB geometry, predictor, penalties, cache shape, and the
 * perfect/real cache switch all vary, so one batch mixes lanes that
 * need decoded addresses with lanes that skip the address stream.
 */
std::vector<SimConfig>
makeConfigs(std::size_t n)
{
    const MachineConfig machines[] = {issue8Branch1(), issue1(),
                                      issue4Branch1(),
                                      issue8Branch2()};
    std::vector<SimConfig> configs;
    configs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        SimConfig sim;
        sim.machine = machines[i % 4];
        sim.machine.mispredictPenalty =
            4 + static_cast<int>(i % 3) * 3;
        sim.perfectCaches = (i % 2) == 0;
        sim.btbEntries = 16u << (i % 4);
        sim.btbAssociativity = (i % 3 == 0) ? 1 : 2;
        if (i % 3 == 1)
            sim.predictor = BranchPredictor::OneBit;
        sim.cacheSizeBytes = 1024 << (i % 3);
        sim.cacheLineBytes = (i % 2) == 0 ? 32 : 64;
        sim.cacheMissPenalty = 8 + static_cast<int>(i % 5);
        configs.push_back(sim);
    }
    return configs;
}

void
expectBatchMatchesSequential(const TraceBuffer &buffer,
                             std::span<const SimConfig> configs,
                             ThreadPool *pool = nullptr)
{
    std::vector<SimResult> batch = replayBatch(buffer, configs, pool);
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        expectSimEq(batch[i], replay(buffer, configs[i]));
    }
}

std::unique_ptr<Program>
compiledWorkload(const Workload &workload, Model model,
                 const std::string &input)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    return compileForModel(workload.source, opts);
}

TEST(ReplayBatch, EverySizeEveryModelMatchesSequential)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    for (Model model : {Model::Superblock, Model::CondMove,
                        Model::FullPred}) {
        auto prog = compiledWorkload(*workload, model, input);
        auto buffer = capture(*prog, input);
        // 1 = degenerate batch, 2 = smallest real batch, 5 and 11 =
        // odd sizes, 8 = the acceptance batch width.
        for (std::size_t size : {1u, 2u, 5u, 8u, 11u}) {
            SCOPED_TRACE(modelName(model) + "/batch" +
                         std::to_string(size));
            expectBatchMatchesSequential(*buffer,
                                         makeConfigs(size));
        }
    }
}

TEST(ReplayBatch, AllPerfectCacheBatchSkipsAddressDecode)
{
    // When no lane member reads addresses the cursor skips varint
    // decoding entirely; the priced results must not change.
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::FullPred, input);
    auto buffer = capture(*prog, input);
    std::vector<SimConfig> configs = makeConfigs(8);
    for (SimConfig &sim : configs)
        sim.perfectCaches = true;
    expectBatchMatchesSequential(*buffer, configs);
}

TEST(ReplayBatch, ThreadPoolLaneSpreadMatchesSerial)
{
    const Workload *workload = findWorkload("qsort");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::CondMove, input);
    auto buffer = capture(*prog, input);
    // 19 configs on a 4-thread pool split into four uneven lanes;
    // results must come back in request order whichever thread
    // priced each lane.
    std::vector<SimConfig> configs = makeConfigs(19);
    ThreadPool pool(4);
    expectBatchMatchesSequential(*buffer, configs, &pool);
}

TEST(ReplayBatch, FuzzProgramsMatchSequential)
{
    for (std::uint64_t seed : {7u, 21u}) {
        GeneratedProgram generated = generateProgram(seed);
        for (Model model : {Model::Superblock, Model::CondMove,
                            Model::FullPred}) {
            SCOPED_TRACE("seed " + std::to_string(seed) + "/" +
                         modelName(model));
            CompileOptions opts;
            opts.model = model;
            opts.machine = issue8Branch1();
            opts.profileInput = generated.input;
            auto prog =
                compileForModel(generated.source, opts);
            auto buffer = capture(*prog, generated.input);
            expectBatchMatchesSequential(*buffer, makeConfigs(8));
        }
    }
}

TEST(ReplayBatch, EmptyBatchYieldsNoResults)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    auto buffer = capture(*prog, input);
    EXPECT_TRUE(
        replayBatch(*buffer, std::span<const SimConfig>{}).empty());
}

} // namespace
} // namespace predilp
