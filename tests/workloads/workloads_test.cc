/**
 * @file
 * Tests over the benchmark suite itself: all fifteen workloads
 * compile and verify, inputs are deterministic and scale, and the
 * reference outputs are meaningful.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "frontend/irgen.hh"
#include "ir/verifier.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

TEST(Workloads, SuiteHasFifteenPaperBenchmarks)
{
    const auto &suite = allWorkloads();
    EXPECT_EQ(suite.size(), 15u);
    const char *expected[] = {
        "espresso", "li",   "eqntott", "compress", "alvinn",
        "ear",      "sc",   "cccp",    "cmp",      "eqn",
        "grep",     "lex",  "qsort",   "wc",       "yacc"};
    for (const char *name : expected) {
        EXPECT_NE(findWorkload(name), nullptr) << name;
    }
    EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Workloads, PaperNamesMatchSuite)
{
    EXPECT_EQ(findWorkload("espresso")->paperName, "008.espresso");
    EXPECT_EQ(findWorkload("compress")->paperName, "026.compress");
    EXPECT_EQ(findWorkload("wc")->paperName, "wc");
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, CompilesVerifiesAndRuns)
{
    const Workload *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    auto prog = compileSource(w->source);
    EXPECT_EQ(verifyProgram(*prog), "");

    std::string input = w->makeInput(1);
    EXPECT_FALSE(input.empty());
    RunResult r = runReference(w->source, input);
    // Every workload prints at least one result line.
    EXPECT_NE(r.output.find('\n'), std::string::npos);
    EXPECT_GT(r.dynInstrs, 1000u);
}

TEST_P(EveryWorkload, InputsAreDeterministic)
{
    const Workload *w = findWorkload(GetParam());
    EXPECT_EQ(w->makeInput(1), w->makeInput(1));
    EXPECT_EQ(w->makeInput(3), w->makeInput(3));
}

TEST_P(EveryWorkload, WorkScalesWithInput)
{
    const Workload *w = findWorkload(GetParam());
    RunResult small = runReference(w->source, w->makeInput(1));
    RunResult large = runReference(w->source, w->makeInput(3));
    EXPECT_GT(large.dynInstrs, small.dynInstrs);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::Values("wc", "grep", "cmp", "qsort", "compress",
                      "eqntott", "espresso", "li", "lex", "yacc",
                      "cccp", "eqn", "sc", "alvinn", "ear"));

TEST(Workloads, OutputsDifferAcrossBenchmarks)
{
    // Sanity: programs actually compute different things.
    RunResult wc = runReference(findWorkload("wc")->source,
                                findWorkload("wc")->input());
    RunResult grep = runReference(findWorkload("grep")->source,
                                  findWorkload("grep")->input());
    EXPECT_NE(wc.output, grep.output);
}

} // namespace
} // namespace predilp
