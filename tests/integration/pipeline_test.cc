/**
 * @file
 * End-to-end pipeline tests: each processor model (Superblock,
 * Conditional Move, Full Predication) must produce exactly the
 * reference output on every workload — the correctness oracle of
 * the whole reproduction.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

class PipelineOnWorkload
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PipelineOnWorkload, AllModelsMatchReference)
{
    const Workload *workload = findWorkload(GetParam());
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);

    RunResult ref = runReference(workload->source, input);

    for (Model model :
         {Model::Superblock, Model::CondMove, Model::FullPred}) {
        CompileOptions opts;
        opts.model = model;
        opts.machine = issue8Branch1();
        opts.profileInput = input;

        SimConfig sim;
        sim.machine = opts.machine;

        SimResult result =
            runModel(workload->source, input, opts, sim);
        EXPECT_EQ(result.output, ref.output)
            << "model " << modelName(model) << " diverged on "
            << workload->name;
        EXPECT_EQ(result.exitValue, ref.exitValue)
            << "model " << modelName(model) << " exit value on "
            << workload->name;
        EXPECT_GT(result.cycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PipelineOnWorkload,
    ::testing::Values("wc", "grep", "cmp", "qsort", "compress",
                      "eqntott", "espresso", "li", "lex", "yacc",
                      "cccp", "eqn", "sc", "alvinn", "ear"));

TEST(Pipeline, PredicationRemovesBranches)
{
    const Workload *wc = findWorkload("wc");
    ASSERT_NE(wc, nullptr);
    std::string input = wc->makeInput(1);

    SimConfig sim;
    sim.machine = issue8Branch1();

    std::map<Model, SimResult> results;
    for (Model model :
         {Model::Superblock, Model::CondMove, Model::FullPred}) {
        CompileOptions opts;
        opts.model = model;
        opts.machine = sim.machine;
        opts.profileInput = input;
        results[model] =
            runModel(wc->source, input, opts, sim);
    }

    // Both predicated models must execute far fewer branches than
    // the superblock baseline (Table 3's headline effect).
    EXPECT_LT(results[Model::FullPred].branches,
              results[Model::Superblock].branches);
    EXPECT_LT(results[Model::CondMove].branches,
              results[Model::Superblock].branches);

    // Partial predication executes more instructions than full
    // predication (Table 2's headline effect).
    EXPECT_GT(results[Model::CondMove].dynInstrs,
              results[Model::FullPred].dynInstrs);
}

TEST(Pipeline, FullPredNullifiesSomething)
{
    const Workload *wc = findWorkload("wc");
    std::string input = wc->makeInput(1);
    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    SimConfig sim;
    sim.machine = opts.machine;
    SimResult result = runModel(wc->source, input, opts, sim);
    EXPECT_GT(result.nullified, 0u);
}

TEST(Pipeline, CondMoveEmitsNoPredicates)
{
    const Workload *wc = findWorkload("wc");
    CompileOptions opts;
    opts.model = Model::CondMove;
    opts.machine = issue8Branch1();
    opts.profileInput = wc->makeInput(1);
    auto prog = compileForModel(wc->source, opts);
    for (const auto &fn : prog->functions()) {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                EXPECT_FALSE(instr.guarded())
                    << instr.toString();
                EXPECT_FALSE(instr.isPredDefine())
                    << instr.toString();
                EXPECT_FALSE(instr.isPredAll()) << instr.toString();
            }
        }
    }
}

TEST(Pipeline, SpeedupOrderingHoldsOnWc)
{
    // The paper's Figure 8 shape on the wc kernel: FullPred beats
    // CondMove beats (or at worst ties) Superblock at 8-issue,
    // 1-branch.
    const Workload *wc = findWorkload("wc");
    std::string input = wc->makeInput(2);

    SimConfig sim;
    sim.machine = issue8Branch1();

    std::map<Model, std::uint64_t> cycles;
    for (Model model :
         {Model::Superblock, Model::CondMove, Model::FullPred}) {
        CompileOptions opts;
        opts.model = model;
        opts.machine = sim.machine;
        opts.profileInput = input;
        cycles[model] =
            runModel(wc->source, input, opts, sim).cycles;
    }
    EXPECT_LT(cycles[Model::FullPred], cycles[Model::Superblock]);
    EXPECT_LT(cycles[Model::FullPred], cycles[Model::CondMove]);
}

} // namespace
} // namespace predilp
