/**
 * @file
 * Property-based testing: randomly generated ILC programs must
 * produce identical outputs under every processor model and machine
 * configuration. This is the adversarial check on the whole
 * compiler: if-conversion, promotion, height reduction, branch
 * combining, partial lowering, unrolling, and scheduling together
 * must never change observable behavior.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "driver/pipeline.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace predilp
{
namespace
{

/**
 * Generate a random but well-formed ILC program: a main loop over
 * getc-derived values with nested ifs, short-circuit conditions,
 * arithmetic on a fixed pool of variables, and array traffic.
 */
std::string
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    os << "int arr[64];\n";
    os << "int main() {\n";
    os << "  int a = 1, b = 2, c = 3, d = 4;\n";
    os << "  int x = getc();\n";
    os << "  while (x >= 0) {\n";

    const char *vars[] = {"a", "b", "c", "d"};
    auto var = [&]() { return vars[rng.nextBelow(4)]; };
    auto smallConst = [&]() {
        return std::to_string(rng.nextRange(1, 9));
    };
    auto cmp = [&]() {
        const char *ops[] = {"<", "<=", ">", ">=", "==", "!="};
        return ops[rng.nextBelow(6)];
    };
    auto arith = [&]() {
        const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return ops[rng.nextBelow(6)];
    };

    std::function<void(int)> stmt = [&](int depth) {
        std::uint64_t kind = rng.nextBelow(depth > 2 ? 4 : 6);
        std::string indent(static_cast<std::size_t>(depth) * 2 + 4,
                           ' ');
        switch (kind) {
          case 0: // simple update
            os << indent << var() << " = " << var() << " " << arith()
               << " " << smallConst() << ";\n";
            break;
          case 1: // x-dependent update
            os << indent << var() << " = (" << var() << " " << arith()
               << " x) & 65535;\n";
            break;
          case 2: // array write (bounded index)
            os << indent << "arr[(" << var() << " & 63)] = " << var()
               << ";\n";
            break;
          case 3: // array read
            os << indent << var() << " = " << var() << " + arr[("
               << var() << " & 63)];\n";
            break;
          case 4: { // if / if-else with 1-3 statements per arm
            os << indent << "if (" << var() << " " << cmp() << " ";
            if (rng.nextBool(0.5))
                os << smallConst();
            else
                os << "(x & 15)";
            if (rng.nextBool(0.35)) {
                os << " || " << var() << " " << cmp() << " "
                   << smallConst();
            }
            os << ") {\n";
            int n = 1 + static_cast<int>(rng.nextBelow(3));
            for (int i = 0; i < n; ++i)
                stmt(depth + 1);
            os << indent << "}";
            if (rng.nextBool(0.5)) {
                os << " else {\n";
                int m = 1 + static_cast<int>(rng.nextBelow(2));
                for (int i = 0; i < m; ++i)
                    stmt(depth + 1);
                os << indent << "}";
            }
            os << "\n";
            break;
          }
          case 5: { // bounded inner loop
            os << indent << "for (int q = 0; q < ("
               << rng.nextRange(2, 6) << " + (x & 3)); q = q + 1) {\n";
            int n = 1 + static_cast<int>(rng.nextBelow(2));
            for (int i = 0; i < n; ++i)
                stmt(depth + 1);
            os << indent << "}\n";
            break;
          }
        }
    };

    int top = 4 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < top; ++i)
        stmt(0);

    os << "    x = getc();\n";
    os << "  }\n";
    // Make every variable observable.
    os << "  putc('A' + (a & 15));\n";
    os << "  putc('A' + (b & 15));\n";
    os << "  putc('A' + (c & 15));\n";
    os << "  putc('A' + (d & 15));\n";
    os << "  int s = 0;\n";
    os << "  for (int i = 0; i < 64; i = i + 1) { s = s + arr[i];"
          " }\n";
    os << "  return s & 65535;\n";
    os << "}\n";
    return os.str();
}

std::string
randomInput(std::uint64_t seed)
{
    Rng rng(seed * 7 + 1);
    std::string input;
    int length = 40 + static_cast<int>(rng.nextBelow(80));
    for (int i = 0; i < length; ++i)
        input.push_back(static_cast<char>(rng.nextBelow(128)));
    return input;
}

class RandomPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomPrograms, AllModelsAllMachinesAgree)
{
    auto seed = static_cast<std::uint64_t>(GetParam());
    std::string source = randomProgram(seed);
    std::string input = randomInput(seed);

    RunResult ref;
    try {
        ref = runReference(source, input);
    } catch (const FatalError &) {
        GTEST_SKIP() << "generated program trapped in reference";
    }

    MachineConfig machines[] = {issue1(), issue4Branch1(),
                                issue8Branch1(), issue8Branch2()};
    for (Model model :
         {Model::Superblock, Model::CondMove, Model::FullPred}) {
        for (const MachineConfig &machine : machines) {
            CompileOptions opts;
            opts.model = model;
            opts.machine = machine;
            opts.profileInput = input;
            SimConfig sim;
            sim.machine = machine;
            sim.perfectCaches = (seed % 2) == 0;
            SimResult result =
                runModel(source, input, opts, sim);
            ASSERT_EQ(result.output, ref.output)
                << "seed " << seed << " model "
                << modelName(model) << " width "
                << machine.issueWidth << "\n"
                << source;
            ASSERT_EQ(result.exitValue, ref.exitValue)
                << "seed " << seed << " model "
                << modelName(model);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPrograms,
                         ::testing::Range(1, 25));

} // namespace
} // namespace predilp
