/**
 * @file
 * Reproduces Table 1 of the paper: the predicate definition truth
 * table for U, OR, AND types and their complements.
 */

#include <gtest/gtest.h>

#include "ir/pred.hh"

namespace predilp
{
namespace
{

TEST(PredTypeTable, UnconditionalWritesAlways)
{
    // Pin=0 -> 0 regardless of comparison and old value.
    for (bool cmp : {false, true}) {
        for (bool old : {false, true}) {
            EXPECT_FALSE(applyPredType(PredType::U, false, cmp, old));
            EXPECT_FALSE(
                applyPredType(PredType::UBar, false, cmp, old));
        }
    }
    // Pin=1 -> comparison result (complement for UBar).
    for (bool old : {false, true}) {
        EXPECT_FALSE(applyPredType(PredType::U, true, false, old));
        EXPECT_TRUE(applyPredType(PredType::U, true, true, old));
        EXPECT_TRUE(applyPredType(PredType::UBar, true, false, old));
        EXPECT_FALSE(applyPredType(PredType::UBar, true, true, old));
    }
}

TEST(PredTypeTable, OrLeavesUnchangedUnlessSetting)
{
    // Pin=0 -> unchanged.
    for (bool cmp : {false, true}) {
        EXPECT_FALSE(applyPredType(PredType::Or, false, cmp, false));
        EXPECT_TRUE(applyPredType(PredType::Or, false, cmp, true));
    }
    // Pin=1, cmp=1 -> 1; Pin=1, cmp=0 -> unchanged.
    EXPECT_TRUE(applyPredType(PredType::Or, true, true, false));
    EXPECT_TRUE(applyPredType(PredType::Or, true, true, true));
    EXPECT_FALSE(applyPredType(PredType::Or, true, false, false));
    EXPECT_TRUE(applyPredType(PredType::Or, true, false, true));
}

TEST(PredTypeTable, OrBarSetsOnFalseComparison)
{
    EXPECT_TRUE(applyPredType(PredType::OrBar, true, false, false));
    EXPECT_FALSE(applyPredType(PredType::OrBar, true, true, false));
    EXPECT_TRUE(applyPredType(PredType::OrBar, true, true, true));
    EXPECT_FALSE(applyPredType(PredType::OrBar, false, false, false));
}

TEST(PredTypeTable, AndClearsOnFalseComparison)
{
    // Table 1: AND writes 0 when Pin=1 and cmp=0, else unchanged.
    EXPECT_FALSE(applyPredType(PredType::And, true, false, true));
    EXPECT_FALSE(applyPredType(PredType::And, true, false, false));
    EXPECT_TRUE(applyPredType(PredType::And, true, true, true));
    EXPECT_FALSE(applyPredType(PredType::And, true, true, false));
    EXPECT_TRUE(applyPredType(PredType::And, false, false, true));
    EXPECT_TRUE(applyPredType(PredType::And, false, true, true));
}

TEST(PredTypeTable, AndBarClearsOnTrueComparison)
{
    EXPECT_FALSE(applyPredType(PredType::AndBar, true, true, true));
    EXPECT_TRUE(applyPredType(PredType::AndBar, true, false, true));
    EXPECT_TRUE(applyPredType(PredType::AndBar, false, true, true));
}

/**
 * Property sweep: every (type, pin, cmp, old) combination agrees
 * with the closed-form restatement of Table 1.
 */
struct PredCase
{
    PredType type;
    bool pin, cmp, old;
};

class PredTypeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PredTypeSweep, MatchesClosedForm)
{
    int bits = GetParam();
    auto type = static_cast<PredType>(bits >> 3);
    bool pin = (bits >> 2) & 1;
    bool cmp = (bits >> 1) & 1;
    bool old = bits & 1;

    bool expected = false;
    switch (type) {
      case PredType::U: expected = pin && cmp; break;
      case PredType::UBar: expected = pin && !cmp; break;
      case PredType::Or: expected = (pin && cmp) || old; break;
      case PredType::OrBar: expected = (pin && !cmp) || old; break;
      case PredType::And: expected = !(pin && !cmp) && old; break;
      case PredType::AndBar: expected = !(pin && cmp) && old; break;
    }
    EXPECT_EQ(applyPredType(type, pin, cmp, old), expected);
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PredTypeSweep,
                         ::testing::Range(0, 6 * 8));

TEST(PredTypeNames, AreDistinct)
{
    EXPECT_EQ(predTypeName(PredType::U), "U");
    EXPECT_EQ(predTypeName(PredType::UBar), "U!");
    EXPECT_EQ(predTypeName(PredType::Or), "OR");
    EXPECT_EQ(predTypeName(PredType::OrBar), "OR!");
    EXPECT_EQ(predTypeName(PredType::And), "AND");
    EXPECT_EQ(predTypeName(PredType::AndBar), "AND!");
}

} // namespace
} // namespace predilp
