#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/verifier.hh"

namespace predilp
{
namespace
{

/** Build the minimal valid function: entry that returns. */
Function *
makeRet(Program &prog, const std::string &name = "f")
{
    Function *fn = prog.newFunction(name);
    IRBuilder b(fn);
    b.startBlock();
    b.ret();
    return fn;
}

TEST(Verifier, AcceptsMinimalFunction)
{
    Program prog;
    Function *fn = makeRet(prog);
    EXPECT_EQ(verifyFunction(*fn), "");
}

TEST(Verifier, RejectsFallOffEnd)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg r0 = fn->newIntReg();
    b.mov(r0, Operand::imm(1));
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("neither transfers nor falls"),
              std::string::npos);
}

TEST(Verifier, AcceptsFallthroughChain)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *b0 = b.startBlock();
    BasicBlock *b1 = fn->newBlock();
    b0->setFallthrough(b1->id());
    b.setBlock(b1);
    b.ret();
    EXPECT_EQ(verifyFunction(*fn), "");
}

TEST(Verifier, RejectsBadBranchTarget)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg r0 = fn->newIntReg();
    b.branch(Opcode::Beq, Operand(r0), Operand::imm(0), 99);
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("branch target"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeRegister)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    b.mov(intReg(5), Operand::imm(0)); // r5 never allocated.
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(Verifier, RejectsNonPredGuard)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg r0 = fn->newIntReg();
    Reg r1 = fn->newIntReg();
    b.mov(r0, Operand::imm(1)).setGuard(r1);
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("guard is not a predicate"),
              std::string::npos);
}

TEST(Verifier, RejectsPredDefineWithoutDests)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Instruction def(Opcode::PredEq);
    def.addSrc(Operand::imm(0));
    def.addSrc(Operand::imm(0));
    b.append(std::move(def));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("1 or 2 dests"), std::string::npos);
}

TEST(Verifier, RejectsWrongOperandCounts)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Instruction st(Opcode::St);
    st.addSrc(Operand::imm(64)); // stores need 3 sources.
    b.append(std::move(st));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("expected 3 sources"), std::string::npos);
}

TEST(Verifier, ChecksCallArityAgainstProgram)
{
    Program prog;
    Function *callee = prog.newFunction("callee");
    callee->addParam(callee->newIntReg());
    IRBuilder cb(callee);
    cb.startBlock();
    cb.ret();

    Function *caller = prog.newFunction("main");
    IRBuilder b(caller);
    b.startBlock();
    b.call("callee", Reg(), {}); // 0 args vs 1 param.
    b.ret();

    std::string err = verifyFunction(*caller, &prog);
    EXPECT_NE(err.find("arity"), std::string::npos);

    std::string errNoProg = verifyFunction(*caller);
    EXPECT_EQ(errNoProg, "");
}

TEST(Verifier, RejectsUnknownCallee)
{
    Program prog;
    Function *caller = prog.newFunction("main");
    IRBuilder b(caller);
    b.startBlock();
    b.call("ghost", Reg(), {});
    b.ret();
    std::string err = verifyProgram(prog);
    EXPECT_NE(err.find("unknown callee"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateInstructionIds)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg r0 = fn->newIntReg();
    auto &first = b.mov(r0, Operand::imm(1));
    Instruction dup(Opcode::Mov);
    dup.setDest(r0);
    dup.addSrc(Operand::imm(2));
    dup.setId(first.id());
    b.append(std::move(dup));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("duplicate instruction id"),
              std::string::npos);
}

TEST(Verifier, RejectsGuardNeverDefined)
{
    // A guarded instruction whose guard predicate has no define
    // anywhere in the function: flow-insensitive use-before-def.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    Reg r0 = fn->newIntReg();
    b.mov(r0, Operand::imm(1)).setGuard(p0);
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("never defined"), std::string::npos);
}

TEST(Verifier, RejectsGuardedBranchAcrossBlocksWithoutDefine)
{
    // The guard is minted in one block and used in another, the way
    // hyperblock formation guards side-exit branches — but no block
    // ever defines it.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *b0 = b.startBlock();
    BasicBlock *b1 = fn->newBlock();
    b0->setFallthrough(b1->id());
    Reg p0 = fn->newPredReg();
    b.setBlock(b1);
    Reg r0 = fn->newIntReg();
    b.branch(Opcode::Beq, Operand(r0), Operand::imm(0), b1->id())
        .setGuard(p0);
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("use before def"), std::string::npos);
}

TEST(Verifier, RejectsUnseededOrTypeDest)
{
    // An OR-type define leaves its dest unchanged when it does not
    // fire (Table 1), so a dest with no U-type define and no
    // pred_clear/pred_set anywhere reads an undefined register.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    b.predDefine(Opcode::PredEq, PredDest{p0, PredType::Or},
                 Operand::imm(1), Operand::imm(1));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("no unconditional initialization"),
              std::string::npos);
}

TEST(Verifier, AcceptsOrTypeDestSeededByPredClear)
{
    // The same OR chain is valid once a pred_clear prologue (what
    // hyperblock formation emits) unconditionally seeds the file.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    b.predAll(Opcode::PredClear);
    b.predDefine(Opcode::PredEq, PredDest{p0, PredType::Or},
                 Operand::imm(1), Operand::imm(1));
    b.ret();
    EXPECT_EQ(verifyFunction(*fn), "");
}

TEST(Verifier, RejectsUnseededAndTypeDest)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    b.predDefine(Opcode::PredLt, PredDest{p0, PredType::And},
                 Operand::imm(0), Operand::imm(1));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("no unconditional initialization"),
              std::string::npos);
}

TEST(Verifier, RejectsDuplicatePredicateDestinations)
{
    // A two-dest define writing the same register twice is a
    // malformed complement pair (the U/UBar pair must be distinct).
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    b.predDefine2(Opcode::PredEq, PredDest{p0, PredType::U},
                  PredDest{p0, PredType::UBar}, Operand::imm(0),
                  Operand::imm(0));
    b.ret();
    std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("duplicate predicate destination"),
              std::string::npos);
}

TEST(Verifier, AcceptsUTypeGuardedUse)
{
    // The well-formed shape: a U-type define dominating-by-layout a
    // guarded consumer verifies cleanly.
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p0 = fn->newPredReg();
    Reg r0 = fn->newIntReg();
    b.predDefine(Opcode::PredEq, PredDest{p0, PredType::U},
                 Operand::imm(1), Operand::imm(1));
    b.mov(r0, Operand::imm(7)).setGuard(p0);
    b.ret();
    EXPECT_EQ(verifyFunction(*fn), "");
}

TEST(Verifier, ProgramVerifiesAllFunctions)
{
    Program prog;
    makeRet(prog, "a");
    Function *bad = prog.newFunction("b");
    IRBuilder b(bad);
    b.startBlock();
    // No terminator.
    Reg r0 = bad->newIntReg();
    b.mov(r0, Operand::imm(0));
    EXPECT_NE(verifyProgram(prog), "");
}

} // namespace
} // namespace predilp
