#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.hh"
#include "support/logging.hh"
#include "ir/printer.hh"
#include "ir/program.hh"

namespace predilp
{
namespace
{

TEST(Reg, BasicsAndOrdering)
{
    Reg invalid;
    EXPECT_FALSE(invalid.valid());
    EXPECT_EQ(invalid.toString(), "-");

    Reg r3 = intReg(3);
    Reg f1 = floatReg(1);
    Reg p0 = predReg(0);
    EXPECT_EQ(r3.toString(), "r3");
    EXPECT_EQ(f1.toString(), "f1");
    EXPECT_EQ(p0.toString(), "p0");
    EXPECT_TRUE(intReg(3) == r3);
    EXPECT_TRUE(intReg(2) < intReg(3));
    EXPECT_TRUE(r3 != f1);
}

TEST(Operand, KindsAndEquality)
{
    Operand none;
    EXPECT_TRUE(none.isNone());
    Operand r(intReg(5));
    EXPECT_TRUE(r.isReg());
    Operand i = Operand::imm(-7);
    EXPECT_TRUE(i.isImm());
    EXPECT_EQ(i.immValue(), -7);
    Operand f = Operand::fimm(2.5);
    EXPECT_TRUE(f.isFImm());
    EXPECT_EQ(f.fimmValue(), 2.5);
    EXPECT_TRUE(i == Operand::imm(-7));
    EXPECT_FALSE(i == Operand::imm(7));
    EXPECT_FALSE(i == r);
}

TEST(OpcodeInfo, Classification)
{
    EXPECT_TRUE(opcodeInfo(Opcode::Beq).isCondBranch);
    EXPECT_TRUE(opcodeInfo(Opcode::Ld).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::St).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::PredEq).isPredDefine);
    EXPECT_TRUE(opcodeInfo(Opcode::PredClear).isPredAll);
    EXPECT_TRUE(opcodeInfo(Opcode::CMov).isCondMove);
    EXPECT_TRUE(opcodeInfo(Opcode::Select).isSelect);
    EXPECT_TRUE(opcodeInfo(Opcode::Div).canTrap);
    EXPECT_FALSE(opcodeInfo(Opcode::Add).canTrap);
    EXPECT_TRUE(isControl(Opcode::Jump));
    EXPECT_TRUE(isControl(Opcode::Call));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::Add));
}

TEST(OpcodeInfo, ConditionEvaluation)
{
    EXPECT_TRUE(evalIntCondition(Opcode::Beq, 4, 4));
    EXPECT_FALSE(evalIntCondition(Opcode::Beq, 4, 5));
    EXPECT_TRUE(evalIntCondition(Opcode::Blt, -1, 0));
    EXPECT_TRUE(evalIntCondition(Opcode::CmpLtu, 1, -1)); // unsigned
    EXPECT_FALSE(evalIntCondition(Opcode::CmpLt, 1, -1));
    EXPECT_TRUE(evalFloatCondition(Opcode::FCmpLe, 1.0, 1.0));
    EXPECT_FALSE(evalFloatCondition(Opcode::FCmpGt, 1.0, 1.0));
}

TEST(OpcodeInfo, ConditionMappings)
{
    EXPECT_EQ(branchToCompare(Opcode::Blt), Opcode::CmpLt);
    EXPECT_EQ(branchToPredDefine(Opcode::Bge), Opcode::PredGe);
    EXPECT_EQ(predDefineToCompare(Opcode::PredNe), Opcode::CmpNe);
    EXPECT_EQ(invertCompare(Opcode::CmpLt), Opcode::CmpGe);
    EXPECT_EQ(invertCompare(Opcode::FCmpEq), Opcode::FCmpNe);
    EXPECT_EQ(invertBranch(Opcode::Ble), Opcode::Bgt);
    EXPECT_THROW(branchToCompare(Opcode::Add), PanicError);
}

TEST(Function, BlocksAndRegisters)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    BasicBlock *b0 = fn->newBlock("start");
    BasicBlock *b1 = fn->newBlock();
    EXPECT_EQ(fn->entry(), b0);
    EXPECT_EQ(fn->block(b1->id()), b1);
    EXPECT_EQ(fn->layout().size(), 2u);

    Reg r0 = fn->newIntReg();
    Reg r1 = fn->newIntReg();
    Reg f0 = fn->newFloatReg();
    Reg p0 = fn->newPredReg();
    EXPECT_EQ(r0.idx(), 0);
    EXPECT_EQ(r1.idx(), 1);
    EXPECT_EQ(f0.cls(), RegClass::Float);
    EXPECT_EQ(p0.cls(), RegClass::Pred);
    EXPECT_EQ(fn->numIntRegs(), 2);
}

TEST(Function, PruneUnreachable)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *entry = b.startBlock();
    BasicBlock *live = fn->newBlock();
    BasicBlock *dead = fn->newBlock();
    b.setBlock(entry);
    b.jump(live->id());
    b.setBlock(live);
    b.ret();
    b.setBlock(dead);
    b.ret();

    fn->pruneUnreachable();
    EXPECT_EQ(fn->layout().size(), 2u);
    for (BlockId id : fn->layout())
        EXPECT_NE(id, dead->id());
}

TEST(Block, SuccessorsInPriorityOrder)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *b0 = b.startBlock();
    BasicBlock *t1 = fn->newBlock();
    BasicBlock *t2 = fn->newBlock();
    BasicBlock *ft = fn->newBlock();
    b.setBlock(b0);
    Reg r0 = fn->newIntReg();
    b.branch(Opcode::Beq, Operand(r0), Operand::imm(0), t1->id());
    b.branch(Opcode::Bne, Operand(r0), Operand::imm(1), t2->id());
    b0->setFallthrough(ft->id());

    auto succs = b0->successors();
    ASSERT_EQ(succs.size(), 3u);
    EXPECT_EQ(succs[0], t1->id());
    EXPECT_EQ(succs[1], t2->id());
    EXPECT_EQ(succs[2], ft->id());
}

TEST(Block, UnconditionalJumpEndsSuccessors)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *b0 = b.startBlock();
    BasicBlock *t = fn->newBlock();
    b.setBlock(b0);
    b.jump(t->id());
    b0->setFallthrough(t->id()); // should be ignored.

    auto succs = b0->successors();
    ASSERT_EQ(succs.size(), 1u);
    EXPECT_TRUE(b0->endsInUnconditionalTransfer());
}

TEST(Block, GuardedJumpDoesNotTerminate)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    BasicBlock *b0 = b.startBlock();
    BasicBlock *t = fn->newBlock();
    BasicBlock *ft = fn->newBlock();
    b.setBlock(b0);
    Reg p = fn->newPredReg();
    b.jump(t->id()).setGuard(p);
    b0->setFallthrough(ft->id());

    EXPECT_FALSE(b0->endsInUnconditionalTransfer());
    auto succs = b0->successors();
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], t->id());
    EXPECT_EQ(succs[1], ft->id());
}

TEST(Program, GlobalsAreAlignedAndAboveSafeAddr)
{
    Program prog;
    std::int64_t a = prog.allocGlobal("x", 8, 8, false);
    std::int64_t b = prog.allocGlobal("buf", 13, 1, false);
    std::int64_t c = prog.allocGlobal("y", 8, 8, false);
    EXPECT_GE(a, 64);
    EXPECT_EQ(a % 8, 0);
    EXPECT_EQ(b % 8, 0);
    EXPECT_EQ(c % 8, 0);
    EXPECT_GT(c, b);
    EXPECT_LT(Program::safeAddr, 64);
    EXPECT_NE(prog.global("buf"), nullptr);
    EXPECT_EQ(prog.global("nope"), nullptr);
}

TEST(Printer, ShowsGuardAndPredDests)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock();
    Reg p1 = fn->newPredReg();
    Reg p2 = fn->newPredReg();
    Reg pin = fn->newPredReg();
    Reg r0 = fn->newIntReg();
    auto &def = b.predDefine2(
        Opcode::PredEq, PredDest{p1, PredType::Or},
        PredDest{p2, PredType::UBar}, Operand(r0), Operand::imm(0),
        pin);
    std::string text = def.toString();
    EXPECT_NE(text.find("pred_eq"), std::string::npos);
    EXPECT_NE(text.find("p0<OR>"), std::string::npos);
    EXPECT_NE(text.find("p1<U!>"), std::string::npos);
    EXPECT_NE(text.find("(p2)"), std::string::npos);
}

TEST(Printer, WholeFunctionDump)
{
    Program prog;
    Function *fn = prog.newFunction("f");
    IRBuilder b(fn);
    b.startBlock("top");
    Reg r0 = fn->newIntReg();
    b.mov(r0, Operand::imm(42));
    b.ret(Operand(r0));
    std::ostringstream os;
    printFunction(os, *fn);
    std::string out = os.str();
    EXPECT_NE(out.find("function f"), std::string::npos);
    EXPECT_NE(out.find("mov r0, 42"), std::string::npos);
    EXPECT_NE(out.find("ret r0"), std::string::npos);
}

} // namespace
} // namespace predilp
