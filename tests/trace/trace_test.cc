/**
 * @file
 * Trace capture/replay tests: replay(capture(prog)) must be
 * field-for-field identical to the fused simulate() path for every
 * model, replaying one buffer twice must agree, one buffer must be
 * replayable under many SimConfigs, and the chunked storage must
 * survive chunk-boundary rollover in both streams.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "sim/timing.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

void
expectSimEq(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.nullified, b.nullified);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.output, b.output);
}

std::unique_ptr<Program>
compiledWorkload(const Workload &workload, Model model,
                 const std::string &input)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    return compileForModel(workload.source, opts);
}

TEST(Replay, MatchesInlineSimulateEveryModel)
{
    for (const char *name : {"cmp", "wc"}) {
        const Workload *workload = findWorkload(name);
        ASSERT_NE(workload, nullptr);
        std::string input = workload->makeInput(1);
        for (Model model : {Model::Superblock, Model::CondMove,
                            Model::FullPred}) {
            auto prog = compiledWorkload(*workload, model, input);
            SimConfig sim;
            sim.machine = issue8Branch1();
            SimResult inlined = simulate(*prog, input, sim);
            auto buffer = capture(*prog, input);
            SimResult replayed = replay(*buffer, sim);
            SCOPED_TRACE(workload->name + "/" + modelName(model));
            expectSimEq(inlined, replayed);
        }
    }
}

TEST(Replay, SameBufferTwiceAgrees)
{
    const Workload *workload = findWorkload("qsort");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::FullPred, input);
    auto buffer = capture(*prog, input);
    SimConfig sim;
    sim.machine = issue8Branch1();
    expectSimEq(replay(*buffer, sim), replay(*buffer, sim));
}

TEST(Replay, OneBufferManyConfigs)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::FullPred, input);
    auto buffer = capture(*prog, input);

    // The trace stream never depends on the SimConfig: replaying the
    // one buffer must match a fresh fused simulation per config.
    SimConfig real;
    real.machine = issue8Branch1();
    real.perfectCaches = false;
    expectSimEq(replay(*buffer, real), simulate(*prog, input, real));

    SimConfig narrow;
    narrow.machine = issue1();
    expectSimEq(replay(*buffer, narrow),
                simulate(*prog, input, narrow));

    SimConfig smallBtb;
    smallBtb.machine = issue8Branch2();
    smallBtb.btbEntries = 16;
    expectSimEq(replay(*buffer, smallBtb),
                simulate(*prog, input, smallBtb));
}

TEST(Replay, BufferIsSelfContained)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    SimConfig sim;
    sim.machine = issue8Branch1();
    SimResult inlined = simulate(*prog, input, sim);
    auto buffer = capture(*prog, input);
    prog.reset(); // replay must not touch the IR.
    expectSimEq(inlined, replay(*buffer, sim));
}

TEST(TraceBuffer, CursorSurvivesChunkRollover)
{
    Program prog;
    TraceBuffer buffer(prog);
    // Enough records to roll both streams over several chunks; every
    // third record carries a memory address.
    const std::uint64_t n = 3 * TraceBuffer::chunkEntries + 17;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t flags =
            (i % 3 == 0) ? traceHasMemAddr : traceTaken;
        buffer.append(static_cast<std::uint32_t>(i % 977), flags,
                      static_cast<std::int64_t>(i * 8));
    }
    EXPECT_EQ(buffer.size(), n);

    TraceBuffer::Cursor cursor(buffer);
    TraceEntry entry;
    std::int64_t memAddr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(cursor.next(entry, memAddr));
        EXPECT_EQ(entry.staticId, i % 977);
        if (i % 3 == 0) {
            EXPECT_EQ(entry.flags, traceHasMemAddr);
            EXPECT_EQ(memAddr, static_cast<std::int64_t>(i * 8));
        } else {
            EXPECT_EQ(entry.flags, traceTaken);
        }
    }
    EXPECT_FALSE(cursor.next(entry, memAddr));
}

TEST(TraceBuffer, RecordsFunctionalRun)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    auto buffer = capture(*prog, input);
    RunResult reference = runReference(workload->source, input);
    EXPECT_EQ(buffer->run().output, reference.output);
    EXPECT_EQ(buffer->run().exitValue, reference.exitValue);
    EXPECT_GT(buffer->size(), 0u);
    EXPECT_GT(buffer->memoryBytes(), 0u);
}

} // namespace
} // namespace predilp
