/**
 * @file
 * Trace capture/replay tests: replay(capture(prog)) must be
 * bit-for-bit identical to the fused simulate() path — cycles, every
 * headline counter, and the full sim.* stats snapshot — for every
 * model, replaying one buffer twice must agree, one buffer must be
 * replayable under many SimConfigs, and the chunked storage must
 * survive chunk-boundary rollover in both streams. The packed
 * 4-byte entry format and the zigzag-varint memory side stream get
 * direct edge-case coverage: negative deltas, >32-bit addresses,
 * and static ids beyond the 29-bit packing limit.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "sim/timing.hh"
#include "support/logging.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

void
expectSimEq(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.nullified, b.nullified);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.output, b.output);
    // The detailed sim.* machine counters must agree leaf for leaf.
    EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

std::unique_ptr<Program>
compiledWorkload(const Workload &workload, Model model,
                 const std::string &input)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    return compileForModel(workload.source, opts);
}

TEST(Replay, MatchesInlineSimulateEveryModel)
{
    for (const char *name : {"cmp", "wc"}) {
        const Workload *workload = findWorkload(name);
        ASSERT_NE(workload, nullptr);
        std::string input = workload->makeInput(1);
        for (Model model : {Model::Superblock, Model::CondMove,
                            Model::FullPred}) {
            auto prog = compiledWorkload(*workload, model, input);
            SimConfig sim;
            sim.machine = issue8Branch1();
            SimResult inlined = simulate(*prog, input, sim);
            auto buffer = capture(*prog, input);
            SimResult replayed = replay(*buffer, sim);
            SCOPED_TRACE(workload->name + "/" + modelName(model));
            expectSimEq(inlined, replayed);
        }
    }
}

TEST(Replay, MatchesInlineSimulateRealCachesEveryModel)
{
    // Real caches exercise the varint address stream on the pricing
    // path (the d-cache sees every decoded address), so the packed
    // side stream must reproduce each address exactly.
    for (const char *name : {"cmp", "wc"}) {
        const Workload *workload = findWorkload(name);
        ASSERT_NE(workload, nullptr);
        std::string input = workload->makeInput(1);
        for (Model model : {Model::Superblock, Model::CondMove,
                            Model::FullPred}) {
            auto prog = compiledWorkload(*workload, model, input);
            SimConfig sim;
            sim.machine = issue8Branch1();
            sim.perfectCaches = false;
            SimResult inlined = simulate(*prog, input, sim);
            auto buffer = capture(*prog, input);
            SimResult replayed = replay(*buffer, sim);
            SCOPED_TRACE(workload->name + "/" + modelName(model));
            expectSimEq(inlined, replayed);
        }
    }
}

TEST(Replay, SameBufferTwiceAgrees)
{
    const Workload *workload = findWorkload("qsort");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::FullPred, input);
    auto buffer = capture(*prog, input);
    SimConfig sim;
    sim.machine = issue8Branch1();
    expectSimEq(replay(*buffer, sim), replay(*buffer, sim));
}

TEST(Replay, OneBufferManyConfigs)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::FullPred, input);
    auto buffer = capture(*prog, input);

    // The trace stream never depends on the SimConfig: replaying the
    // one buffer must match a fresh fused simulation per config.
    SimConfig real;
    real.machine = issue8Branch1();
    real.perfectCaches = false;
    expectSimEq(replay(*buffer, real), simulate(*prog, input, real));

    SimConfig narrow;
    narrow.machine = issue1();
    expectSimEq(replay(*buffer, narrow),
                simulate(*prog, input, narrow));

    SimConfig smallBtb;
    smallBtb.machine = issue8Branch2();
    smallBtb.btbEntries = 16;
    expectSimEq(replay(*buffer, smallBtb),
                simulate(*prog, input, smallBtb));
}

TEST(Replay, BufferIsSelfContained)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    SimConfig sim;
    sim.machine = issue8Branch1();
    SimResult inlined = simulate(*prog, input, sim);
    auto buffer = capture(*prog, input);
    prog.reset(); // replay must not touch the IR.
    expectSimEq(inlined, replay(*buffer, sim));
}

TEST(TraceEntryPacking, RoundTripsIdAndFlags)
{
    const std::uint32_t allFlags =
        traceNullified | traceTaken | traceHasMemAddr;
    for (std::uint32_t id : {0u, 1u, 976u, traceMaxStaticId}) {
        for (std::uint32_t flags :
             {0u, traceNullified, traceTaken, traceHasMemAddr,
              allFlags}) {
            TraceEntry entry = makeTraceEntry(id, flags);
            EXPECT_EQ(entry.staticId(), id);
            EXPECT_EQ(entry.flags(), flags);
        }
    }
    EXPECT_EQ(sizeof(TraceEntry), 4u);
}

TEST(TraceEntryPacking, RejectsIdBeyond29Bits)
{
    // Ids at the 29-bit boundary must be rejected with a clear
    // error, never silently truncated into the flag bits.
    EXPECT_NO_THROW(makeTraceEntry(traceMaxStaticId, traceTaken));
    EXPECT_THROW(makeTraceEntry(traceMaxStaticId + 1, 0),
                 PanicError);
    EXPECT_THROW(makeTraceEntry(0xFFFFFFFFu, 0), PanicError);

    Program prog;
    TraceBuffer buffer(prog);
    EXPECT_THROW(buffer.append(traceMaxStaticId + 1, 0, 0),
                 PanicError);
}

TEST(Varint, ZigzagRoundTripsExtremes)
{
    const std::int64_t cases[] = {
        0,
        1,
        -1,
        63,
        -64,
        // Deltas beyond 32 bits in both directions.
        (std::int64_t{1} << 40) + 123,
        -((std::int64_t{1} << 40) + 123),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(),
    };
    for (std::int64_t v : cases) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
        std::vector<std::uint8_t> bytes;
        appendVarint(bytes, zigzagEncode(v));
        EXPECT_LE(bytes.size(), 10u);
        const std::uint8_t *p = bytes.data();
        EXPECT_EQ(zigzagDecode(
                      decodeVarint(p, bytes.data() + bytes.size())),
                  v)
            << v;
        EXPECT_EQ(p, bytes.data() + bytes.size());
    }
    // Small magnitudes must stay small on the wire.
    std::vector<std::uint8_t> small;
    appendVarint(small, zigzagEncode(-3));
    EXPECT_EQ(small.size(), 1u);
}

TEST(Varint, MalformedStreamsThrowInsteadOfOverrunning)
{
    // Every proper prefix of a valid encoding ends mid-value and
    // must throw, with the cursor never advanced past `end`.
    std::vector<std::uint8_t> bytes;
    appendVarint(bytes,
                 zigzagEncode((std::int64_t{1} << 40) + 12345));
    ASSERT_GT(bytes.size(), 1u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::uint8_t *p = bytes.data();
        const std::uint8_t *end = bytes.data() + len;
        EXPECT_THROW(decodeVarint(p, end), TraceCorruptError)
            << "prefix length " << len;
        EXPECT_LE(p, end);
    }

    // A runaway stream of continuation bytes must be rejected once
    // its bits exceed the 64-bit range, not decoded forever.
    std::vector<std::uint8_t> runaway(16, 0x80);
    const std::uint8_t *p = runaway.data();
    EXPECT_THROW(
        decodeVarint(p, runaway.data() + runaway.size()),
        TraceCorruptError);
}

TEST(TraceBuffer, MemStreamHandlesNegativeAndWideDeltas)
{
    Program prog;
    TraceBuffer buffer(prog);
    // Address sequence exercising negative deltas, >32-bit jumps,
    // and a return to small addresses.
    const std::int64_t addrs[] = {
        0x1000,
        0x0008,                      // negative delta.
        (std::int64_t{1} << 41) + 5, // >32-bit address.
        (std::int64_t{1} << 41) - 3, // negative delta at altitude.
        16,                          // huge negative delta.
        16,                          // zero delta.
    };
    for (std::int64_t addr : addrs)
        buffer.append(7, traceHasMemAddr, addr);

    TraceBuffer::Cursor cursor(buffer);
    TraceEntry entry;
    std::int64_t memAddr = 0;
    for (std::int64_t addr : addrs) {
        ASSERT_TRUE(cursor.next(entry, memAddr));
        EXPECT_EQ(entry.staticId(), 7u);
        EXPECT_EQ(memAddr, addr);
    }
    EXPECT_FALSE(cursor.next(entry, memAddr));
}

TEST(TraceBuffer, CursorSurvivesChunkRollover)
{
    Program prog;
    TraceBuffer buffer(prog);
    // Enough records to roll both streams over several chunks; every
    // third record carries a memory address.
    const std::uint64_t n = 3 * TraceBuffer::chunkEntries + 17;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t flags =
            (i % 3 == 0) ? traceHasMemAddr : traceTaken;
        buffer.append(static_cast<std::uint32_t>(i % 977), flags,
                      static_cast<std::int64_t>(i * 8));
    }
    EXPECT_EQ(buffer.size(), n);

    TraceBuffer::Cursor cursor(buffer);
    TraceEntry entry;
    std::int64_t memAddr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(cursor.next(entry, memAddr));
        EXPECT_EQ(entry.staticId(), i % 977);
        if (i % 3 == 0) {
            EXPECT_EQ(entry.flags(), traceHasMemAddr);
            EXPECT_EQ(memAddr, static_cast<std::int64_t>(i * 8));
        } else {
            EXPECT_EQ(entry.flags(), traceTaken);
        }
    }
    EXPECT_FALSE(cursor.next(entry, memAddr));
}

TEST(TraceBuffer, ChunkCursorMatchesRecordCursor)
{
    Program prog;
    TraceBuffer buffer(prog);
    const std::uint64_t n = 2 * TraceBuffer::chunkEntries + 311;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t flags = (i % 5 == 0) ? traceHasMemAddr : 0;
        // Alternate small and large strides so deltas change sign
        // and width across chunk boundaries.
        std::int64_t addr = (i % 2 == 0)
                                ? static_cast<std::int64_t>(i * 8)
                                : (std::int64_t{1} << 36) -
                                      static_cast<std::int64_t>(i);
        buffer.append(static_cast<std::uint32_t>(i % 131), flags,
                      addr);
    }

    TraceBuffer::Cursor record(buffer);
    TraceBuffer::ChunkCursor chunks(buffer);
    const TraceEntry *entries = nullptr;
    std::size_t count = 0;
    const std::int64_t *addrs = nullptr;
    std::uint64_t seen = 0;
    while (chunks.next(entries, count, addrs)) {
        for (std::size_t i = 0; i < count; ++i, ++seen) {
            TraceEntry expected;
            std::int64_t expectedAddr = 0;
            ASSERT_TRUE(record.next(expected, expectedAddr));
            EXPECT_EQ(entries[i].packed, expected.packed);
            if ((entries[i].flags() & traceHasMemAddr) != 0) {
                EXPECT_EQ(*addrs++, expectedAddr);
            }
        }
    }
    EXPECT_EQ(seen, n);
    TraceEntry tail;
    std::int64_t tailAddr = 0;
    EXPECT_FALSE(record.next(tail, tailAddr));
}

TEST(TraceBuffer, PackedFormatShrinksFootprint)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    auto buffer = capture(*prog, input);
    ASSERT_GT(buffer->size(), 0u);
    // 4 bytes per entry plus the varint side stream: well under the
    // 8 bytes per entry + 8 bytes per address of the old format.
    EXPECT_LT(buffer->memoryBytes(), buffer->size() * 6);
}

TEST(TraceBuffer, RecordsFunctionalRun)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    auto prog =
        compiledWorkload(*workload, Model::Superblock, input);
    auto buffer = capture(*prog, input);
    RunResult reference = runReference(workload->source, input);
    EXPECT_EQ(buffer->run().output, reference.output);
    EXPECT_EQ(buffer->run().exitValue, reference.exitValue);
    EXPECT_GT(buffer->size(), 0u);
    EXPECT_GT(buffer->memoryBytes(), 0u);
}

} // namespace
} // namespace predilp
