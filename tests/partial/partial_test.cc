/**
 * @file
 * Unit tests for the full-to-partial predication lowering: the basic
 * conversions of Figures 3 and 4, $safe_addr store redirection,
 * predicate define lowering for every type, the or-tree, and select
 * formation.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "frontend/irgen.hh"
#include "hyperblock/hyperblock.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "partial/partial.hh"

namespace predilp
{
namespace
{

/** Assert the program contains no full-predication constructs. */
void
expectNoPredication(const Program &prog)
{
    for (const auto &fn : prog.functions()) {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                EXPECT_FALSE(instr.guarded()) << instr.toString();
                EXPECT_FALSE(instr.isPredDefine())
                    << instr.toString();
                EXPECT_FALSE(instr.isPredAll()) << instr.toString();
                for (const auto &src : instr.srcs()) {
                    if (src.isReg()) {
                        EXPECT_NE(src.reg().cls(), RegClass::Pred)
                            << instr.toString();
                    }
                }
            }
        }
    }
}

/** Build a one-block program with a guarded add: d = 5; if (p) d+=2. */
struct GuardedAdd
{
    Program prog;
    Function *fn;
    Reg p, d;

    explicit GuardedAdd(bool predTrue)
    {
        fn = prog.newFunction("main");
        fn->setRetKind(RetKind::Int);
        IRBuilder b(fn);
        b.startBlock();
        p = fn->newPredReg();
        d = fn->newIntReg();
        b.mov(d, Operand::imm(5));
        b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                     Operand::imm(predTrue ? 1 : 0),
                     Operand::imm(1));
        b.emit(Opcode::Add, d, Operand(d), Operand::imm(2))
            .setGuard(p);
        b.ret(Operand(d));
    }
};

TEST(Lowering, GuardedArithmeticBecomesCmov)
{
    for (bool predTrue : {true, false}) {
        GuardedAdd g(predTrue);
        PartialStats stats = lowerToPartial(*g.fn);
        EXPECT_EQ(stats.guardedLowered, 1);
        EXPECT_EQ(verifyProgram(g.prog), "");
        expectNoPredication(g.prog);

        int cmovs = 0;
        for (const auto &instr : g.fn->entry()->instrs()) {
            if (instr.info().isCondMove)
                cmovs += 1;
        }
        EXPECT_EQ(cmovs, 1);
        Emulator emu(g.prog);
        EXPECT_EQ(emu.run("").exitValue, predTrue ? 7 : 5);
    }
}

TEST(Lowering, GuardedStoreRedirectsToSafeAddr)
{
    for (bool predTrue : {true, false}) {
        Program prog;
        std::int64_t addr = prog.allocGlobal("g", 8, 8, false);
        Function *fn = prog.newFunction("main");
        fn->setRetKind(RetKind::Int);
        IRBuilder b(fn);
        b.startBlock();
        Reg p = fn->newPredReg();
        b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                     Operand::imm(predTrue ? 1 : 0),
                     Operand::imm(1));
        b.store(Opcode::St, Operand::imm(addr), Operand::imm(0),
                Operand::imm(99))
            .setGuard(p);
        Reg out = fn->newIntReg();
        b.load(Opcode::Ld, out, Operand::imm(addr),
               Operand::imm(0));
        b.ret(Operand(out));

        PartialStats stats = lowerToPartial(*fn);
        EXPECT_EQ(stats.storesRedirected, 1);
        EXPECT_EQ(verifyProgram(prog), "");
        expectNoPredication(prog);
        Emulator emu(prog);
        // Squashed store lands in $safe_addr, leaving g untouched.
        EXPECT_EQ(emu.run("").exitValue, predTrue ? 99 : 0);
    }
}

TEST(Lowering, GuardedBranchUsesInvertedCompare)
{
    for (int mode = 0; mode < 4; ++mode) {
        bool predTrue = mode & 1;
        bool condTrue = mode & 2;
        Program prog;
        Function *fn = prog.newFunction("main");
        fn->setRetKind(RetKind::Int);
        IRBuilder b(fn);
        BasicBlock *entry = b.startBlock();
        BasicBlock *target = fn->newBlock();
        BasicBlock *fall = fn->newBlock();
        Reg p = fn->newPredReg();
        b.setBlock(entry);
        b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                     Operand::imm(predTrue ? 1 : 0),
                     Operand::imm(1));
        b.branch(Opcode::Blt, Operand::imm(condTrue ? 1 : 5),
                 Operand::imm(3), target->id())
            .setGuard(p);
        b.jump(fall->id());
        b.setBlock(target);
        b.ret(Operand::imm(100));
        b.setBlock(fall);
        b.ret(Operand::imm(200));

        PartialStats stats = lowerToPartial(*fn);
        EXPECT_EQ(stats.branchesLowered, 1);
        expectNoPredication(prog);
        Emulator emu(prog);
        std::int64_t expected =
            (predTrue && condTrue) ? 100 : 200;
        EXPECT_EQ(emu.run("").exitValue, expected) << mode;
    }
}

/**
 * Property sweep over all predicate define types, Pin values, and
 * comparison outcomes: lowered semantics must match Table 1.
 */
class DefineLowering : public ::testing::TestWithParam<int>
{
};

TEST_P(DefineLowering, MatchesTable1)
{
    int bits = GetParam();
    auto type = static_cast<PredType>(bits % 6);
    bool pin = (bits / 6) & 1;
    bool cmp = (bits / 12) & 1;
    bool old = (bits / 24) & 1;

    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg pPin = fn->newPredReg();
    Reg pOut = fn->newPredReg();
    Reg out = fn->newIntReg();
    // Seed pin and the old value of pOut.
    b.predDefine(Opcode::PredEq, PredDest{pPin, PredType::U},
                 Operand::imm(pin ? 1 : 0), Operand::imm(1));
    b.predDefine(Opcode::PredEq, PredDest{pOut, PredType::U},
                 Operand::imm(old ? 1 : 0), Operand::imm(1));
    // The define under test.
    b.predDefine(Opcode::PredEq, PredDest{pOut, type},
                 Operand::imm(cmp ? 1 : 0), Operand::imm(1), pPin);
    // Materialize the predicate into an int result.
    b.mov(out, Operand::imm(0));
    b.mov(out, Operand::imm(1)).setGuard(pOut);
    b.ret(Operand(out));

    bool expected = applyPredType(type, pin, cmp, old);

    // Full predication semantics agree...
    {
        Emulator emu(prog);
        EXPECT_EQ(emu.run("").exitValue, expected ? 1 : 0);
    }
    // ...and the partial lowering matches exactly.
    lowerToPartial(*fn);
    EXPECT_EQ(verifyProgram(prog), "");
    expectNoPredication(prog);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, expected ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, DefineLowering,
                         ::testing::Range(0, 48));

TEST(Lowering, ExceptingModeGuardsDivisorAndAddress)
{
    // Figure 4: without silent instructions, the faulting source is
    // replaced via cmov_com when the guard is false.
    Program prog;
    std::int64_t addr = prog.allocGlobal("g", 8, 8, false);
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg p = fn->newPredReg();
    Reg q = fn->newIntReg();
    Reg l = fn->newIntReg();
    // p = false: both guarded ops are squashed and must not trap.
    b.predDefine(Opcode::PredEq, PredDest{p, PredType::U},
                 Operand::imm(0), Operand::imm(1));
    b.emit(Opcode::Div, q, Operand::imm(10), Operand::imm(0))
        .setGuard(p); // divide by zero if executed!
    b.load(Opcode::Ld, l, Operand::imm(-4096), Operand::imm(0))
        .setGuard(p); // wild address if executed!
    b.store(Opcode::St, Operand::imm(addr), Operand::imm(0),
            Operand::imm(1))
        .setGuard(p);
    b.ret(Operand::imm(55));

    PartialOptions opts;
    opts.nonExcepting = false; // Figure 4 conversions.
    lowerToPartial(*fn, opts);
    EXPECT_EQ(verifyProgram(prog), "");
    expectNoPredication(prog);

    // No instruction needs the silent form.
    for (BlockId id : fn->layout()) {
        for (const auto &instr : fn->block(id)->instrs())
            EXPECT_FALSE(instr.speculative()) << instr.toString();
    }
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 55);
}

TEST(OrTree, RebalancesAccumulations)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg acc = fn->newIntReg();
    std::vector<Reg> terms;
    b.mov(acc, Operand::imm(0));
    for (int i = 0; i < 7; ++i) {
        Reg t = fn->newIntReg();
        b.mov(t, Operand::imm(1 << i));
        terms.push_back(t);
    }
    for (Reg t : terms)
        b.emit(Opcode::Or, acc, Operand(acc), Operand(t));
    b.ret(Operand(acc));

    int rebalanced = rebalanceReductionTrees(*fn);
    EXPECT_EQ(rebalanced, 1);
    EXPECT_EQ(verifyProgram(prog), "");
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 127);

    // Depth check: longest OR chain ending in acc should now be
    // about log2(8) = 3 rather than 7. Count OR instructions on the
    // longest dependence chain.
    // (Rough check: the rebalanced tree has the same count of ORs.)
    int ors = 0;
    for (const auto &instr : fn->entry()->instrs()) {
        if (instr.op() == Opcode::Or)
            ors += 1;
    }
    EXPECT_EQ(ors, 7); // a tree over 8 leaves has 7 combines.
}

TEST(OrTree, StopsAtAccumulatorReads)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg acc = fn->newIntReg();
    Reg snap = fn->newIntReg();
    b.mov(acc, Operand::imm(1));
    b.emit(Opcode::Or, acc, Operand(acc), Operand::imm(2));
    b.mov(snap, Operand(acc)); // observes the intermediate value!
    b.emit(Opcode::Or, acc, Operand(acc), Operand::imm(4));
    b.emit(Opcode::Or, acc, Operand(acc), Operand::imm(8));
    Reg out = fn->newIntReg();
    b.emit(Opcode::Mul, out, Operand(snap), Operand::imm(100));
    b.emit(Opcode::Add, out, Operand(out), Operand(acc));
    b.ret(Operand(out));

    rebalanceReductionTrees(*fn);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 3 * 100 + 15);
}

TEST(Select, FusesCmovPairs)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg c = fn->newIntReg();
    Reg d = fn->newIntReg();
    b.getc(c);
    b.cmov(Opcode::CMov, d, Operand::imm(10), Operand(c));
    b.cmov(Opcode::CMovCom, d, Operand::imm(20), Operand(c));
    b.ret(Operand(d));

    EXPECT_EQ(formSelects(*fn), 1);
    EXPECT_EQ(verifyProgram(prog), "");
    int selects = 0;
    for (const auto &instr : fn->entry()->instrs()) {
        if (instr.info().isSelect)
            selects += 1;
    }
    EXPECT_EQ(selects, 1);
    Emulator e1(prog);
    EXPECT_EQ(e1.run("x").exitValue, 10); // c = 'x' != 0.
    // EOF input: getc yields -1 (still nonzero -> 10); use a NUL.
    std::string nul(1, '\0');
    Emulator e2(prog);
    EXPECT_EQ(e2.run(nul).exitValue, 20);
}

TEST(Select, FusesMovThenCmov)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg c = fn->newIntReg();
    Reg d = fn->newIntReg();
    b.getc(c);
    b.mov(d, Operand::imm(7));
    b.cmov(Opcode::CMov, d, Operand::imm(3), Operand(c));
    b.ret(Operand(d));

    EXPECT_EQ(formSelects(*fn), 1);
    Emulator e1(prog);
    EXPECT_EQ(e1.run("x").exitValue, 3);
    std::string nul(1, '\0');
    Emulator e2(prog);
    EXPECT_EQ(e2.run(nul).exitValue, 7);
}

TEST(Lowering, WholePipelineLeavesNoPredicates)
{
    // Run the hyperblock + lowering combination on a real kernel
    // and assert the invariant the CondMove machine requires.
    auto prog = compileSource(R"(
        int main() {
            int a = 0, b = 0;
            for (int i = 0; i < 500; i = i + 1) {
                if ((i & 7) == 0 || (i % 5) == 0) { a = a + 1; }
                else { b = b + 3; }
            }
            return a * 100000 + b;
        }
    )");
    optimizeProgram(*prog);
    std::int64_t expected;
    {
        Emulator emu(*prog);
        expected = emu.run("").exitValue;
    }
    ProgramProfile profile(*prog);
    EmuOptions eo;
    eo.profile = &profile;
    {
        Emulator emu(*prog);
        emu.run("", eo);
    }
    formHyperblocks(*prog, profile);
    reducePredicateHeight(*prog);
    promotePredicates(*prog);
    lowerToPartial(*prog);
    optimizeProgram(*prog);
    EXPECT_EQ(verifyProgram(*prog), "");
    expectNoPredication(*prog);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, expected);
}

} // namespace
} // namespace predilp
