/**
 * @file
 * PassManager tests: deterministic execution order, fixpoint-group
 * rerun semantics (including the iteration cap), and the uniform
 * instrumentation counters checked against hand-computed values on
 * both scripted passes and a real DCE run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "driver/pipeline.hh"
#include "ir/builder.hh"
#include "opt/pass.hh"
#include "opt/passes.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

/**
 * Logs each invocation and reports a scripted change count per run
 * (0 once the script is exhausted). Never touches the program.
 */
class ScriptedPass : public Pass
{
  public:
    ScriptedPass(std::string name,
                 std::vector<std::uint64_t> changesPerRun,
                 std::vector<std::string> *log)
        : name_(std::move(name)),
          changesPerRun_(std::move(changesPerRun)), log_(log)
    {}

    std::string name() const override { return name_; }

    PassResult
    run(Program &, PassContext &) override
    {
        if (log_ != nullptr)
            log_->push_back(name_);
        PassResult result;
        if (next_ < changesPerRun_.size())
            result.changes = changesPerRun_[next_];
        next_ += 1;
        return result;
    }

  private:
    std::string name_;
    std::vector<std::uint64_t> changesPerRun_;
    std::vector<std::string> *log_;
    std::size_t next_ = 0;
};

/** main() with two dead adds behind an opaque getc. */
std::unique_ptr<Program>
makeDeadCodeProgram()
{
    auto prog = std::make_unique<Program>();
    Function *fn = prog->newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg d = fn->newIntReg();
    Reg e = fn->newIntReg();
    b.getc(a); // side effect: must survive DCE.
    b.emit(Opcode::Add, d, Operand(a), Operand::imm(1)); // dead
    b.emit(Opcode::Add, e, Operand(d), Operand::imm(2)); // dead
    b.ret(Operand::imm(7));
    return prog;
}

TEST(PassManager, RunsPassesInDeclarationOrder)
{
    std::vector<std::string> log;
    PassManager pm;
    pm.add(std::make_unique<ScriptedPass>(
        "test.a", std::vector<std::uint64_t>{1}, &log));
    pm.add(std::make_unique<ScriptedPass>(
        "test.b", std::vector<std::uint64_t>{}, &log));
    pm.add(std::make_unique<ScriptedPass>(
        "test.c", std::vector<std::uint64_t>{2}, &log));
    EXPECT_EQ(pm.passNames(),
              (std::vector<std::string>{"test.a", "test.b",
                                        "test.c"}));

    Program prog;
    StatsRegistry stats;
    PassContext ctx(stats);
    PassResult total = pm.run(prog, ctx);
    EXPECT_EQ(log,
              (std::vector<std::string>{"test.a", "test.b",
                                        "test.c"}));
    EXPECT_EQ(total.changes, 3u);
}

TEST(PassManager, FixpointRerunsWhileAnyMemberChanges)
{
    // Member 1 changes on its first two runs, member 2 never does:
    // iteration 1 (2 changes) -> rerun, iteration 2 (1) -> rerun,
    // iteration 3 (0) -> stop. Every member runs every iteration.
    std::vector<std::string> log;
    std::vector<std::unique_ptr<Pass>> group;
    group.push_back(std::make_unique<ScriptedPass>(
        "test.x", std::vector<std::uint64_t>{2, 1}, &log));
    group.push_back(std::make_unique<ScriptedPass>(
        "test.y", std::vector<std::uint64_t>{}, &log));
    PassManager pm;
    pm.addFixpoint("test.group", std::move(group));

    Program prog;
    StatsRegistry stats;
    PassContext ctx(stats);
    pm.run(prog, ctx);

    EXPECT_EQ(log, (std::vector<std::string>{"test.x", "test.y",
                                             "test.x", "test.y",
                                             "test.x", "test.y"}));
    StatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.counter("test.group.iterations"), 3u);
    EXPECT_EQ(snap.counter("test.x.runs"), 3u);
    EXPECT_EQ(snap.counter("test.x.changes"), 3u);
    EXPECT_EQ(snap.counter("test.x.changed_runs"), 2u);
    EXPECT_EQ(snap.counter("test.y.runs"), 3u);
    EXPECT_EQ(snap.counter("test.y.changes"), 0u);
    EXPECT_EQ(snap.counter("test.y.changed_runs"), 0u);
}

TEST(PassManager, FixpointHonorsIterationCap)
{
    std::vector<std::unique_ptr<Pass>> group;
    group.push_back(std::make_unique<ScriptedPass>(
        "test.always",
        std::vector<std::uint64_t>(100, 1), nullptr));
    PassManager pm;
    pm.addFixpoint("test.cap", std::move(group), 4);

    Program prog;
    StatsRegistry stats;
    PassContext ctx(stats);
    pm.run(prog, ctx);

    StatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.counter("test.cap.iterations"), 4u);
    EXPECT_EQ(snap.counter("test.always.runs"), 4u);
}

TEST(PassManager, CountersMatchHandComputedDCECase)
{
    auto prog = makeDeadCodeProgram();
    ASSERT_EQ(programInstrCount(*prog), 4u);

    PassManager pm;
    pm.add(createDCEPass());
    StatsRegistry stats;
    PassContext ctx(stats);
    pm.run(*prog, ctx);

    // Exactly the two dead adds go; getc and ret stay.
    EXPECT_EQ(programInstrCount(*prog), 2u);
    StatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.counter("opt.dce.runs"), 1u);
    EXPECT_EQ(snap.counter("opt.dce.changes"), 2u);
    EXPECT_EQ(snap.counter("opt.dce.changed_runs"), 1u);
    EXPECT_EQ(snap.counter("opt.dce.removed"), 2u);
    EXPECT_EQ(snap.counter("opt.dce.instrs_removed"), 2u);
    EXPECT_EQ(snap.counter("opt.dce.instrs_added"), 0u);
    EXPECT_GE(snap.seconds("opt.dce.seconds"), 0.0);
}

TEST(PassManager, InstrumentationIsolatesNoChangeRuns)
{
    // A second run over the already-clean program records a run but
    // no changes and no size delta.
    auto prog = makeDeadCodeProgram();
    PassManager pm;
    pm.add(createDCEPass());
    StatsRegistry first;
    {
        PassContext ctx(first);
        pm.run(*prog, ctx);
    }
    StatsRegistry second;
    {
        PassContext ctx(second);
        pm.run(*prog, ctx);
    }
    StatsSnapshot snap = second.snapshot();
    EXPECT_EQ(snap.counter("opt.dce.runs"), 1u);
    EXPECT_EQ(snap.counter("opt.dce.changes"), 0u);
    EXPECT_EQ(snap.counter("opt.dce.changed_runs"), 0u);
    EXPECT_EQ(snap.counter("opt.dce.instrs_removed"), 0u);
}

/**
 * Test-only injected transform bug: writes a move whose destination
 * register was never allocated, breaking the verifier's
 * register-range invariant. Stands in for a real miscompiling pass.
 */
class CorruptingPass : public Pass
{
  public:
    std::string name() const override { return "test.corrupt"; }

    PassResult
    run(Program &prog, PassContext &) override
    {
        Function &fn = *prog.functions().front();
        BasicBlock *bb = fn.block(fn.layout().front());
        Instruction bad(Opcode::Mov);
        bad.setDest(intReg(fn.numIntRegs() + 7));
        bad.addSrc(Operand::imm(0));
        bad.setId(fn.nextInstrId());
        bb->instrs().insert(bb->instrs().begin(), std::move(bad));
        PassResult result;
        result.changes = 1;
        return result;
    }
};

TEST(PassManager, VerifyAfterEachNamesTheOffendingPass)
{
    auto prog = makeDeadCodeProgram();
    std::vector<std::string> log;
    PassManager pm;
    pm.add(createDCEPass());
    pm.add(std::make_unique<CorruptingPass>());
    pm.add(std::make_unique<ScriptedPass>(
        "test.after", std::vector<std::uint64_t>{}, &log));

    StatsRegistry stats;
    PassContext ctx(stats);
    ctx.verifyAfterEach = true;
    try {
        pm.run(*prog, ctx);
        FAIL() << "expected VerifyError";
    } catch (const VerifyError &e) {
        EXPECT_EQ(e.passName(), "test.corrupt");
        EXPECT_NE(std::string(e.what()).find("test.corrupt"),
                  std::string::npos);
        EXPECT_NE(e.invariant().find("out of range"),
                  std::string::npos);
    }
    // The pipeline stopped at the offending pass.
    EXPECT_TRUE(log.empty());
}

TEST(PassManager, VerifyAfterEachIsOffByDefault)
{
    // Without the opt-in flag the corruption sails through the
    // manager (the pipelines' final whole-program verify is the
    // backstop) — post-pass verification must cost nothing on the
    // benchmark hot path.
    auto prog = makeDeadCodeProgram();
    PassManager pm;
    pm.add(std::make_unique<CorruptingPass>());
    StatsRegistry stats;
    PassContext ctx(stats);
    EXPECT_NO_THROW(pm.run(*prog, ctx));
}

TEST(BuildPassPipeline, PassListIsDeterministicPerModel)
{
    for (Model model : {Model::Superblock, Model::CondMove,
                        Model::FullPred}) {
        CompileOptions opts;
        opts.model = model;
        std::vector<std::string> names =
            buildPassPipeline(opts).passNames();
        EXPECT_EQ(names, buildPassPipeline(opts).passNames());
        ASSERT_FALSE(names.empty());
        EXPECT_EQ(names.back(), "sched.schedule");
        auto has = [&](const std::string &name) {
            return std::find(names.begin(), names.end(), name) !=
                   names.end();
        };
        EXPECT_EQ(has("superblock.form"),
                  model == Model::Superblock);
        EXPECT_EQ(has("hyperblock.form"),
                  model != Model::Superblock);
        EXPECT_EQ(has("partial.lower"), model == Model::CondMove);
        EXPECT_EQ(has("hyperblock.combine"),
                  model == Model::FullPred);
    }
}

TEST(BuildPassPipeline, AblationFlagsPrunePasses)
{
    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.ablation.promotion = false;
    opts.ablation.branchCombining = false;
    opts.ablation.unrolling = false;
    std::vector<std::string> names =
        buildPassPipeline(opts).passNames();
    auto has = [&](const std::string &name) {
        return std::find(names.begin(), names.end(), name) !=
               names.end();
    };
    EXPECT_FALSE(has("hyperblock.promote"));
    EXPECT_FALSE(has("hyperblock.combine"));
    EXPECT_FALSE(has("opt.unroll"));
    EXPECT_TRUE(has("hyperblock.height"));
}

} // namespace
} // namespace predilp
