/**
 * @file
 * Unit tests for the classical optimizer: constant folding, copy
 * propagation, CSE (with the self-reference regression), dead code
 * elimination, copy coalescing, memory forwarding, LICM, inlining,
 * unrolling, CFG simplification, and layout.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "ir/builder.hh"
#include "frontend/irgen.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "superblock/superblock.hh"
#include "support/logging.hh"

namespace predilp
{
namespace
{

/** Count instructions matching @p pred across a function. */
template <typename Pred>
int
countInstrs(const Function &fn, Pred &&pred)
{
    int count = 0;
    for (BlockId id : fn.layout()) {
        for (const auto &instr : fn.block(id)->instrs()) {
            if (pred(instr))
                count += 1;
        }
    }
    return count;
}

TEST(ConstFold, FoldsArithmeticChains)
{
    auto prog =
        compileSource("int main() { return (2 + 3) * 4 - 6; }");
    optimizeProgram(*prog);
    Function *fn = prog->function("main");
    // Everything folds into `ret 14` (a mov may survive).
    EXPECT_LE(fn->instructionCount(), 2u);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 14);
}

TEST(ConstFold, ConstantBranchesBecomeJumps)
{
    auto prog = compileSource(R"(
        int main() {
            if (1 < 2) { return 10; }
            return 20;
        }
    )");
    optimizeProgram(*prog);
    Function *fn = prog->function("main");
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.isCondBranch();
              }),
              0);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 10);
}

TEST(ConstFold, MulByPowerOfTwoBecomesShift)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg c = fn->newIntReg();
    b.getc(a); // opaque value so it cannot fully fold.
    b.emit(Opcode::Mul, c, Operand(a), Operand::imm(8));
    b.ret(Operand(c));
    constantFold(*fn);
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.op() == Opcode::Shl;
              }),
              1);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("A").exitValue, 65 * 8);
}

TEST(CopyProp, ForwardsThroughMovChains)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg c = fn->newIntReg();
    Reg d = fn->newIntReg();
    b.mov(a, Operand::imm(7));
    b.mov(c, Operand(a));
    b.mov(d, Operand(c));
    b.ret(Operand(d));
    copyPropagate(*fn);
    // The ret now reads the constant directly.
    const Instruction &ret =
        fn->entry()->instrs().back();
    EXPECT_TRUE(ret.src(0).isImm());
    EXPECT_EQ(ret.src(0).immValue(), 7);
}

TEST(CopyProp, StopsAtRedefinition)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg c = fn->newIntReg();
    b.mov(a, Operand::imm(7));
    b.mov(c, Operand(a));
    b.mov(a, Operand::imm(9)); // kills the copy a=7.
    Reg d = fn->newIntReg();
    b.emit(Opcode::Add, d, Operand(c), Operand(a));
    b.ret(Operand(d));
    copyPropagate(*fn);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 16);
}

TEST(Cse, DeduplicatesPureExpressions)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg x = fn->newIntReg();
    Reg y = fn->newIntReg();
    Reg s = fn->newIntReg();
    b.getc(a);
    b.emit(Opcode::Mul, x, Operand(a), Operand::imm(3));
    b.emit(Opcode::Mul, y, Operand(a), Operand::imm(3));
    b.emit(Opcode::Add, s, Operand(x), Operand(y));
    b.ret(Operand(s));
    localCSE(*fn);
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.op() == Opcode::Mul;
              }),
              1);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("A").exitValue, 65 * 6);
}

TEST(Cse, SelfReferencingUpdateIsNotRecorded)
{
    // Regression: "add r2, r2, 1; add r4, r2, 1" must NOT turn the
    // second add into a copy of r2's pre-increment expression.
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg c = fn->newIntReg();
    b.mov(a, Operand::imm(5));
    b.emit(Opcode::Add, a, Operand(a), Operand::imm(1)); // a = 6
    b.emit(Opcode::Add, c, Operand(a), Operand::imm(1)); // c = 7
    b.ret(Operand(c));
    localCSE(*fn);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 7);
}

TEST(Cse, LoadsInvalidatedByStores)
{
    auto prog = compileSource(R"(
        int g;
        int main() {
            g = 1;
            int a = g;
            g = 2;
            int b = g;
            return a * 10 + b;
        }
    )");
    for (auto &fn : prog->functions())
        localCSE(*fn);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 12);
}

TEST(Dce, RemovesDeadArithmetic)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg dead = fn->newIntReg();
    Reg live = fn->newIntReg();
    b.emit(Opcode::Add, dead, Operand::imm(1), Operand::imm(2));
    b.mov(live, Operand::imm(42));
    b.ret(Operand(live));
    deadCodeElim(*fn);
    EXPECT_EQ(fn->instructionCount(), 2u);
}

TEST(Dce, KeepsStoresAndTrappingOps)
{
    auto prog = compileSource(R"(
        int g;
        int main() {
            g = 5;          // store: kept even though g unread.
            return 1;
        }
    )");
    Function *fn = prog->function("main");
    deadCodeElim(*fn);
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.isStore();
              }),
              1);
}

TEST(Dce, SideExitValueNotRemoved)
{
    // Regression for the compress bug: a value read only at a side
    // exit's target, later overwritten in the block, must survive.
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *main = b.startBlock();
    BasicBlock *side = fn->newBlock();
    Reg v = fn->newIntReg();
    Reg c = fn->newIntReg();
    b.setBlock(main);
    b.mov(v, Operand::imm(11));
    b.getc(c);
    b.branch(Opcode::Bge, Operand(c), Operand::imm(0), side->id());
    b.mov(v, Operand::imm(22));
    b.ret(Operand(v));
    b.setBlock(side);
    b.ret(Operand(v));

    deadCodeElim(*fn);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("x").exitValue, 11); // side exit taken.
    EXPECT_EQ(emu.run("").exitValue, 22);  // fallthrough.
}

TEST(Coalesce, FusesTempMovPairs)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    b.startBlock();
    Reg a = fn->newIntReg();
    Reg t = fn->newIntReg();
    b.mov(a, Operand::imm(1));
    b.emit(Opcode::Add, t, Operand(a), Operand::imm(2));
    b.mov(a, Operand(t)); // a = t, t dead after.
    b.ret(Operand(a));
    EXPECT_TRUE(coalesceCopies(*fn));
    EXPECT_EQ(fn->entry()->instrs().size(), 3u);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 3);
}

TEST(Coalesce, RefusesAcrossBranches)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *main = b.startBlock();
    BasicBlock *side = fn->newBlock();
    Reg a = fn->newIntReg();
    Reg t = fn->newIntReg();
    Reg c = fn->newIntReg();
    b.setBlock(main);
    b.mov(a, Operand::imm(5));
    b.getc(c);
    b.emit(Opcode::Add, t, Operand(a), Operand::imm(1));
    b.branch(Opcode::Bge, Operand(c), Operand::imm(0), side->id());
    b.mov(a, Operand(t));
    b.ret(Operand(a));
    b.setBlock(side);
    b.ret(Operand(a)); // must see a == 5 when the exit fires.

    coalesceCopies(*fn);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("x").exitValue, 5);
    EXPECT_EQ(emu.run("").exitValue, 6);
}

TEST(MemForward, StoreToLoadWithinBlock)
{
    auto prog = compileSource(R"(
        int g;
        int main() {
            g = 17;
            return g;   // load forwarded from the store.
        }
    )");
    Function *fn = prog->function("main");
    optimizeFunction(*fn);
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.isLoad();
              }),
              0);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 17);
}

TEST(MemForward, ConservativeAcrossUnknownStore)
{
    auto prog = compileSource(R"(
        int g;
        byte arr[16];
        int main() {
            int i = getc() & 7;
            g = 17;
            arr[i] = 3;   // byte store: clears knowledge.
            return g;
        }
    )");
    Function *fn = prog->function("main");
    forwardMemory(*fn);
    // The re-load of g survives (byte store might alias... the pass
    // is conservative for byte stores).
    EXPECT_GE(countInstrs(*fn, [](const Instruction &i) {
                  return i.op() == Opcode::Ld;
              }),
              1);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("x").exitValue, 17);
}

TEST(Licm, HoistsInvariantLoad)
{
    auto prog = compileSource(R"(
        int n = 100;
        int main() {
            int s = 0;
            int i = 0;
            while (i < n) {       // load of n is invariant.
                s = s + i;
                i = i + 1;
            }
            return s;
        }
    )");
    optimizeProgram(*prog);
    int before = 0;
    {
        Function *fn = prog->function("main");
        before = countInstrs(*fn, [](const Instruction &i) {
            return i.isLoad();
        });
    }
    int hoisted = licmProgram(*prog);
    EXPECT_GE(hoisted, 1);
    EXPECT_EQ(verifyProgram(*prog), "");
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 4950);
    (void)before;
}

TEST(Licm, DoesNotHoistLoadsPastStores)
{
    auto prog = compileSource(R"(
        int n = 4;
        int main() {
            int s = 0;
            int i = 0;
            while (i < n) {
                n = n - 1;     // the loop writes n!
                s = s + 1;
                i = i + 1;
            }
            return s;
        }
    )");
    optimizeProgram(*prog);
    licmProgram(*prog);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 2);
}

TEST(Inline, SplicesLeafCallees)
{
    auto prog = compileSource(R"(
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { return add3(1, 2, 3) + add3(4, 5, 6); }
    )");
    int inlined = inlineFunctions(*prog);
    EXPECT_EQ(inlined, 2);
    EXPECT_EQ(verifyProgram(*prog), "");
    Function *fn = prog->function("main");
    EXPECT_EQ(countInstrs(*fn, [](const Instruction &i) {
                  return i.isCall();
              }),
              0);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 21);
}

TEST(Inline, SkipsRecursionAndBigFunctions)
{
    auto prog = compileSource(R"(
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(5); }
    )");
    inlineFunctions(*prog);
    Function *fn = prog->function("main");
    EXPECT_GE(countInstrs(*fn, [](const Instruction &i) {
                  return i.isCall();
              }),
              1);
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 120);
}

TEST(Inline, ConditionalEarlyReturns)
{
    auto prog = compileSource(R"(
        int clamp(int v) {
            if (v < 0) { return 0; }
            if (v > 9) { return 9; }
            return v;
        }
        int main() {
            return clamp(-5) * 100 + clamp(20) * 10 + clamp(4);
        }
    )");
    EXPECT_GE(inlineFunctions(*prog), 3);
    EXPECT_EQ(verifyProgram(*prog), "");
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 0 * 100 + 9 * 10 + 4);
}

TEST(Unroll, SelfLoopGetsCopies)
{
    auto prog = compileSource(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 1000; i = i + 1) { s = s + i; }
            return s % 100000;
        }
    )");
    optimizeProgram(*prog);
    // Unrolling operates on *formed* self-loop blocks, as in the
    // pipeline: superblock formation first merges the loop into a
    // single block with its backedge.
    {
        ProgramProfile profile(*prog);
        EmuOptions opts;
        opts.profile = &profile;
        Emulator emu(*prog);
        emu.run("", opts);
        formSuperblocks(*prog, profile);
        optimizeProgram(*prog);
    }
    ProgramProfile profile(*prog);
    EmuOptions opts;
    opts.profile = &profile;
    {
        Emulator emu(*prog);
        emu.run("", opts);
    }
    int copies = unrollLoops(*prog, profile);
    EXPECT_GE(copies, 1);
    EXPECT_EQ(verifyProgram(*prog), "");
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, (999 * 1000 / 2) % 100000);
}

TEST(SimplifyCfg, ThreadsEmptyJumps)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *entry = b.startBlock();
    BasicBlock *hop = fn->newBlock();
    BasicBlock *target = fn->newBlock();
    b.setBlock(entry);
    b.jump(hop->id());
    b.setBlock(hop);
    b.jump(target->id());
    b.setBlock(target);
    b.ret(Operand::imm(3));

    simplifyCfg(*fn);
    // Everything merges into the entry.
    EXPECT_EQ(fn->layout().size(), 1u);
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 3);
}

TEST(Layout, ConvertsJumpsToFallthrough)
{
    auto prog = compileSource(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { s = s + 2; }
                else { s = s + 1; }
            }
            return s;
        }
    )");
    optimizeProgram(*prog);
    ProgramProfile profile(*prog);
    EmuOptions opts;
    opts.profile = &profile;
    {
        Emulator emu(*prog);
        emu.run("", opts);
    }
    layoutProgram(*prog, &profile);
    EXPECT_EQ(verifyProgram(*prog), "");
    Function *fn = prog->function("main");
    // The entry must still be first, and execution still correct.
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, 150);
    // At least one block now falls through.
    bool anyFallthrough = false;
    for (BlockId id : fn->layout()) {
        if (fn->block(id)->fallthrough() != invalidBlock)
            anyFallthrough = true;
    }
    EXPECT_TRUE(anyFallthrough);
}

TEST(Pipeline, OptimizeIsSemanticsPreservingOnPrograms)
{
    const char *sources[] = {
        "int main() { int a = getc(); return a * 3 - 1; }",
        R"(int t[8];
           int main() {
               for (int i = 0; i < 8; i = i + 1) { t[i] = i * i; }
               int s = 0;
               for (int i = 0; i < 8; i = i + 1) { s = s + t[i]; }
               return s;
           })",
        R"(float f(float x) { return x * 0.5; }
           int main() {
               float a = f(8.0) + f(4.0);
               return a;
           })",
    };
    for (const char *source : sources) {
        auto plain = compileSource(source);
        Emulator e1(*plain);
        auto expected = e1.run("Q").exitValue;

        auto optimized = compileSource(source);
        optimizeProgram(*optimized);
        licmProgram(*optimized);
        optimizeProgram(*optimized);
        EXPECT_EQ(verifyProgram(*optimized), "");
        Emulator e2(*optimized);
        EXPECT_EQ(e2.run("Q").exitValue, expected) << source;
    }
}

} // namespace
} // namespace predilp
