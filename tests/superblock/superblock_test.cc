/**
 * @file
 * Unit tests for superblock formation: trace selection, tail
 * duplication of side entrances, merging, and semantic preservation.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "frontend/irgen.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "superblock/superblock.hh"

namespace predilp
{
namespace
{

/** Run source through optimize + profile + superblock formation. */
struct Formed
{
    std::unique_ptr<Program> prog;
    SuperblockStats stats;
    std::int64_t reference = 0;
    std::string referenceOutput;

    explicit Formed(const std::string &source,
                    const std::string &input = "")
    {
        prog = compileSource(source);
        optimizeProgram(*prog);
        {
            Emulator emu(*prog);
            RunResult r = emu.run(input);
            reference = r.exitValue;
            referenceOutput = r.output;
        }
        ProgramProfile profile(*prog);
        EmuOptions opts;
        opts.profile = &profile;
        {
            Emulator emu(*prog);
            emu.run(input, opts);
        }
        stats = formSuperblocks(*prog, profile);
        EXPECT_EQ(verifyProgram(*prog), "");
    }

    std::int64_t
    result(const std::string &input = "")
    {
        Emulator emu(*prog);
        RunResult r = emu.run(input);
        EXPECT_EQ(r.output, referenceOutput);
        return r.exitValue;
    }
};

TEST(Superblock, FormsTraceThroughHotLoop)
{
    Formed f(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 500; i = i + 1) {
                if (i % 10 == 0) { s = s + 2; }  // unlikely arm.
                else { s = s + 1; }
            }
            return s;
        }
    )");
    EXPECT_GE(f.stats.tracesFormed, 1);
    EXPECT_GE(f.stats.blocksMerged, 1);
    EXPECT_EQ(f.result(), 550);

    // There is now a superblock in main.
    bool found = false;
    Function *fn = f.prog->function("main");
    for (BlockId id : fn->layout()) {
        if (fn->block(id)->kind() == BlockKind::Superblock)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Superblock, TailDuplicatesSideEntrances)
{
    // The join after the if has two predecessors; pulling it into
    // the hot trace requires duplicating it for the cold path.
    Formed f(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 400; i = i + 1) {
                int add = 1;
                if (i % 16 == 0) { add = 7; }    // cold.
                s = s + add;                      // join block.
                s = s + (i & 1);
            }
            return s;
        }
    )");
    EXPECT_GE(f.stats.blocksDuplicated, 1);
    EXPECT_EQ(f.result(), 400 + 25 * 6 + 200);
}

TEST(Superblock, PreservesRecursionAndCalls)
{
    Formed f(R"(
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
    )");
    EXPECT_EQ(f.result(), 144);
}

TEST(Superblock, ColdCodeNotTraced)
{
    Formed f(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) { s = s + i; }
            if (s == 123456) { s = 0; }   // never executes.
            return s;
        }
    )");
    // The never-executed block must not join a trace but must still
    // be present and correct.
    EXPECT_EQ(f.result(), 4950);
}

TEST(Superblock, CloneBlockCopiesEverything)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *src = b.startBlock("orig");
    BasicBlock *next = fn->newBlock();
    Reg a = fn->newIntReg();
    b.setBlock(src);
    b.mov(a, Operand::imm(5));
    b.branch(Opcode::Beq, Operand(a), Operand::imm(0), next->id());
    src->setFallthrough(next->id());
    b.setBlock(next);
    b.ret(Operand(a));

    BlockId cloneId = cloneBlock(*fn, src->id());
    const BasicBlock *clone = fn->block(cloneId);
    ASSERT_EQ(clone->instrs().size(), 2u);
    EXPECT_EQ(clone->instrs()[0].op(), Opcode::Mov);
    EXPECT_EQ(clone->instrs()[1].target(), next->id());
    EXPECT_EQ(clone->fallthrough(), next->id());
    // Fresh instruction ids.
    EXPECT_NE(clone->instrs()[0].id(), src->instrs()[0].id());
}

TEST(Superblock, RetargetEdgesRewritesAllForms)
{
    Program prog;
    Function *fn = prog.newFunction("main");
    fn->setRetKind(RetKind::Int);
    IRBuilder b(fn);
    BasicBlock *from = b.startBlock();
    BasicBlock *oldT = fn->newBlock();
    BasicBlock *newT = fn->newBlock();
    Reg a = fn->newIntReg();
    b.setBlock(from);
    b.mov(a, Operand::imm(0));
    b.branch(Opcode::Beq, Operand(a), Operand::imm(0), oldT->id());
    from->setFallthrough(oldT->id());
    b.setBlock(oldT);
    b.ret(Operand::imm(1));
    b.setBlock(newT);
    b.ret(Operand::imm(2));

    retargetEdges(*fn, from->id(), oldT->id(), newT->id());
    EXPECT_EQ(from->instrs()[1].target(), newT->id());
    EXPECT_EQ(from->fallthrough(), newT->id());
    Emulator emu(prog);
    EXPECT_EQ(emu.run("").exitValue, 2);
}

TEST(Superblock, RespectsMaxInstrs)
{
    SuperblockOptions opts;
    opts.maxInstrs = 4; // absurdly small: merging mostly refused.
    auto prog = compileSource(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 300; i = i + 1) {
                s = s + i * 3 - (i & 7) + (i >> 2);
            }
            return s;
        }
    )");
    optimizeProgram(*prog);
    std::int64_t expected;
    {
        Emulator emu(*prog);
        expected = emu.run("").exitValue;
    }
    ProgramProfile profile(*prog);
    EmuOptions eo;
    eo.profile = &profile;
    {
        Emulator emu(*prog);
        emu.run("", eo);
    }
    formSuperblocks(*prog, profile, opts);
    EXPECT_EQ(verifyProgram(*prog), "");
    Emulator emu(*prog);
    EXPECT_EQ(emu.run("").exitValue, expected);
}

} // namespace
} // namespace predilp
