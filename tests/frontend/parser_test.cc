#include <gtest/gtest.h>

#include "frontend/parser.hh"
#include "support/logging.hh"

namespace predilp
{
namespace
{

TEST(Parser, GlobalScalarAndArrays)
{
    Unit unit = parseUnit(R"(
        int counter = 5;
        int table[4] = {1, 2, 3, 4};
        byte buf[256];
        byte msg[] = "hi";
        float weights[2] = {0.5, -1.5};
    )");
    ASSERT_EQ(unit.globals.size(), 5u);
    EXPECT_EQ(unit.globals[0].name, "counter");
    EXPECT_FALSE(unit.globals[0].isArray);
    ASSERT_EQ(unit.globals[0].initInts.size(), 1u);
    EXPECT_EQ(unit.globals[0].initInts[0], 5);

    EXPECT_TRUE(unit.globals[1].isArray);
    EXPECT_EQ(unit.globals[1].count, 4);
    EXPECT_EQ(unit.globals[1].initInts.size(), 4u);

    EXPECT_EQ(unit.globals[2].count, 256);
    EXPECT_TRUE(unit.globals[2].initInts.empty());

    // "hi" + NUL
    EXPECT_EQ(unit.globals[3].count, 3);
    EXPECT_EQ(unit.globals[3].initInts[0], 'h');

    EXPECT_EQ(unit.globals[4].elemType, Ty::Float);
    EXPECT_DOUBLE_EQ(unit.globals[4].initFloats[1], -1.5);
}

TEST(Parser, FunctionSignature)
{
    Unit unit = parseUnit(R"(
        float mix(int a, float b) { return b; }
        void nothing() { }
    )");
    ASSERT_EQ(unit.functions.size(), 2u);
    const FuncDecl &mix = unit.functions[0];
    EXPECT_EQ(mix.retType, Ty::Float);
    ASSERT_EQ(mix.params.size(), 2u);
    EXPECT_EQ(mix.params[0].type, Ty::Int);
    EXPECT_EQ(mix.params[1].type, Ty::Float);
    EXPECT_EQ(unit.functions[1].retType, Ty::Void);
}

TEST(Parser, PrecedenceShapesTree)
{
    Unit unit = parseUnit("int main() { return 1 + 2 * 3; }");
    const Stmt &body = *unit.functions[0].body;
    ASSERT_EQ(body.body.size(), 1u);
    const Expr &ret = *body.body[0]->expr;
    ASSERT_EQ(ret.kind, Expr::Kind::Binary);
    EXPECT_EQ(ret.op, Tok::Plus);
    EXPECT_EQ(ret.kids[1]->op, Tok::Star);
}

TEST(Parser, TernaryAndAssignAreRightAssociative)
{
    Unit unit =
        parseUnit("int main() { int a; int b; a = b = 1; return "
                  "a ? 1 : b ? 2 : 3; }");
    const Stmt &body = *unit.functions[0].body;
    const Expr &assign = *body.body[2]->expr;
    EXPECT_EQ(assign.kind, Expr::Kind::Assign);
    EXPECT_EQ(assign.kids[1]->kind, Expr::Kind::Assign);
    const Expr &ret = *body.body[3]->expr;
    EXPECT_EQ(ret.kind, Expr::Kind::Ternary);
    EXPECT_EQ(ret.kids[2]->kind, Expr::Kind::Ternary);
}

TEST(Parser, ControlFlowForms)
{
    Unit unit = parseUnit(R"(
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { }
            while (i > 0) { i = i - 1; if (i == 3) break; }
            do { i = i + 1; } while (i < 2);
            if (i) return 1; else return 0;
        }
    )");
    const Stmt &body = *unit.functions[0].body;
    ASSERT_EQ(body.body.size(), 5u);
    EXPECT_EQ(body.body[1]->kind, Stmt::Kind::For);
    EXPECT_EQ(body.body[2]->kind, Stmt::Kind::While);
    EXPECT_EQ(body.body[3]->kind, Stmt::Kind::DoWhile);
    EXPECT_EQ(body.body[4]->kind, Stmt::Kind::If);
    EXPECT_EQ(body.body[4]->body.size(), 2u);
}

TEST(Parser, ForWithDeclInit)
{
    Unit unit = parseUnit(
        "int main() { for (int i = 0; i < 3; i += 1) { } return 0; }");
    const Stmt &forStmt = *unit.functions[0].body->body[0];
    ASSERT_EQ(forStmt.kind, Stmt::Kind::For);
    const Stmt &init = *forStmt.body[0];
    EXPECT_EQ(init.kind, Stmt::Kind::Block);
    EXPECT_EQ(init.body[0]->kind, Stmt::Kind::VarDecl);
    ASSERT_NE(forStmt.step, nullptr);
    EXPECT_EQ(forStmt.step->kind, Expr::Kind::Assign);
}

TEST(Parser, MultiDeclaratorExpands)
{
    Unit unit = parseUnit("int main() { int a = 1, b, c = 3; return "
                          "a + b + c; }");
    const Stmt &body = *unit.functions[0].body;
    ASSERT_EQ(body.body.size(), 4u);
    EXPECT_EQ(body.body[0]->name, "a");
    EXPECT_EQ(body.body[1]->name, "b");
    EXPECT_EQ(body.body[1]->expr, nullptr);
    EXPECT_EQ(body.body[2]->name, "c");
}

TEST(Parser, IndexAndCallPostfix)
{
    Unit unit = parseUnit(R"(
        int tbl[4];
        int f(int x) { return x; }
        int main() { return f(tbl[2]) + tbl[f(1)]; }
    )");
    const Expr &ret = *unit.functions[1].body->body[0]->expr;
    EXPECT_EQ(ret.kids[0]->kind, Expr::Kind::Call);
    EXPECT_EQ(ret.kids[0]->kids[0]->kind, Expr::Kind::Index);
    EXPECT_EQ(ret.kids[1]->kind, Expr::Kind::Index);
}

TEST(Parser, SyntaxErrorsReportLines)
{
    try {
        parseUnit("int main() {\n  return 1 +;\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 2"),
                  std::string::npos);
    }
    EXPECT_THROW(parseUnit("int main() { 1 = 2; }"), FatalError);
    EXPECT_THROW(parseUnit("byte b;"), FatalError);
    EXPECT_THROW(parseUnit("int a[];"), FatalError);
    EXPECT_THROW(parseUnit("int f(byte x) { }"), FatalError);
}

} // namespace
} // namespace predilp
