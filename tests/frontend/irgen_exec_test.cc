/**
 * @file
 * End-to-end frontend tests: compile ILC source to IR, verify the IR,
 * execute it with the emulator, and check results — the frontend's
 * correctness oracle.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "support/logging.hh"
#include "frontend/irgen.hh"
#include "ir/verifier.hh"

namespace predilp
{
namespace
{

RunResult
compileAndRun(const std::string &source, const std::string &input = "")
{
    auto prog = compileSource(source);
    std::string err = verifyProgram(*prog);
    EXPECT_EQ(err, "");
    Emulator emu(*prog);
    return emu.run(input);
}

TEST(IrGenExec, ReturnConstant)
{
    EXPECT_EQ(compileAndRun("int main() { return 42; }").exitValue,
              42);
}

TEST(IrGenExec, ArithmeticPrecedence)
{
    EXPECT_EQ(
        compileAndRun("int main() { return 2 + 3 * 4 - 6 / 2; }")
            .exitValue,
        11);
    EXPECT_EQ(compileAndRun(
                  "int main() { return (2 + 3) * (4 - 6) / 2; }")
                  .exitValue,
              -5);
    EXPECT_EQ(compileAndRun("int main() { return 17 % 5; }")
                  .exitValue,
              2);
}

TEST(IrGenExec, BitwiseAndShifts)
{
    EXPECT_EQ(compileAndRun("int main() { return (0xF0 | 0x0C) & "
                            "~0x08; }")
                  .exitValue,
              0xF4);
    EXPECT_EQ(compileAndRun("int main() { return (1 << 10) >> 3; }")
                  .exitValue,
              128);
    EXPECT_EQ(compileAndRun("int main() { return (0-16) >> 2; }")
                  .exitValue,
              -4);
}

TEST(IrGenExec, LocalsAndAssignment)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int a = 3;
            int b = a + 4;
            a = b * 2;
            a += 5;
            a -= 1;
            return a;
        }
    )")
                  .exitValue,
              18);
}

TEST(IrGenExec, GlobalScalarPersistsAcrossCalls)
{
    EXPECT_EQ(compileAndRun(R"(
        int counter = 10;
        void bump() { counter = counter + 7; }
        int main() { bump(); bump(); return counter; }
    )")
                  .exitValue,
              24);
}

TEST(IrGenExec, ArraysIntByteFloat)
{
    EXPECT_EQ(compileAndRun(R"(
        int nums[8];
        byte bytes[8];
        float reals[4];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { nums[i] = i * i; }
            for (i = 0; i < 8; i = i + 1) { bytes[i] = 250 + i; }
            reals[1] = 2.5;
            reals[2] = reals[1] * 2.0;
            // bytes are unsigned: bytes[7] == 257 & 0xff == 1
            return nums[7] + bytes[7] + (reals[2] > 4.9 ? 100 : 0);
        }
    )")
                  .exitValue,
              49 + 1 + 100);
}

TEST(IrGenExec, GlobalInitializers)
{
    EXPECT_EQ(compileAndRun(R"(
        int tbl[5] = {10, 20, 30, 40, 50};
        byte msg[] = "AB";
        float w[2] = {1.5, -0.5};
        int main() {
            return tbl[3] + msg[0] + msg[2] +
                   (w[0] + w[1] == 1.0 ? 1 : 0);
        }
    )")
                  .exitValue,
              40 + 65 + 0 + 1);
}

TEST(IrGenExec, ShortCircuitEvaluation)
{
    // The right operand of && must not execute when the left is
    // false; side effects prove it.
    EXPECT_EQ(compileAndRun(R"(
        int calls = 0;
        int bump() { calls = calls + 1; return 1; }
        int main() {
            int x = 0;
            if (x != 0 && bump()) { return 999; }
            if (x == 0 || bump()) { }
            return calls;
        }
    )")
                  .exitValue,
              0);
}

TEST(IrGenExec, LogicalValueMaterialization)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int a = 5, b = 0;
            int x = (a > 3) && (b == 0);
            int y = (a < 3) || (b != 0);
            return x * 10 + y;
        }
    )")
                  .exitValue,
              10);
}

TEST(IrGenExec, TernaryValues)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int a = 7;
            float f = a > 5 ? 1.5 : 2.5;
            int x = a % 2 == 1 ? 100 : 200;
            return x + (f < 2.0 ? 1 : 2);
        }
    )")
                  .exitValue,
              101);
}

TEST(IrGenExec, WhileForDoBreakContinue)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int sum = 0;
            int i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) break;
                if (i % 2 == 0) continue;
                sum = sum + i;   // 1+3+5+7+9 = 25
            }
            for (int j = 0; j < 5; j = j + 1) { sum = sum + 1; }
            int k = 0;
            do { k = k + 1; } while (k < 3);
            return sum + k;      // 25 + 5 + 3
        }
    )")
                  .exitValue,
              33);
}

TEST(IrGenExec, NestedLoopsAndScopes)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int total = 0;
            for (int i = 0; i < 4; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) {
                    int i2 = i * j;
                    total = total + i2;
                }
            }
            return total; // sum over i<4, j<i of i*j = 0+1+ (2+4) + (3+6+9)... wait
        }
    )")
                  .exitValue,
              0 + (1 * 0) + (2 * 0 + 2 * 1) + (3 * 0 + 3 * 1 + 3 * 2));
}

TEST(IrGenExec, FunctionsAndRecursion)
{
    EXPECT_EQ(compileAndRun(R"(
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(15); }
    )")
                  .exitValue,
              610);
}

TEST(IrGenExec, FloatParamsAndConversions)
{
    EXPECT_EQ(compileAndRun(R"(
        float scale(float x, int k) { return x * k; }
        int main() {
            float r = scale(1.25, 4);  // 5.0
            int t = r;                  // cvt_fi -> 5
            return t + (r == 5.0 ? 10 : 0);
        }
    )")
                  .exitValue,
              15);
}

TEST(IrGenExec, GetcPutcEcho)
{
    RunResult r = compileAndRun(R"(
        int main() {
            int c = getc();
            while (c >= 0) {
                putc(c);
                c = getc();
            }
            return 0;
        }
    )",
                                "echo me!");
    EXPECT_EQ(r.output, "echo me!");
}

TEST(IrGenExec, WcStyleKernel)
{
    // A miniature of the paper's wc benchmark: count lines, words,
    // chars.
    RunResult r = compileAndRun(R"(
        int main() {
            int lines = 0, words = 0, chars = 0, inword = 0;
            int c = getc();
            while (c >= 0) {
                chars = chars + 1;
                if (c == '\n') lines = lines + 1;
                if (c == ' ' || c == '\n' || c == '\t') {
                    inword = 0;
                } else {
                    if (inword == 0) words = words + 1;
                    inword = 1;
                }
                c = getc();
            }
            return lines * 10000 + words * 100 + chars;
        }
    )",
                                "one two\nthree four five\n");
    EXPECT_EQ(r.exitValue, 2 * 10000 + 5 * 100 + 24);
}

TEST(IrGenExec, UnaryOperators)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int a = 5;
            float f = 2.5;
            return -a + ~a + !a + !!a + (-f < 0.0 ? 1 : 0);
        }
    )")
                  .exitValue,
              -5 + ~5 + 0 + 1 + 1);
}

TEST(IrGenExec, VoidFunctionsAndEarlyReturn)
{
    EXPECT_EQ(compileAndRun(R"(
        int log[4];
        void record(int i, int v) {
            if (i < 0) return;
            if (i >= 4) return;
            log[i] = v;
        }
        int main() {
            record(0, 5);
            record(9, 100);
            record(0-1, 100);
            record(3, 7);
            return log[0] + log[3];
        }
    )")
                  .exitValue,
              12);
}

TEST(IrGenExec, SemanticErrors)
{
    EXPECT_THROW(compileSource("int main() { return x; }"),
                 FatalError);
    EXPECT_THROW(compileSource("int main() { foo(); }"), FatalError);
    EXPECT_THROW(
        compileSource("int f(int a) { return 0; } "
                      "int main() { return f(); }"),
        FatalError);
    EXPECT_THROW(
        compileSource("void f() {} int main() { return f(); }"),
        FatalError);
    EXPECT_THROW(compileSource("int a; int a; int main() {}"),
                 FatalError);
    EXPECT_THROW(
        compileSource("int main() { int a; int a; return 0; }"),
        FatalError);
    EXPECT_THROW(compileSource("int t[2]; int main() { return t; }"),
                 FatalError);
    EXPECT_THROW(compileSource("void f() { return 1; } int main(){}"),
                 FatalError);
    EXPECT_THROW(compileSource("int main() { break; }"), FatalError);
}

TEST(IrGenExec, DeadCodeAfterReturnIsTolerated)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            return 1;
            return 2;
        }
    )")
                  .exitValue,
              1);
}

TEST(IrGenExec, MainImplicitReturn)
{
    EXPECT_EQ(compileAndRun("int main() { int a = 5; }").exitValue, 0);
}

} // namespace
} // namespace predilp
