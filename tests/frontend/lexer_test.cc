#include <gtest/gtest.h>

#include "frontend/lexer.hh"
#include "support/logging.hh"

namespace predilp
{
namespace
{

TEST(Lexer, KeywordsAndIdents)
{
    auto toks = lex("int foo while whilex");
    ASSERT_EQ(toks.size(), 5u); // incl. End.
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, Tok::KwWhile);
    EXPECT_EQ(toks[3].kind, Tok::Ident);
    EXPECT_EQ(toks[3].text, "whilex");
    EXPECT_EQ(toks[4].kind, Tok::End);
}

TEST(Lexer, IntFloatHexCharLiterals)
{
    auto toks = lex("42 0x1F 3.5 1e3 'a' '\\n' '\\0'");
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    EXPECT_EQ(toks[0].intValue, 42);
    EXPECT_EQ(toks[1].intValue, 31);
    EXPECT_EQ(toks[2].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 3.5);
    EXPECT_EQ(toks[3].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 1000.0);
    EXPECT_EQ(toks[4].intValue, 'a');
    EXPECT_EQ(toks[5].intValue, '\n');
    EXPECT_EQ(toks[6].intValue, 0);
}

TEST(Lexer, OperatorsGreedy)
{
    auto toks = lex("<= < << >> >= == = != ! && & || | += -=");
    std::vector<Tok> kinds;
    for (const auto &t : toks)
        kinds.push_back(t.kind);
    std::vector<Tok> expected = {
        Tok::Le, Tok::Lt, Tok::Shl, Tok::Shr, Tok::Ge, Tok::Eq,
        Tok::Assign, Tok::Ne, Tok::Not, Tok::AmpAmp, Tok::Amp,
        Tok::PipePipe, Tok::Pipe, Tok::PlusAssign, Tok::MinusAssign,
        Tok::End};
    EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsSkipped)
{
    auto toks = lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, StringLiteralWithEscapes)
{
    auto toks = lex("\"ab\\n\\t\\\\\"");
    ASSERT_EQ(toks[0].kind, Tok::StrLit);
    EXPECT_EQ(toks[0].text, "ab\n\t\\");
}

TEST(Lexer, ErrorsHaveLineNumbers)
{
    try {
        lex("a\nb\n$");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 3"),
                  std::string::npos);
    }
    EXPECT_THROW(lex("'unterminated"), FatalError);
    EXPECT_THROW(lex("\"unterminated"), FatalError);
    EXPECT_THROW(lex("/* unterminated"), FatalError);
}

} // namespace
} // namespace predilp
