/**
 * @file
 * Unit tests for the machine model, dependence graph, and list
 * scheduler: latencies, issue-width and branch-slot limits, wired-OR
 * simultaneous issue, cross-branch speculation, and semantic
 * preservation of scheduled code.
 */

#include <gtest/gtest.h>

#include <functional>

#include "emu/emulator.hh"
#include "frontend/irgen.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "sched/depgraph.hh"
#include "sched/scheduler.hh"

namespace predilp
{
namespace
{

TEST(Machine, PresetsMatchPaper)
{
    MachineConfig m8 = issue8Branch1();
    EXPECT_EQ(m8.issueWidth, 8);
    EXPECT_EQ(m8.branchesPerCycle, 1);
    EXPECT_EQ(m8.mispredictPenalty, 2);
    EXPECT_EQ(issue8Branch2().branchesPerCycle, 2);
    EXPECT_EQ(issue4Branch1().issueWidth, 4);
    EXPECT_EQ(issue1().issueWidth, 1);
}

TEST(Machine, LatenciesFollowClasses)
{
    MachineConfig m;
    Instruction add(Opcode::Add);
    Instruction mul(Opcode::Mul);
    Instruction div(Opcode::Div);
    Instruction ld(Opcode::Ld);
    Instruction fdiv(Opcode::FDiv);
    Instruction def(Opcode::PredEq);
    EXPECT_EQ(m.latencyOf(add), 1);
    EXPECT_EQ(m.latencyOf(mul), 3);
    EXPECT_EQ(m.latencyOf(div), 10);
    EXPECT_EQ(m.latencyOf(ld), 2);
    EXPECT_EQ(m.latencyOf(fdiv), 8);
    EXPECT_EQ(m.latencyOf(def), 1);
}

/** Build a block, schedule, and return the final instrs. */
struct Sched
{
    Program prog;
    Function *fn;
    IRBuilder b;

    Sched() : fn(prog.newFunction("main")), b(fn)
    {
        fn->setRetKind(RetKind::Int);
        b.startBlock();
    }

    ScheduleStats
    schedule(const MachineConfig &config, bool speculation = true)
    {
        return scheduleFunction(*fn, config, speculation);
    }

    int
    cycleOf(Opcode op)
    {
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                if (instr.op() == op)
                    return instr.issueCycle();
            }
        }
        return -1;
    }
};

TEST(Scheduler, RespectsRawLatency)
{
    Sched s;
    Reg a = s.fn->newIntReg();
    Reg c = s.fn->newIntReg();
    s.b.emit(Opcode::Mul, a, Operand::imm(3), Operand::imm(4));
    s.b.emit(Opcode::Add, c, Operand(a), Operand::imm(1));
    s.b.ret(Operand(c));
    s.schedule(issue8Branch1());
    // mul at 0 (lat 3) -> add no earlier than 3.
    EXPECT_EQ(s.cycleOf(Opcode::Mul), 0);
    EXPECT_GE(s.cycleOf(Opcode::Add), 3);
}

TEST(Scheduler, IndependentOpsShareCycle)
{
    Sched s;
    std::vector<Reg> regs;
    for (int i = 0; i < 6; ++i) {
        Reg r = s.fn->newIntReg();
        s.b.emit(Opcode::Add, r, Operand::imm(i), Operand::imm(1));
        regs.push_back(r);
    }
    s.b.ret(Operand(regs[0]));
    s.schedule(issue8Branch1());
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.op() == Opcode::Add) {
            EXPECT_EQ(instr.issueCycle(), 0);
        }
    }
}

TEST(Scheduler, IssueWidthLimits)
{
    Sched s;
    for (int i = 0; i < 8; ++i) {
        Reg r = s.fn->newIntReg();
        s.b.emit(Opcode::Add, r, Operand::imm(i), Operand::imm(1));
    }
    s.b.ret(Operand::imm(0));
    s.schedule(issue4Branch1());
    int atZero = 0;
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.issueCycle() == 0)
            atZero += 1;
    }
    EXPECT_EQ(atZero, 4);
}

TEST(Scheduler, BranchSlotLimitSerializesBranches)
{
    // Two independent predicated exit jumps can share a cycle only
    // when branchesPerCycle allows.
    auto build = [](Program &prog) {
        Function *fn = prog.newFunction("main");
        fn->setRetKind(RetKind::Int);
        IRBuilder b(fn);
        BasicBlock *entry = b.startBlock();
        BasicBlock *t1 = fn->newBlock();
        BasicBlock *t2 = fn->newBlock();
        Reg c1 = fn->newIntReg();
        Reg c2 = fn->newIntReg();
        b.setBlock(entry);
        b.mov(c1, Operand::imm(3));
        b.mov(c2, Operand::imm(4));
        b.branch(Opcode::Beq, Operand(c1), Operand::imm(1),
                 t1->id());
        b.branch(Opcode::Beq, Operand(c2), Operand::imm(2),
                 t2->id());
        b.ret(Operand::imm(0));
        b.setBlock(t1);
        b.ret(Operand::imm(1));
        b.setBlock(t2);
        b.ret(Operand::imm(2));
        return fn;
    };

    Program p1;
    Function *fn1 = build(p1);
    scheduleFunction(*fn1, issue8Branch1());
    std::vector<int> cycles1;
    for (const auto &instr : fn1->entry()->instrs()) {
        if (instr.isCondBranch())
            cycles1.push_back(instr.issueCycle());
    }
    ASSERT_EQ(cycles1.size(), 2u);
    EXPECT_NE(cycles1[0], cycles1[1]); // 1 branch/cycle.

    Program p2;
    Function *fn2 = build(p2);
    scheduleFunction(*fn2, issue8Branch2());
    std::vector<int> cycles2;
    for (const auto &instr : fn2->entry()->instrs()) {
        if (instr.isCondBranch())
            cycles2.push_back(instr.issueCycle());
    }
    EXPECT_EQ(cycles2[0], cycles2[1]); // 2 branches/cycle.
}

TEST(Scheduler, WiredOrDefinesShareCycle)
{
    Sched s;
    Reg c = s.fn->newIntReg();
    Reg pX = s.fn->newPredReg();
    s.b.getc(c);
    s.b.predAll(Opcode::PredClear);
    for (int i = 0; i < 3; ++i) {
        s.b.predDefine(Opcode::PredEq,
                       PredDest{pX, PredType::Or}, Operand(c),
                       Operand::imm(i));
    }
    Reg out = s.fn->newIntReg();
    s.b.mov(out, Operand::imm(0));
    s.b.mov(out, Operand::imm(1)).setGuard(pX);
    s.b.ret(Operand(out));
    s.schedule(issue8Branch1());

    std::vector<int> defineCycles;
    int guardedMovCycle = -1;
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.isPredDefine())
            defineCycles.push_back(instr.issueCycle());
        if (instr.op() == Opcode::Mov && instr.guarded())
            guardedMovCycle = instr.issueCycle();
    }
    ASSERT_EQ(defineCycles.size(), 3u);
    // Wired-OR: all three issue in the same cycle.
    EXPECT_EQ(defineCycles[0], defineCycles[1]);
    EXPECT_EQ(defineCycles[1], defineCycles[2]);
    // The consumer waits for the accumulation.
    EXPECT_GT(guardedMovCycle, defineCycles[0]);
}

TEST(Scheduler, SpeculationHoistsSilentLoadAboveExit)
{
    // A load after a rarely-taken exit branch whose result is dead
    // at the exit target may hoist above it, becoming silent.
    Sched s;
    BasicBlock *exitBlk = s.fn->newBlock();
    Reg c = s.fn->newIntReg();
    Reg v = s.fn->newIntReg();
    std::int64_t addr = s.prog.allocGlobal("g", 8, 8, false);
    s.b.getc(c);
    s.b.branch(Opcode::Blt, Operand(c), Operand::imm(0),
               exitBlk->id());
    s.b.load(Opcode::Ld, v, Operand::imm(addr), Operand::imm(0));
    s.b.ret(Operand(v));
    s.b.setBlock(exitBlk);
    s.b.ret(Operand::imm(-1));

    s.schedule(issue8Branch1(), true);
    // Find the load and the branch.
    int loadCycle = -1, branchCycle = -1;
    bool speculative = false;
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.isLoad()) {
            loadCycle = instr.issueCycle();
            speculative = instr.speculative();
        }
        if (instr.isCondBranch())
            branchCycle = instr.issueCycle();
    }
    EXPECT_LE(loadCycle, branchCycle);
    EXPECT_TRUE(speculative);

    // Execution still correct on both paths.
    Emulator emu(s.prog);
    EXPECT_EQ(emu.run("A").exitValue, 0);
    EXPECT_EQ(emu.run("").exitValue, -1); // EOF -> c = -1.
}

TEST(Scheduler, NoSpeculationKeepsOrder)
{
    Sched s;
    BasicBlock *exitBlk = s.fn->newBlock();
    Reg c = s.fn->newIntReg();
    Reg v = s.fn->newIntReg();
    std::int64_t addr = s.prog.allocGlobal("g", 8, 8, false);
    s.b.getc(c);
    s.b.branch(Opcode::Blt, Operand(c), Operand::imm(0),
               exitBlk->id());
    s.b.load(Opcode::Ld, v, Operand::imm(addr), Operand::imm(0));
    s.b.ret(Operand(v));
    s.b.setBlock(exitBlk);
    s.b.ret(Operand::imm(-1));

    s.schedule(issue8Branch1(), false);
    int loadCycle = -1, branchCycle = -1;
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.isLoad())
            loadCycle = instr.issueCycle();
        if (instr.isCondBranch())
            branchCycle = instr.issueCycle();
    }
    EXPECT_GT(loadCycle, branchCycle);
}

TEST(Scheduler, StoresNeverCrossExits)
{
    Sched s;
    BasicBlock *exitBlk = s.fn->newBlock();
    Reg c = s.fn->newIntReg();
    std::int64_t addr = s.prog.allocGlobal("g", 8, 8, false);
    s.b.getc(c);
    s.b.branch(Opcode::Blt, Operand(c), Operand::imm(0),
               exitBlk->id());
    s.b.store(Opcode::St, Operand::imm(addr), Operand::imm(0),
              Operand::imm(7));
    s.b.ret(Operand::imm(1));
    s.b.setBlock(exitBlk);
    s.b.ret(Operand::imm(2));

    s.schedule(issue8Branch1(), true);
    int storeCycle = -1, branchCycle = -1;
    std::size_t storePos = 0, branchPos = 0;
    const auto &instrs = s.fn->entry()->instrs();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].isStore()) {
            storeCycle = instrs[i].issueCycle();
            storePos = i;
        }
        if (instrs[i].isCondBranch()) {
            branchCycle = instrs[i].issueCycle();
            branchPos = i;
        }
    }
    EXPECT_GT(storeCycle, branchCycle);
    EXPECT_GT(storePos, branchPos);
}

TEST(Scheduler, MemoryDisambiguationAllowsReordering)
{
    // Store to one global, load from another: the load may move
    // above the store.
    Sched s;
    std::int64_t a = s.prog.allocGlobal("a", 8, 8, false);
    std::int64_t g = s.prog.allocGlobal("b", 8, 8, false);
    Reg v = s.fn->newIntReg();
    Reg w = s.fn->newIntReg();
    s.b.getc(v);
    s.b.emit(Opcode::Mul, w, Operand(v), Operand::imm(5));
    s.b.store(Opcode::St, Operand::imm(a), Operand::imm(0),
              Operand(w)); // waits for the multiply.
    Reg l = s.fn->newIntReg();
    s.b.load(Opcode::Ld, l, Operand::imm(g), Operand::imm(0));
    s.b.ret(Operand(l));
    s.schedule(issue8Branch1());

    int loadCycle = -1, storeCycle = -1;
    for (const auto &instr : s.fn->entry()->instrs()) {
        if (instr.isLoad() && instr.op() == Opcode::Ld)
            loadCycle = instr.issueCycle();
        if (instr.isStore())
            storeCycle = instr.issueCycle();
    }
    EXPECT_LT(loadCycle, storeCycle);
}

TEST(Scheduler, ScheduledKernelsStaySemanticallyCorrect)
{
    auto prog = compileSource(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 200; i = i + 1) {
                int t = i * 3;
                if (t % 7 < 3) { s = s + t; }
                else { s = s - 1; }
            }
            return s;
        }
    )");
    optimizeProgram(*prog);
    std::int64_t expected;
    {
        Emulator emu(*prog);
        expected = emu.run("").exitValue;
    }
    for (const MachineConfig &config :
         {issue1(), issue4Branch1(), issue8Branch1(),
          issue8Branch2()}) {
        auto copy = compileSource(R"(
            int main() {
                int s = 0;
                for (int i = 0; i < 200; i = i + 1) {
                    int t = i * 3;
                    if (t % 7 < 3) { s = s + t; }
                    else { s = s - 1; }
                }
                return s;
            }
        )");
        optimizeProgram(*copy);
        scheduleProgram(*copy, config, true);
        EXPECT_EQ(verifyProgram(*copy), "");
        Emulator emu(*copy);
        EXPECT_EQ(emu.run("").exitValue, expected);
    }
}

} // namespace
} // namespace predilp
