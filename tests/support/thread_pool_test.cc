/**
 * @file
 * ThreadPool tests: parallelFor correctness for serial and parallel
 * pools, exception propagation, inline execution on serial pools,
 * nested parallelFor safety, and thread-count resolution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "support/thread_pool.hh"

namespace predilp
{
namespace
{

TEST(ResolveThreadCount, PositivePassesThrough)
{
    EXPECT_EQ(resolveThreadCount(1), 1);
    EXPECT_EQ(resolveThreadCount(7), 7);
}

TEST(ResolveThreadCount, AutoHonorsEnvironment)
{
    ASSERT_EQ(setenv("PREDILP_THREADS", "3", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 3);
    ASSERT_EQ(unsetenv("PREDILP_THREADS"), 0);
    EXPECT_GE(resolveThreadCount(0), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndex)
{
    for (int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        std::vector<std::uint64_t> out(1000, 0);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = static_cast<std::uint64_t>(i) * i;
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<std::uint64_t>(i) * i);
    }
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::thread::id main = std::this_thread::get_id();
    pool.parallelFor(16, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), main);
    });
    bool ran = false;
    auto future = pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran); // inline: done before submit returned.
    future.get();
}

TEST(ThreadPool, ExceptionPropagates)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallelFor(32,
                                      [&](std::size_t i) {
                                          if (i == 7)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error);
    }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t) {
        // Called from a worker: must degrade to serial, not block
        // on the pool's own queue.
        pool.parallelFor(16, [&](std::size_t) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, SubmitRunsEverything)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit(
            [&] { count.fetch_add(1, std::memory_order_relaxed); }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(count.load(), 100);
}

} // namespace
} // namespace predilp
