#include <gtest/gtest.h>

#include "support/bit_vector.hh"
#include "support/logging.hh"

namespace predilp
{
namespace
{

TEST(BitVector, StartsCleared)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.count(), 0u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetResetAssign)
{
    BitVector bv(130);
    bv.set(0);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_EQ(bv.count(), 3u);
    bv.reset(64);
    EXPECT_FALSE(bv.test(64));
    bv.assign(64, true);
    EXPECT_TRUE(bv.test(64));
    bv.assign(64, false);
    EXPECT_FALSE(bv.test(64));
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector bv(70);
    bv.setAll();
    EXPECT_EQ(bv.count(), 70u);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, UnionReportsChange)
{
    BitVector a(64), b(64);
    b.set(5);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b));
    EXPECT_TRUE(a.test(5));
}

TEST(BitVector, IntersectAndSubtract)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector c = a;
    EXPECT_TRUE(c.intersectWith(b));
    EXPECT_TRUE(c.test(2));
    EXPECT_FALSE(c.test(1));

    BitVector d = a;
    EXPECT_TRUE(d.subtract(b));
    EXPECT_TRUE(d.test(1));
    EXPECT_FALSE(d.test(2));
}

TEST(BitVector, IntersectsAndSubset)
{
    BitVector a(64), b(64);
    a.set(10);
    b.set(11);
    EXPECT_FALSE(a.intersects(b));
    b.set(10);
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(a.isSubsetOf(b));
    EXPECT_FALSE(b.isSubsetOf(a));
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector bv(200);
    bv.set(3);
    bv.set(64);
    bv.set(190);
    std::vector<std::size_t> seen;
    bv.forEachSet([&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 3u);
    EXPECT_EQ(seen[1], 64u);
    EXPECT_EQ(seen[2], 190u);
}

TEST(BitVector, ResizeGrowsCleared)
{
    BitVector bv(10);
    bv.set(9);
    bv.resize(100);
    EXPECT_TRUE(bv.test(9));
    EXPECT_FALSE(bv.test(50));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, EqualityComparesContent)
{
    BitVector a(64), b(64);
    EXPECT_EQ(a, b);
    a.set(7);
    EXPECT_NE(a, b);
    b.set(7);
    EXPECT_EQ(a, b);
}

TEST(BitVector, SizeMismatchPanics)
{
    BitVector a(64), b(65);
    EXPECT_THROW(a.unionWith(b), PanicError);
    EXPECT_THROW((void)a.intersects(b), PanicError);
}

TEST(BitVector, OutOfRangePanics)
{
    BitVector a(8);
    EXPECT_THROW(a.set(8), PanicError);
    EXPECT_THROW((void)a.test(100), PanicError);
}

} // namespace
} // namespace predilp
