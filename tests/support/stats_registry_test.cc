/**
 * @file
 * StatsRegistry/StatsSnapshot tests: counter/timer/histogram
 * recording, additive registry merging, toJson()/fromJson()
 * round-trips, and thread-count independence when per-worker
 * registries are merged across a ThreadPool.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/stats_registry.hh"
#include "support/thread_pool.hh"

namespace predilp
{
namespace
{

TEST(StatsRegistry, CountersAndTimersAccumulate)
{
    StatsRegistry registry;
    Counter &c = registry.counter("scope.count");
    c.add(3);
    c.add(4);
    registry.timer("scope.time").addNanos(1'500'000'000ull);
    registry.histogram("scope.h").record(2);
    registry.histogram("scope.h").record(8);

    StatsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("scope.count"), 7u);
    EXPECT_DOUBLE_EQ(snap.seconds("scope.time"), 1.5);
    EXPECT_EQ(snap.counter("scope.h.count"), 2u);
    EXPECT_EQ(snap.counter("scope.h.sum"), 10u);
    EXPECT_EQ(snap.counter("scope.h.min"), 2u);
    EXPECT_EQ(snap.counter("scope.h.max"), 8u);
}

TEST(StatsRegistry, MergeIsAdditiveAcrossAllKinds)
{
    StatsRegistry a;
    a.counter("n").add(1);
    a.timer("t").addNanos(100);
    a.histogram("h").record(5);

    StatsRegistry b;
    b.counter("n").add(2);
    b.counter("only_b").add(9);
    b.timer("t").addNanos(300);
    b.histogram("h").record(1);

    a.merge(b);
    StatsSnapshot snap = a.snapshot();
    EXPECT_EQ(snap.counter("n"), 3u);
    EXPECT_EQ(snap.counter("only_b"), 9u);
    EXPECT_DOUBLE_EQ(snap.seconds("t"), 400e-9);
    EXPECT_EQ(snap.counter("h.count"), 2u);
    EXPECT_EQ(snap.counter("h.min"), 1u);
    EXPECT_EQ(snap.counter("h.max"), 5u);
}

TEST(StatsRegistry, ScopedTimerRecordsElapsedTime)
{
    StatsRegistry registry;
    {
        ScopedTimer timer(registry.timer("sleep"));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // sleep_for guarantees at least the requested duration.
    EXPECT_GE(registry.snapshot().seconds("sleep"), 0.002);
}

TEST(StatsSnapshot, JsonRoundTripPreservesEverything)
{
    StatsSnapshot snap;
    snap.setCounter("a.b.count", 42);
    snap.setCounter("a.b.deep.leaf", 0);
    snap.setCounter("top", 7);
    snap.setSeconds("a.b.seconds", 0.125);
    snap.setSeconds("whole", 2.0); // integral double stays a timer.
    snap.setSeconds("tiny", 3.3e-9);

    StatsSnapshot parsed = StatsSnapshot::fromJson(snap.toJson());
    EXPECT_TRUE(parsed == snap);
    EXPECT_EQ(parsed.counter("a.b.count"), 42u);
    EXPECT_DOUBLE_EQ(parsed.seconds("whole"), 2.0);
    EXPECT_DOUBLE_EQ(parsed.seconds("tiny"), 3.3e-9);
}

TEST(StatsSnapshot, ToJsonNestsDottedScopes)
{
    StatsSnapshot snap;
    snap.setCounter("sim.btb.hits", 5);
    snap.setCounter("sim.btb.misses", 1);
    snap.setCounter("sim.cycles", 100);
    EXPECT_EQ(snap.toJson(), "{\n"
                             "  \"sim\": {\n"
                             "    \"btb\": {\n"
                             "      \"hits\": 5,\n"
                             "      \"misses\": 1\n"
                             "    },\n"
                             "    \"cycles\": 100\n"
                             "  }\n"
                             "}");
}

TEST(StatsSnapshot, EmptySnapshotIsEmptyObject)
{
    StatsSnapshot snap;
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.toJson(), "{}");
    EXPECT_TRUE(StatsSnapshot::fromJson("{}").empty());
}

TEST(StatsSnapshot, SnapshotMergeSumsLeaves)
{
    StatsSnapshot a;
    a.setCounter("n", 1);
    a.setSeconds("t", 0.5);
    StatsSnapshot b;
    b.setCounter("n", 2);
    b.setCounter("m", 10);
    b.setSeconds("t", 0.25);
    a.merge(b);
    EXPECT_EQ(a.counter("n"), 3u);
    EXPECT_EQ(a.counter("m"), 10u);
    EXPECT_DOUBLE_EQ(a.seconds("t"), 0.75);
}

/**
 * The evaluator's aggregation pattern: every task records into a
 * private registry, then merges it into a shared aggregate. All
 * recorded values are deterministic (addNanos instead of wall
 * clocks), so the aggregate snapshot must be identical for every
 * thread count.
 */
StatsSnapshot
aggregateOverPool(int threads, std::size_t tasks)
{
    ThreadPool pool(threads);
    StatsRegistry aggregate;
    pool.parallelFor(tasks, [&](std::size_t i) {
        StatsRegistry local;
        local.counter("work.items").add(i);
        local.counter("work.tasks").add(1);
        local.timer("work.nanos").addNanos(10 * i);
        local.histogram("work.size").record(i);
        aggregate.merge(local);
    });
    return aggregate.snapshot();
}

TEST(StatsRegistry, PoolMergeIsThreadCountIndependent)
{
    const std::size_t tasks = 64;
    StatsSnapshot serial = aggregateOverPool(1, tasks);

    // Hand-computed totals: sum 0..63 = 2016.
    EXPECT_EQ(serial.counter("work.items"), 2016u);
    EXPECT_EQ(serial.counter("work.tasks"), tasks);
    EXPECT_DOUBLE_EQ(serial.seconds("work.nanos"), 20160e-9);
    EXPECT_EQ(serial.counter("work.size.count"), tasks);
    EXPECT_EQ(serial.counter("work.size.min"), 0u);
    EXPECT_EQ(serial.counter("work.size.max"), 63u);

    for (int threads : {2, 4, 8}) {
        StatsSnapshot parallel = aggregateOverPool(threads, tasks);
        EXPECT_TRUE(parallel == serial)
            << "aggregate diverged at threads=" << threads;
    }
}

} // namespace
} // namespace predilp
