#include <gtest/gtest.h>

#include <sstream>

#include "support/stats.hh"
#include "support/string_utils.hh"

namespace predilp
{
namespace
{

TEST(StringUtils, Padding)
{
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtils, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.234567, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 1), "2.0");
    EXPECT_EQ(formatFixed(-0.5, 2), "-0.50");
}

TEST(StringUtils, FormatCountMatchesPaperStyle)
{
    // The paper prints 1526K, 11225M, etc.
    EXPECT_EQ(formatCount(1526000), "1526K");
    EXPECT_EQ(formatCount(11225000000ull), "11225M");
    EXPECT_EQ(formatCount(9999), "9999");
    EXPECT_EQ(formatCount(10000), "10K");
    EXPECT_EQ(formatCount(489000000), "489M");
}

TEST(StringUtils, JoinAndSplit)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("pred_eq", "pred"));
    EXPECT_FALSE(startsWith("pre", "pred"));
}

TEST(Stats, CountersAccumulateAndMerge)
{
    StatSet a;
    a.add("cycles", 10);
    a.add("cycles", 5);
    a.set("branches", 3);
    EXPECT_EQ(a.get("cycles"), 15u);
    EXPECT_EQ(a.get("missing"), 0u);

    StatSet b;
    b.add("cycles", 1);
    b.add("loads", 7);
    a.merge(b);
    EXPECT_EQ(a.get("cycles"), 16u);
    EXPECT_EQ(a.get("loads"), 7u);
}

TEST(Stats, TextTableAligns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Numbers are right-aligned in their column.
    EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Stats, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

} // namespace
} // namespace predilp
