/**
 * @file
 * Artifact-store tests: SHA-256 key derivation, save/load round
 * trips that replay bit-identically out of the mmap'd file,
 * byte-level corruption injection in every file region (magic,
 * header, entry stream, varint stream, checksum) with quarantine +
 * recompute repair, read-only mode, and the SuiteEvaluator's
 * cold/warm second-tier behaviour: a warm evaluator performs zero
 * compiles and zero emulations yet reproduces the cold results
 * exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "driver/certified.hh"
#include "driver/evaluator.hh"
#include "driver/pipeline.hh"
#include "store/sha256.hh"
#include "store/store.hh"
#include "support/faultpoint.hh"
#include "support/json.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

namespace fs = std::filesystem;

/** Fresh empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** XOR one byte of @p path at @p offset. */
void
flipByte(const std::string &path, std::size_t offset)
{
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    ASSERT_TRUE(f.good());
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
}

std::size_t
fileCount(const fs::path &dir)
{
    if (!fs::exists(dir))
        return 0;
    std::size_t n = 0;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file())
            n += 1;
    }
    return n;
}

void
expectSimEq(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.nullified, b.nullified);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.stats.counters(), b.stats.counters());
}

/** One captured workload trace for the round-trip tests. */
std::unique_ptr<TraceBuffer>
captureWorkload(const char *name)
{
    const Workload *workload = findWorkload(name);
    EXPECT_NE(workload, nullptr);
    std::string input = workload->makeInput(1);
    CompileOptions opts;
    opts.model = Model::FullPred;
    opts.machine = issue8Branch1();
    opts.profileInput = input;
    auto prog = compileForModel(workload->source, opts);
    return capture(*prog, input);
}

TEST(Sha256, MatchesKnownVectors)
{
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    // Multi-block message (>64 bytes) exercises buffering.
    std::string longMsg(1000, 'a');
    Sha256 pieces;
    pieces.update(longMsg.substr(0, 7));
    pieces.update(longMsg.substr(7));
    EXPECT_EQ(pieces.hex(), sha256Hex(longMsg));
}

TEST(ArtifactStore, KeysSeparateEveryField)
{
    std::string base = ArtifactStore::keyFor("src", "cell");
    EXPECT_EQ(base.size(), 64u);
    EXPECT_NE(base, ArtifactStore::keyFor("src2", "cell"));
    EXPECT_NE(base, ArtifactStore::keyFor("src", "cell2"));
    // Length prefixes keep the field boundary unambiguous.
    EXPECT_NE(ArtifactStore::keyFor("ab", "c"),
              ArtifactStore::keyFor("a", "bc"));
    EXPECT_EQ(base, ArtifactStore::keyFor("src", "cell"));
}

TEST(ArtifactStore, RoundTripReplaysBitIdentical)
{
    auto buffer = captureWorkload("cmp");
    ASSERT_GT(buffer->size(), 0u);

    ArtifactStore store(freshDir("store-roundtrip"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("cmp-src", "cell");
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.misses(), 1u);
    ASSERT_TRUE(store.save(key, *buffer));
    EXPECT_EQ(store.writes(), 1u);

    std::shared_ptr<const TraceBuffer> loaded = store.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_GT(store.bytesMapped(), 0u);
    EXPECT_TRUE(loaded->mapped());
    EXPECT_EQ(loaded->size(), buffer->size());
    EXPECT_EQ(loaded->run().exitValue, buffer->run().exitValue);
    EXPECT_EQ(loaded->run().output, buffer->run().output);
    EXPECT_EQ(loaded->run().memHash, buffer->run().memHash);
    EXPECT_EQ(loaded->index().size(), buffer->index().size());

    // Replay straight out of the mapping, perfect and real caches
    // (the latter decodes the whole varint address stream).
    for (bool perfect : {true, false}) {
        SimConfig sim;
        sim.machine = issue8Branch1();
        sim.perfectCaches = perfect;
        SCOPED_TRACE(perfect ? "perfect" : "real");
        expectSimEq(replay(*buffer, sim), replay(*loaded, sim));
    }

    // The section map agrees with the buffer's own accounting.
    auto info = inspectArtifact(store.objectPath(key));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, ArtifactStore::formatVersion);
    EXPECT_EQ(info->records, buffer->size());
    EXPECT_EQ(info->entriesBytes, buffer->size() * 4);
    EXPECT_GT(info->memBytes, 0u);
}

TEST(ArtifactStore, MappedBufferRefusesAppend)
{
    auto buffer = captureWorkload("cmp");
    ArtifactStore store(freshDir("store-appendguard"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("s", "c");
    ASSERT_TRUE(store.save(key, *buffer));
    std::shared_ptr<const TraceBuffer> loaded = store.load(key);
    ASSERT_NE(loaded, nullptr);
    auto &mutableBuffer = const_cast<TraceBuffer &>(*loaded);
    EXPECT_THROW(mutableBuffer.append(0, 0, 0), PanicError);
}

TEST(ArtifactStore, CorruptionInEveryRegionIsDetectedAndRepaired)
{
    auto buffer = captureWorkload("cmp");
    const std::string dir = freshDir("store-corruption");
    const std::string key =
        ArtifactStore::keyFor("cmp-src", "cell");

    ArtifactStore probe(dir, StoreMode::ReadWrite);
    ASSERT_TRUE(probe.save(key, *buffer));
    auto info = inspectArtifact(probe.objectPath(key));
    ASSERT_TRUE(info.has_value());
    ASSERT_GT(info->entriesBytes, 0u);
    ASSERT_GT(info->memBytes, 0u);

    struct Region
    {
        const char *name;
        std::size_t offset;
    };
    const Region regions[] = {
        {"magic", 0},
        {"header-version", 8},
        {"entry-stream",
         info->entriesOffset + info->entriesBytes / 2},
        {"varint-stream", info->memOffset + info->memBytes / 2},
        {"checksum", info->checksumOffset},
    };
    for (const Region &region : regions) {
        SCOPED_TRACE(region.name);
        ArtifactStore store(dir, StoreMode::ReadWrite);
        ASSERT_TRUE(store.save(key, *buffer));
        const std::string path = store.objectPath(key);
        flipByte(path, region.offset);

        // The flipped artifact must be rejected, counted as a
        // repair, and moved to quarantine...
        EXPECT_EQ(store.load(key), nullptr);
        EXPECT_EQ(store.repairs(), 1u);
        EXPECT_EQ(store.hits(), 0u);
        EXPECT_FALSE(fs::exists(path));
        EXPECT_GT(fileCount(fs::path(dir) / "quarantine"), 0u);
        EXPECT_FALSE(inspectArtifact(path).has_value());

        // ...and the recompute-and-save repair path must restore a
        // loadable artifact under the same key.
        ASSERT_TRUE(store.save(key, *buffer));
        std::shared_ptr<const TraceBuffer> repaired =
            store.load(key);
        ASSERT_NE(repaired, nullptr);
        EXPECT_EQ(repaired->size(), buffer->size());
        StatsSnapshot stats = store.stats();
        EXPECT_EQ(stats.counters().at("store.repair"), 1u);
        EXPECT_EQ(stats.counters().at("store.hit"), 1u);
    }

    // Truncation (a torn write) is detected by the length check.
    ArtifactStore store(dir, StoreMode::ReadWrite);
    ASSERT_TRUE(store.save(key, *buffer));
    const std::string path = store.objectPath(key);
    fs::resize_file(path, info->fileBytes / 2);
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.repairs(), 1u);
}

TEST(ArtifactStore, ReadOnlyModeNeverWritesOrQuarantines)
{
    auto buffer = captureWorkload("cmp");
    const std::string dir = freshDir("store-readonly");
    const std::string key = ArtifactStore::keyFor("s", "c");

    ArtifactStore readOnly(dir, StoreMode::ReadOnly);
    EXPECT_FALSE(readOnly.save(key, *buffer));
    EXPECT_EQ(readOnly.writes(), 0u);
    EXPECT_FALSE(fs::exists(readOnly.objectPath(key)));

    // Seed via a writer, then read through the read-only handle.
    ArtifactStore writer(dir, StoreMode::ReadWrite);
    ASSERT_TRUE(writer.save(key, *buffer));
    EXPECT_NE(readOnly.load(key), nullptr);

    // A corrupt artifact is rejected but left in place: read-only
    // handles must not mutate the store, even to quarantine.
    flipByte(readOnly.objectPath(key), 0);
    EXPECT_EQ(readOnly.load(key), nullptr);
    EXPECT_EQ(readOnly.repairs(), 1u);
    EXPECT_TRUE(fs::exists(readOnly.objectPath(key)));
    EXPECT_EQ(fileCount(fs::path(dir) / "quarantine"), 0u);
}

TEST(ArtifactStore, WarmEvaluatorSkipsAllCompileAndEmulation)
{
    const std::string dir = freshDir("store-evaluator");
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);

    EvalPolicy policy;
    policy.storeMode = StoreMode::ReadWrite;
    policy.storeDir = dir;

    // Cold process: everything misses, every trace is published.
    SuiteEvaluator cold(1);
    cold.setPolicy(policy);
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {workload->name};
    BenchmarkResult first = cold.evaluate(request).results.at(0);
    BenchTiming coldTiming = cold.timing();
    EXPECT_GT(coldTiming.compiles, 0u);
    EXPECT_GT(coldTiming.captures, 0u);
    EXPECT_EQ(coldTiming.storeHits, 0u);
    EXPECT_EQ(coldTiming.storeMisses, coldTiming.storeWrites);
    EXPECT_GT(coldTiming.storeWrites, 0u);

    // Warm process (a fresh evaluator on the same store): every
    // cell loads from disk — no compiles, no emulation at all (the
    // divergence check was already paid at publish time) — and the
    // results are bit-identical.
    SuiteEvaluator warm(1);
    warm.setPolicy(policy);
    BenchmarkResult second =
        warm.evaluate(request).results.at(0);
    BenchTiming warmTiming = warm.timing();
    EXPECT_EQ(warmTiming.compiles, 0u);
    EXPECT_EQ(warmTiming.prefixCompiles, 0u);
    EXPECT_EQ(warmTiming.captures, 0u);
    EXPECT_EQ(warmTiming.storeMisses, 0u);
    EXPECT_EQ(warmTiming.storeHits, coldTiming.storeWrites);
    EXPECT_GT(warmTiming.storeBytesMapped, 0u);

    EXPECT_EQ(first.baseCycles, second.baseCycles);
    ASSERT_EQ(first.models.size(), second.models.size());
    for (const auto &[model, sim] : first.models) {
        SCOPED_TRACE(modelName(model));
        expectSimEq(sim, second.models.at(model));
    }
}

TEST(ArtifactStore, DistinctCellKeysDoNotCollide)
{
    auto buffer = captureWorkload("cmp");
    ArtifactStore store(freshDir("store-distinct"),
                        StoreMode::ReadWrite);
    const std::string a = ArtifactStore::keyFor("src", "cell-a");
    const std::string b = ArtifactStore::keyFor("src", "cell-b");
    ASSERT_TRUE(store.save(a, *buffer));
    EXPECT_EQ(store.load(b), nullptr);
    EXPECT_NE(store.load(a), nullptr);
}

/** Minimal provenance sidecar payload for the tests below. */
const char *const kProvJson =
    "{\"workload\": \"cmp\", \"config_digest\": \"v1:test\"}";

TEST(SealedRecord, SealRoundTripAndTamperDetection)
{
    JsonValue record = JsonValue::parse(kProvJson);
    JsonValue sealed = sealRecord(record);
    EXPECT_TRUE(sealedRecordValid(sealed));
    // Every member except the seal survives, in order.
    const auto &members = sealed.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members.back().first, "checksum");

    // Any payload change invalidates the seal...
    std::vector<std::pair<std::string, JsonValue>> tampered;
    for (const auto &[name, value] : members) {
        tampered.emplace_back(
            name, name == "workload" ? JsonValue::makeString("abs")
                                     : value);
    }
    EXPECT_FALSE(sealedRecordValid(
        JsonValue::makeObject(std::move(tampered))));
    // ...and an unsealed record never validates.
    EXPECT_FALSE(sealedRecordValid(record));
}

TEST(ArtifactStore, SidecarIsSealedAndNamesPayloadChecksum)
{
    auto buffer = captureWorkload("cmp");
    ArtifactStore store(freshDir("store-sidecar"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));

    const std::string provPath =
        store.objectPath(key) + ".prov.json";
    ASSERT_TRUE(fs::exists(provPath));
    auto sidecar = readSealedJson(provPath);
    ASSERT_TRUE(sidecar.has_value());
    const JsonValue *workload = sidecar->find("workload");
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->asString(), "cmp");

    // The sidecar's artifact_checksum matches the artifact header's
    // payload checksum — the pairing the load path enforces.
    auto info = inspectArtifact(store.objectPath(key));
    ASSERT_TRUE(info.has_value());
    const JsonValue *recorded = sidecar->find("artifact_checksum");
    ASSERT_NE(recorded, nullptr);
    EXPECT_EQ(recorded->asString(),
              artifactChecksumString(info->payloadChecksum));
    EXPECT_EQ(store.loadProvenance(key),
              sidecar->dump() + "\n");
}

TEST(ArtifactStore, QuarantineTakesSidecarAlong)
{
    auto buffer = captureWorkload("cmp");
    const std::string dir = freshDir("store-quarantine-pair");
    ArtifactStore store(dir, StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));

    auto info = inspectArtifact(store.objectPath(key));
    ASSERT_TRUE(info.has_value());
    flipByte(store.objectPath(key),
             info->entriesOffset + info->entriesBytes / 2);

    // The corrupt artifact is condemned together with its sidecar:
    // a stale sidecar must never describe a future recompute.
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.repairs(), 1u);
    EXPECT_FALSE(fs::exists(store.objectPath(key)));
    EXPECT_FALSE(
        fs::exists(store.objectPath(key) + ".prov.json"));
    EXPECT_EQ(store.loadProvenance(key), "");
    EXPECT_EQ(fileCount(fs::path(dir) / "quarantine"), 2u);

    // Recompute-and-save restores both halves.
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));
    EXPECT_NE(store.load(key), nullptr);
    EXPECT_NE(store.loadProvenance(key), "");
}

TEST(ArtifactStore, TornSidecarCondemnsThePairAndHeals)
{
    faultpoints::resetForTest();
    auto buffer = captureWorkload("cmp");
    const std::string dir = freshDir("store-torn-sidecar");
    ArtifactStore store(dir, StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");

    // A short write tears the sidecar mid-publish; the artifact
    // itself still lands.
    faultpoints::armFromSpec("store.publish.prov=once:short-write");
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));
    faultpoints::resetForTest();
    ASSERT_TRUE(fs::exists(store.objectPath(key)));
    ASSERT_TRUE(
        fs::exists(store.objectPath(key) + ".prov.json"));

    // Torn provenance is never served, and the artifact it fails to
    // describe is not served either — the pair is quarantined...
    EXPECT_EQ(store.loadProvenance(key), "");
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.repairs(), 1u);
    EXPECT_FALSE(fs::exists(store.objectPath(key)));
    EXPECT_EQ(fileCount(fs::path(dir) / "quarantine"), 2u);

    // ...and a clean republish self-heals.
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));
    EXPECT_NE(store.load(key), nullptr);
    EXPECT_NE(store.loadProvenance(key), "");
}

TEST(ArtifactStore, SidecarPublishFailureAbortsTheArtifact)
{
    faultpoints::resetForTest();
    auto buffer = captureWorkload("cmp");
    ArtifactStore store(freshDir("store-sidecar-abort"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");

    // Sidecar-first ordering: if provenance cannot be made durable,
    // the artifact must not be published at all.
    faultpoints::armFromSpec("store.publish.prov=once");
    EXPECT_FALSE(store.save(key, *buffer, kProvJson));
    faultpoints::resetForTest();
    EXPECT_FALSE(fs::exists(store.objectPath(key)));
    EXPECT_FALSE(
        fs::exists(store.objectPath(key) + ".prov.json"));

    ASSERT_TRUE(store.save(key, *buffer, kProvJson));
    EXPECT_NE(store.load(key), nullptr);
}

TEST(ArtifactStore, StaleSidecarIsRejected)
{
    auto buffer = captureWorkload("cmp");
    const std::string dir = freshDir("store-stale-sidecar");
    ArtifactStore store(dir, StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));

    // Forge a correctly sealed sidecar whose artifact_checksum names
    // a different payload: the seal alone is not enough — it must
    // pair with *this* artifact.
    std::vector<std::pair<std::string, JsonValue>> forged;
    forged.emplace_back("workload", JsonValue::makeString("cmp"));
    forged.emplace_back(
        "artifact_checksum",
        JsonValue::makeString(artifactChecksumString(0xdeadbeef)));
    std::ofstream out(store.objectPath(key) + ".prov.json",
                      std::ios::trunc);
    out << sealRecord(JsonValue::makeObject(std::move(forged)))
               .dump()
        << "\n";
    out.close();

    EXPECT_EQ(store.loadProvenance(key), "");
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.repairs(), 1u);
    EXPECT_EQ(fileCount(fs::path(dir) / "quarantine"), 2u);
}

TEST(ArtifactStore, OrphanSidecarIsNeverServed)
{
    auto buffer = captureWorkload("cmp");
    ArtifactStore store(freshDir("store-orphan-sidecar"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");
    ASSERT_TRUE(store.save(key, *buffer, kProvJson));
    fs::remove(store.objectPath(key));
    EXPECT_EQ(store.loadProvenance(key), "");
    EXPECT_EQ(store.load(key), nullptr);
}

TEST(ArtifactStore, CertifiedResultRecordsRoundTripSealed)
{
    faultpoints::resetForTest();
    ArtifactStore store(freshDir("store-results"),
                        StoreMode::ReadWrite);
    const std::string key = ArtifactStore::keyFor("src", "cell");
    JsonValue record = JsonValue::parse(
        "{\"schema\": \"predilp-cert-v1\", \"figures\":"
        " {\"cycles\": 42}}");

    EXPECT_EQ(store.loadResult(key), "");
    ASSERT_TRUE(store.saveResult(key, record));
    const std::string line = store.loadResult(key);
    ASSERT_NE(line, "");
    auto sealed = readSealedJson(store.resultPath(key));
    ASSERT_TRUE(sealed.has_value());
    EXPECT_EQ(line, sealed->dump() + "\n");

    // A flipped byte breaks the seal; the record is not served. A
    // republish (idempotent by design) heals it.
    flipByte(store.resultPath(key), 10);
    EXPECT_EQ(store.loadResult(key), "");
    ASSERT_TRUE(store.saveResult(key, record));
    EXPECT_NE(store.loadResult(key), "");

    // A torn publish (short write at the fault point) is likewise
    // rejected on read and healed by republish.
    faultpoints::armFromSpec(
        "store.publish.result=once:short-write");
    ASSERT_TRUE(store.saveResult(key, record));
    faultpoints::resetForTest();
    EXPECT_EQ(store.loadResult(key), "");
    ASSERT_TRUE(store.saveResult(key, record));
    EXPECT_NE(store.loadResult(key), "");

    // Read-only stores refuse to publish records.
    ArtifactStore readOnly(freshDir("store-results-ro"),
                           StoreMode::ReadOnly);
    EXPECT_FALSE(readOnly.saveResult(key, record));
}

TEST(ArtifactStore, EvaluatorPublishesCertifiedRecords)
{
    const std::string dir = freshDir("store-certified");
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;

    EvalPolicy policy;
    policy.storeMode = StoreMode::ReadWrite;
    policy.storeDir = dir;
    SuiteEvaluator evaluator(1);
    evaluator.setPolicy(policy);
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {"cmp"};
    BenchmarkResult result =
        evaluator.evaluate(request).results.at(0);

    // One certified record per priced cell — every model plus the
    // shared 1-issue baseline — all sealed, all carrying the schema
    // tag and matching the in-memory provenance.
    ASSERT_FALSE(result.models.empty());
    EXPECT_EQ(result.provenance.size(), result.models.size());
    std::size_t records = 0;
    for (const auto &entry : fs::recursive_directory_iterator(
             fs::path(dir) / "results")) {
        if (!entry.is_regular_file())
            continue;
        records += 1;
        auto sealed = readSealedJson(entry.path().string());
        ASSERT_TRUE(sealed.has_value()) << entry.path();
        const JsonValue *schema = sealed->find("schema");
        ASSERT_NE(schema, nullptr);
        EXPECT_EQ(schema->asString(), certSchemaTag);
        const JsonValue *prov = sealed->find("provenance");
        ASSERT_NE(prov, nullptr);
        EXPECT_TRUE(prov->isObject());
        const JsonValue *figures = sealed->find("figures");
        ASSERT_NE(figures, nullptr);
        EXPECT_TRUE(figures->isObject());
    }
    EXPECT_EQ(records, result.models.size() + 1);

    // The records live where the in-memory provenance says.
    ArtifactStore store(dir, StoreMode::ReadOnly);
    for (const auto &[model, prov] : result.provenance) {
        SCOPED_TRACE(modelName(model));
        EXPECT_NE(store.loadResult(certifiedResultKey(prov)), "");
    }
}

} // namespace
} // namespace predilp
