/**
 * @file
 * Sweep-driver tests: row-major grid expansion, eager spec
 * validation, the determinism contract (a sharded multi-process run
 * merges to the byte-identical cells array of a sequential run), the
 * consolidated report's shape, and store sharing — concurrent sweeps
 * racing on one artifact store all succeed, and a warm sweep over a
 * populated store performs zero compiles and zero captures.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "driver/sweep.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

namespace fs = std::filesystem;

/** Fresh empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A cheap 4-cell grid over the suite's fastest workload. */
SweepSpec
smallSpec()
{
    return SweepSpec::fromJson(JsonValue::parse(R"({
      "workloads": ["cmp"],
      "axes": {
        "issue_width": [4, 8],
        "perfect_caches": [true, false]
      }
    })"));
}

TEST(Sweep, ExpandGridIsRowMajor)
{
    SweepSpec spec = SweepSpec::fromJson(JsonValue::parse(R"({
      "axes": {
        "issue_width": [2, 4],
        "btb_entries": [256, 1024],
        "perfect_caches": [true, false]
      }
    })"));
    auto cells = spec.expandGrid();
    ASSERT_EQ(cells.size(), 8u);
    // The first listed axis varies slowest, the last fastest.
    EXPECT_EQ(cells[0].request.sim.machine.issueWidth, 2);
    EXPECT_EQ(cells[0].request.sim.btbEntries, 256u);
    EXPECT_TRUE(cells[0].request.sim.perfectCaches);
    EXPECT_FALSE(cells[1].request.sim.perfectCaches);
    EXPECT_EQ(cells[1].request.sim.btbEntries, 256u);
    EXPECT_EQ(cells[2].request.sim.btbEntries, 1024u);
    EXPECT_EQ(cells[4].request.sim.machine.issueWidth, 4);
    EXPECT_EQ(cells[7].request.sim.machine.issueWidth, 4);
    EXPECT_EQ(cells[7].request.sim.btbEntries, 1024u);
    EXPECT_FALSE(cells[7].request.sim.perfectCaches);
    std::set<std::string> digests;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].index, i);
        ASSERT_EQ(cells[i].axisValues.size(), 3u);
        EXPECT_EQ(cells[i].axisValues[0].first, "issue_width");
        digests.insert(cells[i].request.requestDigest());
    }
    // Every cell is a distinct request.
    EXPECT_EQ(digests.size(), cells.size());
}

TEST(Sweep, NoAxesYieldsSingleCell)
{
    SweepSpec spec = SweepSpec::fromJson(
        JsonValue::parse("{\"workloads\": [\"cmp\"]}"));
    auto cells = spec.expandGrid();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].axisValues.empty());
    EXPECT_TRUE(cells[0].request.sim == SimConfig{});
}

TEST(Sweep, SpecValidatesEagerly)
{
    // Unknown axis, empty axis, bad value, unknown top-level key,
    // and a bad enum value all fail at parse time — before any cell
    // evaluation starts.
    EXPECT_THROW(SweepSpec::fromJson(
                     JsonValue::parse("{\"axes\": {\"issue\": [2]}}")),
                 FatalError);
    EXPECT_THROW(SweepSpec::fromJson(JsonValue::parse(
                     "{\"axes\": {\"issue_width\": []}}")),
                 FatalError);
    EXPECT_THROW(SweepSpec::fromJson(JsonValue::parse(
                     "{\"axes\": {\"issue_width\": [0]}}")),
                 FatalError);
    EXPECT_THROW(
        SweepSpec::fromJson(JsonValue::parse("{\"grid\": {}}")),
        FatalError);
    EXPECT_THROW(SweepSpec::fromJson(JsonValue::parse(
                     "{\"axes\": {\"predictor\": [\"gshare\"]}}")),
                 FatalError);
}

TEST(Sweep, ShardedRunMatchesSequentialByteForByte)
{
    SweepSpec spec = smallSpec();
    SweepOutcome sequential = runSweep(spec, 1, "");
    SweepOutcome sharded = runSweep(spec, 2, "");
    EXPECT_EQ(sequential.cells, 4u);
    EXPECT_EQ(sequential.workers, 1);
    EXPECT_EQ(sharded.workers, 2);
    // The determinism contract: the merged cells array is identical
    // to the sequential run's, byte for byte. (Work counts are NOT
    // compared — without a shared store, each worker recompiles
    // machines the sequential evaluator's in-process cache shares.)
    EXPECT_EQ(sharded.cellsJson, sequential.cellsJson);
    EXPECT_GE(sharded.timing.compiles, sequential.timing.compiles);
    // Trace-affine sharding: cells replaying the same traces stay on
    // one worker, so the fleet captures each model trace exactly
    // once (only the shared 1-issue baseline is duplicated). Naive
    // index % workers sharding would double every capture here.
    EXPECT_LT(sharded.timing.captures,
              2 * sequential.timing.captures);
}

TEST(Sweep, BatchedAndUnbatchedRunsAreByteIdentical)
{
    // Batched shard pricing (one streaming pass per trace for all
    // its configs) must be indistinguishable from cell-by-cell
    // evaluation in the merged report — and must not do extra
    // capture or compile work to get there.
    SweepSpec spec = smallSpec();
    SweepOutcome batched = runSweep(spec, 2, "");
    SweepOutcome unbatched = runSweep(spec, 2, "", false);
    EXPECT_EQ(batched.cellsJson, unbatched.cellsJson);
    EXPECT_EQ(batched.timing.captures, unbatched.timing.captures);
    EXPECT_EQ(batched.timing.compiles, unbatched.timing.compiles);
}

TEST(Sweep, WorkerCountClampsToCellCount)
{
    SweepSpec spec = smallSpec();
    SweepOutcome outcome = runSweep(spec, 16, "");
    EXPECT_EQ(outcome.workers, 4);
    EXPECT_EQ(outcome.cells, 4u);
}

TEST(Sweep, ReportFileHasTheDocumentedShape)
{
    const std::string dir = freshDir("sweep_report");
    const std::string path = dir + "/BENCH_sweep.json";
    SweepOutcome outcome = runSweep(smallSpec(), 2, path);
    EXPECT_EQ(outcome.path, path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("bench").asString(), "sweep");
    EXPECT_EQ(report.at("workers").asInt(), 2);
    EXPECT_EQ(report.at("cell_count").asInt(), 4);
    EXPECT_TRUE(report.at("timing").isObject());
    EXPECT_TRUE(report.at("crossover").isArray());

    const auto &cells = report.at("cells").items();
    ASSERT_EQ(cells.size(), 4u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const JsonValue &cell = cells[i];
        EXPECT_EQ(cell.at("index").asInt(),
                  static_cast<std::int64_t>(i));
        EXPECT_TRUE(cell.at("axes").isObject());
        EXPECT_EQ(cell.at("request_digest").asString().substr(0, 3),
                  "v1:");
        ASSERT_EQ(cell.at("benchmarks").items().size(), 1u);
        const JsonValue &bench = cell.at("benchmarks").items()[0];
        EXPECT_EQ(bench.at("name").asString(), "cmp");
        EXPECT_GT(bench.at("base_cycles").asInt(), 0);
        EXPECT_TRUE(bench.at("models").find("full_pred") != nullptr);
    }
}

TEST(Sweep, ConcurrentSweepsShareOneStore)
{
    const std::string dir = freshDir("sweep_contention_store");
    ASSERT_EQ(setenv("PREDILP_STORE", dir.c_str(), 1), 0);
    SweepSpec spec = smallSpec();

    // Two whole sweeps race on the same store: four workers publish
    // the same artifacts concurrently under the flock protocol, and
    // every one of them must succeed.
    pid_t pids[2];
    for (auto &pid : pids) {
        pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            try {
                runSweep(spec, 2, "");
                _exit(0);
            } catch (...) {
                _exit(1);
            }
        }
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }

    // A warm sweep over the populated store does no new work — every
    // trace comes off disk — and still merges to the same bytes as a
    // cold sequential run with no store at all.
    SweepOutcome warm = runSweep(spec, 2, "");
    EXPECT_EQ(warm.timing.compiles, 0u);
    EXPECT_EQ(warm.timing.captures, 0u);
    EXPECT_GT(warm.timing.storeHits, 0u);
    ASSERT_EQ(unsetenv("PREDILP_STORE"), 0);
    SweepOutcome cold = runSweep(spec, 1, "");
    EXPECT_EQ(warm.cellsJson, cold.cellsJson);
}

TEST(Sweep, ShardedRunRespectsTmpdir)
{
    // The sharded supervisor stages shard results under $TMPDIR
    // (POSIX), not a hardcoded /tmp: an unusable TMPDIR fails fast
    // with a diagnostic naming the attempted template...
    const std::string missing =
        freshDir("sweep-tmpdir") + "/does-not-exist";
    ASSERT_EQ(setenv("TMPDIR", missing.c_str(), 1), 0);
    EXPECT_THROW(runSweep(smallSpec(), 2, ""), FatalError);

    // ...and a valid one hosts a normal run.
    const std::string tmp = freshDir("sweep-tmpdir-ok");
    ASSERT_EQ(setenv("TMPDIR", tmp.c_str(), 1), 0);
    SweepOutcome outcome = runSweep(smallSpec(), 2, "");
    ASSERT_EQ(unsetenv("TMPDIR"), 0);
    EXPECT_EQ(outcome.cells, 4u);
    EXPECT_EQ(outcome.degradedCells, 0u);
    // The staging directory is cleaned up after the merge.
    EXPECT_TRUE(fs::is_empty(tmp));
}

} // namespace
} // namespace predilp
