/**
 * @file
 * SuiteEvaluator tests: results are identical for every thread
 * count, repeated evaluation hits the caches instead of recompiling,
 * and one evaluator reuses captured traces across simulation
 * configurations (the trace-once/replay-many contract).
 */

#include <gtest/gtest.h>

#include <fstream>

#include "driver/evaluator.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

const std::vector<std::string> subset = {"cmp", "qsort", "wc"};

SuiteConfig
smallConfig()
{
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    return config;
}

EvalRequest
requestFor(const SuiteConfig &config,
           std::vector<std::string> workloads = {},
           std::vector<Model> models = {})
{
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = std::move(workloads);
    request.models = std::move(models);
    return request;
}

std::vector<BenchmarkResult>
evalSuite(SuiteEvaluator &evaluator, const SuiteConfig &config,
          const std::vector<std::string> &names)
{
    return evaluator.evaluate(requestFor(config, names)).results;
}

BenchmarkResult
evalOne(SuiteEvaluator &evaluator, const Workload &workload,
        const SuiteConfig &config, std::vector<Model> models = {})
{
    return evaluator
        .evaluate(
            requestFor(config, {workload.name}, std::move(models)))
        .results.at(0);
}

void
expectResultsEq(const std::vector<BenchmarkResult> &a,
                const std::vector<BenchmarkResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].baseCycles, b[i].baseCycles);
        ASSERT_EQ(a[i].models.size(), b[i].models.size());
        for (const auto &[model, sim] : a[i].models) {
            const SimResult &other = b[i].models.at(model);
            EXPECT_EQ(sim.cycles, other.cycles);
            EXPECT_EQ(sim.dynInstrs, other.dynInstrs);
            EXPECT_EQ(sim.nullified, other.nullified);
            EXPECT_EQ(sim.branches, other.branches);
            EXPECT_EQ(sim.condBranches, other.condBranches);
            EXPECT_EQ(sim.mispredicts, other.mispredicts);
            EXPECT_EQ(sim.loads, other.loads);
            EXPECT_EQ(sim.stores, other.stores);
            EXPECT_EQ(sim.icacheMisses, other.icacheMisses);
            EXPECT_EQ(sim.dcacheMisses, other.dcacheMisses);
            EXPECT_EQ(sim.exitValue, other.exitValue);
            EXPECT_EQ(sim.output, other.output);
        }
    }
}

TEST(SuiteEvaluator, ThreadCountDoesNotChangeResults)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator serial(1);
    SuiteEvaluator parallel(4);
    EXPECT_EQ(serial.threadCount(), 1);
    EXPECT_EQ(parallel.threadCount(), 4);
    auto a = evalSuite(serial, config, subset);
    auto b = evalSuite(parallel, config, subset);
    expectResultsEq(a, b);
    // Order follows the requested names, not completion order.
    ASSERT_EQ(a.size(), subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i)
        EXPECT_EQ(a[i].name, subset[i]);
}

TEST(SuiteEvaluator, RepeatHitsResultCache)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    auto first = evalSuite(evaluator, config, subset);
    BenchTiming cold = evaluator.timing();
    EXPECT_GT(cold.compiles, 0u);
    EXPECT_EQ(cold.resultCacheHits, 0u);

    auto second = evalSuite(evaluator, config, subset);
    BenchTiming warm = evaluator.timing();
    expectResultsEq(first, second);
    // The repeat did no new work: every cell was a result-cache hit.
    EXPECT_EQ(warm.compiles, cold.compiles);
    EXPECT_EQ(warm.captures, cold.captures);
    EXPECT_EQ(warm.replays, cold.replays);
    EXPECT_EQ(warm.resultCacheHits,
              cold.resultCacheHits + 4 * subset.size());
}

TEST(SuiteEvaluator, TracesReusedAcrossSimConfigs)
{
    SuiteConfig perfect = smallConfig();
    SuiteConfig real = smallConfig();
    real.perfectCaches = false;

    SuiteEvaluator evaluator(1);
    evalSuite(evaluator, perfect, subset);
    BenchTiming cold = evaluator.timing();

    evalSuite(evaluator, real, subset);
    BenchTiming warm = evaluator.timing();
    // Real caches change only the pricing: no recompilation or
    // re-emulation, every cell replayed from the cached trace.
    EXPECT_EQ(warm.compiles, cold.compiles);
    EXPECT_EQ(warm.captures, cold.captures);
    EXPECT_EQ(warm.traceCacheHits,
              cold.traceCacheHits + 4 * subset.size());
    EXPECT_EQ(warm.replays, cold.replays + 4 * subset.size());
}

TEST(SuiteEvaluator, ModelSubsetEvaluatesOnlyThatModel)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    BenchmarkResult r =
        evalOne(evaluator, *workload, config, {Model::FullPred});
    EXPECT_EQ(r.models.size(), 1u);
    EXPECT_GT(r.baseCycles, 0u);
    EXPECT_GT(r.speedup(Model::FullPred), 0.0);
    // Baseline + one model: exactly two compiles.
    EXPECT_EQ(evaluator.timing().compiles, 2u);
}

TEST(SuiteEvaluator, ReleaseTracesKeepsResults)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    auto first = evalSuite(evaluator, config, subset);
    EXPECT_GT(evaluator.timing().traceBytes, 0u);
    evaluator.releaseTraces();
    EXPECT_EQ(evaluator.timing().traceBytes, 0u);
    // Priced results survive the trace drop.
    auto second = evalSuite(evaluator, config, subset);
    expectResultsEq(first, second);
    // Per workload: 4 capturing emulations + 1 reference run.
    EXPECT_EQ(evaluator.timing().captures, first.size() * 5);
}

TEST(SuiteEvaluator, UnknownWorkloadPanics)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    EXPECT_ANY_THROW(evalSuite(evaluator, config, {"nope"}));
}

TEST(SuiteEvaluator, StrictModePropagatesTypedTrapThroughPool)
{
    // A budget far below any workload's dynamic count forces an
    // EmuTrap in every capturing cell; under the default strict
    // policy the first worker's exception must surface from
    // evaluate() with its type intact (captured via exception_ptr
    // in the pool and rethrown after the join).
    SuiteConfig tiny = smallConfig();
    tiny.maxDynInstrs = 500;
    SuiteEvaluator evaluator(4);
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    try {
        evalOne(evaluator, *workload, tiny, {Model::FullPred});
        FAIL() << "expected EmuTrap";
    } catch (const EmuTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::FuelExhausted);
        EXPECT_GE(trap.steps(), 500u);
    }
}

TEST(SuiteEvaluator, FailedComputationIsEvictedForRetry)
{
    // A failed cell must not poison the once-per-key cache: the
    // retry recomputes (captures grows) instead of replaying the
    // stale exception as a cache hit forever.
    SuiteConfig tiny = smallConfig();
    tiny.maxDynInstrs = 500;
    SuiteEvaluator evaluator(1);
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    EXPECT_THROW(
        evalOne(evaluator, *workload, tiny, {Model::FullPred}),
        EmuTrap);
    // The model compile lands before the capture traps, so a real
    // retry recompiles; a poisoned cache would instead resolve the
    // retry as a trace-cache hit with no new compile.
    const BenchTiming cold = evaluator.timing();
    EXPECT_GT(cold.compiles, 0u);
    EXPECT_THROW(
        evalOne(evaluator, *workload, tiny, {Model::FullPred}),
        EmuTrap);
    const BenchTiming warm = evaluator.timing();
    EXPECT_GT(warm.compiles, cold.compiles);
    EXPECT_EQ(warm.traceCacheHits, cold.traceCacheHits);
}

TEST(SuiteEvaluator, IsolatedTrapCellDegradesToErrorAndReproducer)
{
    const std::string reproDir =
        testing::TempDir() + "predilp-repro";
    SuiteConfig tiny = smallConfig();
    tiny.maxDynInstrs = 500;

    SuiteEvaluator evaluator(1);
    EvalPolicy policy;
    policy.isolateFaults = true;
    policy.reproducerDir = reproDir;
    evaluator.setPolicy(policy);

    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);

    // Every cell traps, but evaluate() completes and reports each
    // failure as a structured record with a readable reproducer.
    BenchmarkResult result = evalOne(evaluator, *workload, tiny);
    EXPECT_EQ(result.errors.size(), 4u);
    for (const CellError &error : result.errors) {
        EXPECT_EQ(error.workload, "cmp");
        EXPECT_EQ(error.kind, "EmuTrap");
        EXPECT_NE(error.message.find("budget"), std::string::npos);
        ASSERT_FALSE(error.reproducerPath.empty());
        std::ifstream in(error.reproducerPath);
        ASSERT_TRUE(in.good());
        std::string header;
        std::getline(in, header);
        EXPECT_EQ(header, "// predilp reproducer");
    }

    // The same evaluator then completes an honest configuration
    // bit-identically to a fresh strict evaluator: the failed
    // cells neither poisoned the caches nor leaked into results.
    SuiteConfig normal = smallConfig();
    BenchmarkResult ok = evalOne(evaluator, *workload, normal);
    EXPECT_TRUE(ok.errors.empty());
    SuiteEvaluator fresh(1);
    BenchmarkResult expected = evalOne(fresh, *workload, normal);
    EXPECT_EQ(ok.baseCycles, expected.baseCycles);
    ASSERT_EQ(ok.models.size(), expected.models.size());
    for (const auto &[model, sim] : ok.models) {
        EXPECT_EQ(sim.cycles, expected.models.at(model).cycles);
        EXPECT_EQ(sim.output, expected.models.at(model).output);
    }
}

TEST(SuiteEvaluator, EqualCellKeysGetDistinctReproducerFiles)
{
    // Two failing cells can share (title, kind) — here the same
    // model requested twice — and each must still get its own
    // reproducer file: the sequence suffix in the filename keeps
    // the second write from clobbering the first.
    const std::string reproDir =
        testing::TempDir() + "predilp-repro-collide";
    SuiteConfig tiny = smallConfig();
    tiny.maxDynInstrs = 500;

    SuiteEvaluator evaluator(1);
    EvalPolicy policy;
    policy.isolateFaults = true;
    policy.reproducerDir = reproDir;
    evaluator.setPolicy(policy);

    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    BenchmarkResult result = evalOne(
        evaluator, *workload, tiny,
        {Model::FullPred, Model::FullPred});
    ASSERT_EQ(result.errors.size(), 3u);

    std::vector<std::string> paths;
    for (const CellError &error : result.errors) {
        ASSERT_FALSE(error.reproducerPath.empty());
        paths.push_back(error.reproducerPath);
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
        for (std::size_t j = i + 1; j < paths.size(); ++j)
            EXPECT_NE(paths[i], paths[j]);
        std::ifstream in(paths[i]);
        EXPECT_TRUE(in.good()) << paths[i];
    }
}

TEST(SuiteEvaluator, EvaluateBatchMatchesSequentialEvaluation)
{
    // A batch over requests that differ only in non-machine axes
    // must price trace-major (one capture pass per trace, many
    // configs per walk) and still return responses bit-identical to
    // evaluating each request on a fresh evaluator.
    std::vector<EvalRequest> requests;
    for (int btbEntries : {256, 1024}) {
        for (bool perfect : {true, false}) {
            EvalRequest request =
                requestFor(smallConfig(), subset);
            request.sim.perfectCaches = perfect;
            request.sim.btbEntries = btbEntries;
            requests.push_back(std::move(request));
        }
    }

    SuiteEvaluator batched(2);
    std::vector<EvalResponse> fromBatch =
        batched.evaluateBatch(requests);
    ASSERT_EQ(fromBatch.size(), requests.size());

    SuiteEvaluator sequential(1);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EvalResponse expected = sequential.evaluate(requests[i]);
        EXPECT_EQ(fromBatch[i].requestDigest,
                  expected.requestDigest);
        expectResultsEq(fromBatch[i].results, expected.results);
    }

    // Trace-once across the whole batch: the four configurations
    // share one set of captures (4 capturing cells + 1 reference
    // per workload), and every cell was replayed exactly once.
    BenchTiming timing = batched.timing();
    EXPECT_EQ(timing.captures, subset.size() * 5);
    EXPECT_EQ(timing.replays,
              requests.size() * subset.size() * 4);
}

TEST(SuiteEvaluator, EvaluateBatchSeedsResultCache)
{
    // The assembly pass must find every batch-priced cell in the
    // result cache: cells = 4 per workload per request, all hits.
    std::vector<EvalRequest> requests;
    EvalRequest real = requestFor(smallConfig(), subset);
    real.sim.perfectCaches = false;
    requests.push_back(requestFor(smallConfig(), subset));
    requests.push_back(std::move(real));

    SuiteEvaluator evaluator(1);
    evaluator.evaluateBatch(requests);
    BenchTiming timing = evaluator.timing();
    EXPECT_EQ(timing.resultCacheHits,
              requests.size() * subset.size() * 4);
    EXPECT_EQ(timing.replays, requests.size() * subset.size() * 4);
}

TEST(SuiteEvaluator, VerifyEachPassPolicyMatchesDefaultResults)
{
    // Running the verifier after every pass is purely observational:
    // cycle-for-cycle identical results, just slower compiles.
    SuiteConfig config = smallConfig();
    SuiteEvaluator verifying(1);
    EvalPolicy policy;
    policy.verifyEachPass = true;
    verifying.setPolicy(policy);
    SuiteEvaluator plain(1);
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    BenchmarkResult a = evalOne(verifying, *workload, config);
    BenchmarkResult b = evalOne(plain, *workload, config);
    EXPECT_EQ(a.baseCycles, b.baseCycles);
    ASSERT_EQ(a.models.size(), b.models.size());
    for (const auto &[model, sim] : a.models)
        EXPECT_EQ(sim.cycles, b.models.at(model).cycles);
}

} // namespace
} // namespace predilp
