/**
 * @file
 * SuiteEvaluator tests: results are identical for every thread
 * count, repeated evaluation hits the caches instead of recompiling,
 * and one evaluator reuses captured traces across simulation
 * configurations (the trace-once/replay-many contract).
 */

#include <gtest/gtest.h>

#include "driver/evaluator.hh"

namespace predilp
{
namespace
{

const std::vector<std::string> subset = {"cmp", "qsort", "wc"};

SuiteConfig
smallConfig()
{
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = true;
    return config;
}

void
expectResultsEq(const std::vector<BenchmarkResult> &a,
                const std::vector<BenchmarkResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].baseCycles, b[i].baseCycles);
        ASSERT_EQ(a[i].models.size(), b[i].models.size());
        for (const auto &[model, sim] : a[i].models) {
            const SimResult &other = b[i].models.at(model);
            EXPECT_EQ(sim.cycles, other.cycles);
            EXPECT_EQ(sim.dynInstrs, other.dynInstrs);
            EXPECT_EQ(sim.nullified, other.nullified);
            EXPECT_EQ(sim.branches, other.branches);
            EXPECT_EQ(sim.condBranches, other.condBranches);
            EXPECT_EQ(sim.mispredicts, other.mispredicts);
            EXPECT_EQ(sim.loads, other.loads);
            EXPECT_EQ(sim.stores, other.stores);
            EXPECT_EQ(sim.icacheMisses, other.icacheMisses);
            EXPECT_EQ(sim.dcacheMisses, other.dcacheMisses);
            EXPECT_EQ(sim.exitValue, other.exitValue);
            EXPECT_EQ(sim.output, other.output);
        }
    }
}

TEST(SuiteEvaluator, ThreadCountDoesNotChangeResults)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator serial(1);
    SuiteEvaluator parallel(4);
    EXPECT_EQ(serial.threadCount(), 1);
    EXPECT_EQ(parallel.threadCount(), 4);
    auto a = serial.evaluateSuite(config, subset);
    auto b = parallel.evaluateSuite(config, subset);
    expectResultsEq(a, b);
    // Order follows the requested names, not completion order.
    ASSERT_EQ(a.size(), subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i)
        EXPECT_EQ(a[i].name, subset[i]);
}

TEST(SuiteEvaluator, RepeatHitsResultCache)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    auto first = evaluator.evaluateSuite(config, subset);
    BenchTiming cold = evaluator.timing();
    EXPECT_GT(cold.compiles, 0u);
    EXPECT_EQ(cold.resultCacheHits, 0u);

    auto second = evaluator.evaluateSuite(config, subset);
    BenchTiming warm = evaluator.timing();
    expectResultsEq(first, second);
    // The repeat did no new work: every cell was a result-cache hit.
    EXPECT_EQ(warm.compiles, cold.compiles);
    EXPECT_EQ(warm.captures, cold.captures);
    EXPECT_EQ(warm.replays, cold.replays);
    EXPECT_EQ(warm.resultCacheHits,
              cold.resultCacheHits + 4 * subset.size());
}

TEST(SuiteEvaluator, TracesReusedAcrossSimConfigs)
{
    SuiteConfig perfect = smallConfig();
    SuiteConfig real = smallConfig();
    real.perfectCaches = false;

    SuiteEvaluator evaluator(1);
    evaluator.evaluateSuite(perfect, subset);
    BenchTiming cold = evaluator.timing();

    evaluator.evaluateSuite(real, subset);
    BenchTiming warm = evaluator.timing();
    // Real caches change only the pricing: no recompilation or
    // re-emulation, every cell replayed from the cached trace.
    EXPECT_EQ(warm.compiles, cold.compiles);
    EXPECT_EQ(warm.captures, cold.captures);
    EXPECT_EQ(warm.traceCacheHits,
              cold.traceCacheHits + 4 * subset.size());
    EXPECT_EQ(warm.replays, cold.replays + 4 * subset.size());
}

TEST(SuiteEvaluator, ModelSubsetEvaluatesOnlyThatModel)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    BenchmarkResult r =
        evaluator.evaluate(*workload, config, {Model::FullPred});
    EXPECT_EQ(r.models.size(), 1u);
    EXPECT_GT(r.baseCycles, 0u);
    EXPECT_GT(r.speedup(Model::FullPred), 0.0);
    // Baseline + one model: exactly two compiles.
    EXPECT_EQ(evaluator.timing().compiles, 2u);
}

TEST(SuiteEvaluator, ReleaseTracesKeepsResults)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    auto first = evaluator.evaluateSuite(config, subset);
    EXPECT_GT(evaluator.timing().traceBytes, 0u);
    evaluator.releaseTraces();
    EXPECT_EQ(evaluator.timing().traceBytes, 0u);
    // Priced results survive the trace drop.
    auto second = evaluator.evaluateSuite(config, subset);
    expectResultsEq(first, second);
    // Per workload: 4 capturing emulations + 1 reference run.
    EXPECT_EQ(evaluator.timing().captures, first.size() * 5);
}

TEST(SuiteEvaluator, UnknownWorkloadPanics)
{
    SuiteConfig config = smallConfig();
    SuiteEvaluator evaluator(1);
    EXPECT_ANY_THROW(evaluator.evaluateSuite(config, {"nope"}));
}

} // namespace
} // namespace predilp
