/**
 * @file
 * EvalRequest tests: the serializable request surface round-trips
 * through canonical JSON, rejects unknown keys, digests stably, and
 * evaluate(EvalRequest) produces exactly what the report.hh
 * SuiteConfig convenience wrappers produce for equivalent inputs.
 */

#include <gtest/gtest.h>

#include "driver/evaluator.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

EvalRequest
nonDefaultRequest()
{
    EvalRequest request;
    request.workloads = {"cmp", "wc"};
    request.models = {Model::FullPred, Model::Superblock};
    request.sim.machine = issue4Branch1();
    request.sim.perfectCaches = false;
    request.sim.btbEntries = 256;
    request.sim.predictor = BranchPredictor::OneBit;
    request.ablation.orTree = false;
    request.scale = 2;
    return request;
}

void
expectResultsEq(const std::vector<BenchmarkResult> &a,
                const std::vector<BenchmarkResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].baseCycles, b[i].baseCycles);
        ASSERT_EQ(a[i].models.size(), b[i].models.size());
        for (const auto &[model, sim] : a[i].models) {
            const SimResult &other = b[i].models.at(model);
            EXPECT_EQ(sim.cycles, other.cycles);
            EXPECT_EQ(sim.dynInstrs, other.dynInstrs);
            EXPECT_EQ(sim.mispredicts, other.mispredicts);
            EXPECT_EQ(sim.icacheMisses, other.icacheMisses);
            EXPECT_EQ(sim.dcacheMisses, other.dcacheMisses);
            EXPECT_EQ(sim.exitValue, other.exitValue);
            EXPECT_EQ(sim.output, other.output);
        }
    }
}

TEST(EvalRequest, JsonRoundTripIsExact)
{
    EvalRequest request = nonDefaultRequest();
    EvalRequest back = EvalRequest::fromJson(
        JsonValue::parse(request.toJson().dump()));
    EXPECT_TRUE(back == request);
    EXPECT_EQ(back.toJson().dump(), request.toJson().dump());
}

TEST(EvalRequest, UnknownKeysRejected)
{
    EXPECT_THROW(EvalRequest::fromJson(
                     JsonValue::parse("{\"workload\": [\"cmp\"]}")),
                 FatalError);
    EXPECT_THROW(EvalRequest::fromJson(JsonValue::parse(
                     "{\"models\": [\"hyperblock\"]}")),
                 FatalError);
    EXPECT_THROW(
        EvalRequest::fromJson(JsonValue::parse("{\"scale\": 0}")),
        FatalError);
}

TEST(EvalRequest, EffectiveModelsExpandsEmptyDefault)
{
    EvalRequest request;
    EXPECT_EQ(request.effectiveModels(),
              (std::vector<Model>{Model::Superblock, Model::CondMove,
                                  Model::FullPred}));
    request.models = {Model::CondMove};
    EXPECT_EQ(request.effectiveModels(),
              std::vector<Model>{Model::CondMove});
}

TEST(EvalRequest, DigestCoversEveryComponent)
{
    const EvalRequest base;
    const std::string baseDigest = base.requestDigest();
    EXPECT_EQ(baseDigest.substr(0, 3), "v1:");
    EXPECT_EQ(base.requestDigest(), EvalRequest{}.requestDigest());

    EvalRequest changed = base;
    changed.workloads = {"cmp"};
    EXPECT_NE(changed.requestDigest(), baseDigest);

    changed = base;
    changed.sim.btbEntries = 512;
    EXPECT_NE(changed.requestDigest(), baseDigest);

    changed = base;
    changed.ablation.unrolling = false;
    EXPECT_NE(changed.requestDigest(), baseDigest);

    changed = base;
    changed.scale = 3;
    EXPECT_NE(changed.requestDigest(), baseDigest);
}

TEST(EvalRequest, FromSuiteConfigMapsEveryField)
{
    SuiteConfig config;
    config.machine = issue8Branch2();
    config.perfectCaches = false;
    config.ablation.promotion = false;
    config.scaleMultiplier = 4;
    config.maxDynInstrs = 1000;
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    EXPECT_EQ(request.sim.machine.branchesPerCycle, 2);
    EXPECT_FALSE(request.sim.perfectCaches);
    EXPECT_EQ(request.sim.maxDynInstrs, 1000u);
    EXPECT_FALSE(request.ablation.promotion);
    EXPECT_EQ(request.scale, 4);
    EXPECT_TRUE(request.workloads.empty());
    EXPECT_TRUE(request.models.empty());
}

TEST(EvalRequest, EvaluateMatchesSuiteConfigWrappers)
{
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.threads = 1;

    SuiteEvaluator modern(1);
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {"cmp"};
    EvalResponse response = modern.evaluate(request);
    EXPECT_EQ(response.requestDigest, request.requestDigest());

    // The report.hh convenience wrappers go through the same entry
    // point and must agree cell for cell.
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);
    expectResultsEq({response.results.at(0)},
                    {evaluateWorkload(*workload, config)});
}

TEST(EvalRequest, UnknownWorkloadThrows)
{
    SuiteEvaluator evaluator(1);
    EvalRequest request;
    request.workloads = {"no_such_workload"};
    EXPECT_THROW(evaluator.evaluate(request), FatalError);
}

} // namespace
} // namespace predilp
