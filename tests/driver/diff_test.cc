/**
 * @file
 * predilp_diff engine tests: result-set loading from BENCH JSON and
 * certified-record stores, the three-way classification on crafted
 * pairs (identical, explained-by-digest, unexplained drift),
 * added/removed cells, the multi-config sub-match, the JSON report
 * shape, and the store provenance verifier.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/certified.hh"
#include "driver/diff.hh"
#include "driver/evaluator.hh"
#include "driver/pipeline.hh"
#include "store/store.hh"
#include "support/diag.hh"

namespace predilp
{
namespace
{

namespace fs = std::filesystem;

/** Fresh empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

/** One-cell BENCH document with parameterizable figure and
 * config digest. */
std::string
benchDoc(long cycles, const std::string &configDigest)
{
    std::ostringstream os;
    os << "{\n  \"bench\": \"unit\",\n  \"benchmarks\": [\n"
          "    {\n      \"name\": \"cmp\",\n"
          "      \"base_cycles\": 100,\n"
          "      \"models\": {\n        \"superblock\": "
          "{\"cycles\": "
       << cycles
       << ", \"speedup\": 1.25}\n      },\n"
          "      \"provenance\": {\n        \"superblock\": {\n"
          "          \"workload\": \"cmp\",\n"
          "          \"model\": \"superblock\",\n"
          "          \"source_sha256\": \"s0\",\n"
          "          \"pipeline_digest\": \"p0\",\n"
          "          \"config_digest\": \""
       << configDigest
       << "\",\n          \"trace_digest\": \"t0\"\n"
          "        }\n      }\n    }\n  ]\n}\n";
    return os.str();
}

std::string
benchFile(const std::string &dir, long cycles,
          const std::string &configDigest)
{
    const std::string path = dir + "/BENCH_unit.json";
    writeFile(path, benchDoc(cycles, configDigest));
    return path;
}

TEST(Diff, IdenticalSetsReportZeroDrift)
{
    const std::string dir = freshDir("diff-identical");
    const std::string a = benchFile(dir, 90, "c0");
    ResultSet before = loadResultSet(a);
    ResultSet after = loadResultSet(a);
    ASSERT_EQ(before.cells.size(), 1u);
    EXPECT_EQ(before.cells[0].identity, "unit/cmp/superblock");
    EXPECT_EQ(before.cells[0].figures.at("cycles"), "90");
    EXPECT_EQ(before.cells[0].figures.at("base_cycles"), "100");
    EXPECT_EQ(before.cells[0].evidence.at("config_digest"), "c0");

    DiffReport report = diffResultSets(before, after);
    EXPECT_EQ(report.identical, 1u);
    EXPECT_TRUE(report.entries.empty());
    EXPECT_FALSE(report.hasUnexplainedDrift());
}

TEST(Diff, DigestChangeExplainsAFigureDelta)
{
    const std::string beforeDir = freshDir("diff-explained-b");
    const std::string afterDir = freshDir("diff-explained-a");
    ResultSet before =
        loadResultSet(benchFile(beforeDir, 90, "c0"));
    ResultSet after = loadResultSet(benchFile(afterDir, 95, "c1"));

    DiffReport report = diffResultSets(before, after);
    EXPECT_EQ(report.explained, 1u);
    EXPECT_EQ(report.unexplained, 0u);
    EXPECT_FALSE(report.hasUnexplainedDrift());
    ASSERT_EQ(report.entries.size(), 1u);
    const DiffEntry &entry = report.entries[0];
    EXPECT_EQ(entry.kind, DiffKind::Explained);
    // The changed digest is named as the evidence...
    ASSERT_EQ(entry.digests.size(), 1u);
    EXPECT_EQ(entry.digests[0].name, "config_digest");
    EXPECT_EQ(entry.digests[0].before, "c0");
    EXPECT_EQ(entry.digests[0].after, "c1");
    // ...alongside the figure it explains.
    ASSERT_EQ(entry.figures.size(), 1u);
    EXPECT_EQ(entry.figures[0].name, "cycles");
    EXPECT_EQ(entry.figures[0].before, "90");
    EXPECT_EQ(entry.figures[0].after, "95");
}

TEST(Diff, SameProvenanceDifferentFigureIsUnexplainedDrift)
{
    const std::string beforeDir = freshDir("diff-drift-b");
    const std::string afterDir = freshDir("diff-drift-a");
    ResultSet before =
        loadResultSet(benchFile(beforeDir, 90, "c0"));
    ResultSet after = loadResultSet(benchFile(afterDir, 91, "c0"));

    DiffReport report = diffResultSets(before, after);
    EXPECT_EQ(report.unexplained, 1u);
    EXPECT_TRUE(report.hasUnexplainedDrift());
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_EQ(report.entries[0].kind, DiffKind::Unexplained);
    EXPECT_TRUE(report.entries[0].digests.empty());
    ASSERT_EQ(report.entries[0].figures.size(), 1u);
    EXPECT_EQ(report.entries[0].figures[0].name, "cycles");

    // Both renderings carry the full story.
    std::ostringstream text;
    printDiffReport(text, report);
    EXPECT_NE(text.str().find("unexplained drift"),
              std::string::npos);
    EXPECT_NE(text.str().find("cycles: 90 -> 91"),
              std::string::npos);
    JsonValue json = diffReportToJson(report);
    const JsonValue *unexplained = json.find("unexplained");
    ASSERT_NE(unexplained, nullptr);
    EXPECT_EQ(unexplained->asInt(), 1);
    const JsonValue *entries = json.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->items().size(), 1u);
    const JsonValue *kind = entries->items().at(0).find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->asString(), "unexplained drift");
}

TEST(Diff, UnmatchedCellsAreAddedAndRemoved)
{
    const std::string beforeDir = freshDir("diff-unmatched-b");
    const std::string afterDir = freshDir("diff-unmatched-a");
    writeFile(beforeDir + "/BENCH_a.json",
              "{\"bench\": \"a\", \"benchmarks\": [{\"name\":"
              " \"cmp\", \"models\": {\"superblock\":"
              " {\"cycles\": 1}}}]}");
    writeFile(afterDir + "/BENCH_b.json",
              "{\"bench\": \"b\", \"benchmarks\": [{\"name\":"
              " \"cmp\", \"models\": {\"superblock\":"
              " {\"cycles\": 1}}}]}");

    DiffReport report = diffResultSets(loadResultSet(beforeDir),
                                       loadResultSet(afterDir));
    EXPECT_EQ(report.added, 1u);
    EXPECT_EQ(report.removed, 1u);
    EXPECT_EQ(report.identical, 0u);
    EXPECT_FALSE(report.hasUnexplainedDrift());
}

TEST(Diff, LoadRejectsEmptyDirectoryAndMalformedJson)
{
    const std::string dir = freshDir("diff-empty");
    EXPECT_THROW(loadResultSet(dir), FatalError);
    const std::string bad = dir + "/BENCH_bad.json";
    writeFile(bad, "{not json");
    EXPECT_THROW(loadResultSet(bad), FatalError);
}

/** Evaluate cmp into @p dir's store and return the store dir. */
std::string
evaluateInto(const std::string &dir, bool perfectCaches)
{
    SuiteConfig config;
    config.machine = issue8Branch1();
    config.perfectCaches = perfectCaches;
    EvalPolicy policy;
    policy.storeMode = StoreMode::ReadWrite;
    policy.storeDir = dir;
    SuiteEvaluator evaluator(1);
    evaluator.setPolicy(policy);
    EvalRequest request = EvalRequest::fromSuiteConfig(config);
    request.workloads = {"cmp"};
    evaluator.evaluate(request);
    return dir;
}

TEST(Diff, CertifiedStoreRunsCompareCleanAndConfigFlipExplains)
{
    ResultSet run1 = loadResultSet(
        evaluateInto(freshDir("diff-cert-1"), true));
    ResultSet run2 = loadResultSet(
        evaluateInto(freshDir("diff-cert-2"), true));
    ASSERT_FALSE(run1.cells.empty());
    EXPECT_EQ(run1.invalidRecords, 0u);

    // Back-to-back clean runs: everything identical, zero drift.
    DiffReport clean = diffResultSets(run1, run2);
    EXPECT_EQ(clean.identical, run1.cells.size());
    EXPECT_TRUE(clean.entries.empty());

    // Flipping a SimConfig axis that is not part of cell identity
    // changes configDigest() — every cell pairs up and is explained
    // with the digest named, never reported as drift.
    ResultSet flipped = loadResultSet(
        evaluateInto(freshDir("diff-cert-3"), false));
    DiffReport report = diffResultSets(run1, flipped);
    EXPECT_EQ(report.explained, run1.cells.size());
    EXPECT_EQ(report.unexplained, 0u);
    EXPECT_EQ(report.added, 0u);
    EXPECT_EQ(report.removed, 0u);
    for (const DiffEntry &entry : report.entries) {
        SCOPED_TRACE(entry.identity);
        bool namesConfig = false;
        for (const DiffDelta &delta : entry.digests) {
            EXPECT_EQ(delta.name, "config_digest");
            namesConfig = true;
        }
        EXPECT_TRUE(namesConfig);
    }
}

TEST(Diff, VerifyStoreProvenanceFlagsTornPairs)
{
    const std::string dir =
        evaluateInto(freshDir("diff-verify"), true);
    std::ostringstream quiet;
    EXPECT_EQ(verifyStoreProvenance(quiet, dir), 0);

    // Deleting one sidecar breaks the contract for exactly that
    // artifact.
    std::string firstSidecar;
    for (const auto &entry : fs::recursive_directory_iterator(
             fs::path(dir) / "objects")) {
        const std::string path = entry.path().string();
        if (entry.is_regular_file() &&
            path.size() > 10 &&
            path.compare(path.size() - 10, 10, ".prov.json") == 0) {
            firstSidecar = path;
            break;
        }
    }
    ASSERT_FALSE(firstSidecar.empty());
    fs::remove(firstSidecar);
    std::ostringstream out;
    EXPECT_EQ(verifyStoreProvenance(out, dir), 1);
    EXPECT_NE(out.str().find("missing or torn sidecar"),
              std::string::npos);

    // A corrupted certified record is a violation too.
    std::string firstRecord;
    for (const auto &entry : fs::recursive_directory_iterator(
             fs::path(dir) / "results")) {
        if (entry.is_regular_file()) {
            firstRecord = entry.path().string();
            break;
        }
    }
    ASSERT_FALSE(firstRecord.empty());
    writeFile(firstRecord, "{\"schema\": \"predilp-cert-v1\"}\n");
    EXPECT_EQ(verifyStoreProvenance(out, dir), 2);
}

TEST(Certified, ProvenanceDigestsSeparateTheirInputs)
{
    // passPipelineDigest moves with model and ablation axes.
    AblationFlags flags;
    const std::string base =
        passPipelineDigest(Model::Superblock, flags);
    EXPECT_EQ(base,
              passPipelineDigest(Model::Superblock, flags));
    EXPECT_NE(base, passPipelineDigest(Model::FullPred, flags));
    AblationFlags noUnroll = flags;
    noUnroll.unrolling = false;
    EXPECT_NE(base,
              passPipelineDigest(Model::Superblock, noUnroll));

    // identityKey/certifiedResultKey separate every field.
    CellProvenance prov;
    prov.workload = "cmp";
    prov.model = "superblock";
    prov.scale = 1;
    prov.machine = machineIdentity(issue8Branch1());
    const std::string key = certifiedResultKey(prov);
    EXPECT_EQ(key, certifiedResultKey(prov));
    CellProvenance other = prov;
    other.scale = 2;
    EXPECT_NE(key, certifiedResultKey(other));
    EXPECT_NE(prov.identityKey(), other.identityKey());
    other = prov;
    other.machine = machineIdentity(issue4Branch1());
    EXPECT_NE(prov.identityKey(), other.identityKey());
}

} // namespace
} // namespace predilp
