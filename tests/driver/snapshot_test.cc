/**
 * @file
 * The front-end snapshot cache's soundness contract (driver/pipeline):
 * resuming a compilation from a cached FrontendSnapshot must produce
 * a program bit-identical (printProgram) to compiling from scratch,
 * for every model and for ablation flips — the snapshot path only
 * skips recomputing the shared prefix, never changes the result.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "ir/printer.hh"
#include "sched/machine.hh"
#include "workloads/workloads.hh"

namespace predilp
{
namespace
{

std::string
print(const Program &prog)
{
    std::ostringstream os;
    printProgram(os, prog);
    return os.str();
}

CompileOptions
optionsFor(const Workload &workload, Model model)
{
    CompileOptions opts;
    opts.model = model;
    opts.machine = issue8Branch1();
    opts.profileInput = workload.input();
    return opts;
}

class SnapshotCompileTest : public ::testing::Test
{
  protected:
    void
    expectSnapshotMatchesScratch(const Workload &workload,
                                 const CompileOptions &opts)
    {
        FrontendSnapshot snapshot = compilePrefix(
            workload.source, opts.profileInput,
            opts.maxProfileInstrs);
        std::unique_ptr<Program> resumed =
            compileFromSnapshot(snapshot, opts);
        std::unique_ptr<Program> scratch =
            compileForModel(workload.source, opts);
        EXPECT_EQ(print(*resumed), print(*scratch));
    }
};

TEST_F(SnapshotCompileTest, MatchesFromScratchEveryModel)
{
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    for (Model model : {Model::Superblock, Model::CondMove,
                        Model::FullPred}) {
        SCOPED_TRACE(modelName(model));
        expectSnapshotMatchesScratch(
            *workload, optionsFor(*workload, model));
    }
}

TEST_F(SnapshotCompileTest, MatchesFromScratchUnderAblationFlips)
{
    const Workload *workload = findWorkload("cmp");
    ASSERT_NE(workload, nullptr);

    // One flip per model, chosen so the flipped flag is actually
    // read by that model's pipeline (AblationFlags::canonicalFor).
    struct Case
    {
        Model model;
        void (*flip)(AblationFlags &);
    };
    const Case cases[] = {
        {Model::Superblock,
         [](AblationFlags &a) { a.unrolling = false; }},
        {Model::CondMove, [](AblationFlags &a) { a.orTree = false; }},
        {Model::FullPred,
         [](AblationFlags &a) { a.branchCombining = false; }},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(modelName(c.model));
        CompileOptions opts = optionsFor(*workload, c.model);
        c.flip(opts.ablation);
        expectSnapshotMatchesScratch(*workload, opts);
    }
}

TEST_F(SnapshotCompileTest, OneSnapshotServesManyResumes)
{
    // The cache's actual usage pattern: one snapshot, several
    // compileFromSnapshot calls. The snapshot must be left intact by
    // each resume (clone, not mutate).
    const Workload *workload = findWorkload("wc");
    ASSERT_NE(workload, nullptr);
    CompileOptions opts = optionsFor(*workload, Model::FullPred);
    FrontendSnapshot snapshot = compilePrefix(
        workload->source, opts.profileInput, opts.maxProfileInstrs);
    std::string prefixBefore = print(*snapshot.prog);

    std::string first =
        print(*compileFromSnapshot(snapshot, opts));
    opts.model = Model::CondMove;
    std::string second =
        print(*compileFromSnapshot(snapshot, opts));
    opts.model = Model::FullPred;
    std::string third =
        print(*compileFromSnapshot(snapshot, opts));

    EXPECT_EQ(print(*snapshot.prog), prefixBefore);
    EXPECT_EQ(first, third);
    EXPECT_NE(first, second);
    EXPECT_EQ(first,
              print(*compileForModel(workload->source, opts)));
}

} // namespace
} // namespace predilp
