/**
 * @file
 * The threaded-code execution engine for decoded programs
 * (emu/decoded.hh). One templated loop serves both run modes:
 * Engine<true> captures a trace through a TraceBuffer::Writer,
 * Engine<false> just executes (optionally filling a profile). On GCC
 * and Clang the dispatch is a computed goto per handler — each
 * handler ends in its own indirect branch, so the BTB learns the
 * common opcode successions; elsewhere it degrades to a switch.
 *
 * Bit-identity with the interpreter is the load-bearing invariant.
 * Every handler replicates emulator.cc's observable order exactly:
 * fuel is charged before the guard check, guard-nullified ops emit a
 * nullified record without executing, records are emitted after the
 * op's effect (and never when it traps), and static-instruction ids
 * are interned at first dynamic appearance via internDecoded().
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "emu/decoded.hh"
#include "support/diag.hh"
#include "support/faultpoint.hh"
#include "support/logging.hh"

#if defined(__GNUC__) || defined(__clang__)
#define PREDILP_CGOTO 1
#else
#define PREDILP_CGOTO 0
#endif

namespace predilp
{

namespace
{

std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

/** One activation record; registers live in the shared arenas. */
struct FrameInfo
{
    const DecodedFunction *fn = nullptr;
    std::size_t intBase = 0;
    std::size_t floatBase = 0;
    /** Resume state in the caller (null/unused for main's frame). */
    const DecodedFunction *retFn = nullptr;
    std::int32_t retPc = 0;
    std::int32_t retDest = -1;
    std::uint8_t retDestCls = 0;
    /** Cached per-function profile (forFunction is a map lookup). */
    FunctionProfile *profile = nullptr;
};

template <bool Capture>
class Engine
{
  public:
    Engine(const DecodedProgram &dp, const std::string &input,
           std::uint64_t fuel, ProgramProfile *profile,
           TraceBuffer *buffer)
        : dp_(dp), ctx_(dp.initialMemory(), input), fuel_(fuel),
          profile_(profile)
    {
        if constexpr (Capture) {
            // Capture runs never profile (the evaluator profiles
            // during compilation, on the interpreter); Engine<true>
            // relies on this to drop the profile plumbing from the
            // hot loop.
            panicIf(profile != nullptr,
                    "capture runs do not take a profile");
            ids_.assign(dp.totalOps(), StaticIndex::invalidId);
            writer_.emplace(*buffer);
            buffer_ = buffer;
        }
    }

    RunResult run();

  private:
    void
    pushFrame(const DecodedFunction &callee,
              const DecodedFunction *retFn, std::int32_t retPc,
              std::int32_t retDest, std::uint8_t retDestCls)
    {
        FrameInfo fi;
        fi.fn = &callee;
        fi.intBase = ints_.size();
        fi.floatBase = floats_.size();
        fi.retFn = retFn;
        fi.retPc = retPc;
        fi.retDest = retDest;
        fi.retDestCls = retDestCls;
        if (profile_ != nullptr)
            fi.profile = &profile_->forFunction(callee.name);
        // Registers and pred mirrors zero-initialize; the constant
        // pools land after them (see DecodedSrc's layout note).
        ints_.resize(ints_.size() +
                         static_cast<std::size_t>(callee.numIntSlots),
                     0);
        std::copy(callee.intConsts.begin(), callee.intConsts.end(),
                  ints_.begin() +
                      static_cast<std::ptrdiff_t>(fi.intBase) +
                      callee.numIntRegs + callee.numPredRegs);
        floats_.resize(floats_.size() +
                           static_cast<std::size_t>(
                               callee.numFloatSlots),
                       0.0);
        std::copy(callee.floatConsts.begin(),
                  callee.floatConsts.end(),
                  floats_.begin() +
                      static_cast<std::ptrdiff_t>(fi.floatBase) +
                      callee.numFloatRegs);
        frames_.push_back(fi);
    }

    void
    popFrame()
    {
        const FrameInfo &fi = frames_.back();
        ints_.resize(fi.intBase);
        floats_.resize(fi.floatBase);
        frames_.pop_back();
    }

    /** Out-of-line trap throws keep the hot handlers small. */
    [[noreturn, gnu::noinline, gnu::cold]] void
    trapFuel(std::int32_t irId, std::uint64_t steps) const
    {
        throw EmuTrap(TrapKind::FuelExhausted, irId, steps,
                      detail::formatMessage(
                          "dynamic instruction budget exceeded (",
                          fuel_, ")"));
    }

    [[noreturn, gnu::noinline, gnu::cold]] static void
    trapMem(std::int32_t irId, std::uint64_t steps,
            std::int64_t addr, const std::string &site)
    {
        throw EmuTrap(TrapKind::MemFault, irId, steps,
                      detail::formatMessage(
                          "invalid memory access at address ", addr,
                          site));
    }

    /** Intern a decoded op on its first dynamic appearance (cold). */
    std::uint32_t
    internOp(const DecodedFunction &fn, std::uint32_t idx)
    {
        std::uint32_t id = buffer_->index().internDecoded(
            fn.protos[idx],
            fn.internRegs.data() + fn.ops[idx].regListBegin);
        ids_[fn.idBase + idx] = id;
        return id;
    }

    const DecodedProgram &dp_;
    ExecContext ctx_;
    const std::uint64_t fuel_;
    ProgramProfile *profile_ = nullptr;
    TraceBuffer *buffer_ = nullptr;
    std::optional<TraceBuffer::Writer> writer_;
    /** Interned id per decoded op, invalidId until first appearance. */
    std::vector<std::uint32_t> ids_;

    std::vector<FrameInfo> frames_;
    std::vector<std::int64_t> ints_;
    std::vector<double> floats_;
    /** Call argument scratch (caller-frame values, by position). */
    std::vector<std::int64_t> tmpInts_;
    std::vector<double> tmpFloats_;
};

template <bool Capture>
RunResult
Engine<Capture>::run()
{
    panicIf(dp_.mainOrdinal() < 0, "no main function");
    if (dp_.mainHasParams()) {
        throw EmuTrap(TrapKind::BadProgram, -1, 0,
                      "main must take no parameters");
    }

    constexpr auto intCls =
        static_cast<std::uint8_t>(RegClass::Int);
    constexpr auto floatCls =
        static_cast<std::uint8_t>(RegClass::Float);
    constexpr auto predCls =
        static_cast<std::uint8_t>(RegClass::Pred);
    (void)intCls;

    const DecodedFunction *fn =
        &dp_.functions()[static_cast<std::size_t>(dp_.mainOrdinal())];
    pushFrame(*fn, nullptr, 0, -1, 0);

    const DecodedOp *code = fn->ops.data();
    const DecodedOp *op = code;
    std::int32_t pc = static_cast<std::int32_t>(fn->entryOffset);
    std::int64_t *I = ints_.data() + frames_.back().intBase;
    double *F = floats_.data() + frames_.back().floatBase;
    // Profiles are only filled on plain runs; Engine<true> compiles
    // the profile plumbing out of the loop entirely (one register
    // back, and blockHead becomes a pure fallthrough).
    FunctionProfile *prof = nullptr;
    if constexpr (!Capture)
        prof = frames_.back().profile;
    (void)prof;
    // Fuel counts down so the budget costs one register; the
    // instruction count at any point is fuel - left.
    const std::uint64_t fuel = fuel_;
    std::uint64_t left = fuel_;
    std::int64_t exitValue = 0;
    // Capture hot-path state: the interned-id table slice for the
    // current function and the raw cursor into the active trace
    // chunk (see TraceBuffer::Writer). ids_ never reallocates, so
    // the slice pointer stays valid across internOp() calls.
    std::uint32_t *ids = nullptr;
    TraceEntry *tcur = nullptr;
    TraceEntry *tend = nullptr;
    if constexpr (Capture)
        ids = ids_.data() + fn->idBase;
    (void)ids;
    (void)tcur;
    (void)tend;

// --- dispatch plumbing ---

#if PREDILP_CGOTO
#define HANDLER_OP(NAME) H_##NAME:
#define HANDLER_S(NAME) H_##NAME:
#define DISPATCH()                                                    \
    do {                                                              \
        op = code + pc;                                               \
        goto *labels[op->handler];                                    \
    } while (0)
#else
#define HANDLER_OP(NAME) case hdl::of(Opcode::NAME):
#define HANDLER_S(NAME) case hdl::NAME:
#define DISPATCH() goto dispatchTop
#endif

#define NEXT()                                                        \
    do {                                                              \
        pc += 1;                                                      \
        DISPATCH();                                                   \
    } while (0)

#define SYNC()                                                        \
    do {                                                              \
        const FrameInfo &top_ = frames_.back();                       \
        I = ints_.data() + top_.intBase;                              \
        F = floats_.data() + top_.floatBase;                          \
        if constexpr (Capture)                                        \
            ids = ids_.data() + top_.fn->idBase;                      \
        else                                                          \
            prof = top_.profile;                                      \
    } while (0)

// Fuel is charged before the guard check, as in Interp::step(). The
// count after FUEL() includes the current instruction, matching the
// interpreter's dyn.
#define DYN() (fuel - left)
#define FUEL()                                                        \
    do {                                                              \
        if (left == 0) [[unlikely]]                                   \
            trapFuel(op->irId, fuel + 1);                             \
        left -= 1;                                                    \
    } while (0)

#define GUARD()                                                       \
    do {                                                              \
        if (op->guard >= 0 && I[op->guard] == 0)                      \
            goto nullifiedOp;                                         \
    } while (0)

// Decoding registerizes immediates and predicate mirrors into the
// arenas, so a fetch is always one indexed load (decoded.hh).
#define FETCH_I(S) (I[(S)])

#define FETCH_F(S) (F[(S)])

#define WRITE_I(V)                                                    \
    do {                                                              \
        const std::int64_t wv_ = (V);                                 \
        if (op->destCls == predCls) [[unlikely]]                      \
            I[op->dest] = wv_ != 0;                                   \
        else                                                          \
            I[op->dest] = wv_;                                        \
    } while (0)

#define WRITE_F(V) (F[op->dest] = (V))

// Ids come from internDecoded(), which already rejects anything over
// traceMaxStaticId, so the packer skips makeTraceEntry's range check.
#define EMIT(FLAGS)                                                   \
    do {                                                              \
        if constexpr (Capture) {                                      \
            std::uint32_t id_ = ids[pc];                              \
            if (id_ == StaticIndex::invalidId) [[unlikely]]           \
                id_ = internOp(*fn,                                   \
                               static_cast<std::uint32_t>(pc));       \
            if (tcur == tend) [[unlikely]]                            \
                tcur = writer_->rollChunk(&tend);                     \
            *tcur++ = TraceEntry{                                     \
                (static_cast<std::uint32_t>(FLAGS)                    \
                 << traceIdBits) |                                    \
                id_};                                                 \
        }                                                             \
    } while (0)

#define EMIT_MEM(ADDR)                                                \
    do {                                                              \
        if constexpr (Capture) {                                      \
            EMIT(traceHasMemAddr);                                    \
            writer_->noteMem(ADDR);                                   \
        }                                                             \
    } while (0)

#define H_INT_BINOP(NAME, EXPR)                                       \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t a = FETCH_I(op->src[0]);                   \
        const std::int64_t b = FETCH_I(op->src[1]);                   \
        WRITE_I(EXPR);                                                \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#define H_INT_CMP(NAME, EXPR)                                         \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t a = FETCH_I(op->src[0]);                   \
        const std::int64_t b = FETCH_I(op->src[1]);                   \
        WRITE_I((EXPR) ? 1 : 0);                                      \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#define H_FLT_BINOP(NAME, EXPR)                                       \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const double a = FETCH_F(op->src[0]);                         \
        const double b = FETCH_F(op->src[1]);                         \
        WRITE_F(EXPR);                                                \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#define H_FLT_CMP(NAME, EXPR)                                         \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const double a = FETCH_F(op->src[0]);                         \
        const double b = FETCH_F(op->src[1]);                         \
        WRITE_I((EXPR) ? 1 : 0);                                      \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#define H_DIVIDE(NAME, ISREM)                                         \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t a = FETCH_I(op->src[0]);                   \
        const std::int64_t b = FETCH_I(op->src[1]);                   \
        std::int64_t q_;                                              \
        if (b == 0) [[unlikely]] {                                    \
            if (!op->speculative) {                                   \
                throw EmuTrap(TrapKind::DivideByZero, op->irId,       \
                              DYN(), fn->msgs[op->aux]);              \
            }                                                         \
            q_ = 0;                                                   \
        } else if (a == INT64_MIN && b == -1) {                       \
            q_ = (ISREM) ? 0 : INT64_MIN;                             \
        } else {                                                      \
            q_ = (ISREM) ? a % b : a / b;                             \
        }                                                             \
        WRITE_I(q_);                                                  \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

// Loads silently produce 0 on a faulting speculative access — and
// still emit a record carrying the faulting address, exactly like
// execMemory(). Stores always trap.
#define H_LOAD(NAME, WIDTH, LOADSTMT, ZEROSTMT)                       \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t addr =                                     \
            wrapAdd(FETCH_I(op->src[0]), FETCH_I(op->src[1]));        \
        if (!ctx_.validAccess(addr, WIDTH)) [[unlikely]] {            \
            if (op->speculative) {                                    \
                ZEROSTMT;                                             \
                EMIT_MEM(addr);                                       \
                NEXT();                                               \
            }                                                         \
            trapMem(op->irId, DYN(), addr, fn->msgs[op->aux]);        \
        }                                                             \
        LOADSTMT;                                                     \
        EMIT_MEM(addr);                                               \
        NEXT();                                                       \
    }

#define H_STORE(NAME, WIDTH, STORESTMT)                               \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t addr =                                     \
            wrapAdd(FETCH_I(op->src[0]), FETCH_I(op->src[1]));        \
        if (!ctx_.validAccess(addr, WIDTH)) [[unlikely]] {            \
            trapMem(op->irId, DYN(), addr, fn->msgs[op->aux]);        \
        }                                                             \
        STORESTMT;                                                    \
        EMIT_MEM(addr);                                               \
        NEXT();                                                       \
    }

#define H_BRANCH(NAME, EXPR)                                          \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        GUARD();                                                      \
        const std::int64_t a = FETCH_I(op->src[0]);                   \
        const std::int64_t b = FETCH_I(op->src[1]);                   \
        if (EXPR) {                                                   \
            if constexpr (!Capture) {                                 \
                if (prof != nullptr)                                  \
                    prof->addTaken(op->irId);                         \
            }                                                         \
            EMIT(traceTaken);                                         \
            pc = op->target;                                          \
            DISPATCH();                                               \
        }                                                             \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#define H_PRED_DEF(NAME, EXPR)                                        \
    HANDLER_OP(NAME)                                                  \
    {                                                                 \
        FUEL();                                                       \
        /* Never nullified: the guard participates as Pin. */         \
        const bool pin = op->guard < 0 || I[op->guard] != 0;          \
        const std::int64_t a = FETCH_I(op->src[0]);                   \
        const std::int64_t b = FETCH_I(op->src[1]);                   \
        const bool cmp = (EXPR);                                      \
        const DecodedPredDest *pd =                                   \
            fn->predDests.data() + op->aux;                           \
        for (std::uint32_t n = op->predCount; n != 0; --n, ++pd) {    \
            const bool old = I[pd->slot] != 0;                        \
            I[pd->slot] = applyPredType(pd->type, pin, cmp, old);     \
        }                                                             \
        EMIT(0);                                                      \
        NEXT();                                                       \
    }

#if PREDILP_CGOTO
    const void *labels[hdl::count];
#define LABEL(NAME) labels[hdl::of(Opcode::NAME)] = &&H_##NAME
    LABEL(Add); LABEL(Sub); LABEL(Mul); LABEL(Div); LABEL(Rem);
    LABEL(And); LABEL(Or); LABEL(Xor); LABEL(AndNot); LABEL(OrNot);
    LABEL(Shl); LABEL(Shr); LABEL(Sra); LABEL(Mov);
    LABEL(CmpEq); LABEL(CmpNe); LABEL(CmpLt); LABEL(CmpLe);
    LABEL(CmpGt); LABEL(CmpGe); LABEL(CmpLtu);
    LABEL(FAdd); LABEL(FSub); LABEL(FMul); LABEL(FDiv); LABEL(FMov);
    LABEL(CvtIf); LABEL(CvtFi);
    LABEL(FCmpEq); LABEL(FCmpNe); LABEL(FCmpLt); LABEL(FCmpLe);
    LABEL(FCmpGt); LABEL(FCmpGe);
    LABEL(Ld); LABEL(LdB); LABEL(LdBu); LABEL(St); LABEL(StB);
    LABEL(FLd); LABEL(FSt);
    LABEL(Beq); LABEL(Bne); LABEL(Blt); LABEL(Ble); LABEL(Bgt);
    LABEL(Bge);
    LABEL(Jump); LABEL(Call); LABEL(Ret);
    LABEL(GetC); LABEL(PutC); LABEL(ReadBlock);
    LABEL(PredClear); LABEL(PredSet);
    LABEL(PredEq); LABEL(PredNe); LABEL(PredLt); LABEL(PredLe);
    LABEL(PredGt); LABEL(PredGe); LABEL(PredLtu);
    LABEL(CMov); LABEL(CMovCom); LABEL(Select);
    LABEL(FCMov); LABEL(FCMovCom); LABEL(FSelect);
    LABEL(Nop);
#undef LABEL
    labels[hdl::blockHead] = &&H_blockHead;
    labels[hdl::fallthrough] = &&H_fallthrough;
    labels[hdl::fallOff] = &&H_fallOff;
    labels[hdl::badStatic] = &&H_badStatic;
#endif

    DISPATCH();

#if !PREDILP_CGOTO
dispatchTop:
    op = code + pc;
    switch (op->handler) {
#endif

    H_INT_BINOP(Add, wrapAdd(a, b))
    H_INT_BINOP(Sub, wrapSub(a, b))
    H_INT_BINOP(Mul, wrapMul(a, b))
    H_DIVIDE(Div, false)
    H_DIVIDE(Rem, true)
    H_INT_BINOP(And, a & b)
    H_INT_BINOP(Or, a | b)
    H_INT_BINOP(Xor, a ^ b)
    H_INT_BINOP(AndNot, a & ~b)
    H_INT_BINOP(OrNot, a | ~b)
    H_INT_BINOP(Shl, static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(a) << (b & 63)))
    H_INT_BINOP(Shr, static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(a) >> (b & 63)))
    H_INT_BINOP(Sra, a >> (b & 63))

    HANDLER_OP(Mov)
    {
        FUEL();
        GUARD();
        WRITE_I(FETCH_I(op->src[0]));
        EMIT(0);
        NEXT();
    }

    H_INT_CMP(CmpEq, a == b)
    H_INT_CMP(CmpNe, a != b)
    H_INT_CMP(CmpLt, a < b)
    H_INT_CMP(CmpLe, a <= b)
    H_INT_CMP(CmpGt, a > b)
    H_INT_CMP(CmpGe, a >= b)
    H_INT_CMP(CmpLtu, static_cast<std::uint64_t>(a) <
                          static_cast<std::uint64_t>(b))

    H_FLT_BINOP(FAdd, a + b)
    H_FLT_BINOP(FSub, a - b)
    H_FLT_BINOP(FMul, a * b)

    HANDLER_OP(FDiv)
    {
        FUEL();
        GUARD();
        const double a = FETCH_F(op->src[0]);
        const double b = FETCH_F(op->src[1]);
        if (b == 0.0 && !op->speculative) [[unlikely]] {
            throw EmuTrap(TrapKind::DivideByZero, op->irId, DYN(),
                          fn->msgs[op->aux]);
        }
        WRITE_F(b == 0.0 ? 0.0 : a / b);
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(FMov)
    {
        FUEL();
        GUARD();
        WRITE_F(FETCH_F(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(CvtIf)
    {
        FUEL();
        GUARD();
        WRITE_F(static_cast<double>(FETCH_I(op->src[0])));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(CvtFi)
    {
        FUEL();
        GUARD();
        const double v = FETCH_F(op->src[0]);
        std::int64_t out = 0;
        if (std::isfinite(v) && v >= -9.2e18 && v <= 9.2e18)
            out = static_cast<std::int64_t>(v);
        WRITE_I(out);
        EMIT(0);
        NEXT();
    }

    H_FLT_CMP(FCmpEq, a == b)
    H_FLT_CMP(FCmpNe, a != b)
    H_FLT_CMP(FCmpLt, a < b)
    H_FLT_CMP(FCmpLe, a <= b)
    H_FLT_CMP(FCmpGt, a > b)
    H_FLT_CMP(FCmpGe, a >= b)

    H_LOAD(Ld, 8, WRITE_I(ctx_.loadWord(addr)), WRITE_I(0))
    H_LOAD(LdB, 1, WRITE_I(ctx_.loadByteSigned(addr)), WRITE_I(0))
    H_LOAD(LdBu, 1, WRITE_I(ctx_.loadByteUnsigned(addr)), WRITE_I(0))
    H_LOAD(FLd, 8, WRITE_F(ctx_.loadDouble(addr)), WRITE_F(0.0))
    H_STORE(St, 8, ctx_.storeWord(addr, FETCH_I(op->src[2])))
    H_STORE(StB, 1, ctx_.storeByte(addr, FETCH_I(op->src[2])))
    H_STORE(FSt, 8, ctx_.storeDouble(addr, FETCH_F(op->src[2])))

    H_BRANCH(Beq, a == b)
    H_BRANCH(Bne, a != b)
    H_BRANCH(Blt, a < b)
    H_BRANCH(Ble, a <= b)
    H_BRANCH(Bgt, a > b)
    H_BRANCH(Bge, a >= b)

    HANDLER_OP(Jump)
    {
        FUEL();
        GUARD();
        if constexpr (!Capture) {
            if (prof != nullptr)
                prof->addTaken(op->irId);
        }
        EMIT(traceTaken);
        pc = op->target;
        DISPATCH();
    }

    HANDLER_OP(Call)
    {
        FUEL();
        GUARD();
        if (op->target < 0) [[unlikely]] {
            throw EmuTrap(TrapKind::BadControl, op->irId, DYN(),
                          fn->msgs[op->aux]);
        }
        if (frames_.size() >= 65536) [[unlikely]] {
            throw EmuTrap(TrapKind::StackOverflow, op->irId, DYN(),
                          "call stack overflow in emulated program");
        }
        const DecodedFunction &callee =
            dp_.functions()[static_cast<std::size_t>(op->target)];
        // Evaluate arguments in the caller frame first.
        const std::uint32_t argc = op->srcCount;
        const DecodedSrc *args = fn->args.data() + op->aux;
        tmpInts_.clear();
        tmpFloats_.clear();
        for (std::uint32_t i = 0; i < argc; ++i) {
            if (callee.params[i].cls == RegClass::Float) {
                tmpFloats_.push_back(FETCH_F(args[i]));
                tmpInts_.push_back(0);
            } else {
                tmpInts_.push_back(FETCH_I(args[i]));
                tmpFloats_.push_back(0.0);
            }
        }
        // The call's record precedes the callee's records, as in the
        // interpreter (sink fires after execute()).
        EMIT(traceTaken);
        pushFrame(callee, fn, pc + 1, op->dest, op->destCls);
        const FrameInfo &top = frames_.back();
        for (std::uint32_t i = 0; i < argc; ++i) {
            const DecodedParam &param = callee.params[i];
            // Non-float params land in the int file, mirroring
            // doCall() (predicate params included).
            if (param.cls == RegClass::Float) {
                floats_[top.floatBase +
                        static_cast<std::size_t>(param.slot)] =
                    tmpFloats_[i];
            } else {
                ints_[top.intBase +
                      static_cast<std::size_t>(param.slot)] =
                    tmpInts_[i];
            }
        }
        fn = &callee;
        code = fn->ops.data();
        pc = static_cast<std::int32_t>(fn->entryOffset);
        SYNC();
        DISPATCH();
    }

    HANDLER_OP(Ret)
    {
        FUEL();
        GUARD();
        std::int64_t intValue = 0;
        double floatValue = 0.0;
        if (op->srcCount != 0) {
            if (fn->retKind == RetKind::Float)
                floatValue = FETCH_F(op->src[0]);
            else
                intValue = FETCH_I(op->src[0]);
        }
        EMIT(traceTaken);
        if (frames_.size() == 1) {
            exitValue = intValue;
            goto runDone;
        }
        const FrameInfo fi = frames_.back();
        popFrame();
        fn = fi.retFn;
        code = fn->ops.data();
        pc = fi.retPc;
        SYNC();
        if (fi.retDest >= 0) {
            if (fi.retDestCls == floatCls)
                F[fi.retDest] = floatValue;
            else if (fi.retDestCls == predCls)
                I[fi.retDest] = intValue != 0;
            else
                I[fi.retDest] = intValue;
        }
        DISPATCH();
    }

    HANDLER_OP(GetC)
    {
        FUEL();
        GUARD();
        WRITE_I(ctx_.getChar());
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(PutC)
    {
        FUEL();
        GUARD();
        ctx_.putChar(FETCH_I(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(ReadBlock)
    {
        FUEL();
        GUARD();
        const std::int64_t addr =
            wrapAdd(FETCH_I(op->src[0]), FETCH_I(op->src[1]));
        const std::int64_t maxLen = FETCH_I(op->src[2]);
        if (maxLen < 0 ||
            !ctx_.validAccess(
                addr, static_cast<int>(
                          std::min<std::int64_t>(maxLen, 1)))) {
            throw EmuTrap(TrapKind::MemFault, op->irId, DYN(),
                          "readblock with invalid buffer");
        }
        const std::int64_t avail =
            static_cast<std::int64_t>(ctx_.inputRemaining());
        const std::int64_t count = std::min(maxLen, avail);
        if (!ctx_.validAccess(addr, static_cast<int>(count))) {
            throw EmuTrap(TrapKind::MemFault, op->irId, DYN(),
                          "readblock past end of memory");
        }
        WRITE_I(ctx_.readBlock(addr, maxLen));
        EMIT_MEM(addr);
        NEXT();
    }

    HANDLER_OP(PredClear)
    {
        FUEL();
        GUARD();
        std::fill_n(I + fn->numIntRegs,
                    static_cast<std::size_t>(fn->numPredRegs),
                    std::int64_t{0});
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(PredSet)
    {
        FUEL();
        GUARD();
        std::fill_n(I + fn->numIntRegs,
                    static_cast<std::size_t>(fn->numPredRegs),
                    std::int64_t{1});
        EMIT(0);
        NEXT();
    }

    H_PRED_DEF(PredEq, a == b)
    H_PRED_DEF(PredNe, a != b)
    H_PRED_DEF(PredLt, a < b)
    H_PRED_DEF(PredLe, a <= b)
    H_PRED_DEF(PredGt, a > b)
    H_PRED_DEF(PredGe, a >= b)
    H_PRED_DEF(PredLtu, static_cast<std::uint64_t>(a) <
                            static_cast<std::uint64_t>(b))

    HANDLER_OP(CMov)
    {
        FUEL();
        GUARD();
        if (FETCH_I(op->src[1]) != 0)
            WRITE_I(FETCH_I(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(CMovCom)
    {
        FUEL();
        GUARD();
        if (FETCH_I(op->src[1]) == 0)
            WRITE_I(FETCH_I(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(Select)
    {
        FUEL();
        GUARD();
        WRITE_I(FETCH_I(op->src[2]) != 0 ? FETCH_I(op->src[0])
                                         : FETCH_I(op->src[1]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(FCMov)
    {
        FUEL();
        GUARD();
        if (FETCH_I(op->src[1]) != 0)
            WRITE_F(FETCH_F(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(FCMovCom)
    {
        FUEL();
        GUARD();
        if (FETCH_I(op->src[1]) == 0)
            WRITE_F(FETCH_F(op->src[0]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(FSelect)
    {
        FUEL();
        GUARD();
        WRITE_F(FETCH_I(op->src[2]) != 0 ? FETCH_F(op->src[0])
                                         : FETCH_F(op->src[1]));
        EMIT(0);
        NEXT();
    }

    HANDLER_OP(Nop)
    {
        FUEL();
        GUARD();
        EMIT(0);
        NEXT();
    }

    // --- synthetic handlers (invisible to the trace) ---

    HANDLER_S(blockHead)
    {
        if constexpr (!Capture) {
            if (prof != nullptr)
                prof->addBlockEntry(op->target);
        }
        NEXT();
    }

    HANDLER_S(fallthrough)
    {
        pc = op->target;
        DISPATCH();
    }

    HANDLER_S(fallOff)
    {
        throw EmuTrap(TrapKind::BadControl, -1, DYN(),
                      fn->msgs[op->aux]);
    }

    HANDLER_S(badStatic)
    {
        FUEL();
        GUARD();
        throw PanicError(fn->msgs[op->aux]);
    }

#if !PREDILP_CGOTO
      default:
        panic("corrupt decoded stream: unknown handler index");
    }
#endif

nullifiedOp:
    EMIT(traceNullified);
    NEXT();

runDone:
    if constexpr (Capture)
        writer_->finish(tcur);
    RunResult result;
    result.exitValue = exitValue;
    result.dynInstrs = DYN();
    result.output = ctx_.output();
    result.memHash = ctx_.memoryHash();
    return result;

#undef HANDLER_OP
#undef HANDLER_S
#undef DISPATCH
#undef NEXT
#undef SYNC
#undef DYN
#undef FUEL
#undef GUARD
#undef FETCH_I
#undef FETCH_F
#undef WRITE_I
#undef WRITE_F
#undef EMIT
#undef EMIT_MEM
#undef H_INT_BINOP
#undef H_INT_CMP
#undef H_FLT_BINOP
#undef H_FLT_CMP
#undef H_DIVIDE
#undef H_LOAD
#undef H_STORE
#undef H_BRANCH
#undef H_PRED_DEF
}

} // namespace

RunResult
runDecoded(const DecodedProgram &dp, const std::string &input,
           const EmuOptions &opts)
{
    panicIf(opts.sink != nullptr,
            "the threaded backend cannot stream to a generic "
            "TraceSink; use the interpreter");
    Engine<false> engine(dp, input, opts.maxDynInstrs, opts.profile,
                         nullptr);
    return engine.run();
}

std::unique_ptr<TraceBuffer>
captureDecoded(const DecodedProgram &dp, const std::string &input,
               std::uint64_t maxDynInstrs)
{
    // Cold entry (once per capture, never per record): a trap here
    // exercises the evaluator's interpreter-oracle fallback.
    FAULT_POINT("emu.threaded.capture");
    auto buffer =
        std::make_unique<TraceBuffer>(StaticIndex(dp.regBounds()));
    Engine<true> engine(dp, input, maxDynInstrs, nullptr,
                        buffer.get());
    buffer->setRun(engine.run());
    return buffer;
}

} // namespace predilp
