/**
 * @file
 * Functional emulator for PredILP IR. Executes any program in any
 * compilation state — unscheduled, superblock-formed, fully
 * predicated hyperblocks, or lowered partial-predication code — and
 * optionally streams dynamic instruction records to a sink (the
 * timing simulator) and/or collects an execution profile.
 *
 * This stands in for the paper's HP PA-RISC emulation (§4.1,
 * Figure 7): they rewrote predicated code into PA-RISC bit
 * manipulation so a real machine could trace it; we execute the
 * predicated IR natively, which is functionally identical.
 */

#ifndef PREDILP_EMU_EMULATOR_HH
#define PREDILP_EMU_EMULATOR_HH

#include <cstdint>
#include <string>

#include "analysis/profile.hh"
#include "emu/context.hh"
#include "ir/program.hh"

namespace predilp
{

/**
 * One dynamic instruction event streamed to the timing simulator.
 */
struct DynRecord
{
    const Function *fn = nullptr;
    const Instruction *instr = nullptr;
    bool nullified = false;  ///< guard predicate was false.
    bool taken = false;      ///< control transfer fired.
    bool hasMemAddr = false; ///< memAddr below is meaningful.
    std::int64_t memAddr = 0;
    bool blockEntry = false; ///< first instruction after a transfer.
};

/** Consumer of the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per dynamic instruction, in execution order. */
    virtual void onInstr(const DynRecord &record) = 0;
};

/** Result of one emulation run. */
struct RunResult
{
    std::int64_t exitValue = 0;    ///< main's return value.
    std::uint64_t dynInstrs = 0;   ///< dynamic instruction count.
    std::string output;            ///< bytes written via putc.
    /**
     * FNV-1a hash of the final data-memory image. Together with
     * exitValue and output this is the architectural result the
     * differential oracle compares across processor models.
     */
    std::uint64_t memHash = 0;
};

/**
 * Emulator backend selection. Both backends implement the same
 * architectural semantics; the interpreter walks the IR directly and
 * is the reference oracle, the threaded backend executes a flat
 * pre-decoded instruction stream (emu/decoded.hh) an order of
 * magnitude faster. Their traces are bit-identical by construction
 * (enforced by tests/emu/backend_diff_test.cc).
 */
enum class EmuBackend : std::uint8_t
{
    Interp,   ///< tree-walking reference interpreter.
    Threaded, ///< pre-decoded threaded-code engine.
};

/**
 * Process-wide default backend: Threaded, unless the PREDILP_EMU
 * environment variable says "interp". Read once and cached.
 */
EmuBackend defaultEmuBackend();

/** @return "interp" or "threaded". */
const char *emuBackendName(EmuBackend backend);

/** Knobs for one emulation run. */
struct EmuOptions
{
    /**
     * Dynamic-instruction budget for this run; exceeding it throws
     * EmuTrap{TrapKind::FuelExhausted} so harnesses can classify
     * infinite loops apart from genuine failures. Configurable per
     * run — the fuzz oracle and the evaluator set tight budgets.
     */
    std::uint64_t maxDynInstrs = 2'000'000'000ull;

    /** Optional profile to fill (sized for the program). */
    ProgramProfile *profile = nullptr;

    /** Optional dynamic-trace consumer. */
    TraceSink *sink = nullptr;

    /**
     * Backend to execute with. Runs that stream records to a generic
     * TraceSink always use the interpreter (the threaded engine has
     * no per-record virtual-call seam by design; its only sink is the
     * TraceBuffer writer used by capture()).
     */
    EmuBackend backend = defaultEmuBackend();
};

/**
 * The emulator. Stateless between runs; construct once per program.
 */
class Emulator
{
  public:
    /** @param prog program to execute; must outlive the emulator. */
    explicit Emulator(const Program &prog) : prog_(prog) {}

    /**
     * Execute main() to completion.
     *
     * @param input byte stream served to getc.
     * @param opts run options (profile / trace sink / fuel).
     * @return exit value, instruction count, and program output.
     */
    RunResult run(const std::string &input,
                  const EmuOptions &opts = {}) const;

  private:
    const Program &prog_;
};

} // namespace predilp

#endif // PREDILP_EMU_EMULATOR_HH
