#include "emu/context.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace predilp
{

ExecContext::ExecContext(const Program &prog, std::string input)
    : ExecContext(initialImage(prog), std::move(input))
{}

ExecContext::ExecContext(const std::vector<std::uint8_t> &image,
                         std::string input)
    : memory_(image), input_(std::move(input))
{}

std::vector<std::uint8_t>
ExecContext::initialImage(const Program &prog)
{
    // Data segment plus a page of slack so off-by-small-index bugs in
    // workloads fault loudly rather than silently (the verifier of
    // last resort is the bounds check in the emulator).
    ExecContext ctx;
    ctx.memory_.assign(
        static_cast<std::size_t>(prog.dataSize()) + 4096, 0);
    for (const auto &g : prog.globals()) {
        if (!g.initInts.empty()) {
            std::int64_t addr = g.addr;
            for (std::int64_t v : g.initInts) {
                if (g.elemSize == 1) {
                    ctx.storeByte(addr, v);
                    addr += 1;
                } else {
                    ctx.storeWord(addr, v);
                    addr += 8;
                }
            }
        }
        if (!g.initFloats.empty()) {
            std::int64_t addr = g.addr;
            for (double v : g.initFloats) {
                ctx.storeDouble(addr, v);
                addr += 8;
            }
        }
    }
    return std::move(ctx.memory_);
}

std::int64_t
ExecContext::loadWord(std::int64_t addr) const
{
    std::int64_t value;
    std::memcpy(&value, memory_.data() + addr, 8);
    return value;
}

void
ExecContext::storeWord(std::int64_t addr, std::int64_t value)
{
    std::memcpy(memory_.data() + addr, &value, 8);
}

std::int64_t
ExecContext::loadByteSigned(std::int64_t addr) const
{
    return static_cast<std::int8_t>(memory_[
        static_cast<std::size_t>(addr)]);
}

std::int64_t
ExecContext::loadByteUnsigned(std::int64_t addr) const
{
    return memory_[static_cast<std::size_t>(addr)];
}

void
ExecContext::storeByte(std::int64_t addr, std::int64_t value)
{
    memory_[static_cast<std::size_t>(addr)] =
        static_cast<std::uint8_t>(value & 0xff);
}

double
ExecContext::loadDouble(std::int64_t addr) const
{
    double value;
    std::memcpy(&value, memory_.data() + addr, 8);
    return value;
}

void
ExecContext::storeDouble(std::int64_t addr, double value)
{
    std::memcpy(memory_.data() + addr, &value, 8);
}

std::int64_t
ExecContext::getChar()
{
    if (inputPos_ >= input_.size())
        return -1;
    return static_cast<std::uint8_t>(input_[inputPos_++]);
}

std::int64_t
ExecContext::readBlock(std::int64_t addr, std::int64_t maxLen)
{
    std::int64_t count = std::min<std::int64_t>(
        maxLen, static_cast<std::int64_t>(inputRemaining()));
    if (count < 0)
        count = 0;
    for (std::int64_t i = 0; i < count; ++i) {
        memory_[static_cast<std::size_t>(addr + i)] =
            static_cast<std::uint8_t>(input_[inputPos_ + static_cast<
                std::size_t>(i)]);
    }
    inputPos_ += static_cast<std::size_t>(count);
    return count;
}

void
ExecContext::putChar(std::int64_t value)
{
    output_.push_back(static_cast<char>(value & 0xff));
}

std::uint64_t
ExecContext::memoryHash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < memory_.size(); ++i) {
        // The reserved scratch word is not architectural state: the
        // cmov model redirects squashed stores there (Figure 3), so
        // its contents legitimately differ across models.
        if (i >= static_cast<std::size_t>(Program::safeAddr) &&
            i < static_cast<std::size_t>(Program::safeAddr) + 8)
            continue;
        hash ^= memory_[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace predilp
