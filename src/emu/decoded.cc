#include "emu/decoded.hh"

#include <bit>
#include <unordered_map>

#include "support/diag.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * Static-instruction prototype, mirroring StaticIndex::addOp() field
 * for field except regBegin (assigned at interning time, because ids
 * and pool offsets depend on first *dynamic* appearance order).
 */
StaticOp
makeProto(const Function &fn, const Instruction &instr,
          const AddressMap &addresses)
{
    StaticOp op;
    op.addr = addresses.addressOf(&fn, &instr);
    op.op = instr.op();
    op.guard = instr.guard();
    op.dest = instr.dest();
    std::uint16_t srcRegs = 0;
    for (const auto &src : instr.srcs()) {
        if (src.isReg())
            srcRegs += 1;
    }
    op.srcRegCount = srcRegs;
    op.predDestCount =
        static_cast<std::uint16_t>(instr.predDests().size());
    op.isBranch = instr.isControlTransfer() || instr.isCall();
    op.isLoad = instr.isLoad();
    op.isStore = instr.isStore();
    op.isPredAll = instr.isPredAll();
    if (instr.isCondBranch())
        op.kind = StaticOp::Kind::CondBranch;
    else if (instr.isJump())
        op.kind = StaticOp::Kind::Jump;
    else if (instr.isCall() || instr.isRet())
        op.kind = StaticOp::Kind::CallRet;
    return op;
}

/** Lowers the instructions of one function. */
class Lowerer
{
  public:
    Lowerer(const Function &fn, const AddressMap &addresses,
            const std::unordered_map<const Function *, int> &ordinals)
        : fn_(fn), addresses_(addresses), ordinals_(ordinals)
    {}

    DecodedFunction take() { return std::move(df_); }

    DecodedFunction &df() { return df_; }

    std::uint32_t
    addMsg(std::string msg)
    {
        df_.msgs.push_back(std::move(msg));
        return static_cast<std::uint32_t>(df_.msgs.size() - 1);
    }

    void
    push(DecodedOp op, StaticOp proto)
    {
        df_.ops.push_back(op);
        df_.protos.push_back(proto);
    }

    /**
     * Lower one instruction. Any static malformation the interpreter
     * would only report when the instruction executes (its eval
     * helpers panic lazily) is deferred the same way: the op decays
     * into a badStatic handler carrying the panic message.
     */
    void
    lower(const Instruction &instr,
          const std::vector<std::int32_t> &offsets,
          const Program &prog)
    {
        StaticOp proto = makeProto(fn_, instr, addresses_);

        DecodedOp op;
        op.handler = hdl::of(instr.op());
        op.irId = instr.id();
        op.speculative = instr.speculative();

        // Interning reg list, in StaticIndex::addOp() pool order:
        // register sources first, then pred-define destinations.
        op.regListBegin =
            static_cast<std::uint32_t>(df_.internRegs.size());
        for (const auto &src : instr.srcs()) {
            if (src.isReg())
                df_.internRegs.push_back(src.reg());
        }
        for (const auto &pd : instr.predDests())
            df_.internRegs.push_back(pd.reg);

        bool guardOk = true;
        std::string failMsg;
        if (instr.guarded()) {
            try {
                op.guard = predSlot(instr.guard(),
                                    "guard is not a predicate "
                                    "register");
            } catch (const PanicError &e) {
                guardOk = false;
                failMsg = e.what();
            }
        }
        if (guardOk) {
            // Roll back pool growth if the body fails to resolve, so
            // a badStatic op leaves no dangling pool entries.
            const std::size_t argsMark = df_.args.size();
            const std::size_t predsMark = df_.predDests.size();
            const std::size_t msgsMark = df_.msgs.size();
            try {
                lowerBody(op, instr, offsets, prog);
                push(op, proto);
                return;
            } catch (const PanicError &e) {
                failMsg = e.what();
                df_.args.resize(argsMark);
                df_.predDests.resize(predsMark);
                df_.msgs.resize(msgsMark);
            }
        }

        DecodedOp bad;
        bad.handler = hdl::badStatic;
        bad.irId = instr.id();
        bad.regListBegin = op.regListBegin;
        bad.aux = addMsg(std::move(failMsg));
        // Pred defines consume their guard as Pin, never as a
        // nullifier, and a malformed guard panics during the guard
        // check itself — both cases must panic unconditionally.
        if (guardOk && !instr.isPredDefine())
            bad.guard = op.guard;
        push(bad, proto);
    }

  private:
    // --- operand resolution, mirroring the interpreter's lazy eval
    // helpers (same panic messages, same acceptance rules) ---

    std::int32_t
    checkedSlot(Reg reg, int bound)
    {
        panicIf(reg.idx() < 0 || reg.idx() >= bound,
                "register index out of range for its class");
        return reg.idx();
    }

    /** Predicate registers mirror into the int arena after the int
     * registers, so guards and pred reads are plain int loads. */
    std::int32_t
    predSlot(Reg reg, const char *notPredMsg)
    {
        panicIf(reg.cls() != RegClass::Pred, notPredMsg);
        return df_.numIntRegs + checkedSlot(reg, df_.numPredRegs);
    }

    /**
     * Intern an immediate into the per-function constant pool; the
     * engine copies the pools into fresh frames, so a fetch never
     * distinguishes immediates from registers. Pool entries interned
     * by an op that later decays to badStatic are left in place —
     * they become unread (but still initialized) slots.
     */
    std::int32_t
    intConst(std::int64_t v)
    {
        auto [it, fresh] = intConstSlots_.try_emplace(
            v, static_cast<std::int32_t>(df_.intConsts.size()));
        if (fresh)
            df_.intConsts.push_back(v);
        return df_.numIntRegs + df_.numPredRegs + it->second;
    }

    std::int32_t
    floatConst(double v)
    {
        // Key on bits so -0.0 and NaNs intern exactly.
        auto [it, fresh] = floatConstSlots_.try_emplace(
            std::bit_cast<std::uint64_t>(v),
            static_cast<std::int32_t>(df_.floatConsts.size()));
        if (fresh)
            df_.floatConsts.push_back(v);
        return df_.numFloatRegs + it->second;
    }

    DecodedSrc
    intSrc(const Operand &o)
    {
        if (o.isImm())
            return intConst(o.immValue());
        panicIf(!o.isReg(), "expected int operand");
        Reg reg = o.reg();
        switch (reg.cls()) {
          case RegClass::Int:
            return checkedSlot(reg, df_.numIntRegs);
          case RegClass::Pred:
            return df_.numIntRegs +
                   checkedSlot(reg, df_.numPredRegs);
          case RegClass::Float:
          default:
            panic("float register used as int operand");
        }
    }

    DecodedSrc
    floatSrc(const Operand &o)
    {
        if (o.isFImm())
            return floatConst(o.fimmValue());
        if (o.isImm())
            return floatConst(static_cast<double>(o.immValue()));
        panicIf(!o.isReg(), "expected float operand");
        Reg reg = o.reg();
        panicIf(reg.cls() != RegClass::Float,
                "non-float register used as float operand");
        return checkedSlot(reg, df_.numFloatRegs);
    }

    void
    intDest(DecodedOp &op, Reg reg)
    {
        panicIf(!reg.valid(),
                "instruction writes no destination register");
        if (reg.cls() == RegClass::Pred) {
            op.destCls = static_cast<std::uint8_t>(RegClass::Pred);
            op.dest = df_.numIntRegs +
                      checkedSlot(reg, df_.numPredRegs);
            return;
        }
        panicIf(reg.cls() != RegClass::Int,
                "writeInt to non-int register");
        op.destCls = static_cast<std::uint8_t>(RegClass::Int);
        op.dest = checkedSlot(reg, df_.numIntRegs);
    }

    void
    floatDest(DecodedOp &op, Reg reg)
    {
        panicIf(!reg.valid(),
                "instruction writes no destination register");
        panicIf(reg.cls() != RegClass::Float,
                "writeFloat to non-float register");
        op.destCls = static_cast<std::uint8_t>(RegClass::Float);
        op.dest = checkedSlot(reg, df_.numFloatRegs);
    }

    void
    intSrcs(DecodedOp &op, const Instruction &instr, int count)
    {
        for (int i = 0; i < count; ++i)
            op.src[static_cast<std::size_t>(i)] =
                intSrc(instr.src(static_cast<std::size_t>(i)));
        op.srcCount = static_cast<std::uint8_t>(count);
    }

    std::int32_t
    blockOffset(BlockId target,
                const std::vector<std::int32_t> &offsets)
    {
        panicIf(target < 0 ||
                    static_cast<std::size_t>(target) >=
                        offsets.size() ||
                    offsets[static_cast<std::size_t>(target)] < 0,
                "control transfer to a block outside the layout");
        return offsets[static_cast<std::size_t>(target)];
    }

    /** Trap-message suffix of execMemory()'s MemFault. */
    std::uint32_t
    memMsg(const Instruction &instr)
    {
        return addMsg(detail::formatMessage(" by '", instr.toString(),
                                            "' in ", fn_.name()));
    }

    void
    lowerBody(DecodedOp &op, const Instruction &instr,
              const std::vector<std::int32_t> &offsets,
              const Program &prog)
    {
        switch (instr.op()) {
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::And: case Opcode::Or: case Opcode::Xor:
          case Opcode::AndNot: case Opcode::OrNot: case Opcode::Shl:
          case Opcode::Shr: case Opcode::Sra:
          case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
          case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
          case Opcode::CmpLtu:
            intDest(op, instr.dest());
            intSrcs(op, instr, 2);
            return;
          case Opcode::Div: case Opcode::Rem:
            intDest(op, instr.dest());
            intSrcs(op, instr, 2);
            op.aux = addMsg(detail::formatMessage(
                "division by zero in ", fn_.name(), ": '",
                instr.toString(), "'"));
            return;
          case Opcode::Mov:
            intDest(op, instr.dest());
            intSrcs(op, instr, 1);
            return;

          case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
            floatDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.src[1] = floatSrc(instr.src(1));
            op.srcCount = 2;
            return;
          case Opcode::FDiv:
            floatDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.src[1] = floatSrc(instr.src(1));
            op.srcCount = 2;
            op.aux = addMsg(detail::formatMessage(
                "floating divide by zero in ", fn_.name()));
            return;
          case Opcode::FMov:
            floatDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.srcCount = 1;
            return;
          case Opcode::CvtIf:
            floatDest(op, instr.dest());
            intSrcs(op, instr, 1);
            return;
          case Opcode::CvtFi:
            intDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.srcCount = 1;
            return;

          case Opcode::FCmpEq: case Opcode::FCmpNe:
          case Opcode::FCmpLt: case Opcode::FCmpLe:
          case Opcode::FCmpGt: case Opcode::FCmpGe:
            intDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.src[1] = floatSrc(instr.src(1));
            op.srcCount = 2;
            return;

          case Opcode::Ld: case Opcode::LdB: case Opcode::LdBu:
            intDest(op, instr.dest());
            intSrcs(op, instr, 2);
            op.aux = memMsg(instr);
            return;
          case Opcode::FLd:
            floatDest(op, instr.dest());
            intSrcs(op, instr, 2);
            op.aux = memMsg(instr);
            return;
          case Opcode::St: case Opcode::StB:
            intSrcs(op, instr, 3);
            op.aux = memMsg(instr);
            return;
          case Opcode::FSt:
            intSrcs(op, instr, 2);
            op.src[2] = floatSrc(instr.src(2));
            op.srcCount = 3;
            op.aux = memMsg(instr);
            return;

          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Ble: case Opcode::Bgt: case Opcode::Bge:
            intSrcs(op, instr, 2);
            op.target = blockOffset(instr.target(), offsets);
            return;
          case Opcode::Jump:
            op.target = blockOffset(instr.target(), offsets);
            return;
          case Opcode::Call:
            lowerCall(op, instr, prog);
            return;
          case Opcode::Ret:
            if (!instr.srcs().empty()) {
                op.src[0] = fn_.retKind() == RetKind::Float
                                ? floatSrc(instr.src(0))
                                : intSrc(instr.src(0));
                op.srcCount = 1;
            }
            return;

          case Opcode::GetC:
            intDest(op, instr.dest());
            return;
          case Opcode::PutC:
            intSrcs(op, instr, 1);
            return;
          case Opcode::ReadBlock:
            intDest(op, instr.dest());
            intSrcs(op, instr, 3);
            return;

          case Opcode::PredClear: case Opcode::PredSet:
            return;

          case Opcode::PredEq: case Opcode::PredNe:
          case Opcode::PredLt: case Opcode::PredLe:
          case Opcode::PredGt: case Opcode::PredGe:
          case Opcode::PredLtu:
            intSrcs(op, instr, 2);
            op.aux = static_cast<std::uint32_t>(df_.predDests.size());
            for (const auto &pd : instr.predDests()) {
                // The interpreter indexes the pred file with the
                // destination's raw index, whatever its class; only
                // range is worth validating (it guards raw-array
                // accesses the interpreter leaves to the vector).
                DecodedPredDest dpd;
                dpd.slot = df_.numIntRegs +
                           checkedSlot(pd.reg, df_.numPredRegs);
                dpd.type = pd.type;
                df_.predDests.push_back(dpd);
            }
            op.predCount =
                static_cast<std::uint8_t>(instr.predDests().size());
            return;

          case Opcode::CMov: case Opcode::CMovCom:
            intDest(op, instr.dest());
            intSrcs(op, instr, 2);
            return;
          case Opcode::Select:
            intDest(op, instr.dest());
            intSrcs(op, instr, 3);
            return;
          case Opcode::FCMov: case Opcode::FCMovCom:
            floatDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.src[1] = intSrc(instr.src(1));
            op.srcCount = 2;
            return;
          case Opcode::FSelect:
            floatDest(op, instr.dest());
            op.src[0] = floatSrc(instr.src(0));
            op.src[1] = floatSrc(instr.src(1));
            op.src[2] = intSrc(instr.src(2));
            op.srcCount = 3;
            return;

          case Opcode::Nop:
            return;
        }
        panic("unhandled opcode in decoder");
    }

    void
    lowerCall(DecodedOp &op, const Instruction &instr,
              const Program &prog)
    {
        const Function *callee = prog.function(instr.callee());
        if (callee == nullptr) {
            // Trap at execution time, exactly like doCall() — and
            // like doCall(), before any argument evaluation.
            op.target = -1;
            op.aux = addMsg(detail::formatMessage(
                "call to unknown function ", instr.callee()));
            return;
        }
        op.target = ordinals_.at(callee);
        const auto &params = callee->params();
        panicIf(params.size() != instr.srcs().size(),
                "call arity mismatch at emulation time");
        panicIf(params.size() > 255,
                "call with more than 255 arguments");
        op.aux = static_cast<std::uint32_t>(df_.args.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
            df_.args.push_back(params[i].cls() == RegClass::Float
                                   ? floatSrc(instr.src(i))
                                   : intSrc(instr.src(i)));
        }
        op.srcCount = static_cast<std::uint8_t>(params.size());
        if (instr.dest().valid()) {
            // doReturn() writes a float dest via writeFloat and any
            // other via writeInt; resolve with the matching rules.
            if (instr.dest().cls() == RegClass::Float)
                floatDest(op, instr.dest());
            else
                intDest(op, instr.dest());
        }
    }

    const Function &fn_;
    const AddressMap &addresses_;
    const std::unordered_map<const Function *, int> &ordinals_;
    DecodedFunction df_;
    /** Immediate dedup: value (or bits) -> constant-pool index. */
    std::unordered_map<std::int64_t, std::int32_t> intConstSlots_;
    std::unordered_map<std::uint64_t, std::int32_t> floatConstSlots_;
};

DecodedFunction
lowerFunction(const Function &fn, const Program &prog,
              const AddressMap &addresses,
              const std::unordered_map<const Function *, int> &ordinals)
{
    Lowerer lowerer(fn, addresses, ordinals);
    DecodedFunction &df = lowerer.df();
    df.name = fn.name();
    df.retKind = fn.retKind();
    df.numIntRegs = fn.numIntRegs();
    df.numFloatRegs = fn.numFloatRegs();
    df.numPredRegs = fn.numPredRegs();
    for (Reg param : fn.params()) {
        // The interpreter writes non-float params into the int file
        // at call time (predicate params included); validate against
        // the matching file here so the arena write cannot go out of
        // bounds. Decoding panics eagerly on such malformed IR.
        const int bound = param.cls() == RegClass::Float
                              ? df.numFloatRegs
                              : df.numIntRegs;
        panicIf(param.idx() < 0 || param.idx() >= bound,
                "function parameter register out of range: ",
                fn.name());
        DecodedParam p;
        p.slot = param.idx();
        p.cls = param.cls();
        df.params.push_back(p);
    }

    const auto &layout = fn.layout();

    // A block needs a synthetic terminator when control can run off
    // its end: none after an unconditional transfer, a fallOff trap
    // when there is no fallthrough successor, a fallthrough jump when
    // the successor is not the next block in the stream.
    enum class Term : std::uint8_t { None, Fallthrough, FallOff };
    auto termOf = [&](std::size_t i) {
        const BasicBlock *bb = fn.block(layout[i]);
        if (bb->endsInUnconditionalTransfer())
            return Term::None;
        BlockId ft = bb->fallthrough();
        if (ft == invalidBlock)
            return Term::FallOff;
        if (i + 1 < layout.size() && ft == layout[i + 1])
            return Term::None;
        return Term::Fallthrough;
    };

    // Pass 1: stream offsets of every block head.
    std::vector<std::int32_t> offsets(
        static_cast<std::size_t>(fn.numBlockIds()), -1);
    std::uint32_t cur = 0;
    for (std::size_t i = 0; i < layout.size(); ++i) {
        const BasicBlock *bb = fn.block(layout[i]);
        offsets[static_cast<std::size_t>(bb->id())] =
            static_cast<std::int32_t>(cur);
        cur += 1 + static_cast<std::uint32_t>(bb->instrs().size());
        if (termOf(i) != Term::None)
            cur += 1;
    }

    // Pass 2: emit.
    df.ops.reserve(cur);
    df.protos.reserve(cur);
    for (std::size_t i = 0; i < layout.size(); ++i) {
        const BasicBlock *bb = fn.block(layout[i]);
        DecodedOp head;
        head.handler = hdl::blockHead;
        head.target = bb->id();
        lowerer.push(head, StaticOp{});
        for (const auto &instr : bb->instrs())
            lowerer.lower(instr, offsets, prog);
        switch (termOf(i)) {
          case Term::None:
            break;
          case Term::Fallthrough: {
            DecodedOp jump;
            jump.handler = hdl::fallthrough;
            jump.target = offsets[
                static_cast<std::size_t>(bb->fallthrough())];
            lowerer.push(jump, StaticOp{});
            break;
          }
          case Term::FallOff: {
            DecodedOp off;
            off.handler = hdl::fallOff;
            off.aux = lowerer.addMsg(detail::formatMessage(
                "control fell off the end of block ", bb->name(),
                " in ", fn.name()));
            lowerer.push(off, StaticOp{});
            break;
          }
        }
    }

    const BasicBlock *entry = fn.entry();
    panicIf(entry == nullptr || layout.empty() ||
                offsets[static_cast<std::size_t>(entry->id())] < 0,
            "cannot decode a function without an entry block in its "
            "layout: ", fn.name());
    df.entryOffset = static_cast<std::uint32_t>(
        offsets[static_cast<std::size_t>(entry->id())]);
    DecodedFunction out = lowerer.take();
    out.numIntSlots =
        out.numIntRegs + out.numPredRegs +
        static_cast<std::int32_t>(out.intConsts.size());
    out.numFloatSlots =
        out.numFloatRegs +
        static_cast<std::int32_t>(out.floatConsts.size());
    return out;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &prog)
{
    AddressMap addresses(prog);
    std::unordered_map<const Function *, int> ordinals;
    for (const auto &fn : prog.functions()) {
        ordinals.emplace(fn.get(),
                         static_cast<int>(ordinals.size()));
        // Register bounds, exactly as StaticIndex's Program
        // constructor computes them (the trace interner of a
        // decoded capture starts from these).
        auto bound = [this](RegClass cls, int n) {
            auto i = static_cast<std::size_t>(cls);
            regBounds_[i] = std::max(regBounds_[i], n);
        };
        bound(RegClass::Int, fn->numIntRegs());
        bound(RegClass::Float, fn->numFloatRegs());
        bound(RegClass::Pred, fn->numPredRegs());
    }

    functions_.reserve(prog.functions().size());
    std::uint32_t idBase = 0;
    for (const auto &fn : prog.functions()) {
        DecodedFunction df =
            lowerFunction(*fn, prog, addresses, ordinals);
        df.idBase = idBase;
        idBase += static_cast<std::uint32_t>(df.ops.size());
        functions_.push_back(std::move(df));
    }
    totalOps_ = idBase;

    const Function *mainFn = prog.function("main");
    if (mainFn != nullptr) {
        mainOrdinal_ = ordinals.at(mainFn);
        mainHasParams_ = !mainFn->params().empty();
    }
    initialMemory_ = ExecContext::initialImage(prog);
}

std::uint64_t
DecodedProgram::memoryBytes() const
{
    std::uint64_t bytes = initialMemory_.capacity();
    for (const auto &fn : functions_) {
        bytes += fn.ops.capacity() * sizeof(DecodedOp);
        bytes += fn.protos.capacity() * sizeof(StaticOp);
        bytes += fn.internRegs.capacity() * sizeof(Reg);
        bytes += fn.args.capacity() * sizeof(DecodedSrc);
        bytes += fn.predDests.capacity() * sizeof(DecodedPredDest);
        bytes += fn.intConsts.capacity() * sizeof(std::int64_t);
        bytes += fn.floatConsts.capacity() * sizeof(double);
        for (const auto &msg : fn.msgs)
            bytes += msg.capacity();
    }
    return bytes;
}

} // namespace predilp
