/**
 * @file
 * The pre-decoded threaded-code emulator backend.
 *
 * The interpreter in emulator.cc re-discovers everything about an
 * instruction on every dynamic execution: operand kinds, register
 * classes, block boundaries, callee lookups. Capture is the dominant
 * cold-path cost of a figures sweep, so this backend pays that work
 * exactly once per compiled program: decodeProgram() lowers each
 * Function into a flat stream of fixed-size DecodedOps — a handler
 * index for the dispatch table, operand register slots resolved to
 * dense per-frame array offsets, immediates inlined, branch targets
 * resolved to stream offsets — and the engine in threaded.cc then
 * runs the stream with a computed-goto dispatch loop that appends
 * packed TraceEntries straight into a TraceBuffer with no virtual
 * calls, hash lookups, or IR pointer chasing per record.
 *
 * A DecodedProgram is fully self-contained: it snapshots the initial
 * memory image, the static-instruction prototypes the trace interner
 * needs, and every string a trap message can mention, so it may
 * outlive the Program it was decoded from (SuiteEvaluator caches
 * decoded programs across workload scales and sim configs).
 *
 * Invariant: for any program and input, the threaded backend and the
 * interpreter produce bit-identical traces, identical RunResults, and
 * identical EmuTrap kinds/pcs/step counts. The interpreter stays the
 * reference oracle; tests/emu/backend_diff_test.cc enforces this.
 * Static-instruction ids are assigned on first *dynamic* appearance,
 * so the engine interns lazily through StaticIndex::internDecoded()
 * using prototypes prepared here — never eagerly at decode time.
 */

#ifndef PREDILP_EMU_DECODED_HH
#define PREDILP_EMU_DECODED_HH

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "ir/program.hh"
#include "trace/trace.hh"

namespace predilp
{

/**
 * One resolved source operand: an index into the current frame's int
 * or float arena (which of the two is implied by the operand's
 * position in its opcode, exactly as the interpreter's eval helpers
 * imply it). There are no operand kinds at execution time: decoding
 * registerizes everything into the arenas —
 *  - int registers occupy arena slots [0, numIntRegs);
 *  - predicate registers live at [numIntRegs, numIntRegs +
 *    numPredRegs) as 0/1 int64 values, so guard tests and
 *    pred-as-int reads are plain loads;
 *  - integer immediates are interned into a per-function constant
 *    pool at [numIntRegs + numPredRegs, numIntSlots), written once
 *    at frame entry and read-only after;
 *  - float immediates likewise occupy float arena slots
 *    [numFloatRegs, numFloatSlots).
 * A fetch is then always one indexed load with no branches.
 */
using DecodedSrc = std::int32_t;

/**
 * Handler indices for the dispatch table. Real opcodes map to their
 * own Opcode value (one handler per opcode keeps each dispatch site's
 * indirect branch well predicted); four synthetic handlers implement
 * control flow the IR keeps implicit.
 */
namespace hdl
{

constexpr std::uint8_t
of(Opcode op)
{
    return static_cast<std::uint8_t>(op);
}

constexpr std::uint8_t opcodeCount = of(Opcode::Nop) + 1;

/** Dynamic block entry: profile hook only, no record, no fuel. */
constexpr std::uint8_t blockHead = opcodeCount + 0;
/** Fallthrough to a non-adjacent block (synthetic, invisible). */
constexpr std::uint8_t fallthrough = opcodeCount + 1;
/** Fallthrough off a block with no successor: BadControl trap. */
constexpr std::uint8_t fallOff = opcodeCount + 2;
/**
 * Statically malformed instruction (e.g. a float register in an int
 * operand position). The interpreter only panics when such an
 * instruction actually executes, so decoding defers the panic into
 * this handler instead of failing the whole decode.
 */
constexpr std::uint8_t badStatic = opcodeCount + 3;

constexpr std::uint8_t count = opcodeCount + 4;

} // namespace hdl

/**
 * One decoded instruction. Fixed size, stored contiguously per
 * function; everything the execution loop touches per dynamic
 * instruction lives here or in the frame register arrays.
 *
 * Field overloading (kept simple on purpose — one u32 of context per
 * handler family):
 *  - target: branch/jump/fallthrough = destination stream offset;
 *    Call = callee function ordinal (-1 when unknown);
 *    blockHead = IR BlockId (for profile counting).
 *  - aux: Call = args pool begin (or message index when the callee is
 *    unknown); pred defines = predDests pool begin; memory ops and
 *    Div/Rem/FDiv = trap message index; fallOff/badStatic = message
 *    index.
 */
struct DecodedOp
{
    std::uint8_t handler = hdl::of(Opcode::Nop);
    std::uint8_t srcCount = 0; ///< inline srcs, or call arg count.
    std::uint8_t destCls = 0;  ///< RegClass of dest (writeInt seam).
    std::uint8_t predCount = 0; ///< pred-define destinations.
    bool speculative = false;   ///< silent (non-excepting) form.
    /** Guard's int-arena slot (pred mirror range); -1 = unguarded. */
    std::int32_t guard = -1;
    std::int32_t dest = -1;     ///< dest slot; -1 = none.
    std::int32_t target = -1;   ///< see field-overloading note.
    std::int32_t irId = -1;     ///< IR instruction id (traps/profile).
    std::uint32_t aux = 0;      ///< see field-overloading note.
    std::uint32_t regListBegin = 0; ///< internRegs begin (interning).
    std::array<DecodedSrc, 3> src{};
};

/** One pred-define destination, slot-resolved. */
struct DecodedPredDest
{
    std::int32_t slot = 0;
    PredType type = PredType::U;
};

/** A function parameter's register slot. */
struct DecodedParam
{
    std::int32_t slot = 0;
    RegClass cls = RegClass::Int;
};

/** One lowered function: the op stream plus its constant pools. */
struct DecodedFunction
{
    std::string name;
    RetKind retKind = RetKind::None;
    std::int32_t numIntRegs = 0;
    std::int32_t numFloatRegs = 0;
    std::int32_t numPredRegs = 0;
    /** Int arena size: regs + pred mirrors + int constant pool. */
    std::int32_t numIntSlots = 0;
    /** Float arena size: regs + float constant pool. */
    std::int32_t numFloatSlots = 0;
    std::uint32_t entryOffset = 0; ///< stream offset of the entry.
    /** Base of this function's ops in the per-run interned-id array. */
    std::uint32_t idBase = 0;

    std::vector<DecodedParam> params;
    std::vector<DecodedOp> ops;
    /**
     * Static-instruction prototypes, parallel to ops (cold: only read
     * the first time an op appears dynamically). regBegin is left
     * unset; StaticIndex::internDecoded() assigns it. Synthetic ops
     * have default prototypes that are never interned.
     */
    std::vector<StaticOp> protos;
    /** Register operands for interning, indexed by regListBegin. */
    std::vector<Reg> internRegs;
    /** Call argument pool (DecodedOp::aux for Call). */
    std::vector<DecodedSrc> args;
    /** Pred-define destination pool (DecodedOp::aux). */
    std::vector<DecodedPredDest> predDests;
    /** Trap/panic message texts (DecodedOp::aux). */
    std::vector<std::string> msgs;
    /** Interned integer immediates (copied in at frame entry). */
    std::vector<std::int64_t> intConsts;
    /** Interned float immediates (copied in at frame entry). */
    std::vector<double> floatConsts;
};

/**
 * A whole program lowered for the threaded engine. Immutable and
 * self-contained after construction; safely shareable across threads.
 */
class DecodedProgram
{
  public:
    /** Lower @p prog. The Program is not referenced afterwards. */
    explicit DecodedProgram(const Program &prog);

    const std::vector<DecodedFunction> &
    functions() const
    {
        return functions_;
    }

    /** Ordinal of main(), -1 when absent. */
    int mainOrdinal() const { return mainOrdinal_; }

    /** main() declared parameters (a BadProgram trap at run time). */
    bool mainHasParams() const { return mainHasParams_; }

    /** Initial data-memory image (ExecContext::initialImage). */
    const std::vector<std::uint8_t> &
    initialMemory() const
    {
        return initialMemory_;
    }

    /** Per-class register bounds, as StaticIndex computes them. */
    const std::array<int, 3> &regBounds() const { return regBounds_; }

    /** Total decoded ops across all functions (id-array size). */
    std::uint32_t totalOps() const { return totalOps_; }

    /** Approximate resident bytes (cache accounting). */
    std::uint64_t memoryBytes() const;

  private:
    std::vector<DecodedFunction> functions_;
    std::vector<std::uint8_t> initialMemory_;
    std::array<int, 3> regBounds_{};
    std::uint32_t totalOps_ = 0;
    int mainOrdinal_ = -1;
    bool mainHasParams_ = false;
};

/**
 * Execute @p dp to completion on the threaded engine.
 * Supports profiles but not generic sinks: opts.sink must be null
 * (Emulator::run() falls back to the interpreter for sinks).
 */
RunResult runDecoded(const DecodedProgram &dp, const std::string &input,
                     const EmuOptions &opts = {});

/**
 * Capture a trace with the threaded engine. Bit-identical to
 * capture() with the interpreter backend at ~3x its throughput
 * (~150-175 vs ~55 Mrec/s on the espresso capture kernel) — fast
 * enough that cold capture beats warm mmap'd replay. The returned
 * buffer is self-contained and shares nothing with @p dp.
 */
std::unique_ptr<TraceBuffer>
captureDecoded(const DecodedProgram &dp, const std::string &input,
               std::uint64_t maxDynInstrs = 2'000'000'000ull);

} // namespace predilp

#endif // PREDILP_EMU_DECODED_HH
