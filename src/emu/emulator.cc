#include "emu/emulator.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "emu/decoded.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** Wrapping arithmetic helpers (avoid signed-overflow UB). */
std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

/** One activation record. */
struct Frame
{
    const Function *fn = nullptr;
    std::vector<std::int64_t> ints;
    std::vector<double> floats;
    std::vector<std::uint8_t> preds;

    // Resume point in the caller (meaningless for main's frame).
    const BasicBlock *callerBlock = nullptr;
    std::size_t callerIndex = 0;
    Reg callDest;

    explicit Frame(const Function *function)
        : fn(function),
          ints(static_cast<std::size_t>(function->numIntRegs()), 0),
          floats(static_cast<std::size_t>(function->numFloatRegs()),
                 0.0),
          preds(static_cast<std::size_t>(function->numPredRegs()), 0)
    {}
};

/** The interpreter proper; one instance per run() call. */
class Interp
{
  public:
    Interp(const Program &prog, const std::string &input,
           const EmuOptions &opts)
        : prog_(prog), ctx_(prog, input), opts_(opts)
    {}

    RunResult
    run()
    {
        const Function *mainFn =
            const_cast<Program &>(prog_).function("main");
        panicIf(mainFn == nullptr, "no main function");
        if (!mainFn->params().empty())
            trap(TrapKind::BadProgram, -1,
                 "main must take no parameters");

        frames_.emplace_back(mainFn);
        enterBlock(mainFn->entry());

        while (!done_)
            step();

        RunResult result;
        result.exitValue = exitValue_;
        result.dynInstrs = dynInstrs_;
        result.output = ctx_.output();
        result.memHash = ctx_.memoryHash();
        return result;
    }

  private:
    /**
     * Abort the run with a typed EmuTrap. @p pc is the static id of
     * the faulting instruction (-1 when none is executing); the
     * dynamic step count is recorded automatically.
     */
    template <typename... Args>
    [[noreturn]] void
    trap(TrapKind kind, int pc, Args &&...args)
    {
        throw EmuTrap(
            kind, pc, dynInstrs_,
            detail::formatMessage(std::forward<Args>(args)...));
    }

    Frame &frame() { return frames_.back(); }

    void
    enterBlock(const BasicBlock *bb)
    {
        block_ = bb;
        index_ = 0;
        blockEntry_ = true;
        if (opts_.profile != nullptr) {
            opts_.profile->forFunction(frame().fn->name())
                .addBlockEntry(bb->id());
        }
    }

    std::int64_t
    evalInt(const Operand &op)
    {
        if (op.isImm())
            return op.immValue();
        panicIf(!op.isReg(), "expected int operand");
        Reg reg = op.reg();
        switch (reg.cls()) {
          case RegClass::Int:
            return frame().ints[static_cast<std::size_t>(reg.idx())];
          case RegClass::Pred:
            return frame().preds[static_cast<std::size_t>(reg.idx())];
          case RegClass::Float:
          default:
            panic("float register used as int operand");
        }
    }

    double
    evalFloat(const Operand &op)
    {
        if (op.isFImm())
            return op.fimmValue();
        if (op.isImm())
            return static_cast<double>(op.immValue());
        panicIf(!op.isReg(), "expected float operand");
        Reg reg = op.reg();
        panicIf(reg.cls() != RegClass::Float,
                "non-float register used as float operand");
        return frame().floats[static_cast<std::size_t>(reg.idx())];
    }

    void
    writeInt(Reg reg, std::int64_t value)
    {
        if (reg.cls() == RegClass::Pred) {
            frame().preds[static_cast<std::size_t>(reg.idx())] =
                value != 0;
            return;
        }
        panicIf(reg.cls() != RegClass::Int,
                "writeInt to non-int register");
        frame().ints[static_cast<std::size_t>(reg.idx())] = value;
    }

    void
    writeFloat(Reg reg, double value)
    {
        panicIf(reg.cls() != RegClass::Float,
                "writeFloat to non-float register");
        frame().floats[static_cast<std::size_t>(reg.idx())] = value;
    }

    bool
    predValue(Reg reg)
    {
        panicIf(reg.cls() != RegClass::Pred,
                "guard is not a predicate register");
        return frame().preds[static_cast<std::size_t>(reg.idx())] != 0;
    }

    /** Transfer control to block @p target in the current frame. */
    void
    gotoBlock(BlockId target)
    {
        enterBlock(frame().fn->block(target));
    }

    void
    doReturn(const Instruction &instr)
    {
        bool hasValue = !instr.srcs().empty();
        std::int64_t intValue = 0;
        double floatValue = 0.0;
        bool isFloat = frame().fn->retKind() == RetKind::Float;
        if (hasValue) {
            if (isFloat)
                floatValue = evalFloat(instr.src(0));
            else
                intValue = evalInt(instr.src(0));
        }

        if (frames_.size() == 1) {
            exitValue_ = intValue;
            done_ = true;
            return;
        }

        const BasicBlock *rb = frame().callerBlock;
        std::size_t ri = frame().callerIndex;
        Reg dest = frame().callDest;
        frames_.pop_back();
        block_ = rb;
        index_ = ri;
        blockEntry_ = false;
        if (dest.valid()) {
            if (dest.cls() == RegClass::Float)
                writeFloat(dest, floatValue);
            else
                writeInt(dest, intValue);
        }
    }

    void
    doCall(const Instruction &instr)
    {
        const Function *callee =
            const_cast<Program &>(prog_).function(instr.callee());
        if (callee == nullptr)
            trap(TrapKind::BadControl, instr.id(),
                 "call to unknown function ", instr.callee());
        if (frames_.size() >= 65536)
            trap(TrapKind::StackOverflow, instr.id(),
                 "call stack overflow in emulated program");

        // Evaluate arguments in the caller frame first.
        std::vector<std::int64_t> intArgs;
        std::vector<double> floatArgs;
        const auto &params = callee->params();
        panicIf(params.size() != instr.srcs().size(),
                "call arity mismatch at emulation time");
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (params[i].cls() == RegClass::Float)
                floatArgs.push_back(evalFloat(instr.src(i)));
            else
                intArgs.push_back(evalInt(instr.src(i)));
            // Keep slots aligned by pushing a dummy into the other
            // vector so indexing below stays simple.
            if (params[i].cls() == RegClass::Float)
                intArgs.push_back(0);
            else
                floatArgs.push_back(0.0);
        }

        Frame calleeFrame(callee);
        calleeFrame.callerBlock = block_;
        calleeFrame.callerIndex = index_ + 1;
        calleeFrame.callDest = instr.dest();
        for (std::size_t i = 0; i < params.size(); ++i) {
            Reg param = params[i];
            if (param.cls() == RegClass::Float) {
                calleeFrame.floats[
                    static_cast<std::size_t>(param.idx())] =
                    floatArgs[i];
            } else {
                calleeFrame.ints[
                    static_cast<std::size_t>(param.idx())] =
                    intArgs[i];
            }
        }
        frames_.push_back(std::move(calleeFrame));
        enterBlock(callee->entry());
    }

    void
    execMemory(const Instruction &instr, DynRecord &record)
    {
        std::int64_t addr =
            wrapAdd(evalInt(instr.src(0)), evalInt(instr.src(1)));
        record.hasMemAddr = true;
        record.memAddr = addr;
        int width = (instr.op() == Opcode::LdB ||
                     instr.op() == Opcode::LdBu ||
                     instr.op() == Opcode::StB)
                        ? 1
                        : 8;
        if (!ctx_.validAccess(addr, width)) {
            if (instr.speculative() && instr.isLoad()) {
                // Silent load: suppress the fault, produce 0.
                if (instr.op() == Opcode::FLd)
                    writeFloat(instr.dest(), 0.0);
                else
                    writeInt(instr.dest(), 0);
                return;
            }
            trap(TrapKind::MemFault, instr.id(),
                 "invalid memory access at address ", addr, " by '",
                 instr.toString(), "' in ", frame().fn->name());
        }
        switch (instr.op()) {
          case Opcode::Ld:
            writeInt(instr.dest(), ctx_.loadWord(addr));
            break;
          case Opcode::LdB:
            writeInt(instr.dest(), ctx_.loadByteSigned(addr));
            break;
          case Opcode::LdBu:
            writeInt(instr.dest(), ctx_.loadByteUnsigned(addr));
            break;
          case Opcode::FLd:
            writeFloat(instr.dest(), ctx_.loadDouble(addr));
            break;
          case Opcode::St:
            ctx_.storeWord(addr, evalInt(instr.src(2)));
            break;
          case Opcode::StB:
            ctx_.storeByte(addr, evalInt(instr.src(2)));
            break;
          case Opcode::FSt:
            ctx_.storeDouble(addr, evalFloat(instr.src(2)));
            break;
          default:
            panic("execMemory: bad opcode");
        }
    }

    std::int64_t
    intDivide(const Instruction &instr, bool isRem)
    {
        std::int64_t a = evalInt(instr.src(0));
        std::int64_t b = evalInt(instr.src(1));
        if (b == 0) {
            if (instr.speculative())
                return 0; // silent form.
            trap(TrapKind::DivideByZero, instr.id(),
                 "division by zero in ", frame().fn->name(), ": '",
                 instr.toString(), "'");
        }
        if (a == INT64_MIN && b == -1)
            return isRem ? 0 : INT64_MIN;
        return isRem ? a % b : a / b;
    }

    void
    execPredDefine(const Instruction &instr)
    {
        // Predicate defines are never nullified: Pin participates in
        // the Table 1 semantics (a U-type dest is written 0 when Pin
        // is false).
        bool pin = instr.guarded() ? predValue(instr.guard()) : true;
        bool cmp = evalIntCondition(instr.op(), evalInt(instr.src(0)),
                                    evalInt(instr.src(1)));
        for (const auto &pd : instr.predDests()) {
            auto idx = static_cast<std::size_t>(pd.reg.idx());
            bool old = frame().preds[idx] != 0;
            frame().preds[idx] =
                applyPredType(pd.type, pin, cmp, old);
        }
    }

    void
    step()
    {
        // Fallthrough off the end of the block.
        while (index_ >= block_->instrs().size()) {
            BlockId ft = block_->fallthrough();
            if (ft == invalidBlock)
                trap(TrapKind::BadControl, -1,
                     "control fell off the end of block ",
                     block_->name(), " in ", frame().fn->name());
            gotoBlock(ft);
        }

        const Instruction &instr = block_->instrs()[index_];
        dynInstrs_ += 1;
        if (dynInstrs_ > opts_.maxDynInstrs)
            trap(TrapKind::FuelExhausted, instr.id(),
                 "dynamic instruction budget exceeded (",
                 opts_.maxDynInstrs, ")");

        DynRecord record;
        record.fn = frame().fn;
        record.instr = &instr;
        record.blockEntry = blockEntry_;
        blockEntry_ = false;

        // Guard check. Predicate defines consume their guard as Pin
        // instead of being nullified by it.
        bool nullified = false;
        if (instr.guarded() && !instr.isPredDefine())
            nullified = !predValue(instr.guard());
        record.nullified = nullified;

        bool transferred = false;
        if (!nullified)
            transferred = execute(instr, record);

        if (opts_.profile != nullptr && record.taken &&
            (instr.isCondBranch() || instr.isJump())) {
            opts_.profile->forFunction(record.fn->name())
                .addTaken(instr.id());
        }
        if (opts_.sink != nullptr)
            opts_.sink->onInstr(record);

        if (!transferred)
            index_ += 1;
    }

    /**
     * Execute one non-nullified instruction.
     * @return true when control transferred (PC already updated).
     */
    bool
    execute(const Instruction &instr, DynRecord &record)
    {
        switch (instr.op()) {
          case Opcode::Add:
            writeInt(instr.dest(), wrapAdd(evalInt(instr.src(0)),
                                           evalInt(instr.src(1))));
            return false;
          case Opcode::Sub:
            writeInt(instr.dest(), wrapSub(evalInt(instr.src(0)),
                                           evalInt(instr.src(1))));
            return false;
          case Opcode::Mul:
            writeInt(instr.dest(), wrapMul(evalInt(instr.src(0)),
                                           evalInt(instr.src(1))));
            return false;
          case Opcode::Div:
            writeInt(instr.dest(), intDivide(instr, false));
            return false;
          case Opcode::Rem:
            writeInt(instr.dest(), intDivide(instr, true));
            return false;
          case Opcode::And:
            writeInt(instr.dest(),
                     evalInt(instr.src(0)) & evalInt(instr.src(1)));
            return false;
          case Opcode::Or:
            writeInt(instr.dest(),
                     evalInt(instr.src(0)) | evalInt(instr.src(1)));
            return false;
          case Opcode::Xor:
            writeInt(instr.dest(),
                     evalInt(instr.src(0)) ^ evalInt(instr.src(1)));
            return false;
          case Opcode::AndNot:
            writeInt(instr.dest(),
                     evalInt(instr.src(0)) & ~evalInt(instr.src(1)));
            return false;
          case Opcode::OrNot:
            writeInt(instr.dest(),
                     evalInt(instr.src(0)) | ~evalInt(instr.src(1)));
            return false;
          case Opcode::Shl:
            writeInt(instr.dest(),
                     static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(
                             evalInt(instr.src(0)))
                         << (evalInt(instr.src(1)) & 63)));
            return false;
          case Opcode::Shr:
            writeInt(instr.dest(),
                     static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(
                             evalInt(instr.src(0))) >>
                         (evalInt(instr.src(1)) & 63)));
            return false;
          case Opcode::Sra:
            writeInt(instr.dest(), evalInt(instr.src(0)) >>
                                       (evalInt(instr.src(1)) & 63));
            return false;
          case Opcode::Mov:
            writeInt(instr.dest(), evalInt(instr.src(0)));
            return false;

          case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
          case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
          case Opcode::CmpLtu:
            writeInt(instr.dest(),
                     evalIntCondition(instr.op(),
                                      evalInt(instr.src(0)),
                                      evalInt(instr.src(1)))
                         ? 1
                         : 0);
            return false;

          case Opcode::FAdd:
            writeFloat(instr.dest(), evalFloat(instr.src(0)) +
                                         evalFloat(instr.src(1)));
            return false;
          case Opcode::FSub:
            writeFloat(instr.dest(), evalFloat(instr.src(0)) -
                                         evalFloat(instr.src(1)));
            return false;
          case Opcode::FMul:
            writeFloat(instr.dest(), evalFloat(instr.src(0)) *
                                         evalFloat(instr.src(1)));
            return false;
          case Opcode::FDiv: {
            double b = evalFloat(instr.src(1));
            if (b == 0.0 && !instr.speculative()) {
                trap(TrapKind::DivideByZero, instr.id(),
                     "floating divide by zero in ",
                     frame().fn->name());
            }
            writeFloat(instr.dest(),
                       b == 0.0 ? 0.0 : evalFloat(instr.src(0)) / b);
            return false;
          }
          case Opcode::FMov:
            writeFloat(instr.dest(), evalFloat(instr.src(0)));
            return false;
          case Opcode::CvtIf:
            writeFloat(instr.dest(), static_cast<double>(
                                         evalInt(instr.src(0))));
            return false;
          case Opcode::CvtFi: {
            double v = evalFloat(instr.src(0));
            std::int64_t out = 0;
            if (std::isfinite(v) && v >= -9.2e18 && v <= 9.2e18)
                out = static_cast<std::int64_t>(v);
            writeInt(instr.dest(), out);
            return false;
          }

          case Opcode::FCmpEq: case Opcode::FCmpNe:
          case Opcode::FCmpLt: case Opcode::FCmpLe:
          case Opcode::FCmpGt: case Opcode::FCmpGe:
            writeInt(instr.dest(),
                     evalFloatCondition(instr.op(),
                                        evalFloat(instr.src(0)),
                                        evalFloat(instr.src(1)))
                         ? 1
                         : 0);
            return false;

          case Opcode::Ld: case Opcode::LdB: case Opcode::LdBu:
          case Opcode::FLd: case Opcode::St: case Opcode::StB:
          case Opcode::FSt:
            execMemory(instr, record);
            return false;

          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Ble: case Opcode::Bgt: case Opcode::Bge: {
            bool taken = evalIntCondition(instr.op(),
                                          evalInt(instr.src(0)),
                                          evalInt(instr.src(1)));
            record.taken = taken;
            if (taken) {
                gotoBlock(instr.target());
                return true;
            }
            return false;
          }
          case Opcode::Jump:
            record.taken = true;
            gotoBlock(instr.target());
            return true;
          case Opcode::Call:
            record.taken = true;
            doCall(instr);
            return true;
          case Opcode::Ret:
            record.taken = true;
            doReturn(instr);
            return true;

          case Opcode::GetC:
            writeInt(instr.dest(), ctx_.getChar());
            return false;
          case Opcode::PutC:
            ctx_.putChar(evalInt(instr.src(0)));
            return false;
          case Opcode::ReadBlock: {
            std::int64_t addr = wrapAdd(evalInt(instr.src(0)),
                                        evalInt(instr.src(1)));
            std::int64_t maxLen = evalInt(instr.src(2));
            if (maxLen < 0 ||
                !ctx_.validAccess(
                    addr, static_cast<int>(
                              std::min<std::int64_t>(maxLen, 1)))) {
                trap(TrapKind::MemFault, instr.id(),
                     "readblock with invalid buffer");
            }
            std::int64_t avail = static_cast<std::int64_t>(
                ctx_.inputRemaining());
            std::int64_t count = std::min(maxLen, avail);
            if (!ctx_.validAccess(addr, static_cast<int>(count)))
                trap(TrapKind::MemFault, instr.id(),
                     "readblock past end of memory");
            writeInt(instr.dest(), ctx_.readBlock(addr, maxLen));
            record.hasMemAddr = true;
            record.memAddr = addr;
            return false;
          }

          case Opcode::PredClear:
            for (auto &p : frame().preds)
                p = 0;
            return false;
          case Opcode::PredSet:
            for (auto &p : frame().preds)
                p = 1;
            return false;

          case Opcode::PredEq: case Opcode::PredNe:
          case Opcode::PredLt: case Opcode::PredLe:
          case Opcode::PredGt: case Opcode::PredGe:
          case Opcode::PredLtu:
            execPredDefine(instr);
            return false;

          case Opcode::CMov:
            if (evalInt(instr.src(1)) != 0)
                writeInt(instr.dest(), evalInt(instr.src(0)));
            return false;
          case Opcode::CMovCom:
            if (evalInt(instr.src(1)) == 0)
                writeInt(instr.dest(), evalInt(instr.src(0)));
            return false;
          case Opcode::Select:
            writeInt(instr.dest(), evalInt(instr.src(2)) != 0
                                       ? evalInt(instr.src(0))
                                       : evalInt(instr.src(1)));
            return false;
          case Opcode::FCMov:
            if (evalInt(instr.src(1)) != 0)
                writeFloat(instr.dest(), evalFloat(instr.src(0)));
            return false;
          case Opcode::FCMovCom:
            if (evalInt(instr.src(1)) == 0)
                writeFloat(instr.dest(), evalFloat(instr.src(0)));
            return false;
          case Opcode::FSelect:
            writeFloat(instr.dest(), evalInt(instr.src(2)) != 0
                                         ? evalFloat(instr.src(0))
                                         : evalFloat(instr.src(1)));
            return false;

          case Opcode::Nop:
            return false;
        }
        panic("unhandled opcode in emulator");
    }

    const Program &prog_;
    ExecContext ctx_;
    const EmuOptions &opts_;
    std::vector<Frame> frames_;
    const BasicBlock *block_ = nullptr;
    std::size_t index_ = 0;
    bool blockEntry_ = true;
    bool done_ = false;
    std::int64_t exitValue_ = 0;
    std::uint64_t dynInstrs_ = 0;
};

} // namespace

EmuBackend
defaultEmuBackend()
{
    static const EmuBackend cached =
        EnvConfig::fromEnvironment().emuBackend == "interp"
            ? EmuBackend::Interp
            : EmuBackend::Threaded;
    return cached;
}

const char *
emuBackendName(EmuBackend backend)
{
    return backend == EmuBackend::Interp ? "interp" : "threaded";
}

RunResult
Emulator::run(const std::string &input, const EmuOptions &opts) const
{
    // Generic sinks need the interpreter's per-record callbacks; the
    // threaded engine only knows how to write packed TraceBuffers
    // (capture() routes those through captureDecoded() directly).
    if (opts.backend == EmuBackend::Threaded && opts.sink == nullptr) {
        DecodedProgram decoded(prog_);
        return runDecoded(decoded, input, opts);
    }
    Interp interp(prog_, input, opts);
    return interp.run();
}

} // namespace predilp
