/**
 * @file
 * Execution context shared by emulator runs: data memory, the input
 * byte stream consumed by getc, and the output stream produced by
 * putc. Output equality across processor models is the correctness
 * oracle of the whole reproduction.
 */

#ifndef PREDILP_EMU_CONTEXT_HH
#define PREDILP_EMU_CONTEXT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace predilp
{

/** Memory image + I/O streams for one emulation run. */
class ExecContext
{
  public:
    /**
     * Create a context for @p prog with @p input as the getc stream.
     * Memory is sized to the program's data segment plus slack and
     * initialized from the globals' initializers.
     */
    ExecContext(const Program &prog, std::string input);

    /**
     * Create a context from a prebuilt initial memory image (see
     * initialImage()). The decoded-program backend snapshots the
     * image once at decode time so runs never touch the IR.
     */
    ExecContext(const std::vector<std::uint8_t> &image,
                std::string input);

    /**
     * The initial memory image for @p prog: data segment plus slack,
     * globals' initializers applied. Equal to the memory a fresh
     * ExecContext(prog, ...) starts with.
     */
    static std::vector<std::uint8_t> initialImage(const Program &prog);

    /** Raw memory size in bytes. */
    std::int64_t memSize() const
    {
        return static_cast<std::int64_t>(memory_.size());
    }

    /** @return true when [addr, addr+bytes) is a valid access. */
    bool
    validAccess(std::int64_t addr, int bytes) const
    {
        return addr >= 0 && addr + bytes <= memSize();
    }

    std::int64_t loadWord(std::int64_t addr) const;
    void storeWord(std::int64_t addr, std::int64_t value);
    std::int64_t loadByteSigned(std::int64_t addr) const;
    std::int64_t loadByteUnsigned(std::int64_t addr) const;
    void storeByte(std::int64_t addr, std::int64_t value);
    double loadDouble(std::int64_t addr) const;
    void storeDouble(std::int64_t addr, double value);

    /** Next input byte (0..255) or -1 at end of stream. */
    std::int64_t getChar();

    /**
     * Bulk input, like a read() syscall: copy up to @p maxLen bytes
     * of remaining input into memory at @p addr.
     * @return the number of bytes copied (0 at end of stream).
     */
    std::int64_t readBlock(std::int64_t addr, std::int64_t maxLen);

    /** Append the low byte of @p value to the output stream. */
    void putChar(std::int64_t value);

    /** Output produced so far. */
    const std::string &output() const { return output_; }

    /**
     * FNV-1a hash of the current memory image; the "final memory"
     * leg of the differential oracle's equivalence check.
     */
    std::uint64_t memoryHash() const;

    /** Bytes of input not yet consumed. */
    std::size_t inputRemaining() const
    {
        return input_.size() - inputPos_;
    }

  private:
    /** Empty context used internally while building an image. */
    ExecContext() = default;

    std::vector<std::uint8_t> memory_;
    std::string input_;
    std::size_t inputPos_ = 0;
    std::string output_;
};

} // namespace predilp

#endif // PREDILP_EMU_CONTEXT_HH
