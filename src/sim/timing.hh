/**
 * @file
 * Emulation-driven timing simulator (paper §4.1): the functional
 * emulator streams dynamic instructions into an in-order, k-issue
 * pipeline model with register interlocks, limited branch slots, a
 * 1K-entry 2-bit BTB with a 2-cycle misprediction penalty, and
 * optional 64K direct-mapped instruction/data caches.
 *
 * The cycle model (CycleModel) consumes an abstract record stream —
 * an interned static-instruction id plus per-record dynamic flags —
 * so "produce trace" and "price trace" are fully separated. Two
 * producers exist: simulate() fuses emulation and pricing in one
 * pass (no trace materialized), and replay() (trace/replay.hh)
 * prices a previously captured TraceBuffer. Both yield bit-identical
 * SimResults for the same program, input, and configuration.
 *
 * Replay additionally batches: replayBatch() streams each trace
 * chunk once and advances N independent CycleModels against it, so
 * the chunk walk, the varint address-side-stream decode, and the
 * trace's memory traffic are paid once per trace instead of once per
 * configuration. All replay models share one ReplayTable — a packed,
 * machine-independent static-op metadata table baked from the
 * StaticIndex — and price latencies through a 9-entry per-class
 * table, so the per-record hot path touches exactly one row.
 */

#ifndef PREDILP_SIM_TIMING_HH
#define PREDILP_SIM_TIMING_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sched/machine.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/scoreboard.hh"
#include "support/stats_registry.hh"
#include "trace/trace.hh"

namespace predilp
{

class ThreadPool;

/** Results of one simulated run. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t dynInstrs = 0;     ///< fetched instructions.
    std::uint64_t nullified = 0;     ///< squashed by false guards.
    std::uint64_t branches = 0;      ///< executed cond branches+jumps.
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::int64_t exitValue = 0;
    std::string output;

    /**
     * Detailed machine counters under the `sim.` scope: per-class
     * issue counts (sim.issue.<class>), BTB training and aliasing
     * (sim.btb.*), cold/conflict-split cache misses (sim.icache.*,
     * sim.dcache.*), and issue-slot stall cycles by cause
     * (sim.slots.*). Fully determined by the record stream and
     * configuration, so replays agree bit-for-bit with fused runs.
     */
    StatsSnapshot stats;

    /** Misprediction rate over executed conditional branches. */
    double
    mispredictRate() const
    {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(condBranches);
    }
};

/** StaticOpRow trait bits (machine-independent classification). */
constexpr std::uint8_t rowIsBranch = 1u << 0;
constexpr std::uint8_t rowIsLoad = 1u << 1;
constexpr std::uint8_t rowIsStore = 1u << 2;
constexpr std::uint8_t rowIsPredAll = 1u << 3;

/**
 * One packed row of a ReplayTable: everything the pricing hot path
 * reads per record, flattened into a single contiguous array indexed
 * by static id. Compared to StaticOp this bakes in the opcode's
 * LatencyClass ordinal (`cls`) — the only opcode property pricing
 * needs — so the per-record path is one row load plus a 9-entry
 * per-class latency table lookup, instead of a StaticOp load, a
 * parallel classes_[] load, and a lazily-grown latencies_[] load.
 * StaticOp itself stays unchanged: it is serialized in the artifact
 * store's on-disk format.
 */
struct StaticOpRow
{
    std::int64_t addr = 0; ///< fetch address (I-cache / BTB key).
    Reg guard;             ///< invalid when unguarded.
    Reg dest;              ///< invalid when no register result.
    std::uint32_t regBegin = 0;      ///< offset into the reg pool.
    std::uint16_t srcRegCount = 0;   ///< register sources.
    std::uint16_t predDestCount = 0; ///< pred dests (after sources).
    std::uint8_t cls = 0;    ///< LatencyClass ordinal.
    std::uint8_t kind = 0;   ///< StaticOp::Kind ordinal.
    std::uint8_t traits = 0; ///< rowIs* bits.
};

/** Bake the pricing row of one interned static op. */
StaticOpRow makeStaticOpRow(const StaticOp &op);

/**
 * Pre-baked static-op metadata for replay: the packed row array, the
 * register-operand pool, and the per-class register bounds, built
 * once per StaticIndex and shared read-only by every CycleModel in a
 * batch. Holds a pointer into @p index's register pool, so the index
 * (in practice: the TraceBuffer that owns it) must outlive the
 * table. Build cost is O(static ops) — noise next to any replay.
 */
class ReplayTable
{
  public:
    explicit ReplayTable(const StaticIndex &index);

    const StaticOpRow *rows() const { return rows_.data(); }
    std::size_t size() const { return rows_.size(); }

    /** Pooled register operands (srcs then pred dests per row). */
    const Reg *regPool() const { return regPool_; }

    /** Per-class register bounds (Int, Float, Pred order). */
    const std::array<int, 3> &regBounds() const { return regBounds_; }

  private:
    std::vector<StaticOpRow> rows_;
    const Reg *regPool_ = nullptr;
    std::array<int, 3> regBounds_{};
};

/**
 * The in-order pipeline pricing model. Stateless about *how* records
 * are produced: feed it interned records via onRecord() — from the
 * live emulator (simulate()) or a captured buffer (replay()) — then
 * collect the SimResult with finish().
 *
 * Decode information is read from packed StaticOpRows. The replay
 * constructor borrows them from a shared ReplayTable (complete up
 * front, zero per-model bake cost); the fused constructor bakes an
 * owned copy that extends on demand as simulate() interns new static
 * instructions. Per-machine latencies live in a 9-entry per-class
 * table, so the per-record path performs no map lookups and never
 * touches IR data structures.
 */
class CycleModel
{
  public:
    /**
     * Fused-pipeline mode. @p index may still be growing (the fused
     * simulate() path interns lazily), so the owned row table
     * extends on demand as new static ids appear.
     */
    CycleModel(const StaticIndex &index, const SimConfig &config);

    /**
     * Replay mode: rows come from @p table, shared read-only across
     * every model of a batch. The table must cover all ids the trace
     * replays (always true for a table baked from the trace's own
     * index) and must outlive the model.
     */
    CycleModel(const ReplayTable &table, const SimConfig &config);

    /** Price one dynamic record. */
    void onRecord(std::uint32_t staticId, std::uint32_t flags,
                  std::int64_t memAddr);

    /**
     * Price a span of packed trace entries in one call — the chunked
     * replay hot path. @p addrs is the span's pre-decoded absolute
     * address run: one address per traceHasMemAddr-flagged entry, in
     * entry order (TraceBuffer::ChunkCursor produces exactly this).
     * When this model never reads addresses (perfect caches), pass
     * addrs == nullptr to skip the address-run walk; flagged entries
     * then price with a zero address, which such configs never
     * observe. Behaviour is record-for-record identical to calling
     * onRecord.
     */
    void onChunk(const TraceEntry *entries, std::size_t count,
                 const std::int64_t *addrs);

    /** @return true when pricing reads memory addresses. */
    bool readsAddresses() const { return !config_.perfectCaches; }

    /** Finalize: attach the functional run's outcome. */
    SimResult finish(std::int64_t exitValue, std::string output);

  private:
    /** Row of @p staticId, baking fused-mode rows on demand. */
    const StaticOpRow &
    row(std::uint32_t staticId)
    {
        if (staticId >= rowCount_) [[unlikely]]
            extendRows(staticId);
        return rows_[staticId];
    }

    void extendRows(std::uint32_t staticId);
    void priceRecord(const StaticOpRow &row, std::uint32_t flags,
                     std::int64_t memAddr);
    void setReady(const StaticOpRow &row, long when);
    void advanceTo(long target);
    void drain();
    void handleControl(const StaticOpRow &row, bool taken);

    static constexpr std::size_t numLatencyClasses = 9;

    /** Fused mode only: the (possibly growing) interner. */
    const StaticIndex *index_ = nullptr;
    /** Fused mode only: owned rows, extended on demand. */
    std::vector<StaticOpRow> ownedRows_;
    /** Active row table (owned or borrowed) and its register pool. */
    const StaticOpRow *rows_ = nullptr;
    std::size_t rowCount_ = 0;
    const Reg *regPool_ = nullptr;
    /**
     * Stored by value: callers routinely build a SimConfig inline
     * (or on a worker's stack) and the model must outlive it.
     */
    const SimConfig config_;
    /** Machine latency per LatencyClass ordinal. */
    std::array<int, numLatencyClasses> latByClass_{};
    SetAssocCache icache_;
    SetAssocCache dcache_;
    BranchTargetBuffer btb_;
    RegScoreboard scoreboard_;
    long cycle_ = 0;
    int slots_ = 0;
    int branchSlots_ = 0;
    std::array<std::uint64_t, numLatencyClasses> issuedByClass_{};
    std::uint64_t widthStallCycles_ = 0;
    std::uint64_t branchStallCycles_ = 0;
    SimResult result_;
};

/**
 * Run @p prog on @p input under the timing model @p config.
 * The program must be fully compiled (scheduled + laid out) for the
 * cycle counts to be meaningful, but any executable program works.
 *
 * Emulation and pricing run fused in a single pass; use capture() +
 * replay() instead when the same program will be priced under more
 * than one configuration.
 */
SimResult simulate(const Program &prog, const std::string &input,
                   const SimConfig &config);

/**
 * Price @p trace under every configuration in @p configs with one
 * pass over the trace: each chunk is fetched (and its address side
 * stream decoded) once, then every model prices it while it is
 * cache-resident. Results are index-aligned with @p configs and
 * bit-identical to calling replay() per config. When no config in
 * the batch models real caches, the varint side stream is never
 * decoded at all.
 *
 * @param pool optional: spread the batch across worker threads,
 * one lane per usable thread (each lane walks the trace
 * independently; chunk decode is then paid once per lane), so
 * aggregate throughput scales with cores. Pass nullptr to price the
 * whole batch as a single lane on the calling thread.
 */
std::vector<SimResult> replayBatch(const TraceBuffer &trace,
                                   std::span<const SimConfig> configs,
                                   ThreadPool *pool = nullptr);

} // namespace predilp

#endif // PREDILP_SIM_TIMING_HH
