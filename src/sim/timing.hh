/**
 * @file
 * Emulation-driven timing simulator (paper §4.1): the functional
 * emulator streams dynamic instructions into an in-order, k-issue
 * pipeline model with register interlocks, limited branch slots, a
 * 1K-entry 2-bit BTB with a 2-cycle misprediction penalty, and
 * optional 64K direct-mapped instruction/data caches.
 *
 * The cycle model (CycleModel) consumes an abstract record stream —
 * an interned static-instruction id plus per-record dynamic flags —
 * so "produce trace" and "price trace" are fully separated. Two
 * producers exist: simulate() fuses emulation and pricing in one
 * pass (no trace materialized), and replay() (trace/replay.hh)
 * prices a previously captured TraceBuffer. Both yield bit-identical
 * SimResults for the same program, input, and configuration.
 */

#ifndef PREDILP_SIM_TIMING_HH
#define PREDILP_SIM_TIMING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/machine.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/scoreboard.hh"
#include "support/stats_registry.hh"
#include "trace/trace.hh"

namespace predilp
{

/** Results of one simulated run. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t dynInstrs = 0;     ///< fetched instructions.
    std::uint64_t nullified = 0;     ///< squashed by false guards.
    std::uint64_t branches = 0;      ///< executed cond branches+jumps.
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::int64_t exitValue = 0;
    std::string output;

    /**
     * Detailed machine counters under the `sim.` scope: per-class
     * issue counts (sim.issue.<class>), BTB training and aliasing
     * (sim.btb.*), cold/conflict-split cache misses (sim.icache.*,
     * sim.dcache.*), and issue-slot stall cycles by cause
     * (sim.slots.*). Fully determined by the record stream and
     * configuration, so replays agree bit-for-bit with fused runs.
     */
    StatsSnapshot stats;

    /** Misprediction rate over executed conditional branches. */
    double
    mispredictRate() const
    {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(condBranches);
    }
};

/**
 * The in-order pipeline pricing model. Stateless about *how* records
 * are produced: feed it interned records via onRecord() — from the
 * live emulator (simulate()) or a captured buffer (replay()) — then
 * collect the SimResult with finish().
 *
 * Decode information comes from the StaticIndex; per-machine
 * instruction latencies are computed once per static instruction and
 * memoized in a dense table, so the per-record path performs no map
 * lookups and never touches IR data structures.
 */
class CycleModel
{
  public:
    /**
     * @param index decode tables; may still be growing (the fused
     * simulate() path interns lazily), so it is consulted by value
     * index on every record and latencies extend on demand.
     */
    CycleModel(const StaticIndex &index, const SimConfig &config);

    /** Price one dynamic record. */
    void onRecord(std::uint32_t staticId, std::uint32_t flags,
                  std::int64_t memAddr);

    /**
     * Price a span of packed trace entries in one call — the chunked
     * replay hot path. @p addrs is the span's pre-decoded absolute
     * address run: one address per traceHasMemAddr-flagged entry, in
     * entry order (TraceBuffer::ChunkCursor produces exactly this).
     * Behaviour is record-for-record identical to calling onRecord.
     */
    void onChunk(const TraceEntry *entries, std::size_t count,
                 const std::int64_t *addrs);

    /** Finalize: attach the functional run's outcome. */
    SimResult finish(std::int64_t exitValue, std::string output);

  private:
    int latencyFor(std::uint32_t staticId);
    void setReady(const StaticOp &op, long when);
    void advanceTo(long target);
    void drain();
    void handleControl(const StaticOp &op, bool taken);

    static constexpr std::size_t numLatencyClasses = 9;

    const StaticIndex &index_;
    /**
     * Stored by value: callers routinely build a SimConfig inline
     * (or on a worker's stack) and the model must outlive it.
     */
    const SimConfig config_;
    std::vector<int> latencies_; ///< dense, indexed by static id.
    std::vector<std::uint8_t> classes_; ///< LatencyClass per id.
    SetAssocCache icache_;
    SetAssocCache dcache_;
    BranchTargetBuffer btb_;
    RegScoreboard scoreboard_;
    long cycle_ = 0;
    int slots_ = 0;
    int branchSlots_ = 0;
    std::array<std::uint64_t, numLatencyClasses> issuedByClass_{};
    std::uint64_t widthStallCycles_ = 0;
    std::uint64_t branchStallCycles_ = 0;
    SimResult result_;
};

/**
 * Run @p prog on @p input under the timing model @p config.
 * The program must be fully compiled (scheduled + laid out) for the
 * cycle counts to be meaningful, but any executable program works.
 *
 * Emulation and pricing run fused in a single pass; use capture() +
 * replay() instead when the same program will be priced under more
 * than one configuration.
 */
SimResult simulate(const Program &prog, const std::string &input,
                   const SimConfig &config);

} // namespace predilp

#endif // PREDILP_SIM_TIMING_HH
