/**
 * @file
 * Emulation-driven timing simulator (paper §4.1): the functional
 * emulator streams dynamic instructions into an in-order, k-issue
 * pipeline model with register interlocks, limited branch slots, a
 * 1K-entry 2-bit BTB with a 2-cycle misprediction penalty, and
 * optional 64K direct-mapped instruction/data caches.
 */

#ifndef PREDILP_SIM_TIMING_HH
#define PREDILP_SIM_TIMING_HH

#include <cstdint>
#include <map>
#include <string>

#include "emu/emulator.hh"
#include "ir/program.hh"
#include "sched/machine.hh"

namespace predilp
{

/** Complete simulation configuration. */
struct SimConfig
{
    MachineConfig machine;

    /** Perfect caches (Figures 8-10) or 64K real caches (Fig. 11). */
    bool perfectCaches = true;

    std::int64_t cacheSizeBytes = 64 * 1024;
    std::int64_t cacheLineBytes = 64;
    int cacheMissPenalty = 12;
    std::size_t btbEntries = 1024;

    /** Fuel limit forwarded to the emulator. */
    std::uint64_t maxDynInstrs = 2'000'000'000ull;
};

/** Results of one simulated run. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t dynInstrs = 0;     ///< fetched instructions.
    std::uint64_t nullified = 0;     ///< squashed by false guards.
    std::uint64_t branches = 0;      ///< executed cond branches+jumps.
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::int64_t exitValue = 0;
    std::string output;

    /** Misprediction rate over executed conditional branches. */
    double
    mispredictRate() const
    {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(condBranches);
    }
};

/**
 * Instruction address assignment: 4 bytes per instruction, functions
 * and blocks laid out in program/layout order. Used by the I-cache
 * and BTB models.
 */
class AddressMap
{
  public:
    explicit AddressMap(const Program &prog);

    /** Address of @p instr inside @p fn. */
    std::int64_t
    addressOf(const Function *fn, const Instruction *instr) const
    {
        const auto &table = tables_.at(fn);
        return table[static_cast<std::size_t>(instr->id())];
    }

  private:
    std::map<const Function *, std::vector<std::int64_t>> tables_;
};

/**
 * Run @p prog on @p input under the timing model @p config.
 * The program must be fully compiled (scheduled + laid out) for the
 * cycle counts to be meaningful, but any executable program works.
 */
SimResult simulate(const Program &prog, const std::string &input,
                   const SimConfig &config);

} // namespace predilp

#endif // PREDILP_SIM_TIMING_HH
