#include "sim/timing.hh"

#include <unordered_map>

#include "sim/cache.hh"
#include "support/logging.hh"

namespace predilp
{

AddressMap::AddressMap(const Program &prog)
{
    std::int64_t addr = 0x1000;
    for (const auto &fn : prog.functions()) {
        auto &table = tables_[fn.get()];
        table.assign(
            static_cast<std::size_t>(fn->instrIdBound()), -1);
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                table[static_cast<std::size_t>(instr.id())] = addr;
                addr += 4;
            }
        }
        addr = (addr + 63) & ~std::int64_t{63}; // align functions.
    }
}

namespace
{

/** The in-order pipeline model fed by the emulator. */
class Pipeline : public TraceSink
{
  public:
    Pipeline(const Program &prog, const SimConfig &config)
        : config_(config), addresses_(prog),
          icache_(config.cacheSizeBytes, config.cacheLineBytes),
          dcache_(config.cacheSizeBytes, config.cacheLineBytes),
          btb_(config.btbEntries)
    {}

    void
    onInstr(const DynRecord &rec) override
    {
        const Instruction *instr = rec.instr;
        result_.dynInstrs += 1;
        if (rec.nullified)
            result_.nullified += 1;

        std::int64_t addr = addresses_.addressOf(rec.fn, instr);

        // --- fetch: instruction cache ---
        if (!config_.perfectCaches) {
            if (!icache_.access(addr)) {
                result_.icacheMisses += 1;
                advanceTo(cycle_ + config_.cacheMissPenalty);
            }
        }

        // --- operand readiness (register interlocks) ---
        long t = cycle_;
        if (instr->guarded())
            t = std::max(t, readyAt(instr->guard()));
        if (!rec.nullified) {
            // A squashed instruction is suppressed at decode and
            // never reads its data operands.
            for (const auto &src : instr->srcs()) {
                if (src.isReg())
                    t = std::max(t, readyAt(src.reg()));
            }
            // OR/AND-type defines merge with the old value, but
            // same-sense accumulations issue simultaneously
            // (wired-OR, paper §2.1): no stall on the destination.
        }
        advanceTo(t);

        // --- issue slot allocation ---
        bool isBranch =
            instr->isControlTransfer() || instr->isCall();
        while (slots_ >= config_.machine.issueWidth ||
               (isBranch &&
                branchSlots_ >= config_.machine.branchesPerCycle)) {
            advanceTo(cycle_ + 1);
        }
        slots_ += 1;
        if (isBranch)
            branchSlots_ += 1;

        // --- execution / destination readiness ---
        int latency = config_.machine.latencyOf(*instr);
        if (!rec.nullified) {
            if (instr->isLoad()) {
                result_.loads += 1;
                if (!config_.perfectCaches && rec.hasMemAddr &&
                    !dcache_.access(rec.memAddr)) {
                    result_.dcacheMisses += 1;
                    latency += config_.cacheMissPenalty;
                }
            } else if (instr->isStore()) {
                result_.stores += 1;
                if (!config_.perfectCaches && rec.hasMemAddr &&
                    !dcache_.writeAccess(rec.memAddr)) {
                    result_.dcacheMisses += 1;
                    // Write-through with a write buffer: no stall.
                }
            }
            setReady(rec, cycle_ + latency);
        }

        // --- control ---
        if (!rec.nullified && isBranch)
            handleControl(rec, addr);
    }

    SimResult
    finish(const RunResult &run)
    {
        result_.cycles = static_cast<std::uint64_t>(cycle_ + 1);
        result_.exitValue = run.exitValue;
        result_.output = run.output;
        return result_;
    }

  private:
    long
    readyAt(Reg reg) const
    {
        auto it = regReady_.find(reg);
        return it == regReady_.end() ? 0 : it->second;
    }

    void
    setReady(const DynRecord &rec, long when)
    {
        const Instruction *instr = rec.instr;
        if (instr->dest().valid())
            regReady_[instr->dest()] = when;
        for (const auto &pd : instr->predDests()) {
            // Accumulated predicates become ready when the *latest*
            // contribution completes.
            long &ready = regReady_[pd.reg];
            ready = std::max(ready, when);
        }
        if (instr->isPredAll()) {
            // Whole-file write: conservatively mark every predicate
            // register known so far.
            for (auto &[reg, ready] : regReady_) {
                if (reg.cls() == RegClass::Pred)
                    ready = when;
            }
        }
    }

    void
    advanceTo(long target)
    {
        if (target > cycle_) {
            cycle_ = target;
            slots_ = 0;
            branchSlots_ = 0;
        }
    }

    /** Drain outstanding writes (used at call boundaries). */
    void
    drain()
    {
        long latest = cycle_;
        for (const auto &[reg, ready] : regReady_)
            latest = std::max(latest, ready);
        regReady_.clear();
        advanceTo(latest);
    }

    void
    handleControl(const DynRecord &rec, std::int64_t addr)
    {
        const Instruction *instr = rec.instr;
        // A taken transfer redirects fetch: its target instructions
        // issue from the next cycle (they were not in this fetch
        // group). Mispredictions additionally cost the 2-cycle
        // penalty of §4.1. Correctly-predicted not-taken branches
        // are free beyond their branch slot.
        if (instr->isCondBranch()) {
            result_.branches += 1;
            result_.condBranches += 1;
            bool predicted = btb_.predictTaken(addr);
            btb_.update(addr, rec.taken);
            if (predicted != rec.taken) {
                result_.mispredicts += 1;
                advanceTo(cycle_ + 1 +
                          config_.machine.mispredictPenalty);
            } else if (rec.taken) {
                advanceTo(cycle_ + 1);
            }
            return;
        }
        if (instr->isJump()) {
            result_.branches += 1;
            advanceTo(cycle_ + 1);
            return;
        }
        // Calls and returns: frame changes; drain outstanding writes.
        drain();
        advanceTo(cycle_ + 1);
    }

    const SimConfig &config_;
    AddressMap addresses_;
    DirectMappedCache icache_;
    DirectMappedCache dcache_;
    BranchTargetBuffer btb_;
    std::unordered_map<Reg, long> regReady_;
    long cycle_ = 0;
    int slots_ = 0;
    int branchSlots_ = 0;
    SimResult result_;
};

} // namespace

SimResult
simulate(const Program &prog, const std::string &input,
         const SimConfig &config)
{
    Pipeline pipeline(prog, config);
    EmuOptions opts;
    opts.sink = &pipeline;
    opts.maxDynInstrs = config.maxDynInstrs;
    Emulator emu(prog);
    RunResult run = emu.run(input, opts);
    return pipeline.finish(run);
}

} // namespace predilp
