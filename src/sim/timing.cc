#include "sim/timing.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "trace/replay.hh"

namespace predilp
{

StaticOpRow
makeStaticOpRow(const StaticOp &op)
{
    StaticOpRow row;
    row.addr = op.addr;
    row.guard = op.guard;
    row.dest = op.dest;
    row.regBegin = op.regBegin;
    row.srcRegCount = op.srcRegCount;
    row.predDestCount = op.predDestCount;
    row.cls = static_cast<std::uint8_t>(opcodeInfo(op.op).latency);
    row.kind = static_cast<std::uint8_t>(op.kind);
    row.traits = static_cast<std::uint8_t>(
        (op.isBranch ? rowIsBranch : 0) |
        (op.isLoad ? rowIsLoad : 0) | (op.isStore ? rowIsStore : 0) |
        (op.isPredAll ? rowIsPredAll : 0));
    return row;
}

ReplayTable::ReplayTable(const StaticIndex &index)
    : regPool_(index.regPool().data()),
      regBounds_{index.regBound(RegClass::Int),
                 index.regBound(RegClass::Float),
                 index.regBound(RegClass::Pred)}
{
    rows_.reserve(index.size());
    for (const StaticOp &op : index.ops())
        rows_.push_back(makeStaticOpRow(op));
}

namespace
{

/** Bake a SimConfig's per-LatencyClass latency table. */
std::array<int, 9>
bakeLatencies(const MachineConfig &machine)
{
    std::array<int, 9> lat{};
    for (std::size_t cls = 0; cls < lat.size(); ++cls) {
        lat[cls] = machine.latencyOfClass(
            static_cast<LatencyClass>(cls));
    }
    return lat;
}

} // namespace

CycleModel::CycleModel(const StaticIndex &index,
                       const SimConfig &config)
    : index_(&index), config_(config),
      latByClass_(bakeLatencies(config.machine)),
      icache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      dcache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      btb_(config.btbEntries, config.btbAssociativity,
           config.predictor),
      scoreboard_(index)
{
    // Bake everything interned so far up front; the fused path
    // extends on demand as new static instructions appear.
    if (index.size() > 0)
        extendRows(index.size() - 1);
}

CycleModel::CycleModel(const ReplayTable &table,
                       const SimConfig &config)
    : rows_(table.rows()), rowCount_(table.size()),
      regPool_(table.regPool()), config_(config),
      latByClass_(bakeLatencies(config.machine)),
      icache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      dcache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      btb_(config.btbEntries, config.btbAssociativity,
           config.predictor),
      scoreboard_(table.regBounds())
{}

void
CycleModel::extendRows(std::uint32_t staticId)
{
    panicIf(index_ == nullptr,
            "static id ", staticId,
            " outside the shared ReplayTable (", rowCount_,
            " rows): replay-mode models cannot bake new rows");
    while (ownedRows_.size() <= staticId) {
        ownedRows_.push_back(makeStaticOpRow(index_->op(
            static_cast<std::uint32_t>(ownedRows_.size()))));
    }
    rows_ = ownedRows_.data();
    rowCount_ = ownedRows_.size();
    // Interning may have grown (reallocated) the index's register
    // pool since the last bake; re-anchor the base pointer.
    regPool_ = index_->regPool().data();
}

inline void
CycleModel::priceRecord(const StaticOpRow &row, std::uint32_t flags,
                        std::int64_t memAddr)
{
    const bool nullified = (flags & traceNullified) != 0;
    result_.dynInstrs += 1;
    if (nullified)
        result_.nullified += 1;

    // --- fetch: instruction cache ---
    if (!config_.perfectCaches) {
        if (!icache_.access(row.addr)) {
            result_.icacheMisses += 1;
            advanceTo(cycle_ + config_.cacheMissPenalty);
        }
    }

    // --- operand readiness (register interlocks) ---
    long t = cycle_;
    if (row.guard.valid())
        t = std::max(t, scoreboard_.readyAt(row.guard));
    if (!nullified) {
        // A squashed instruction is suppressed at decode and never
        // reads its data operands.
        const Reg *srcs = regPool_ + row.regBegin;
        for (std::uint16_t i = 0; i < row.srcRegCount; ++i)
            t = std::max(t, scoreboard_.readyAt(srcs[i]));
        // OR/AND-type defines merge with the old value, but
        // same-sense accumulations issue simultaneously (wired-OR,
        // paper §2.1): no stall on the destination.
    }
    advanceTo(t);

    // --- issue slot allocation ---
    const bool isBranch = (row.traits & rowIsBranch) != 0;
    while (slots_ >= config_.machine.issueWidth ||
           (isBranch &&
            branchSlots_ >= config_.machine.branchesPerCycle)) {
        if (slots_ >= config_.machine.issueWidth)
            widthStallCycles_ += 1;
        else
            branchStallCycles_ += 1;
        advanceTo(cycle_ + 1);
    }
    slots_ += 1;
    if (isBranch)
        branchSlots_ += 1;

    // --- execution / destination readiness ---
    int latency = latByClass_[row.cls];
    issuedByClass_[row.cls] += 1;
    if (!nullified) {
        if ((row.traits & rowIsLoad) != 0) {
            result_.loads += 1;
            if (!config_.perfectCaches &&
                (flags & traceHasMemAddr) != 0 &&
                !dcache_.access(memAddr)) {
                result_.dcacheMisses += 1;
                latency += config_.cacheMissPenalty;
            }
        } else if ((row.traits & rowIsStore) != 0) {
            result_.stores += 1;
            if (!config_.perfectCaches &&
                (flags & traceHasMemAddr) != 0 &&
                !dcache_.writeAccess(memAddr)) {
                result_.dcacheMisses += 1;
                // Write-through with a write buffer: no stall.
            }
        }
        setReady(row, cycle_ + latency);
    }

    // --- control ---
    if (!nullified && isBranch)
        handleControl(row, (flags & traceTaken) != 0);
}

void
CycleModel::onRecord(std::uint32_t staticId, std::uint32_t flags,
                     std::int64_t memAddr)
{
    priceRecord(row(staticId), flags, memAddr);
}

void
CycleModel::onChunk(const TraceEntry *entries, std::size_t count,
                    const std::int64_t *addrs)
{
    // One bounds check per chunk instead of two per record; the
    // address run was decoded once by the ChunkCursor, so the only
    // per-record memory-stream work left is a pointer bump. The
    // addrs == nullptr variant skips even that: perfect-cache
    // configs never read the address, so flagged entries price
    // against zero.
    if (addrs == nullptr) {
        for (std::size_t i = 0; i < count; ++i) {
            const TraceEntry entry = entries[i];
            priceRecord(row(entry.staticId()), entry.flags(), 0);
        }
        return;
    }
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEntry entry = entries[i];
        const std::uint32_t flags = entry.flags();
        std::int64_t memAddr = 0;
        if ((flags & traceHasMemAddr) != 0)
            memAddr = *addrs++;
        priceRecord(row(entry.staticId()), flags, memAddr);
    }
}

namespace
{

/** Counter-name leaf for each LatencyClass, in enum order. */
constexpr const char *latencyClassNames[] = {
    "int_alu", "int_mul", "int_div", "fp_alu", "fp_div",
    "load",    "store",   "branch",  "pred_define",
};

} // namespace

SimResult
CycleModel::finish(std::int64_t exitValue, std::string output)
{
    result_.cycles = static_cast<std::uint64_t>(cycle_ + 1);
    result_.exitValue = exitValue;
    result_.output = std::move(output);

    StatsSnapshot &stats = result_.stats;
    static_assert(std::size(latencyClassNames) == 9,
                  "one name per LatencyClass");
    for (std::size_t i = 0; i < numLatencyClasses; ++i) {
        stats.setCounter(std::string("sim.issue.") +
                             latencyClassNames[i],
                         issuedByClass_[i]);
    }
    stats.setCounter("sim.btb.lookups", btb_.lookups());
    stats.setCounter("sim.btb.mispredicts", result_.mispredicts);
    stats.setCounter("sim.btb.replacements", btb_.replacements());
    stats.setCounter("sim.icache.hits", icache_.hits());
    stats.setCounter("sim.icache.misses", icache_.misses());
    stats.setCounter("sim.icache.cold_misses", icache_.coldMisses());
    stats.setCounter("sim.icache.conflict_misses",
                     icache_.conflictMisses());
    stats.setCounter("sim.dcache.hits", dcache_.hits());
    stats.setCounter("sim.dcache.misses", dcache_.misses());
    stats.setCounter("sim.dcache.cold_misses", dcache_.coldMisses());
    stats.setCounter("sim.dcache.conflict_misses",
                     dcache_.conflictMisses());
    stats.setCounter("sim.slots.width_stall_cycles",
                     widthStallCycles_);
    stats.setCounter("sim.slots.branch_stall_cycles",
                     branchStallCycles_);
    return result_;
}

void
CycleModel::setReady(const StaticOpRow &row, long when)
{
    if (row.dest.valid())
        scoreboard_.setDest(row.dest, when);
    const Reg *predDests = regPool_ + row.regBegin + row.srcRegCount;
    for (std::uint16_t i = 0; i < row.predDestCount; ++i) {
        // Accumulated predicates become ready when the *latest*
        // contribution completes.
        scoreboard_.accumulate(predDests[i], when);
    }
    if ((row.traits & rowIsPredAll) != 0) {
        // Whole-file write: conservatively mark every predicate
        // register known so far.
        scoreboard_.setAllPred(when);
    }
}

void
CycleModel::advanceTo(long target)
{
    if (target > cycle_) {
        cycle_ = target;
        slots_ = 0;
        branchSlots_ = 0;
    }
}

/** Drain outstanding writes (used at call boundaries). */
void
CycleModel::drain()
{
    long latest = scoreboard_.maxOutstanding(cycle_);
    scoreboard_.clear();
    advanceTo(latest);
}

void
CycleModel::handleControl(const StaticOpRow &row, bool taken)
{
    // A taken transfer redirects fetch: its target instructions
    // issue from the next cycle (they were not in this fetch
    // group). Mispredictions additionally cost the 2-cycle
    // penalty of §4.1. Correctly-predicted not-taken branches
    // are free beyond their branch slot.
    switch (static_cast<StaticOp::Kind>(row.kind)) {
      case StaticOp::Kind::CondBranch: {
        result_.branches += 1;
        result_.condBranches += 1;
        bool predicted = btb_.predictTaken(row.addr);
        btb_.update(row.addr, taken);
        if (predicted != taken) {
            result_.mispredicts += 1;
            advanceTo(cycle_ + 1 + config_.machine.mispredictPenalty);
        } else if (taken) {
            advanceTo(cycle_ + 1);
        }
        return;
      }
      case StaticOp::Kind::Jump:
        result_.branches += 1;
        advanceTo(cycle_ + 1);
        return;
      case StaticOp::Kind::CallRet:
        // Calls and returns: frame changes; drain outstanding
        // writes.
        drain();
        advanceTo(cycle_ + 1);
        return;
      case StaticOp::Kind::Plain:
        return;
    }
}

namespace
{

/** Fused producer: interns each emulator record and prices it. */
class InlineSink : public TraceSink
{
  public:
    InlineSink(const Program &prog, const SimConfig &config)
        : index_(prog), model_(index_, config)
    {}

    void
    onInstr(const DynRecord &record) override
    {
        std::uint32_t id = index_.intern(record.fn, record.instr);
        model_.onRecord(id, traceFlagsOf(record), record.memAddr);
    }

    SimResult
    finish(const RunResult &run)
    {
        return model_.finish(run.exitValue, run.output);
    }

  private:
    StaticIndex index_;
    CycleModel model_;
};

/**
 * Price one lane of configs with a single pass over the trace. The
 * address side stream is decoded only when some lane member models
 * real caches, and handed only to those members.
 */
void
replayLane(const TraceBuffer &trace, const ReplayTable &table,
           std::span<const SimConfig> configs, SimResult *out)
{
    std::vector<CycleModel> models;
    models.reserve(configs.size());
    bool needAddrs = false;
    for (const SimConfig &config : configs) {
        models.emplace_back(table, config);
        needAddrs = needAddrs || models.back().readsAddresses();
    }
    TraceBuffer::ChunkCursor cursor(trace, needAddrs);
    const TraceEntry *entries = nullptr;
    std::size_t count = 0;
    const std::int64_t *addrs = nullptr;
    while (cursor.next(entries, count, addrs)) {
        for (CycleModel &model : models) {
            model.onChunk(entries, count,
                          model.readsAddresses() ? addrs : nullptr);
        }
    }
    for (std::size_t i = 0; i < models.size(); ++i) {
        out[i] = models[i].finish(trace.run().exitValue,
                                  trace.run().output);
    }
}

} // namespace

SimResult
simulate(const Program &prog, const std::string &input,
         const SimConfig &config)
{
    InlineSink sink(prog, config);
    EmuOptions opts;
    opts.sink = &sink;
    opts.maxDynInstrs = config.maxDynInstrs;
    Emulator emu(prog);
    RunResult run = emu.run(input, opts);
    return sink.finish(run);
}

SimResult
replay(const TraceBuffer &trace, const SimConfig &config)
{
    ReplayTable table(trace.index());
    SimResult result;
    replayLane(trace, table, std::span<const SimConfig>(&config, 1),
               &result);
    return result;
}

std::vector<SimResult>
replayBatch(const TraceBuffer &trace,
            std::span<const SimConfig> configs, ThreadPool *pool)
{
    std::vector<SimResult> results(configs.size());
    if (configs.empty())
        return results;
    ReplayTable table(trace.index());

    // Lane sizing: with no pool (or a 1-thread pool) one lane takes
    // the whole batch, maximizing cursor/decode amortization; with a
    // pool the batch is split evenly into one lane per usable
    // thread, so aggregate throughput scales with cores while every
    // lane still streams each chunk once for all its configs.
    std::size_t laneWidth = configs.size();
    if (pool != nullptr && pool->threadCount() > 1) {
        const std::size_t laneCount =
            std::min(configs.size(),
                     static_cast<std::size_t>(pool->threadCount()));
        laneWidth = (configs.size() + laneCount - 1) / laneCount;
    }
    const std::size_t lanes =
        (configs.size() + laneWidth - 1) / laneWidth;
    if (lanes == 1) {
        replayLane(trace, table, configs, results.data());
        return results;
    }
    pool->parallelFor(lanes, [&](std::size_t lane) {
        const std::size_t begin = lane * laneWidth;
        const std::size_t count =
            std::min(laneWidth, configs.size() - begin);
        replayLane(trace, table, configs.subspan(begin, count),
                   results.data() + begin);
    });
    return results;
}

} // namespace predilp
