#include "sim/timing.hh"

#include <algorithm>

#include "support/logging.hh"
#include "trace/replay.hh"

namespace predilp
{

CycleModel::CycleModel(const StaticIndex &index,
                       const SimConfig &config)
    : index_(index), config_(config),
      icache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      dcache_(config.cacheSizeBytes, config.cacheLineBytes,
              config.cacheAssociativity),
      btb_(config.btbEntries, config.btbAssociativity,
           config.predictor),
      scoreboard_(index)
{
    // Price everything interned so far up front; the fused path
    // extends on demand as new static instructions appear.
    latencies_.reserve(index_.size());
    classes_.reserve(index_.size());
    while (latencies_.size() < index_.size()) {
        Opcode op =
            index_.op(static_cast<std::uint32_t>(latencies_.size()))
                .op;
        latencies_.push_back(config_.machine.latencyOf(op));
        classes_.push_back(
            static_cast<std::uint8_t>(opcodeInfo(op).latency));
    }
}

int
CycleModel::latencyFor(std::uint32_t staticId)
{
    while (latencies_.size() <= staticId) {
        Opcode op =
            index_.op(static_cast<std::uint32_t>(latencies_.size()))
                .op;
        latencies_.push_back(config_.machine.latencyOf(op));
        classes_.push_back(
            static_cast<std::uint8_t>(opcodeInfo(op).latency));
    }
    return latencies_[staticId];
}

void
CycleModel::onRecord(std::uint32_t staticId, std::uint32_t flags,
                     std::int64_t memAddr)
{
    const StaticOp &op = index_.op(staticId);
    const bool nullified = (flags & traceNullified) != 0;
    const bool hasMemAddr = (flags & traceHasMemAddr) != 0;
    result_.dynInstrs += 1;
    if (nullified)
        result_.nullified += 1;

    // --- fetch: instruction cache ---
    if (!config_.perfectCaches) {
        if (!icache_.access(op.addr)) {
            result_.icacheMisses += 1;
            advanceTo(cycle_ + config_.cacheMissPenalty);
        }
    }

    // --- operand readiness (register interlocks) ---
    long t = cycle_;
    if (op.guard.valid())
        t = std::max(t, scoreboard_.readyAt(op.guard));
    if (!nullified) {
        // A squashed instruction is suppressed at decode and never
        // reads its data operands.
        const Reg *srcs = index_.regs(op);
        for (std::uint16_t i = 0; i < op.srcRegCount; ++i)
            t = std::max(t, scoreboard_.readyAt(srcs[i]));
        // OR/AND-type defines merge with the old value, but
        // same-sense accumulations issue simultaneously (wired-OR,
        // paper §2.1): no stall on the destination.
    }
    advanceTo(t);

    // --- issue slot allocation ---
    while (slots_ >= config_.machine.issueWidth ||
           (op.isBranch &&
            branchSlots_ >= config_.machine.branchesPerCycle)) {
        if (slots_ >= config_.machine.issueWidth)
            widthStallCycles_ += 1;
        else
            branchStallCycles_ += 1;
        advanceTo(cycle_ + 1);
    }
    slots_ += 1;
    if (op.isBranch)
        branchSlots_ += 1;

    // --- execution / destination readiness ---
    int latency = latencyFor(staticId);
    issuedByClass_[classes_[staticId]] += 1;
    if (!nullified) {
        if (op.isLoad) {
            result_.loads += 1;
            if (!config_.perfectCaches && hasMemAddr &&
                !dcache_.access(memAddr)) {
                result_.dcacheMisses += 1;
                latency += config_.cacheMissPenalty;
            }
        } else if (op.isStore) {
            result_.stores += 1;
            if (!config_.perfectCaches && hasMemAddr &&
                !dcache_.writeAccess(memAddr)) {
                result_.dcacheMisses += 1;
                // Write-through with a write buffer: no stall.
            }
        }
        setReady(op, cycle_ + latency);
    }

    // --- control ---
    if (!nullified && op.isBranch)
        handleControl(op, (flags & traceTaken) != 0);
}

void
CycleModel::onChunk(const TraceEntry *entries, std::size_t count,
                    const std::int64_t *addrs)
{
    // One bounds check per chunk instead of two per record; the
    // address run was decoded once by the ChunkCursor, so the only
    // per-record memory-stream work left is a pointer bump.
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEntry entry = entries[i];
        const std::uint32_t flags = entry.flags();
        std::int64_t memAddr = 0;
        if ((flags & traceHasMemAddr) != 0)
            memAddr = *addrs++;
        onRecord(entry.staticId(), flags, memAddr);
    }
}

namespace
{

/** Counter-name leaf for each LatencyClass, in enum order. */
constexpr const char *latencyClassNames[] = {
    "int_alu", "int_mul", "int_div", "fp_alu", "fp_div",
    "load",    "store",   "branch",  "pred_define",
};

} // namespace

SimResult
CycleModel::finish(std::int64_t exitValue, std::string output)
{
    result_.cycles = static_cast<std::uint64_t>(cycle_ + 1);
    result_.exitValue = exitValue;
    result_.output = std::move(output);

    StatsSnapshot &stats = result_.stats;
    static_assert(std::size(latencyClassNames) == 9,
                  "one name per LatencyClass");
    for (std::size_t i = 0; i < numLatencyClasses; ++i) {
        stats.setCounter(std::string("sim.issue.") +
                             latencyClassNames[i],
                         issuedByClass_[i]);
    }
    stats.setCounter("sim.btb.lookups", btb_.lookups());
    stats.setCounter("sim.btb.mispredicts", result_.mispredicts);
    stats.setCounter("sim.btb.replacements", btb_.replacements());
    stats.setCounter("sim.icache.hits", icache_.hits());
    stats.setCounter("sim.icache.misses", icache_.misses());
    stats.setCounter("sim.icache.cold_misses", icache_.coldMisses());
    stats.setCounter("sim.icache.conflict_misses",
                     icache_.conflictMisses());
    stats.setCounter("sim.dcache.hits", dcache_.hits());
    stats.setCounter("sim.dcache.misses", dcache_.misses());
    stats.setCounter("sim.dcache.cold_misses", dcache_.coldMisses());
    stats.setCounter("sim.dcache.conflict_misses",
                     dcache_.conflictMisses());
    stats.setCounter("sim.slots.width_stall_cycles",
                     widthStallCycles_);
    stats.setCounter("sim.slots.branch_stall_cycles",
                     branchStallCycles_);
    return result_;
}

void
CycleModel::setReady(const StaticOp &op, long when)
{
    if (op.dest.valid())
        scoreboard_.setDest(op.dest, when);
    const Reg *predDests = index_.regs(op) + op.srcRegCount;
    for (std::uint16_t i = 0; i < op.predDestCount; ++i) {
        // Accumulated predicates become ready when the *latest*
        // contribution completes.
        scoreboard_.accumulate(predDests[i], when);
    }
    if (op.isPredAll) {
        // Whole-file write: conservatively mark every predicate
        // register known so far.
        scoreboard_.setAllPred(when);
    }
}

void
CycleModel::advanceTo(long target)
{
    if (target > cycle_) {
        cycle_ = target;
        slots_ = 0;
        branchSlots_ = 0;
    }
}

/** Drain outstanding writes (used at call boundaries). */
void
CycleModel::drain()
{
    long latest = scoreboard_.maxOutstanding(cycle_);
    scoreboard_.clear();
    advanceTo(latest);
}

void
CycleModel::handleControl(const StaticOp &op, bool taken)
{
    // A taken transfer redirects fetch: its target instructions
    // issue from the next cycle (they were not in this fetch
    // group). Mispredictions additionally cost the 2-cycle
    // penalty of §4.1. Correctly-predicted not-taken branches
    // are free beyond their branch slot.
    switch (op.kind) {
      case StaticOp::Kind::CondBranch: {
        result_.branches += 1;
        result_.condBranches += 1;
        bool predicted = btb_.predictTaken(op.addr);
        btb_.update(op.addr, taken);
        if (predicted != taken) {
            result_.mispredicts += 1;
            advanceTo(cycle_ + 1 + config_.machine.mispredictPenalty);
        } else if (taken) {
            advanceTo(cycle_ + 1);
        }
        return;
      }
      case StaticOp::Kind::Jump:
        result_.branches += 1;
        advanceTo(cycle_ + 1);
        return;
      case StaticOp::Kind::CallRet:
        // Calls and returns: frame changes; drain outstanding
        // writes.
        drain();
        advanceTo(cycle_ + 1);
        return;
      case StaticOp::Kind::Plain:
        return;
    }
}

namespace
{

/** Fused producer: interns each emulator record and prices it. */
class InlineSink : public TraceSink
{
  public:
    InlineSink(const Program &prog, const SimConfig &config)
        : index_(prog), model_(index_, config)
    {}

    void
    onInstr(const DynRecord &record) override
    {
        std::uint32_t id = index_.intern(record.fn, record.instr);
        model_.onRecord(id, traceFlagsOf(record), record.memAddr);
    }

    SimResult
    finish(const RunResult &run)
    {
        return model_.finish(run.exitValue, run.output);
    }

  private:
    StaticIndex index_;
    CycleModel model_;
};

} // namespace

SimResult
simulate(const Program &prog, const std::string &input,
         const SimConfig &config)
{
    InlineSink sink(prog, config);
    EmuOptions opts;
    opts.sink = &sink;
    opts.maxDynInstrs = config.maxDynInstrs;
    Emulator emu(prog);
    RunResult run = emu.run(input, opts);
    return sink.finish(run);
}

SimResult
replay(const TraceBuffer &trace, const SimConfig &config)
{
    CycleModel model(trace.index(), config);
    TraceBuffer::ChunkCursor cursor(trace);
    const TraceEntry *entries = nullptr;
    std::size_t count = 0;
    const std::int64_t *addrs = nullptr;
    while (cursor.next(entries, count, addrs))
        model.onChunk(entries, count, addrs);
    return model.finish(trace.run().exitValue, trace.run().output);
}

} // namespace predilp
