/**
 * @file
 * The complete, serializable simulation configuration. SimConfig is
 * the unit of identity for simulation results: two runs with equal
 * configs (and the same program/input) are bit-identical, and
 * configDigest() turns that identity into a short stable string used
 * in evaluator cache keys, store provenance, and sweep cell labels.
 *
 * The JSON form (toJson/fromJson) is canonical — fixed member order,
 * every field emitted explicitly — so the digest is a pure function
 * of the field *values*, independent of which defaults the producing
 * build happened to have. fromJson rejects unknown keys at both the
 * top level and inside "machine", so a typo in a sweep grid spec
 * fails loudly instead of silently sweeping a default.
 */

#ifndef PREDILP_SIM_CONFIG_HH
#define PREDILP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sched/machine.hh"
#include "sim/cache.hh"
#include "support/json.hh"

namespace predilp
{

/** Complete simulation configuration. */
struct SimConfig
{
    MachineConfig machine;

    /** Perfect caches (Figures 8-10) or real caches (Fig. 11). */
    bool perfectCaches = true;

    std::int64_t cacheSizeBytes = 64 * 1024;
    std::int64_t cacheLineBytes = 64;
    int cacheAssociativity = 1;
    int cacheMissPenalty = 12;

    std::size_t btbEntries = 1024;
    int btbAssociativity = 1;
    BranchPredictor predictor = BranchPredictor::TwoBit;

    /** Fuel limit forwarded to the emulator. */
    std::uint64_t maxDynInstrs = 2'000'000'000ull;

    /**
     * The paper's §4.1 machine: 8-issue, 1 branch per cycle, 64K
     * direct-mapped caches, 1K-entry tagless 2-bit BTB, perfect
     * caches by default (Figures 8-10). Identical to a
     * default-constructed SimConfig; exists so call sites can say
     * which machine they mean.
     */
    static SimConfig paperMachine();

    /** Canonical JSON object; see file comment. */
    JsonValue toJson() const;

    /**
     * Parse a config object. Absent keys keep their defaults;
     * unknown keys (top level or in "machine") throw FatalError.
     */
    static SimConfig fromJson(const JsonValue &json);

    /**
     * Versioned content digest: "v1:" + 32 hex chars of
     * sha256 over a domain tag plus the canonical JSON. Stable
     * across builds and field reordering; changes whenever any
     * field value changes. Feeds evaluator result-cache keys and
     * store artifact provenance.
     */
    std::string configDigest() const;

    bool operator==(const SimConfig &other) const;
};

/** Canonical JSON object for a MachineConfig (all fields). */
JsonValue machineToJson(const MachineConfig &machine);

/** Inverse of machineToJson; rejects unknown keys. */
MachineConfig machineFromJson(const JsonValue &json);

} // namespace predilp

#endif // PREDILP_SIM_CONFIG_HH
