#include "sim/cache.hh"

#include <algorithm>

#include "support/diag.hh"
#include "support/logging.hh"

namespace predilp
{

const char *
predictorName(BranchPredictor predictor)
{
    switch (predictor) {
      case BranchPredictor::TwoBit:
        return "twobit";
      case BranchPredictor::OneBit:
        return "onebit";
      case BranchPredictor::StaticTaken:
        return "taken";
      case BranchPredictor::StaticNotTaken:
        return "nottaken";
    }
    panic("unreachable predictor value");
}

BranchPredictor
predictorFromName(const std::string &name)
{
    if (name == "twobit")
        return BranchPredictor::TwoBit;
    if (name == "onebit")
        return BranchPredictor::OneBit;
    if (name == "taken")
        return BranchPredictor::StaticTaken;
    if (name == "nottaken")
        return BranchPredictor::StaticNotTaken;
    throw FatalError("unknown branch predictor '" + name +
                     "' (expected twobit, onebit, taken or nottaken)");
}

SetAssocCache::SetAssocCache(std::int64_t sizeBytes,
                             std::int64_t lineBytes, int ways)
    : lineBytes_(lineBytes), ways_(static_cast<std::size_t>(ways))
{
    panicIf(lineBytes <= 0 || (lineBytes & (lineBytes - 1)) != 0,
            "cache line size must be a power of two");
    panicIf(ways <= 0, "cache associativity must be positive");
    std::size_t numLines =
        static_cast<std::size_t>(sizeBytes / lineBytes);
    panicIf(numLines == 0, "cache has no lines");
    panicIf(numLines % ways_ != 0,
            "cache associativity must divide the line count");
    numSets_ = numLines / ways_;
    tags_.assign(numLines, 0);
    valid_.assign(numLines, false);
    lastUse_.assign(numLines, 0);
}

std::size_t
SetAssocCache::setOf(std::int64_t addr) const
{
    return static_cast<std::size_t>(addr / lineBytes_) % numSets_;
}

std::int64_t
SetAssocCache::tagOf(std::int64_t addr) const
{
    return (addr / lineBytes_) / static_cast<std::int64_t>(numSets_);
}

int
SetAssocCache::findWay(std::size_t set, std::int64_t tag) const
{
    std::size_t base = set * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
        if (valid_[base + way] && tags_[base + way] == tag)
            return static_cast<int>(way);
    }
    return -1;
}

void
SetAssocCache::touch(std::size_t set, int way)
{
    lastUse_[set * ways_ + static_cast<std::size_t>(way)] = ++tick_;
}

void
SetAssocCache::classifyMiss(std::size_t set)
{
    misses_ += 1;
    std::size_t base = set * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
        if (!valid_[base + way]) {
            coldMisses_ += 1;
            return;
        }
    }
    conflictMisses_ += 1;
}

bool
SetAssocCache::access(std::int64_t addr)
{
    std::size_t set = setOf(addr);
    std::int64_t tag = tagOf(addr);
    if (int way = findWay(set, tag); way >= 0) {
        hits_ += 1;
        touch(set, way);
        return true;
    }
    classifyMiss(set);
    // Fill: an invalid way if the set has one, else the LRU way.
    std::size_t base = set * ways_;
    std::size_t victim = 0;
    for (std::size_t way = 0; way < ways_; ++way) {
        if (!valid_[base + way]) {
            victim = way;
            break;
        }
        if (lastUse_[base + way] < lastUse_[base + victim])
            victim = way;
    }
    valid_[base + victim] = true;
    tags_[base + victim] = tag;
    touch(set, static_cast<int>(victim));
    return false;
}

bool
SetAssocCache::writeAccess(std::int64_t addr)
{
    std::size_t set = setOf(addr);
    if (int way = findWay(set, tagOf(addr)); way >= 0) {
        hits_ += 1;
        touch(set, way);
        return true;
    }
    // Write-through, no write-allocate: the line is not filled.
    classifyMiss(set);
    return false;
}

bool
SetAssocCache::present(std::int64_t addr) const
{
    return findWay(setOf(addr), tagOf(addr)) >= 0;
}

void
SetAssocCache::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
    coldMisses_ = 0;
    conflictMisses_ = 0;
}

BranchTargetBuffer::BranchTargetBuffer(std::size_t entries, int ways,
                                       BranchPredictor predictor)
    : predictor_(predictor), ways_(static_cast<std::size_t>(ways))
{
    panicIf(entries == 0, "BTB needs at least one entry");
    panicIf(ways <= 0, "BTB associativity must be positive");
    panicIf(entries % ways_ != 0,
            "BTB associativity must divide the entry count");
    numSets_ = entries / ways_;
    counters_.assign(entries, initialCounter());
    owners_.assign(entries, 0);
    ownerValid_.assign(entries, false);
    lastUse_.assign(entries, 0);
}

std::size_t
BranchTargetBuffer::setOf(std::int64_t addr) const
{
    return static_cast<std::size_t>(addr >> 2) % numSets_;
}

std::uint8_t
BranchTargetBuffer::initialCounter() const
{
    // Weakly not-taken for the 2-bit counter (paper §4.1); the 1-bit
    // predictor starts predicting not-taken.
    return predictor_ == BranchPredictor::TwoBit ? 1 : 0;
}

bool
BranchTargetBuffer::counterPredictsTaken(std::uint8_t counter) const
{
    switch (predictor_) {
      case BranchPredictor::TwoBit:
        return counter >= 2;
      case BranchPredictor::OneBit:
        return counter != 0;
      case BranchPredictor::StaticTaken:
        return true;
      case BranchPredictor::StaticNotTaken:
        return false;
    }
    panic("unreachable predictor value");
}

void
BranchTargetBuffer::train(std::uint8_t &counter, bool taken) const
{
    switch (predictor_) {
      case BranchPredictor::TwoBit:
        if (taken) {
            if (counter < 3)
                counter += 1;
        } else {
            if (counter > 0)
                counter -= 1;
        }
        return;
      case BranchPredictor::OneBit:
        counter = taken ? 1 : 0;
        return;
      case BranchPredictor::StaticTaken:
      case BranchPredictor::StaticNotTaken:
        return; // static policies ignore history.
    }
}

bool
BranchTargetBuffer::predictTaken(std::int64_t addr) const
{
    if (predictor_ == BranchPredictor::StaticTaken)
        return true;
    if (predictor_ == BranchPredictor::StaticNotTaken)
        return false;
    std::size_t base = setOf(addr) * ways_;
    if (ways_ == 1) {
        // Tagless table: whatever counter the address aliases to.
        return counterPredictsTaken(counters_[base]);
    }
    for (std::size_t way = 0; way < ways_; ++way) {
        if (ownerValid_[base + way] && owners_[base + way] == addr)
            return counterPredictsTaken(counters_[base + way]);
    }
    return false; // tag miss: default not-taken.
}

void
BranchTargetBuffer::update(std::int64_t addr, bool taken)
{
    lookups_ += 1;
    std::size_t base = setOf(addr) * ways_;
    if (ways_ == 1) {
        // Tagless: the counter is shared between aliasing branches;
        // the owner tag only feeds the replacements statistic.
        if (!ownerValid_[base]) {
            ownerValid_[base] = true;
            owners_[base] = addr;
        } else if (owners_[base] != addr) {
            replacements_ += 1;
            owners_[base] = addr;
        }
        train(counters_[base], taken);
        return;
    }
    std::size_t victim = 0;
    bool found = false;
    for (std::size_t way = 0; way < ways_; ++way) {
        if (ownerValid_[base + way] && owners_[base + way] == addr) {
            victim = way;
            found = true;
            break;
        }
    }
    if (!found) {
        bool evicting = true;
        for (std::size_t way = 0; way < ways_; ++way) {
            if (!ownerValid_[base + way]) {
                victim = way;
                evicting = false;
                break;
            }
            if (lastUse_[base + way] < lastUse_[base + victim])
                victim = way;
        }
        if (evicting)
            replacements_ += 1;
        ownerValid_[base + victim] = true;
        owners_[base + victim] = addr;
        counters_[base + victim] = initialCounter();
    }
    train(counters_[base + victim], taken);
    lastUse_[base + victim] = ++tick_;
}

void
BranchTargetBuffer::reset()
{
    std::fill(counters_.begin(), counters_.end(), initialCounter());
    std::fill(ownerValid_.begin(), ownerValid_.end(), false);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    tick_ = 0;
    lookups_ = 0;
    replacements_ = 0;
}

} // namespace predilp
