#include "sim/cache.hh"

#include "support/logging.hh"

namespace predilp
{

DirectMappedCache::DirectMappedCache(std::int64_t sizeBytes,
                                     std::int64_t lineBytes)
    : lineBytes_(lineBytes),
      numLines_(static_cast<std::size_t>(sizeBytes / lineBytes)),
      tags_(numLines_, 0), valid_(numLines_, false)
{
    panicIf(lineBytes <= 0 || (lineBytes & (lineBytes - 1)) != 0,
            "cache line size must be a power of two");
    panicIf(numLines_ == 0, "cache has no lines");
}

std::size_t
DirectMappedCache::indexOf(std::int64_t addr) const
{
    return static_cast<std::size_t>(addr / lineBytes_) % numLines_;
}

std::int64_t
DirectMappedCache::tagOf(std::int64_t addr) const
{
    return (addr / lineBytes_) /
           static_cast<std::int64_t>(numLines_);
}

void
DirectMappedCache::classifyMiss(std::size_t index)
{
    misses_ += 1;
    if (valid_[index])
        conflictMisses_ += 1;
    else
        coldMisses_ += 1;
}

bool
DirectMappedCache::access(std::int64_t addr)
{
    std::size_t index = indexOf(addr);
    if (valid_[index] && tags_[index] == tagOf(addr)) {
        hits_ += 1;
        return true;
    }
    classifyMiss(index);
    valid_[index] = true;
    tags_[index] = tagOf(addr);
    return false;
}

bool
DirectMappedCache::writeAccess(std::int64_t addr)
{
    std::size_t index = indexOf(addr);
    if (valid_[index] && tags_[index] == tagOf(addr)) {
        hits_ += 1;
        return true;
    }
    // Write-through, no write-allocate: the line is not filled.
    classifyMiss(index);
    return false;
}

bool
DirectMappedCache::present(std::int64_t addr) const
{
    std::size_t index = indexOf(addr);
    return valid_[index] && tags_[index] == tagOf(addr);
}

void
DirectMappedCache::reset()
{
    std::fill(valid_.begin(), valid_.end(), false);
    hits_ = 0;
    misses_ = 0;
    coldMisses_ = 0;
    conflictMisses_ = 0;
}

BranchTargetBuffer::BranchTargetBuffer(std::size_t entries)
    : counters_(entries, 1), // weakly not-taken.
      owners_(entries, 0), ownerValid_(entries, false)
{
    panicIf(entries == 0, "BTB needs at least one entry");
}

std::size_t
BranchTargetBuffer::indexOf(std::int64_t addr) const
{
    return static_cast<std::size_t>(addr >> 2) % counters_.size();
}

bool
BranchTargetBuffer::predictTaken(std::int64_t addr) const
{
    return counters_[indexOf(addr)] >= 2;
}

void
BranchTargetBuffer::update(std::int64_t addr, bool taken)
{
    std::size_t index = indexOf(addr);
    lookups_ += 1;
    if (!ownerValid_[index]) {
        ownerValid_[index] = true;
        owners_[index] = addr;
    } else if (owners_[index] != addr) {
        replacements_ += 1;
        owners_[index] = addr;
    }
    std::uint8_t &counter = counters_[index];
    if (taken) {
        if (counter < 3)
            counter += 1;
    } else {
        if (counter > 0)
            counter -= 1;
    }
}

void
BranchTargetBuffer::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    std::fill(ownerValid_.begin(), ownerValid_.end(), false);
    lookups_ = 0;
    replacements_ = 0;
}

} // namespace predilp
