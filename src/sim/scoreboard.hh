/**
 * @file
 * Dense register-ready scoreboard for the cycle model. Replaces the
 * per-record std::unordered_map<Reg, long> lookup with flat
 * ready-cycle vectors indexed by (register class, register number),
 * sized once from the StaticIndex's per-class register bounds.
 *
 * An epoch/generation trick makes drain() — which the map version
 * implemented by clearing the whole table at every call/return —
 * O(registers touched since the last drain) instead of O(table):
 * a slot's value only counts when its epoch tag matches the current
 * epoch, so "clearing" is a single epoch increment and the arrays
 * are never re-written. A per-class dirty list (one entry per
 * register first touched in the current epoch, i.e. exactly the
 * key set of the old map) drives the drain maximum and the
 * whole-predicate-file writes, preserving the map semantics
 * bit-for-bit.
 */

#ifndef PREDILP_SIM_SCOREBOARD_HH
#define PREDILP_SIM_SCOREBOARD_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "ir/reg.hh"
#include "trace/trace.hh"

namespace predilp
{

/** Dense per-class register-ready tracker; see file comment. */
class RegScoreboard
{
  public:
    /** Size every class's table from @p index's register bounds. */
    explicit RegScoreboard(const StaticIndex &index)
        : RegScoreboard(std::array<int, 3>{
              index.regBound(RegClass::Int),
              index.regBound(RegClass::Float),
              index.regBound(RegClass::Pred)})
    {}

    /**
     * Size every class's table from explicit per-class bounds (Int,
     * Float, Pred order) — the batched-replay path, where bounds
     * travel with the shared ReplayTable instead of the index.
     */
    explicit RegScoreboard(const std::array<int, 3> &regBounds)
    {
        for (std::size_t cls = 0; cls < boards_.size(); ++cls)
            boards_[cls].resize(regBounds[cls]);
    }

    /** Cycle @p reg becomes ready; 0 when untouched this epoch. */
    long
    readyAt(Reg reg) const
    {
        const ClassBoard &b = board(reg.cls());
        auto idx = static_cast<std::size_t>(reg.idx());
        if (idx >= b.ready.size() || b.epoch[idx] != epoch_)
            return 0;
        return b.ready[idx];
    }

    /** Destination write: overwrite the ready cycle. */
    void
    setDest(Reg reg, long when)
    {
        touch(board(reg.cls()), reg.idx()) = when;
    }

    /**
     * OR/AND-style accumulation: ready when the *latest*
     * contribution completes.
     */
    void
    accumulate(Reg reg, long when)
    {
        long &ready = touch(board(reg.cls()), reg.idx());
        ready = std::max(ready, when);
    }

    /**
     * Whole-predicate-file write (pred_clear / pred_set):
     * every predicate register touched this epoch becomes ready at
     * @p when.
     */
    void
    setAllPred(long when)
    {
        ClassBoard &b = board(RegClass::Pred);
        for (std::int32_t idx : b.dirty)
            b.ready[static_cast<std::size_t>(idx)] = when;
    }

    /** Max of @p atLeast and every outstanding ready cycle. */
    long
    maxOutstanding(long atLeast) const
    {
        long latest = atLeast;
        for (const ClassBoard &b : boards_) {
            for (std::int32_t idx : b.dirty) {
                latest = std::max(
                    latest, b.ready[static_cast<std::size_t>(idx)]);
            }
        }
        return latest;
    }

    /** Forget every outstanding write (the drain reset). */
    void
    clear()
    {
        for (ClassBoard &b : boards_)
            b.dirty.clear();
        if (++epoch_ == 0) {
            // Epoch wrap (one per 2^32 drains): stale tags could
            // alias the fresh epoch, so do the one-time hard reset.
            for (ClassBoard &b : boards_)
                std::fill(b.epoch.begin(), b.epoch.end(), 0u);
            epoch_ = 1;
        }
    }

    /**
     * Test-only seam: jump to epoch @p epoch as if that many drains
     * had happened (dirty lists empty, tables untouched). Lets the
     * wraparound hard reset in clear() be exercised without 2^32
     * real drains.
     */
    void
    presetEpochForTest(std::uint32_t epoch)
    {
        for (ClassBoard &b : boards_)
            b.dirty.clear();
        epoch_ = epoch;
    }

  private:
    struct ClassBoard
    {
        std::vector<long> ready;
        std::vector<std::uint32_t> epoch;
        /** Registers first touched in the current epoch. */
        std::vector<std::int32_t> dirty;

        void
        resize(int n)
        {
            ready.assign(static_cast<std::size_t>(n), 0);
            epoch.assign(static_cast<std::size_t>(n), 0);
        }
    };

    ClassBoard &
    board(RegClass cls)
    {
        return boards_[static_cast<std::size_t>(cls)];
    }

    const ClassBoard &
    board(RegClass cls) const
    {
        return boards_[static_cast<std::size_t>(cls)];
    }

    /**
     * Validate @p idx's slot for the current epoch (zeroing it on
     * first touch, exactly like the map's operator[] insert) and
     * return it.
     */
    long &
    touch(ClassBoard &b, int idx)
    {
        auto i = static_cast<std::size_t>(idx);
        if (i >= b.ready.size()) {
            // The StaticIndex bounds cover every register the
            // program allocates; growth is a defensive slow path.
            b.ready.resize(i + 1, 0);
            b.epoch.resize(i + 1, 0);
        }
        if (b.epoch[i] != epoch_) {
            b.epoch[i] = epoch_;
            b.ready[i] = 0;
            b.dirty.push_back(static_cast<std::int32_t>(idx));
        }
        return b.ready[i];
    }

    std::array<ClassBoard, 3> boards_;
    std::uint32_t epoch_ = 1;
};

} // namespace predilp

#endif // PREDILP_SIM_SCOREBOARD_HH
