/**
 * @file
 * Direct-mapped cache model matching the paper's memory system
 * (§4.1): 64K direct mapped, 64-byte blocks; the data cache is
 * write-through with no write-allocate and a 12-cycle miss penalty.
 */

#ifndef PREDILP_SIM_CACHE_HH
#define PREDILP_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace predilp
{

/** A direct-mapped, tag-only cache model. */
class DirectMappedCache
{
  public:
    /**
     * @param sizeBytes total capacity.
     * @param lineBytes block size (power of two).
     */
    DirectMappedCache(std::int64_t sizeBytes, std::int64_t lineBytes);

    /**
     * Read access: @return true on hit. Misses allocate the line.
     */
    bool access(std::int64_t addr);

    /**
     * Write access with no-write-allocate semantics: @return true on
     * hit (line updated); misses do not allocate.
     */
    bool writeAccess(std::int64_t addr);

    /** @return true if the line holding @p addr is present. */
    bool present(std::int64_t addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Misses to lines never filled (cold/compulsory). */
    std::uint64_t coldMisses() const { return coldMisses_; }

    /**
     * Misses that evicted or bypassed a valid line holding a
     * different tag — direct-mapped set conflicts.
     */
    std::uint64_t conflictMisses() const { return conflictMisses_; }

    /** Empty the cache and zero statistics. */
    void reset();

  private:
    std::size_t indexOf(std::int64_t addr) const;
    std::int64_t tagOf(std::int64_t addr) const;
    void classifyMiss(std::size_t index);

    std::int64_t lineBytes_;
    std::size_t numLines_;
    std::vector<std::int64_t> tags_;
    std::vector<bool> valid_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coldMisses_ = 0;
    std::uint64_t conflictMisses_ = 0;
};

/**
 * Branch target buffer: direct-mapped table of 2-bit saturating
 * counters (1K entries, as in §4.1).
 */
class BranchTargetBuffer
{
  public:
    explicit BranchTargetBuffer(std::size_t entries = 1024);

    /** @return the taken/not-taken prediction for @p addr. */
    bool predictTaken(std::int64_t addr) const;

    /** Train with the actual outcome. */
    void update(std::int64_t addr, bool taken);

    /** Branches trained (one per executed conditional branch). */
    std::uint64_t lookups() const { return lookups_; }

    /**
     * Trainings whose entry last belonged to a different branch
     * address — counter aliasing in the direct-mapped table. Tracked
     * with a stats-only tag array; predictions are unaffected (the
     * real table is tagless, as in §4.1).
     */
    std::uint64_t replacements() const { return replacements_; }

    void reset();

  private:
    std::size_t indexOf(std::int64_t addr) const;

    std::vector<std::uint8_t> counters_;
    std::vector<std::int64_t> owners_;  ///< stats only; not consulted.
    std::vector<bool> ownerValid_;
    std::uint64_t lookups_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace predilp

#endif // PREDILP_SIM_CACHE_HH
