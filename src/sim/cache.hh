/**
 * @file
 * Direct-mapped cache model matching the paper's memory system
 * (§4.1): 64K direct mapped, 64-byte blocks; the data cache is
 * write-through with no write-allocate and a 12-cycle miss penalty.
 */

#ifndef PREDILP_SIM_CACHE_HH
#define PREDILP_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace predilp
{

/** A direct-mapped, tag-only cache model. */
class DirectMappedCache
{
  public:
    /**
     * @param sizeBytes total capacity.
     * @param lineBytes block size (power of two).
     */
    DirectMappedCache(std::int64_t sizeBytes, std::int64_t lineBytes);

    /**
     * Read access: @return true on hit. Misses allocate the line.
     */
    bool access(std::int64_t addr);

    /**
     * Write access with no-write-allocate semantics: @return true on
     * hit (line updated); misses do not allocate.
     */
    bool writeAccess(std::int64_t addr);

    /** @return true if the line holding @p addr is present. */
    bool present(std::int64_t addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Empty the cache and zero statistics. */
    void reset();

  private:
    std::size_t indexOf(std::int64_t addr) const;
    std::int64_t tagOf(std::int64_t addr) const;

    std::int64_t lineBytes_;
    std::size_t numLines_;
    std::vector<std::int64_t> tags_;
    std::vector<bool> valid_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Branch target buffer: direct-mapped table of 2-bit saturating
 * counters (1K entries, as in §4.1).
 */
class BranchTargetBuffer
{
  public:
    explicit BranchTargetBuffer(std::size_t entries = 1024);

    /** @return the taken/not-taken prediction for @p addr. */
    bool predictTaken(std::int64_t addr) const;

    /** Train with the actual outcome. */
    void update(std::int64_t addr, bool taken);

    void reset();

  private:
    std::size_t indexOf(std::int64_t addr) const;

    std::vector<std::uint8_t> counters_;
};

} // namespace predilp

#endif // PREDILP_SIM_CACHE_HH
