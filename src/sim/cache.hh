/**
 * @file
 * Cache and branch-predictor models. The paper's fixed memory system
 * (§4.1: 64K direct-mapped caches, a 1K-entry tagless 2-bit BTB) is
 * the default configuration of two generalized models:
 *
 *  - SetAssocCache: tag-only set-associative cache with true-LRU
 *    replacement. Associativity 1 degenerates to exactly the old
 *    direct-mapped model (same indexing, same hit/miss/conflict
 *    classification), which is what keeps the paper figures
 *    bit-identical under the default SimConfig.
 *  - BranchTargetBuffer: with associativity 1 it is the paper's
 *    tagless direct-mapped counter table (aliasing allowed, owner
 *    tags tracked for stats only); with higher associativity it
 *    becomes a tagged, LRU-replaced table that predicts not-taken on
 *    a tag miss. The per-entry predictor is selectable (2-bit
 *    saturating, 1-bit last-outcome, or static) — the sweep axes of
 *    ROADMAP item 3.
 */

#ifndef PREDILP_SIM_CACHE_HH
#define PREDILP_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace predilp
{

/** Branch-prediction policy of the BTB entries. */
enum class BranchPredictor : std::uint8_t
{
    TwoBit,         ///< 2-bit saturating counter (paper §4.1).
    OneBit,         ///< last outcome.
    StaticTaken,    ///< always predict taken; table unused.
    StaticNotTaken, ///< always predict not-taken; table unused.
};

/** Stable config/JSON name: "twobit", "onebit", "taken", "nottaken". */
const char *predictorName(BranchPredictor predictor);

/**
 * Inverse of predictorName(); throws FatalError on an unknown name.
 */
BranchPredictor predictorFromName(const std::string &name);

/** A tag-only set-associative cache model; see file comment. */
class SetAssocCache
{
  public:
    /**
     * @param sizeBytes total capacity.
     * @param lineBytes block size (power of two).
     * @param ways associativity; must divide the line count.
     */
    SetAssocCache(std::int64_t sizeBytes, std::int64_t lineBytes,
                  int ways = 1);

    /**
     * Read access: @return true on hit. Misses allocate the line
     * (filling an invalid way first, else evicting the LRU way).
     */
    bool access(std::int64_t addr);

    /**
     * Write access with no-write-allocate semantics: @return true on
     * hit (line updated); misses do not allocate.
     */
    bool writeAccess(std::int64_t addr);

    /** @return true if the line holding @p addr is present. */
    bool present(std::int64_t addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Misses whose set still had an invalid way (cold/compulsory). */
    std::uint64_t coldMisses() const { return coldMisses_; }

    /**
     * Misses in a fully valid set — an eviction (or, for writes, a
     * bypass) of live lines. With one way these are the old
     * direct-mapped conflict misses.
     */
    std::uint64_t conflictMisses() const { return conflictMisses_; }

    /** Empty the cache and zero statistics. */
    void reset();

  private:
    /** Way index of @p addr within its set, or -1 when absent. */
    int findWay(std::size_t set, std::int64_t tag) const;
    std::size_t setOf(std::int64_t addr) const;
    std::int64_t tagOf(std::int64_t addr) const;
    void touch(std::size_t set, int way);
    void classifyMiss(std::size_t set);

    std::int64_t lineBytes_;
    std::size_t ways_;
    std::size_t numSets_;
    std::vector<std::int64_t> tags_;    ///< set-major, ways per set.
    std::vector<bool> valid_;
    std::vector<std::uint64_t> lastUse_; ///< LRU ticks, set-major.
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coldMisses_ = 0;
    std::uint64_t conflictMisses_ = 0;
};

/**
 * Deprecated alias for the 1-way default; new code should name
 * SetAssocCache (and its associativity) explicitly.
 */
using DirectMappedCache = SetAssocCache;

/** Branch target buffer; see file comment. */
class BranchTargetBuffer
{
  public:
    /**
     * @param entries total predictor entries.
     * @param ways associativity; 1 = the paper's tagless table.
     * @param predictor per-entry prediction policy.
     */
    explicit BranchTargetBuffer(
        std::size_t entries = 1024, int ways = 1,
        BranchPredictor predictor = BranchPredictor::TwoBit);

    /** @return the taken/not-taken prediction for @p addr. */
    bool predictTaken(std::int64_t addr) const;

    /** Train with the actual outcome. */
    void update(std::int64_t addr, bool taken);

    /** Branches trained (one per executed conditional branch). */
    std::uint64_t lookups() const { return lookups_; }

    /**
     * With one way: trainings whose entry last belonged to a
     * different branch address — counter aliasing in the tagless
     * table, tracked with a stats-only tag array (predictions are
     * unaffected, as in §4.1). With more ways: real LRU evictions of
     * valid entries.
     */
    std::uint64_t replacements() const { return replacements_; }

    void reset();

  private:
    std::size_t setOf(std::int64_t addr) const;
    bool counterPredictsTaken(std::uint8_t counter) const;
    std::uint8_t initialCounter() const;
    void train(std::uint8_t &counter, bool taken) const;

    BranchPredictor predictor_;
    std::size_t ways_;
    std::size_t numSets_;
    std::vector<std::uint8_t> counters_;
    std::vector<std::int64_t> owners_; ///< stats-only when 1-way.
    std::vector<bool> ownerValid_;
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace predilp

#endif // PREDILP_SIM_CACHE_HH
