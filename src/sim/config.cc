#include "sim/config.hh"

#include "store/sha256.hh"
#include "support/diag.hh"

namespace predilp
{

namespace
{

/** Throw FatalError when @p json has a member not in @p allowed. */
void
rejectUnknownKeys(const JsonValue &json,
                  std::initializer_list<const char *> allowed,
                  const char *what)
{
    for (const auto &[key, value] : json.members()) {
        bool known = false;
        for (const char *name : allowed) {
            if (key == name) {
                known = true;
                break;
            }
        }
        if (!known) {
            throw FatalError(std::string("unknown ") + what +
                             " key '" + key + "'");
        }
    }
}

/** Read an optional integer member into @p target, checked > 0. */
template <typename T>
void
readPositive(const JsonValue &json, const char *key, T &target)
{
    if (const JsonValue *v = json.find(key)) {
        std::int64_t raw = v->asInt();
        if (raw <= 0) {
            throw FatalError(std::string("config key '") + key +
                             "' must be positive");
        }
        target = static_cast<T>(raw);
    }
}

} // namespace

JsonValue
machineToJson(const MachineConfig &machine)
{
    return JsonValue::makeObject({
        {"issue_width", JsonValue::makeInt(machine.issueWidth)},
        {"branches_per_cycle",
         JsonValue::makeInt(machine.branchesPerCycle)},
        {"mispredict_penalty",
         JsonValue::makeInt(machine.mispredictPenalty)},
        {"lat_int_alu", JsonValue::makeInt(machine.latIntAlu)},
        {"lat_int_mul", JsonValue::makeInt(machine.latIntMul)},
        {"lat_int_div", JsonValue::makeInt(machine.latIntDiv)},
        {"lat_fp_alu", JsonValue::makeInt(machine.latFpAlu)},
        {"lat_fp_div", JsonValue::makeInt(machine.latFpDiv)},
        {"lat_load", JsonValue::makeInt(machine.latLoad)},
        {"lat_store", JsonValue::makeInt(machine.latStore)},
        {"lat_branch", JsonValue::makeInt(machine.latBranch)},
        {"lat_pred_define",
         JsonValue::makeInt(machine.latPredDefine)},
    });
}

MachineConfig
machineFromJson(const JsonValue &json)
{
    rejectUnknownKeys(json,
                      {"issue_width", "branches_per_cycle",
                       "mispredict_penalty", "lat_int_alu",
                       "lat_int_mul", "lat_int_div", "lat_fp_alu",
                       "lat_fp_div", "lat_load", "lat_store",
                       "lat_branch", "lat_pred_define"},
                      "machine");
    MachineConfig machine;
    readPositive(json, "issue_width", machine.issueWidth);
    readPositive(json, "branches_per_cycle",
                 machine.branchesPerCycle);
    if (const JsonValue *v = json.find("mispredict_penalty"))
        machine.mispredictPenalty = static_cast<int>(v->asInt());
    readPositive(json, "lat_int_alu", machine.latIntAlu);
    readPositive(json, "lat_int_mul", machine.latIntMul);
    readPositive(json, "lat_int_div", machine.latIntDiv);
    readPositive(json, "lat_fp_alu", machine.latFpAlu);
    readPositive(json, "lat_fp_div", machine.latFpDiv);
    readPositive(json, "lat_load", machine.latLoad);
    readPositive(json, "lat_store", machine.latStore);
    readPositive(json, "lat_branch", machine.latBranch);
    readPositive(json, "lat_pred_define", machine.latPredDefine);
    return machine;
}

SimConfig
SimConfig::paperMachine()
{
    return SimConfig{};
}

JsonValue
SimConfig::toJson() const
{
    return JsonValue::makeObject({
        {"machine", machineToJson(machine)},
        {"perfect_caches", JsonValue::makeBool(perfectCaches)},
        {"cache_size_bytes", JsonValue::makeInt(cacheSizeBytes)},
        {"cache_line_bytes", JsonValue::makeInt(cacheLineBytes)},
        {"cache_assoc", JsonValue::makeInt(cacheAssociativity)},
        {"cache_miss_penalty",
         JsonValue::makeInt(cacheMissPenalty)},
        {"btb_entries",
         JsonValue::makeInt(static_cast<std::int64_t>(btbEntries))},
        {"btb_assoc", JsonValue::makeInt(btbAssociativity)},
        {"predictor",
         JsonValue::makeString(predictorName(predictor))},
        {"max_dyn_instrs",
         JsonValue::makeInt(static_cast<std::int64_t>(maxDynInstrs))},
    });
}

SimConfig
SimConfig::fromJson(const JsonValue &json)
{
    rejectUnknownKeys(json,
                      {"machine", "perfect_caches",
                       "cache_size_bytes", "cache_line_bytes",
                       "cache_assoc", "cache_miss_penalty",
                       "btb_entries", "btb_assoc", "predictor",
                       "max_dyn_instrs"},
                      "config");
    SimConfig config;
    if (const JsonValue *v = json.find("machine"))
        config.machine = machineFromJson(*v);
    if (const JsonValue *v = json.find("perfect_caches"))
        config.perfectCaches = v->asBool();
    readPositive(json, "cache_size_bytes", config.cacheSizeBytes);
    readPositive(json, "cache_line_bytes", config.cacheLineBytes);
    readPositive(json, "cache_assoc", config.cacheAssociativity);
    if (const JsonValue *v = json.find("cache_miss_penalty"))
        config.cacheMissPenalty = static_cast<int>(v->asInt());
    readPositive(json, "btb_entries", config.btbEntries);
    readPositive(json, "btb_assoc", config.btbAssociativity);
    if (const JsonValue *v = json.find("predictor"))
        config.predictor = predictorFromName(v->asString());
    readPositive(json, "max_dyn_instrs", config.maxDynInstrs);
    return config;
}

std::string
SimConfig::configDigest() const
{
    // The domain tag versions the digest independently of the JSON
    // schema: bump it (and the "v1:" prefix) together whenever the
    // canonical form changes meaning.
    std::string canonical =
        "predilp-simconfig-v1\n" + toJson().dump();
    return "v1:" + sha256Hex(canonical).substr(0, 32);
}

bool
SimConfig::operator==(const SimConfig &other) const
{
    const MachineConfig &a = machine;
    const MachineConfig &b = other.machine;
    return a.issueWidth == b.issueWidth &&
           a.branchesPerCycle == b.branchesPerCycle &&
           a.mispredictPenalty == b.mispredictPenalty &&
           a.latIntAlu == b.latIntAlu &&
           a.latIntMul == b.latIntMul &&
           a.latIntDiv == b.latIntDiv && a.latFpAlu == b.latFpAlu &&
           a.latFpDiv == b.latFpDiv && a.latLoad == b.latLoad &&
           a.latStore == b.latStore && a.latBranch == b.latBranch &&
           a.latPredDefine == b.latPredDefine &&
           perfectCaches == other.perfectCaches &&
           cacheSizeBytes == other.cacheSizeBytes &&
           cacheLineBytes == other.cacheLineBytes &&
           cacheAssociativity == other.cacheAssociativity &&
           cacheMissPenalty == other.cacheMissPenalty &&
           btbEntries == other.btbEntries &&
           btbAssociativity == other.btbAssociativity &&
           predictor == other.predictor &&
           maxDynInstrs == other.maxDynInstrs;
}

} // namespace predilp
