#include "analysis/liveness.hh"

namespace predilp
{

namespace
{

/**
 * Apply the backward dataflow effect of one instruction to @p live:
 * first union in what is live at any side-exit target (control may
 * leave the block here — essential for superblocks and hyperblocks,
 * whose branches sit in the middle of the instruction list), then
 * remove killed definitions, then add uses.
 */
void
transfer(const Instruction &instr, const Function &fn,
         const RegIndexer &indexer, BitVector &live,
         const std::vector<BitVector> &liveInSets,
         std::vector<Reg> &scratch)
{
    if ((instr.isCondBranch() || instr.isJump()) &&
        instr.target() != invalidBlock) {
        live.unionWith(
            liveInSets[static_cast<std::size_t>(instr.target())]);
    }

    scratch.clear();
    collectDefs(instr, fn, scratch);
    if (defIsKilling(instr)) {
        for (Reg reg : scratch)
            live.reset(indexer.index(reg));
    } else {
        // Non-killing def: the old value may flow through, so the
        // defined registers stay live (merge semantics read them).
        for (Reg reg : scratch)
            live.set(indexer.index(reg));
    }
    scratch.clear();
    collectUses(instr, scratch);
    for (Reg reg : scratch)
        live.set(indexer.index(reg));
}

} // namespace

Liveness::Liveness(const Function &fn, const CfgInfo &cfg)
    : indexer_(fn)
{
    auto n = fn.numBlockIds();
    liveIn_.assign(n, BitVector(indexer_.size()));
    liveOut_.assign(n, BitVector(indexer_.size()));

    const auto &rpo = cfg.reversePostorder();
    std::vector<Reg> scratch;

    bool changed = true;
    while (changed) {
        changed = false;
        // Postorder for fast convergence of the backward problem.
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            BlockId id = *it;
            auto idx = static_cast<std::size_t>(id);

            // Seed with the fallthrough path; branch targets are
            // folded in as the walk passes each branch.
            BitVector in(indexer_.size());
            const BasicBlock *bb = fn.block(id);
            if (bb->fallthrough() != invalidBlock) {
                in.unionWith(liveIn_[static_cast<std::size_t>(
                    bb->fallthrough())]);
            }
            const auto &instrs = bb->instrs();
            for (auto rit = instrs.rbegin(); rit != instrs.rend();
                 ++rit) {
                transfer(*rit, fn, indexer_, in, liveIn_, scratch);
            }

            if (in != liveIn_[idx]) {
                liveIn_[idx] = std::move(in);
                changed = true;
            }
        }
    }

    // Block-level live-out: union over successor live-ins. Used by
    // clients that reason about "after the whole block".
    for (BlockId id : fn.layout()) {
        auto idx = static_cast<std::size_t>(id);
        for (BlockId succ : cfg.succs(id)) {
            liveOut_[idx].unionWith(
                liveIn_[static_cast<std::size_t>(succ)]);
        }
    }
}

void
Liveness::backwardStep(const Instruction &instr, const Function &fn,
                       BitVector &live) const
{
    std::vector<Reg> scratch;
    transfer(instr, fn, indexer_, live, liveIn_, scratch);
}

BitVector
Liveness::liveBefore(const Function &fn, BlockId id,
                     std::size_t pos) const
{
    const BasicBlock *bb = fn.block(id);
    BitVector live(indexer_.size());
    if (bb->fallthrough() != invalidBlock) {
        live.unionWith(liveIn_[static_cast<std::size_t>(
            bb->fallthrough())]);
    }
    const auto &instrs = bb->instrs();
    std::vector<Reg> scratch;
    for (std::size_t i = instrs.size(); i > pos; --i)
        transfer(instrs[i - 1], fn, indexer_, live, liveIn_,
                 scratch);
    return live;
}

} // namespace predilp
