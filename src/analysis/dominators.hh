/**
 * @file
 * Dominator tree computation (Cooper/Harvey/Kennedy iterative
 * algorithm over the reverse postorder). Used by loop detection,
 * hyperblock region legality, and superblock trace growing.
 */

#ifndef PREDILP_ANALYSIS_DOMINATORS_HH
#define PREDILP_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "analysis/cfg.hh"

namespace predilp
{

/** Immediate-dominator tree for the reachable blocks of a function. */
class DominatorTree
{
  public:
    /** Build from an up-to-date @p cfg of @p fn. */
    DominatorTree(const Function &fn, const CfgInfo &cfg);

    /**
     * @return the immediate dominator of @p id, or invalidBlock for
     * the entry and for unreachable blocks.
     */
    BlockId idom(BlockId id) const
    {
        return idom_[static_cast<std::size_t>(id)];
    }

    /** @return true when @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    const CfgInfo &cfg_;
    std::vector<BlockId> idom_;
};

} // namespace predilp

#endif // PREDILP_ANALYSIS_DOMINATORS_HH
