#include "analysis/cfg.hh"

#include <algorithm>

namespace predilp
{

CfgInfo::CfgInfo(const Function &fn)
{
    auto n = fn.numBlockIds();
    preds_.resize(n);
    succs_.resize(n);
    rpoIndex_.assign(n, -1);

    for (BlockId id : fn.layout()) {
        succs_[static_cast<std::size_t>(id)] =
            fn.block(id)->successors();
    }
    for (BlockId id : fn.layout()) {
        for (BlockId succ : succs_[static_cast<std::size_t>(id)])
            preds_[static_cast<std::size_t>(succ)].push_back(id);
    }
    // Dedupe multi-edges in predecessor lists.
    for (auto &p : preds_) {
        std::sort(p.begin(), p.end());
        p.erase(std::unique(p.begin(), p.end()), p.end());
    }

    // Iterative postorder DFS from the entry.
    if (fn.layout().empty())
        return;
    std::vector<std::uint8_t> state(n, 0);
    std::vector<std::pair<BlockId, std::size_t>> stack;
    std::vector<BlockId> postorder;
    BlockId entry = fn.layout().front();
    stack.emplace_back(entry, 0);
    state[static_cast<std::size_t>(entry)] = 1;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        const auto &ss = succs_[static_cast<std::size_t>(id)];
        if (next < ss.size()) {
            BlockId succ = ss[next++];
            if (state[static_cast<std::size_t>(succ)] == 0) {
                state[static_cast<std::size_t>(succ)] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            postorder.push_back(id);
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[static_cast<std::size_t>(rpo_[i])] =
            static_cast<int>(i);
}

void
collectUses(const Instruction &instr, std::vector<Reg> &out)
{
    for (const auto &src : instr.srcs()) {
        if (src.isReg())
            out.push_back(src.reg());
    }
    if (instr.guarded())
        out.push_back(instr.guard());
    // OR/AND type predicate defines also *read* their destination
    // (they may leave it unchanged, i.e. the old value flows through).
    for (const auto &pd : instr.predDests()) {
        if (pd.type != PredType::U && pd.type != PredType::UBar)
            out.push_back(pd.reg);
    }
}

void
collectDefs(const Instruction &instr, const Function &fn,
            std::vector<Reg> &out)
{
    if (instr.dest().valid())
        out.push_back(instr.dest());
    for (const auto &pd : instr.predDests())
        out.push_back(pd.reg);
    if (instr.isPredAll()) {
        for (int i = 0; i < fn.numPredRegs(); ++i)
            out.push_back(predReg(i));
    }
}

bool
defIsKilling(const Instruction &instr)
{
    if (instr.guarded() && !instr.isPredDefine())
        return false;
    if (instr.info().isCondMove)
        return false;
    if (instr.isPredDefine()) {
        // U/UBar destinations always write (0 when Pin is false), so
        // they kill even when the define is guarded. OR/AND types may
        // leave the register unchanged, so they do not kill.
        for (const auto &pd : instr.predDests()) {
            if (pd.type != PredType::U && pd.type != PredType::UBar)
                return false;
        }
    }
    return true;
}

} // namespace predilp
