/**
 * @file
 * Backward liveness analysis over all three register classes. Used
 * by speculative code motion legality (superblock formation and
 * scheduling), predicate promotion, and dead code elimination.
 */

#ifndef PREDILP_ANALYSIS_LIVENESS_HH
#define PREDILP_ANALYSIS_LIVENESS_HH

#include "analysis/cfg.hh"
#include "support/bit_vector.hh"

namespace predilp
{

/**
 * Per-block live-in/live-out register sets. Guarded definitions and
 * conditional moves are treated as non-killing (the old value may
 * survive), which keeps the analysis sound on predicated code.
 */
class Liveness
{
  public:
    /** Compute for the current state of @p fn. */
    Liveness(const Function &fn, const CfgInfo &cfg);

    const RegIndexer &indexer() const { return indexer_; }

    const BitVector &liveIn(BlockId id) const
    {
        return liveIn_[static_cast<std::size_t>(id)];
    }
    const BitVector &liveOut(BlockId id) const
    {
        return liveOut_[static_cast<std::size_t>(id)];
    }

    /** @return true when @p reg is live on entry to @p id. */
    bool
    liveAtEntry(Reg reg, BlockId id) const
    {
        return liveIn(id).test(indexer_.index(reg));
    }

    /**
     * @return the set of registers live immediately *before*
     * instruction @p pos of block @p id (backward scan folding in
     * each side exit's live-in as it passes it).
     */
    BitVector liveBefore(const Function &fn, BlockId id,
                         std::size_t pos) const;

    /**
     * Apply the backward dataflow effect of one instruction to
     * @p live, including the union with the live-in of its branch
     * target (side exits). Exposed so dead-code elimination can walk
     * blocks with the exact same semantics as the analysis.
     */
    void backwardStep(const Instruction &instr, const Function &fn,
                      BitVector &live) const;

  private:
    RegIndexer indexer_;
    std::vector<BitVector> liveIn_;
    std::vector<BitVector> liveOut_;
};

} // namespace predilp

#endif // PREDILP_ANALYSIS_LIVENESS_HH
