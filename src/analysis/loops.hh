/**
 * @file
 * Natural-loop detection from dominator-identified back edges.
 * Hyperblock formation operates on innermost loop bodies first, as in
 * the hyperblock paper.
 */

#ifndef PREDILP_ANALYSIS_LOOPS_HH
#define PREDILP_ANALYSIS_LOOPS_HH

#include <vector>

#include "analysis/dominators.hh"

namespace predilp
{

/** One natural loop: header plus body (header included). */
struct Loop
{
    BlockId header = invalidBlock;
    std::vector<BlockId> body;   ///< includes the header.
    int depth = 1;               ///< nesting depth, 1 = outermost.

    /** @return true when @p id is in the loop body. */
    bool contains(BlockId id) const;
};

/** All natural loops of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Function &fn, const CfgInfo &cfg,
             const DominatorTree &dom);

    /** Loops sorted innermost-first (deepest nesting first). */
    const std::vector<Loop> &loops() const { return loops_; }

    /**
     * Nesting depth of @p id; 0 when not in any loop. Ids minted
     * after this analysis ran (e.g. blocks split mid-transform) are
     * in no loop it knows about, so they report depth 0 instead of
     * indexing past the table.
     */
    int depth(BlockId id) const
    {
        auto idx = static_cast<std::size_t>(id);
        return idx < depth_.size() ? depth_[idx] : 0;
    }

  private:
    std::vector<Loop> loops_;
    std::vector<int> depth_;
};

} // namespace predilp

#endif // PREDILP_ANALYSIS_LOOPS_HH
