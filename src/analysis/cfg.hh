/**
 * @file
 * CFG helper queries: predecessors, reverse postorder, and register
 * use/def collection. These are recomputed on demand; passes that
 * mutate the CFG simply rebuild them.
 */

#ifndef PREDILP_ANALYSIS_CFG_HH
#define PREDILP_ANALYSIS_CFG_HH

#include <vector>

#include "ir/function.hh"

namespace predilp
{

/**
 * Predecessor lists and traversal orders for one function, computed
 * from the current layout. Invalidated by any CFG mutation.
 */
class CfgInfo
{
  public:
    /** Build for the current state of @p fn. */
    explicit CfgInfo(const Function &fn);

    /** @return predecessors of @p id (blocks with an edge to it). */
    const std::vector<BlockId> &preds(BlockId id) const
    {
        return preds_[static_cast<std::size_t>(id)];
    }

    /** @return successors of @p id (cached from the block). */
    const std::vector<BlockId> &succs(BlockId id) const
    {
        return succs_[static_cast<std::size_t>(id)];
    }

    /** Reverse postorder over reachable blocks, entry first. */
    const std::vector<BlockId> &reversePostorder() const
    {
        return rpo_;
    }

    /** Position of a block in the reverse postorder; -1 if absent. */
    int rpoIndex(BlockId id) const
    {
        return rpoIndex_[static_cast<std::size_t>(id)];
    }

    /** @return true when the block is reachable from the entry. */
    bool reachable(BlockId id) const { return rpoIndex(id) >= 0; }

  private:
    std::vector<std::vector<BlockId>> preds_;
    std::vector<std::vector<BlockId>> succs_;
    std::vector<BlockId> rpo_;
    std::vector<int> rpoIndex_;
};

/**
 * Maps the three register classes of a function onto one dense index
 * space, for bitvector-based dataflow.
 */
class RegIndexer
{
  public:
    explicit RegIndexer(const Function &fn)
        : numInt_(fn.numIntRegs()), numFloat_(fn.numFloatRegs()),
          numPred_(fn.numPredRegs())
    {}

    /** Total number of registers across all classes. */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(numInt_ + numFloat_ +
                                        numPred_);
    }

    /** Dense index of @p reg. */
    std::size_t
    index(Reg reg) const
    {
        switch (reg.cls()) {
          case RegClass::Int:
            return static_cast<std::size_t>(reg.idx());
          case RegClass::Float:
            return static_cast<std::size_t>(numInt_ + reg.idx());
          case RegClass::Pred:
          default:
            return static_cast<std::size_t>(numInt_ + numFloat_ +
                                            reg.idx());
        }
    }

    /** Inverse of index(). */
    Reg
    reg(std::size_t idx) const
    {
        auto i = static_cast<int>(idx);
        if (i < numInt_)
            return intReg(i);
        if (i < numInt_ + numFloat_)
            return floatReg(i - numInt_);
        return predReg(i - numInt_ - numFloat_);
    }

    int numInt() const { return numInt_; }
    int numFloat() const { return numFloat_; }
    int numPred() const { return numPred_; }

  private:
    int numInt_;
    int numFloat_;
    int numPred_;
};

/**
 * Append every register read by @p instr to @p out: source operands,
 * the guard predicate, and the Pin of predicate defines.
 * PredClear/PredSet read nothing.
 */
void collectUses(const Instruction &instr, std::vector<Reg> &out);

/**
 * Append every register written by @p instr to @p out. For
 * PredClear/PredSet this appends every predicate register of @p fn
 * (they rewrite the whole predicate file).
 *
 * Note: a guarded instruction only *conditionally* writes its dest;
 * callers doing liveness must treat guarded defs as non-killing.
 */
void collectDefs(const Instruction &instr, const Function &fn,
                 std::vector<Reg> &out);

/**
 * @return true when the write to @p instr's destinations is
 * unconditional, i.e. the def kills the previous value on every
 * execution. False for guarded instructions, conditional moves, and
 * OR/AND-type predicate defines (which may leave the register
 * unchanged).
 */
bool defIsKilling(const Instruction &instr);

} // namespace predilp

#endif // PREDILP_ANALYSIS_CFG_HH
