/**
 * @file
 * Execution profiles. The paper's compilation techniques (superblock
 * trace selection, hyperblock block selection) are profile driven;
 * the emulator fills these structures during a training run.
 */

#ifndef PREDILP_ANALYSIS_PROFILE_HH
#define PREDILP_ANALYSIS_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace predilp
{

/** Profile of one function. */
class FunctionProfile
{
  public:
    FunctionProfile() = default;

    /** Size the tables for @p fn. */
    explicit FunctionProfile(const Function &fn)
        : blockCounts_(fn.numBlockIds(), 0),
          takenCounts_(static_cast<std::size_t>(fn.instrIdBound()), 0)
    {}

    /** Times block @p id was entered. */
    std::uint64_t
    blockCount(BlockId id) const
    {
        auto i = static_cast<std::size_t>(id);
        return i < blockCounts_.size() ? blockCounts_[i] : 0;
    }

    /** Times the control transfer with instruction id @p id fired. */
    std::uint64_t
    takenCount(int id) const
    {
        auto i = static_cast<std::size_t>(id);
        return i < takenCounts_.size() ? takenCounts_[i] : 0;
    }

    void
    addBlockEntry(BlockId id)
    {
        blockCounts_[static_cast<std::size_t>(id)] += 1;
    }

    void
    addTaken(int instrId)
    {
        takenCounts_[static_cast<std::size_t>(instrId)] += 1;
    }

    /**
     * Probability that branch @p instrId is taken given its block
     * executed, approximated as taken / blockCount. For blocks with
     * earlier side exits this slightly underestimates, which only
     * makes trace growing more conservative.
     */
    double takenProbability(const Function &fn, BlockId bb,
                            int instrId) const;

    /** Copy counts onto the blocks' weight fields for printing. */
    void annotate(Function &fn) const;

  private:
    std::vector<std::uint64_t> blockCounts_;
    std::vector<std::uint64_t> takenCounts_;
};

/** Profiles for every function of a program, keyed by name. */
class ProgramProfile
{
  public:
    /** Size tables for every function of @p prog. */
    explicit ProgramProfile(const Program &prog);

    ProgramProfile() = default;

    FunctionProfile &forFunction(const std::string &name)
    {
        return profiles_[name];
    }
    const FunctionProfile *find(const std::string &name) const;

    /** Annotate all functions of @p prog with block weights. */
    void annotate(Program &prog) const;

  private:
    std::map<std::string, FunctionProfile> profiles_;
};

} // namespace predilp

#endif // PREDILP_ANALYSIS_PROFILE_HH
