#include "analysis/dominators.hh"

#include "support/logging.hh"

namespace predilp
{

DominatorTree::DominatorTree(const Function &fn, const CfgInfo &cfg)
    : cfg_(cfg)
{
    idom_.assign(fn.numBlockIds(), invalidBlock);
    const auto &rpo = cfg.reversePostorder();
    if (rpo.empty())
        return;

    BlockId entry = rpo.front();
    idom_[static_cast<std::size_t>(entry)] = entry;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = idom_[static_cast<std::size_t>(a)];
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = idom_[static_cast<std::size_t>(b)];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); ++i) {
            BlockId b = rpo[i];
            BlockId newIdom = invalidBlock;
            for (BlockId pred : cfg.preds(b)) {
                if (!cfg.reachable(pred))
                    continue;
                if (idom_[static_cast<std::size_t>(pred)] ==
                    invalidBlock) {
                    continue;
                }
                newIdom = newIdom == invalidBlock
                              ? pred
                              : intersect(pred, newIdom);
            }
            if (newIdom != invalidBlock &&
                idom_[static_cast<std::size_t>(b)] != newIdom) {
                idom_[static_cast<std::size_t>(b)] = newIdom;
                changed = true;
            }
        }
    }
    // The entry's idom is conventionally itself inside the algorithm;
    // expose it as invalid ("no immediate dominator").
    idom_[static_cast<std::size_t>(entry)] = invalidBlock;
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!cfg_.reachable(a) || !cfg_.reachable(b))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        BlockId up = idom_[static_cast<std::size_t>(cur)];
        if (up == invalidBlock)
            return false;
        cur = up;
    }
}

} // namespace predilp
