#include "analysis/loops.hh"

#include <algorithm>
#include <map>
#include <set>

namespace predilp
{

bool
Loop::contains(BlockId id) const
{
    return std::find(body.begin(), body.end(), id) != body.end();
}

LoopInfo::LoopInfo(const Function &fn, const CfgInfo &cfg,
                   const DominatorTree &dom)
{
    depth_.assign(fn.numBlockIds(), 0);

    // Collect back edges (tail -> header where header dominates tail)
    // and merge bodies per header.
    std::map<BlockId, std::set<BlockId>> bodies;
    for (BlockId id : cfg.reversePostorder()) {
        for (BlockId succ : cfg.succs(id)) {
            if (dom.dominates(succ, id)) {
                // Natural loop of back edge id -> succ: all blocks
                // that reach `id` without passing through `succ`.
                auto &body = bodies[succ];
                body.insert(succ);
                std::vector<BlockId> work;
                if (body.insert(id).second)
                    work.push_back(id);
                while (!work.empty()) {
                    BlockId cur = work.back();
                    work.pop_back();
                    if (cur == succ)
                        continue;
                    for (BlockId pred : cfg.preds(cur)) {
                        if (!cfg.reachable(pred))
                            continue;
                        if (body.insert(pred).second)
                            work.push_back(pred);
                    }
                }
            }
        }
    }

    for (auto &[header, body] : bodies) {
        Loop loop;
        loop.header = header;
        loop.body.assign(body.begin(), body.end());
        loops_.push_back(std::move(loop));
    }

    // Depth: number of loop bodies containing the block. A loop's
    // depth is its header's depth.
    for (const auto &loop : loops_) {
        for (BlockId id : loop.body)
            depth_[static_cast<std::size_t>(id)] += 1;
    }
    for (auto &loop : loops_)
        loop.depth = depth_[static_cast<std::size_t>(loop.header)];

    // Innermost (deepest) first; tie-break on smaller body.
    std::sort(loops_.begin(), loops_.end(),
              [](const Loop &a, const Loop &b) {
                  if (a.depth != b.depth)
                      return a.depth > b.depth;
                  return a.body.size() < b.body.size();
              });
}

} // namespace predilp
