#include "analysis/profile.hh"

namespace predilp
{

double
FunctionProfile::takenProbability(const Function &fn, BlockId bb,
                                  int instrId) const
{
    (void)fn;
    std::uint64_t entries = blockCount(bb);
    if (entries == 0)
        return 0.0;
    double p = static_cast<double>(takenCount(instrId)) /
               static_cast<double>(entries);
    return p > 1.0 ? 1.0 : p;
}

void
FunctionProfile::annotate(Function &fn) const
{
    for (BlockId id : fn.layout())
        fn.block(id)->setWeight(blockCount(id));
}

ProgramProfile::ProgramProfile(const Program &prog)
{
    for (const auto &fn : prog.functions())
        profiles_.emplace(fn->name(), FunctionProfile(*fn));
}

const FunctionProfile *
ProgramProfile::find(const std::string &name) const
{
    auto it = profiles_.find(name);
    return it == profiles_.end() ? nullptr : &it->second;
}

void
ProgramProfile::annotate(Program &prog) const
{
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp = find(fn->name());
        if (fp != nullptr)
            fp->annotate(*fn);
    }
}

} // namespace predilp
