#include "ir/reg.hh"

namespace predilp
{

std::string
Reg::toString() const
{
    if (!valid())
        return "-";
    char prefix = 'r';
    switch (cls_) {
      case RegClass::Int:
        prefix = 'r';
        break;
      case RegClass::Float:
        prefix = 'f';
        break;
      case RegClass::Pred:
        prefix = 'p';
        break;
    }
    return prefix + std::to_string(idx_);
}

} // namespace predilp
