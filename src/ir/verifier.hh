/**
 * @file
 * Structural IR verification. Run after the frontend and after every
 * transformation pass in tests; reports the first violated invariant.
 */

#ifndef PREDILP_IR_VERIFIER_HH
#define PREDILP_IR_VERIFIER_HH

#include <string>

#include "ir/program.hh"

namespace predilp
{

/**
 * Check structural invariants of @p fn:
 *  - branch/jump targets name blocks of this function, present in
 *    the layout;
 *  - every layout block either ends in an unconditional transfer or
 *    has a valid fallthrough (also in the layout);
 *  - operand counts and register classes match each opcode;
 *  - predicate defines have 1-2 distinct predicate destinations;
 *  - OR/AND-type predicate destinations have an unconditional
 *    initialization somewhere in the function (a U-type define or a
 *    pred_clear/pred_set) — their Table-1 semantics read the old
 *    register value, so an unseeded OR/AND chain is undefined;
 *  - guards and predicate sources name predicate registers that are
 *    defined somewhere in the function (flow-insensitive
 *    use-before-def, which also covers uses minted across
 *    hyperblock boundaries);
 *  - register indices are below the function's counters;
 *  - instruction ids are unique within the function.
 *
 * @param prog when non-null, call targets are checked to exist with
 * matching arity.
 * @return an empty string when valid, else a description of the
 * first violation.
 */
std::string verifyFunction(const Function &fn,
                           const Program *prog = nullptr);

/** Verify every function; @return first violation or empty string. */
std::string verifyProgram(const Program &prog);

} // namespace predilp

#endif // PREDILP_IR_VERIFIER_HH
