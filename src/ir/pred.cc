#include "ir/pred.hh"

#include "support/logging.hh"

namespace predilp
{

bool
applyPredType(PredType type, bool pin, bool cmp, bool old)
{
    switch (type) {
      case PredType::U:
        return pin ? cmp : false;
      case PredType::UBar:
        return pin ? !cmp : false;
      case PredType::Or:
        return (pin && cmp) ? true : old;
      case PredType::OrBar:
        return (pin && !cmp) ? true : old;
      case PredType::And:
        return (pin && !cmp) ? false : old;
      case PredType::AndBar:
        return (pin && cmp) ? false : old;
    }
    panic("unknown PredType");
}

std::string
predTypeName(PredType type)
{
    switch (type) {
      case PredType::U:
        return "U";
      case PredType::UBar:
        return "U!";
      case PredType::Or:
        return "OR";
      case PredType::OrBar:
        return "OR!";
      case PredType::And:
        return "AND";
      case PredType::AndBar:
        return "AND!";
    }
    panic("unknown PredType");
}

} // namespace predilp
