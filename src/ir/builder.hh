/**
 * @file
 * IRBuilder: convenience layer for constructing instructions inside a
 * function, used by the ILC frontend, the transformation passes, and
 * the tests.
 */

#ifndef PREDILP_IR_BUILDER_HH
#define PREDILP_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/function.hh"

namespace predilp
{

/**
 * Appends instructions to a current block of a function. All emit
 * methods return a reference to the appended instruction, valid until
 * the next mutation of the block.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Function *fn) : fn_(fn) {}

    Function *function() { return fn_; }

    /** Set the insertion block. */
    void setBlock(BasicBlock *bb) { bb_ = bb; }
    BasicBlock *blockPtr() { return bb_; }

    /** Create a new block and make it current. */
    BasicBlock *startBlock(const std::string &name = "");

    // --- generic emission ---

    /** Append a fully formed instruction (assigns an id). */
    Instruction &append(Instruction instr);

    /** dest = op(a, b) */
    Instruction &emit(Opcode op, Reg dest, Operand a, Operand b);

    /** dest = op(a) */
    Instruction &emit(Opcode op, Reg dest, Operand a);

    /** dest = a (integer move / load-immediate). */
    Instruction &mov(Reg dest, Operand a);

    /** dest = a (float move). */
    Instruction &fmov(Reg dest, Operand a);

    // --- memory ---

    /** dest = load(base + off) with the given load opcode. */
    Instruction &load(Opcode op, Reg dest, Operand base, Operand off);

    /** store(base + off) = value with the given store opcode. */
    Instruction &store(Opcode op, Operand base, Operand off,
                       Operand value);

    // --- control ---

    /** Conditional branch to @p target when op(a, b) holds. */
    Instruction &branch(Opcode op, Operand a, Operand b,
                        BlockId target);

    /** Unconditional jump to @p target. */
    Instruction &jump(BlockId target);

    /** Call @p callee with @p args; dest invalid for void calls. */
    Instruction &call(const std::string &callee, Reg dest,
                      std::vector<Operand> args);

    /** Return, with optional value. */
    Instruction &ret(Operand value = Operand());

    // --- predication ---

    /**
     * Predicate define: pred_<cmp> d1<t1> [, d2<t2>], a, b (guard).
     */
    Instruction &predDefine(Opcode op, PredDest d1, Operand a,
                            Operand b, Reg guard = Reg());
    Instruction &predDefine2(Opcode op, PredDest d1, PredDest d2,
                             Operand a, Operand b, Reg guard = Reg());

    /** pred_clear / pred_set. */
    Instruction &predAll(Opcode op);

    /** cmov/cmov_com: if (cond) dest = src. */
    Instruction &cmov(Opcode op, Reg dest, Operand src, Operand cond);

    /** select: dest = cond ? a : b. */
    Instruction &select(Opcode op, Reg dest, Operand a, Operand b,
                        Operand cond);

    // --- I/O ---

    Instruction &getc(Reg dest);
    Instruction &putc(Operand src);

  private:
    Function *fn_;
    BasicBlock *bb_ = nullptr;
};

} // namespace predilp

#endif // PREDILP_IR_BUILDER_HH
