#include "ir/instr.hh"

#include <sstream>

namespace predilp
{

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op_);
    if (speculative_)
        os << ".s";

    bool first = true;
    auto sep = [&]() {
        os << (first ? " " : ", ");
        first = false;
    };

    if (dest_.valid()) {
        sep();
        os << dest_.toString();
    }
    for (const auto &pd : predDests_) {
        sep();
        os << pd.reg.toString() << "<" << predTypeName(pd.type) << ">";
    }
    for (const auto &src : srcs_) {
        sep();
        os << src.toString();
    }
    if (target_ != invalidBlock) {
        sep();
        os << "B" << target_;
    }
    if (!callee_.empty()) {
        sep();
        os << "@" << callee_;
    }
    if (guard_.valid())
        os << " (" << guard_.toString() << ")";
    return os.str();
}

} // namespace predilp
