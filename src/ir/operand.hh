/**
 * @file
 * Instruction source operands: registers, integer immediates, or
 * floating-point immediates.
 */

#ifndef PREDILP_IR_OPERAND_HH
#define PREDILP_IR_OPERAND_HH

#include <cstdint>
#include <string>

#include "ir/reg.hh"

namespace predilp
{

/**
 * A source operand. Value type. Branch targets and call targets are
 * not operands; they are dedicated instruction fields so that CFG
 * edits never have to rewrite operand lists.
 */
class Operand
{
  public:
    /** Operand kinds. */
    enum class Kind : std::uint8_t { None, Register, Imm, FImm };

    /** Construct the empty operand. */
    Operand() = default;

    /** Construct a register operand. */
    Operand(Reg reg) : kind_(Kind::Register), reg_(reg) {}

    /** Construct an integer immediate operand. */
    static Operand
    imm(std::int64_t value)
    {
        Operand o;
        o.kind_ = Kind::Imm;
        o.imm_ = value;
        return o;
    }

    /** Construct a floating-point immediate operand. */
    static Operand
    fimm(double value)
    {
        Operand o;
        o.kind_ = Kind::FImm;
        o.fimm_ = value;
        return o;
    }

    Kind kind() const { return kind_; }
    bool isReg() const { return kind_ == Kind::Register; }
    bool isImm() const { return kind_ == Kind::Imm; }
    bool isFImm() const { return kind_ == Kind::FImm; }
    bool isNone() const { return kind_ == Kind::None; }

    /** @return the register; only valid when isReg(). */
    Reg reg() const { return reg_; }

    /** @return the integer immediate; only valid when isImm(). */
    std::int64_t immValue() const { return imm_; }

    /** @return the float immediate; only valid when isFImm(). */
    double fimmValue() const { return fimm_; }

    bool
    operator==(const Operand &other) const
    {
        if (kind_ != other.kind_)
            return false;
        switch (kind_) {
          case Kind::None: return true;
          case Kind::Register: return reg_ == other.reg_;
          case Kind::Imm: return imm_ == other.imm_;
          case Kind::FImm: return fimm_ == other.fimm_;
        }
        return false;
    }

    bool operator!=(const Operand &other) const
    {
        return !(*this == other);
    }

    /** Render for the IR printer. */
    std::string toString() const;

  private:
    Kind kind_ = Kind::None;
    Reg reg_;
    std::int64_t imm_ = 0;
    double fimm_ = 0.0;
};

} // namespace predilp

#endif // PREDILP_IR_OPERAND_HH
