#include "ir/operand.hh"

#include <sstream>

namespace predilp
{

std::string
Operand::toString() const
{
    switch (kind_) {
      case Kind::None:
        return "<none>";
      case Kind::Register:
        return reg_.toString();
      case Kind::Imm:
        return std::to_string(imm_);
      case Kind::FImm: {
        std::ostringstream os;
        os << fimm_;
        return os.str();
      }
    }
    return "<bad>";
}

} // namespace predilp
