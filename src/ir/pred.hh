/**
 * @file
 * Predicate destination types of the HPL-Playdoh-style predicate
 * define instructions (ISCA'95 §2.1, Table 1): unconditional, OR, and
 * AND types plus their complements.
 */

#ifndef PREDILP_IR_PRED_HH
#define PREDILP_IR_PRED_HH

#include <cstdint>
#include <string>

#include "ir/reg.hh"

namespace predilp
{

/**
 * The six useful predicate define types from Table 1 of the paper.
 * (The full space has 3^4 = 81 types; these are the ones the paper and
 * the Playdoh specification single out.)
 */
enum class PredType : std::uint8_t
{
    U,      ///< unconditional: Pout = Pin ? cmp : 0.
    UBar,   ///< complement unconditional: Pout = Pin ? !cmp : 0.
    Or,     ///< OR type: Pout = (Pin && cmp) ? 1 : unchanged.
    OrBar,  ///< complement OR: Pout = (Pin && !cmp) ? 1 : unchanged.
    And,    ///< AND type: Pout = (Pin && !cmp) ? 0 : unchanged.
    AndBar, ///< complement AND: Pout = (Pin && cmp) ? 0 : unchanged.
};

/**
 * Evaluate one destination of a predicate define instruction per
 * Table 1 of the paper.
 *
 * @param type the predicate type of the destination.
 * @param pin the input (guarding) predicate value.
 * @param cmp the result of the comparison.
 * @param old the previous contents of the destination register.
 * @return the new contents of the destination register.
 */
bool applyPredType(PredType type, bool pin, bool cmp, bool old);

/** @return "U", "U!", "OR", "OR!", "AND", or "AND!". */
std::string predTypeName(PredType type);

/**
 * One destination of a predicate define instruction: the predicate
 * register written and the type controlling how it is written.
 */
struct PredDest
{
    Reg reg;        ///< destination predicate register.
    PredType type = PredType::U; ///< write semantics.
};

} // namespace predilp

#endif // PREDILP_IR_PRED_HH
