/**
 * @file
 * The Instruction class: one operation of the PredILP ISA, carrying
 * the optional guard predicate of the full-predication model and the
 * speculative (non-excepting) flag used by the superblock and partial
 * predication models.
 */

#ifndef PREDILP_IR_INSTR_HH
#define PREDILP_IR_INSTR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hh"
#include "ir/operand.hh"
#include "ir/pred.hh"
#include "ir/reg.hh"

namespace predilp
{

/** Identifier of a basic block within its function. */
using BlockId = int;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = -1;

/**
 * One instruction. Instructions are stored by value inside basic
 * blocks; the id is unique within the function and survives motion
 * between blocks, which lets profiles and schedules refer to
 * instructions stably.
 */
class Instruction
{
  public:
    Instruction() = default;

    /** Construct an instruction with the given opcode. */
    explicit Instruction(Opcode op) : op_(op) {}

    Opcode op() const { return op_; }
    void setOp(Opcode op) { op_ = op; }

    const OpcodeInfo &info() const { return opcodeInfo(op_); }

    /** Unique id within the function (assigned by the function). */
    int id() const { return id_; }
    void setId(int id) { id_ = id; }

    // --- destination ---

    /** @return the destination register, invalid when none. */
    Reg dest() const { return dest_; }
    void setDest(Reg dest) { dest_ = dest; }

    // --- predicate define destinations ---

    /** Destinations of a predicate define (up to two, per Playdoh). */
    const std::vector<PredDest> &predDests() const { return predDests_; }
    std::vector<PredDest> &predDests() { return predDests_; }
    void addPredDest(Reg reg, PredType type)
    {
        predDests_.push_back(PredDest{reg, type});
    }

    // --- sources ---

    const std::vector<Operand> &srcs() const { return srcs_; }
    std::vector<Operand> &srcs() { return srcs_; }
    void addSrc(Operand operand) { srcs_.push_back(operand); }
    const Operand &src(std::size_t i) const { return srcs_[i]; }
    void setSrc(std::size_t i, Operand operand) { srcs_[i] = operand; }

    // --- guard predicate (full predication) ---

    /** @return the guard register; invalid when unguarded. */
    Reg guard() const { return guard_; }
    void setGuard(Reg guard) { guard_ = guard; }
    bool guarded() const { return guard_.valid(); }
    void clearGuard() { guard_ = Reg(); }

    // --- control-transfer fields ---

    /** Branch/jump target block. */
    BlockId target() const { return target_; }
    void setTarget(BlockId target) { target_ = target; }

    /** Callee function name for Call. */
    const std::string &callee() const { return callee_; }
    void setCallee(std::string callee) { callee_ = std::move(callee); }

    // --- speculation ---

    /**
     * @return true when this is the non-excepting (silent) form:
     * faults are suppressed and a garbage-but-defined value is
     * produced instead (paper §3.2, §4.1).
     */
    bool speculative() const { return speculative_; }
    void setSpeculative(bool spec) { speculative_ = spec; }

    // --- schedule attribute ---

    /** Issue cycle within the owning block, -1 when unscheduled. */
    int issueCycle() const { return issueCycle_; }
    void setIssueCycle(int cycle) { issueCycle_ = cycle; }

    // --- classification helpers ---

    bool isCondBranch() const { return info().isCondBranch; }
    bool isJump() const { return op_ == Opcode::Jump; }
    bool isCall() const { return op_ == Opcode::Call; }
    bool isRet() const { return op_ == Opcode::Ret; }
    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMemory() const { return isLoad() || isStore(); }
    bool isPredDefine() const { return info().isPredDefine; }
    bool isPredAll() const { return info().isPredAll; }

    /** @return true for any instruction that may transfer control. */
    bool
    isControlTransfer() const
    {
        return isCondBranch() || isJump() || isRet();
    }

    /**
     * @return true when the instruction writes a register (int,
     * float, or predicate).
     */
    bool
    definesSomething() const
    {
        return dest_.valid() || !predDests_.empty();
    }

    /**
     * @return true when this form of the instruction may raise a
     * program-terminating exception (used by speculation legality).
     */
    bool
    mayTrap() const
    {
        return info().canTrap && !speculative_;
    }

    /** One-line disassembly (no block-name resolution). */
    std::string toString() const;

  private:
    Opcode op_ = Opcode::Nop;
    int id_ = -1;
    Reg dest_;
    std::vector<PredDest> predDests_;
    std::vector<Operand> srcs_;
    Reg guard_;
    BlockId target_ = invalidBlock;
    std::string callee_;
    bool speculative_ = false;
    int issueCycle_ = -1;
};

} // namespace predilp

#endif // PREDILP_IR_INSTR_HH
