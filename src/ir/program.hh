/**
 * @file
 * Program: a set of functions plus a global data segment. The data
 * segment reserves a small region at its base containing the
 * $safe_addr scratch word used by the partial-predication store
 * conversion (paper §3.2, Figure 3).
 */

#ifndef PREDILP_IR_PROGRAM_HH
#define PREDILP_IR_PROGRAM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace predilp
{

/** One global array (or scalar) in the data segment. */
struct Global
{
    std::string name;
    std::int64_t addr = 0;       ///< byte address in data segment.
    std::int64_t sizeBytes = 0;  ///< total size.
    int elemSize = 8;            ///< 1 (byte), or 8 (word / double).
    bool isFloat = false;        ///< element type is double.
    /** Optional initializers, applied element-wise from addr. */
    std::vector<std::int64_t> initInts;
    std::vector<double> initFloats;
};

/**
 * A whole program: functions (with "main" as entry), globals, and the
 * data-segment layout.
 */
class Program
{
  public:
    /**
     * Address of the reserved safe scratch location ($safe_addr).
     * Speculative stores squashed by a false predicate are redirected
     * here; the word is otherwise unused.
     */
    static constexpr std::int64_t safeAddr = 8;

    Program();

    /** Create a function; name must be unique. */
    Function *newFunction(const std::string &name);

    /** @return the function with @p name, or nullptr. */
    Function *function(const std::string &name);
    const Function *function(const std::string &name) const;

    /** @return the program entry function ("main"); panics if none. */
    Function *main();

    /** All functions in creation order. */
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }
    std::vector<std::unique_ptr<Function>> &functions()
    {
        return functions_;
    }

    /**
     * Allocate a global of @p sizeBytes bytes, 8-byte aligned.
     * @return its base address.
     */
    std::int64_t allocGlobal(const std::string &name,
                             std::int64_t sizeBytes, int elemSize,
                             bool isFloat);

    /** @return the global named @p name, or nullptr. */
    Global *global(const std::string &name);

    /** All globals. */
    const std::vector<Global> &globals() const { return globals_; }
    std::vector<Global> &globals() { return globals_; }

    /** Size of the static data segment in bytes. */
    std::int64_t dataSize() const { return dataSize_; }

    /**
     * Deep copy of the whole program: functions (Function::clone),
     * globals, and the data-segment layout. The clone shares no
     * state with the original, and every id/counter is preserved, so
     * continuing a pass pipeline on the clone behaves exactly as it
     * would have on the original (the front-end snapshot-cache
     * contract).
     */
    std::unique_ptr<Program> clone() const;

  private:
    std::vector<std::unique_ptr<Function>> functions_;
    std::map<std::string, std::size_t> functionIndex_;
    std::vector<Global> globals_;
    std::map<std::string, std::size_t> globalIndex_;
    std::int64_t dataSize_ = 64; // first 64 bytes reserved.
};

} // namespace predilp

#endif // PREDILP_IR_PROGRAM_HH
