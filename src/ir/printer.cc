#include "ir/printer.hh"

#include <sstream>

namespace predilp
{

std::string
formatInstr(const Instruction &instr, const PrintOptions &opts)
{
    std::ostringstream os;
    if (opts.showIds)
        os << "#" << instr.id() << " ";
    if (opts.showIssueCycles) {
        if (instr.issueCycle() >= 0)
            os << "[" << instr.issueCycle() << "] ";
        else
            os << "[-] ";
    }
    os << instr.toString();
    return os.str();
}

void
printBlock(std::ostream &os, const Function &fn, const BasicBlock &bb,
           const PrintOptions &opts)
{
    os << bb.name() << ":";
    switch (bb.kind()) {
      case BlockKind::Superblock:
        os << "  ; superblock";
        break;
      case BlockKind::Hyperblock:
        os << "  ; hyperblock";
        break;
      case BlockKind::Plain:
        break;
    }
    if (opts.showWeights)
        os << "  ; weight=" << bb.weight();
    os << "\n";
    for (const auto &instr : bb.instrs())
        os << "    " << formatInstr(instr, opts) << "\n";
    if (bb.fallthrough() != invalidBlock) {
        os << "    ; falls through to "
           << fn.block(bb.fallthrough())->name() << "\n";
    }
}

void
printFunction(std::ostream &os, const Function &fn,
              const PrintOptions &opts)
{
    os << "function " << fn.name() << "(";
    for (std::size_t i = 0; i < fn.params().size(); ++i) {
        if (i > 0)
            os << ", ";
        os << fn.params()[i].toString();
    }
    os << ")\n";
    for (BlockId id : fn.layout())
        printBlock(os, fn, *fn.block(id), opts);
    os << "\n";
}

void
printProgram(std::ostream &os, const Program &prog,
             const PrintOptions &opts)
{
    for (const auto &fn : prog.functions())
        printFunction(os, *fn, opts);
}

} // namespace predilp
