#include "ir/block.hh"

namespace predilp
{

std::vector<BlockId>
BasicBlock::successors() const
{
    std::vector<BlockId> succs;
    for (const auto &instr : instrs_) {
        if ((instr.isCondBranch() || instr.isJump()) &&
            instr.target() != invalidBlock) {
            succs.push_back(instr.target());
            // An unguarded jump terminates the walk: nothing after it
            // executes.
            if (instr.isJump() && !instr.guarded())
                return succs;
        }
        if (instr.isRet() && !instr.guarded())
            return succs;
    }
    if (fallthrough_ != invalidBlock)
        succs.push_back(fallthrough_);
    return succs;
}

bool
BasicBlock::endsInUnconditionalTransfer() const
{
    if (instrs_.empty())
        return false;
    const auto &last = instrs_.back();
    return (last.isJump() || last.isRet()) && !last.guarded();
}

} // namespace predilp
