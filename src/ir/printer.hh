/**
 * @file
 * Human-readable IR dumping, in the style of the paper's assembly
 * listings (Figures 1, 5, 6). Optionally annotates instructions with
 * their scheduled issue cycles.
 */

#ifndef PREDILP_IR_PRINTER_HH
#define PREDILP_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/program.hh"

namespace predilp
{

/** Options controlling IR dumps. */
struct PrintOptions
{
    bool showIssueCycles = false; ///< print "[c]" per instruction.
    bool showWeights = false;     ///< print block profile weights.
    bool showIds = false;         ///< print instruction ids.
};

/** Print one instruction (one line, no trailing newline). */
std::string formatInstr(const Instruction &instr,
                        const PrintOptions &opts = {});

/** Print a block with its label and fallthrough annotation. */
void printBlock(std::ostream &os, const Function &fn,
                const BasicBlock &bb, const PrintOptions &opts = {});

/** Print a whole function in layout order. */
void printFunction(std::ostream &os, const Function &fn,
                   const PrintOptions &opts = {});

/** Print every function of a program. */
void printProgram(std::ostream &os, const Program &prog,
                  const PrintOptions &opts = {});

} // namespace predilp

#endif // PREDILP_IR_PRINTER_HH
