#include "ir/builder.hh"

#include "support/logging.hh"

namespace predilp
{

BasicBlock *
IRBuilder::startBlock(const std::string &name)
{
    bb_ = fn_->newBlock(name);
    return bb_;
}

Instruction &
IRBuilder::append(Instruction instr)
{
    panicIf(bb_ == nullptr, "IRBuilder has no current block");
    if (instr.id() < 0)
        instr.setId(fn_->nextInstrId());
    bb_->instrs().push_back(std::move(instr));
    return bb_->instrs().back();
}

Instruction &
IRBuilder::emit(Opcode op, Reg dest, Operand a, Operand b)
{
    Instruction instr(op);
    instr.setDest(dest);
    instr.addSrc(a);
    instr.addSrc(b);
    return append(std::move(instr));
}

Instruction &
IRBuilder::emit(Opcode op, Reg dest, Operand a)
{
    Instruction instr(op);
    instr.setDest(dest);
    instr.addSrc(a);
    return append(std::move(instr));
}

Instruction &
IRBuilder::mov(Reg dest, Operand a)
{
    return emit(Opcode::Mov, dest, a);
}

Instruction &
IRBuilder::fmov(Reg dest, Operand a)
{
    return emit(Opcode::FMov, dest, a);
}

Instruction &
IRBuilder::load(Opcode op, Reg dest, Operand base, Operand off)
{
    panicIf(!opcodeInfo(op).isLoad, "load() with non-load opcode");
    Instruction instr(op);
    instr.setDest(dest);
    instr.addSrc(base);
    instr.addSrc(off);
    return append(std::move(instr));
}

Instruction &
IRBuilder::store(Opcode op, Operand base, Operand off, Operand value)
{
    panicIf(!opcodeInfo(op).isStore, "store() with non-store opcode");
    Instruction instr(op);
    instr.addSrc(base);
    instr.addSrc(off);
    instr.addSrc(value);
    return append(std::move(instr));
}

Instruction &
IRBuilder::branch(Opcode op, Operand a, Operand b, BlockId target)
{
    panicIf(!opcodeInfo(op).isCondBranch,
            "branch() with non-branch opcode");
    Instruction instr(op);
    instr.addSrc(a);
    instr.addSrc(b);
    instr.setTarget(target);
    return append(std::move(instr));
}

Instruction &
IRBuilder::jump(BlockId target)
{
    Instruction instr(Opcode::Jump);
    instr.setTarget(target);
    return append(std::move(instr));
}

Instruction &
IRBuilder::call(const std::string &callee, Reg dest,
                std::vector<Operand> args)
{
    Instruction instr(Opcode::Call);
    instr.setCallee(callee);
    instr.setDest(dest);
    for (auto &arg : args)
        instr.addSrc(arg);
    return append(std::move(instr));
}

Instruction &
IRBuilder::ret(Operand value)
{
    Instruction instr(Opcode::Ret);
    if (!value.isNone())
        instr.addSrc(value);
    return append(std::move(instr));
}

Instruction &
IRBuilder::predDefine(Opcode op, PredDest d1, Operand a, Operand b,
                      Reg guard)
{
    panicIf(!opcodeInfo(op).isPredDefine,
            "predDefine() with non-define opcode");
    Instruction instr(op);
    instr.addPredDest(d1.reg, d1.type);
    instr.addSrc(a);
    instr.addSrc(b);
    instr.setGuard(guard);
    return append(std::move(instr));
}

Instruction &
IRBuilder::predDefine2(Opcode op, PredDest d1, PredDest d2, Operand a,
                       Operand b, Reg guard)
{
    Instruction &instr = predDefine(op, d1, a, b, guard);
    instr.addPredDest(d2.reg, d2.type);
    return instr;
}

Instruction &
IRBuilder::predAll(Opcode op)
{
    panicIf(!opcodeInfo(op).isPredAll,
            "predAll() with wrong opcode");
    return append(Instruction(op));
}

Instruction &
IRBuilder::cmov(Opcode op, Reg dest, Operand src, Operand cond)
{
    panicIf(!opcodeInfo(op).isCondMove, "cmov() with wrong opcode");
    Instruction instr(op);
    instr.setDest(dest);
    instr.addSrc(src);
    instr.addSrc(cond);
    return append(std::move(instr));
}

Instruction &
IRBuilder::select(Opcode op, Reg dest, Operand a, Operand b,
                  Operand cond)
{
    panicIf(!opcodeInfo(op).isSelect, "select() with wrong opcode");
    Instruction instr(op);
    instr.setDest(dest);
    instr.addSrc(a);
    instr.addSrc(b);
    instr.addSrc(cond);
    return append(std::move(instr));
}

Instruction &
IRBuilder::getc(Reg dest)
{
    Instruction instr(Opcode::GetC);
    instr.setDest(dest);
    return append(std::move(instr));
}

Instruction &
IRBuilder::putc(Operand src)
{
    Instruction instr(Opcode::PutC);
    instr.addSrc(src);
    return append(std::move(instr));
}

} // namespace predilp
