#include "ir/verifier.hh"

#include <set>
#include <sstream>

namespace predilp
{

namespace
{

class Verifier
{
  public:
    Verifier(const Function &fn, const Program *prog)
        : fn_(fn), prog_(prog)
    {}

    std::string
    run()
    {
        inLayout_.assign(fn_.numBlockIds(), false);
        for (BlockId id : fn_.layout())
            inLayout_[static_cast<std::size_t>(id)] = true;

        scanPredDefs();

        for (BlockId id : fn_.layout()) {
            const BasicBlock *bb = fn_.block(id);
            checkBlock(*bb);
            if (!error_.empty())
                return error_;
        }
        return error_;
    }

  private:
    template <typename... Args>
    void
    fail(const BasicBlock &bb, const Instruction *instr,
         Args &&...args)
    {
        if (!error_.empty())
            return;
        std::ostringstream os;
        os << fn_.name() << "/" << bb.name() << ": ";
        if (instr != nullptr)
            os << "'" << instr->toString() << "': ";
        (os << ... << std::forward<Args>(args));
        error_ = os.str();
    }

    /**
     * Function-wide predicate-definition summary, feeding the
     * use-before-def and OR/AND-seeding checks. Deliberately
     * flow-insensitive (a def anywhere in the function counts) so it
     * never false-positives on schedules or hyperblock layouts the
     * dataflow of which we do not model; it still catches transforms
     * that guard or OR into a predicate register nothing ever
     * defines — including uses minted across hyperblock boundaries.
     */
    void
    scanPredDefs()
    {
        auto bound = static_cast<std::size_t>(fn_.numPredRegs());
        predDefined_.assign(bound, false);
        predInitialized_.assign(bound, false);
        for (BlockId id : fn_.layout()) {
            for (const auto &instr : fn_.block(id)->instrs()) {
                if (instr.op() == Opcode::PredClear ||
                    instr.op() == Opcode::PredSet) {
                    hasPredAll_ = true;
                    continue;
                }
                for (const auto &pd : instr.predDests()) {
                    if (pd.reg.cls() != RegClass::Pred ||
                        static_cast<std::size_t>(pd.reg.idx()) >=
                            bound) {
                        continue; // reported by checkInstr.
                    }
                    auto idx =
                        static_cast<std::size_t>(pd.reg.idx());
                    predDefined_[idx] = true;
                    // U-type dests write regardless of Pin
                    // (Table 1); OR/AND types leave the register
                    // unchanged when they do not fire.
                    if (pd.type == PredType::U ||
                        pd.type == PredType::UBar) {
                        predInitialized_[idx] = true;
                    }
                }
                Reg dest = instr.dest();
                if (!instr.isPredDefine() && dest.valid() &&
                    dest.cls() == RegClass::Pred &&
                    static_cast<std::size_t>(dest.idx()) < bound) {
                    auto idx = static_cast<std::size_t>(dest.idx());
                    predDefined_[idx] = true;
                    if (!instr.guarded())
                        predInitialized_[idx] = true;
                }
            }
        }
    }

    bool
    predDefinedSomewhere(Reg reg) const
    {
        if (hasPredAll_)
            return true;
        auto idx = static_cast<std::size_t>(reg.idx());
        return idx < predDefined_.size() && predDefined_[idx];
    }

    bool
    predInitializedSomewhere(Reg reg) const
    {
        if (hasPredAll_)
            return true;
        auto idx = static_cast<std::size_t>(reg.idx());
        return idx < predInitialized_.size() &&
               predInitialized_[idx];
    }

    bool
    validTarget(BlockId id) const
    {
        return id >= 0 &&
               static_cast<std::size_t>(id) < fn_.numBlockIds() &&
               inLayout_[static_cast<std::size_t>(id)];
    }

    void
    checkReg(const BasicBlock &bb, const Instruction &instr, Reg reg,
             const char *role)
    {
        if (!reg.valid()) {
            fail(bb, &instr, role, " register is invalid");
            return;
        }
        int bound = 0;
        switch (reg.cls()) {
          case RegClass::Int:
            bound = fn_.numIntRegs();
            break;
          case RegClass::Float:
            bound = fn_.numFloatRegs();
            break;
          case RegClass::Pred:
            bound = fn_.numPredRegs();
            break;
        }
        if (reg.idx() >= bound) {
            fail(bb, &instr, role, " register ", reg.toString(),
                 " out of range (", bound, ")");
        }
    }

    void
    checkSrcCount(const BasicBlock &bb, const Instruction &instr,
                  std::size_t expected)
    {
        if (instr.srcs().size() != expected) {
            fail(bb, &instr, "expected ", expected, " sources, got ",
                 instr.srcs().size());
        }
    }

    void
    checkBlock(const BasicBlock &bb)
    {
        for (const auto &instr : bb.instrs()) {
            if (!error_.empty())
                return;
            if (!ids_.insert(instr.id()).second)
                fail(bb, &instr, "duplicate instruction id");
            checkInstr(bb, instr);
        }

        if (!bb.endsInUnconditionalTransfer()) {
            if (bb.fallthrough() == invalidBlock) {
                fail(bb, nullptr,
                     "block neither transfers nor falls through");
            } else if (!validTarget(bb.fallthrough())) {
                fail(bb, nullptr, "fallthrough target ",
                     bb.fallthrough(), " not in layout");
            }
        }
    }

    void
    checkInstr(const BasicBlock &bb, const Instruction &instr)
    {
        const auto &info = instr.info();

        if (instr.guarded() &&
            instr.guard().cls() != RegClass::Pred) {
            fail(bb, &instr, "guard is not a predicate register");
        }
        if (instr.guarded()) {
            checkReg(bb, instr, instr.guard(), "guard");
            if (error_.empty() &&
                instr.guard().cls() == RegClass::Pred &&
                !predDefinedSomewhere(instr.guard())) {
                fail(bb, &instr, "guard ", instr.guard().toString(),
                     " is never defined in this function "
                     "(use before def)");
            }
        }

        if (instr.isPredDefine()) {
            if (instr.predDests().empty() ||
                instr.predDests().size() > 2) {
                fail(bb, &instr,
                     "predicate define needs 1 or 2 dests");
            }
            for (const auto &pd : instr.predDests()) {
                if (pd.reg.cls() != RegClass::Pred) {
                    fail(bb, &instr,
                         "predicate dest is not a pred register");
                }
                checkReg(bb, instr, pd.reg, "pred dest");
                if (error_.empty() &&
                    pd.reg.cls() == RegClass::Pred &&
                    pd.type != PredType::U &&
                    pd.type != PredType::UBar &&
                    !predInitializedSomewhere(pd.reg)) {
                    fail(bb, &instr, predTypeName(pd.type),
                         "-type dest ", pd.reg.toString(),
                         " has no unconditional initialization "
                         "(U-type define or pred_clear/pred_set)");
                }
            }
            if (instr.predDests().size() == 2 &&
                instr.predDests()[0].reg ==
                    instr.predDests()[1].reg) {
                fail(bb, &instr,
                     "duplicate predicate destination ",
                     instr.predDests()[0].reg.toString());
            }
            checkSrcCount(bb, instr, 2);
        } else if (!instr.predDests().empty()) {
            fail(bb, &instr,
                 "non-define carries predicate destinations");
        }

        if (info.isCondBranch) {
            checkSrcCount(bb, instr, 2);
            if (!validTarget(instr.target()))
                fail(bb, &instr, "branch target not in layout");
        } else if (instr.isJump()) {
            if (!validTarget(instr.target()))
                fail(bb, &instr, "jump target not in layout");
        } else if (instr.isCall()) {
            if (prog_ != nullptr) {
                const Function *callee =
                    prog_->function(instr.callee());
                if (callee == nullptr) {
                    fail(bb, &instr, "unknown callee ",
                         instr.callee());
                } else if (callee->params().size() !=
                           instr.srcs().size()) {
                    fail(bb, &instr, "call arity mismatch: ",
                         instr.srcs().size(), " args vs ",
                         callee->params().size(), " params");
                }
            }
        } else if (instr.isRet()) {
            if (instr.srcs().size() > 1)
                fail(bb, &instr, "ret takes at most one value");
        } else if (info.isCondMove) {
            checkSrcCount(bb, instr, 2);
        } else if (info.isSelect) {
            checkSrcCount(bb, instr, 3);
        } else if (instr.isStore()) {
            checkSrcCount(bb, instr, 3);
        } else if (instr.isLoad()) {
            checkSrcCount(bb, instr, 2);
        } else if (instr.op() == Opcode::Mov ||
                   instr.op() == Opcode::FMov ||
                   instr.op() == Opcode::CvtIf ||
                   instr.op() == Opcode::CvtFi) {
            checkSrcCount(bb, instr, 1);
        }

        if (instr.dest().valid())
            checkReg(bb, instr, instr.dest(), "dest");
        if (info.hasFloatDest && instr.dest().valid() &&
            instr.dest().cls() != RegClass::Float) {
            fail(bb, &instr, "dest should be a float register");
        }
        if (info.hasIntDest && instr.dest().valid() &&
            !instr.isCall() &&
            instr.dest().cls() != RegClass::Int) {
            fail(bb, &instr, "dest should be an int register");
        }

        for (const auto &src : instr.srcs()) {
            if (!src.isReg())
                continue;
            checkReg(bb, instr, src.reg(), "source");
            if (error_.empty() &&
                src.reg().cls() == RegClass::Pred &&
                !predDefinedSomewhere(src.reg())) {
                fail(bb, &instr, "predicate source ",
                     src.reg().toString(),
                     " is never defined in this function "
                     "(use before def)");
            }
        }
    }

    const Function &fn_;
    const Program *prog_;
    std::vector<bool> inLayout_;
    std::vector<bool> predDefined_;
    std::vector<bool> predInitialized_;
    bool hasPredAll_ = false;
    std::set<int> ids_;
    std::string error_;
};

} // namespace

std::string
verifyFunction(const Function &fn, const Program *prog)
{
    return Verifier(fn, prog).run();
}

std::string
verifyProgram(const Program &prog)
{
    for (const auto &fn : prog.functions()) {
        std::string err = verifyFunction(*fn, &prog);
        if (!err.empty())
            return err;
    }
    return "";
}

} // namespace predilp
