#include "ir/program.hh"

#include "support/logging.hh"

namespace predilp
{

Program::Program() = default;

Function *
Program::newFunction(const std::string &name)
{
    panicIf(functionIndex_.count(name) != 0,
            "duplicate function ", name);
    functionIndex_[name] = functions_.size();
    functions_.push_back(std::make_unique<Function>(name));
    return functions_.back().get();
}

Function *
Program::function(const std::string &name)
{
    auto it = functionIndex_.find(name);
    return it == functionIndex_.end() ? nullptr
                                      : functions_[it->second].get();
}

const Function *
Program::function(const std::string &name) const
{
    auto it = functionIndex_.find(name);
    return it == functionIndex_.end() ? nullptr
                                      : functions_[it->second].get();
}

Function *
Program::main()
{
    Function *fn = function("main");
    panicIf(fn == nullptr, "program has no main function");
    return fn;
}

std::int64_t
Program::allocGlobal(const std::string &name, std::int64_t sizeBytes,
                     int elemSize, bool isFloat)
{
    panicIf(globalIndex_.count(name) != 0, "duplicate global ", name);
    std::int64_t addr = (dataSize_ + 7) & ~std::int64_t{7};
    Global g;
    g.name = name;
    g.addr = addr;
    g.sizeBytes = sizeBytes;
    g.elemSize = elemSize;
    g.isFloat = isFloat;
    globalIndex_[name] = globals_.size();
    globals_.push_back(std::move(g));
    dataSize_ = addr + sizeBytes;
    return addr;
}

Global *
Program::global(const std::string &name)
{
    auto it = globalIndex_.find(name);
    return it == globalIndex_.end() ? nullptr : &globals_[it->second];
}

std::unique_ptr<Program>
Program::clone() const
{
    auto copy = std::make_unique<Program>();
    copy->functions_.reserve(functions_.size());
    for (const auto &fn : functions_)
        copy->functions_.push_back(fn->clone());
    copy->functionIndex_ = functionIndex_;
    copy->globals_ = globals_;
    copy->globalIndex_ = globalIndex_;
    copy->dataSize_ = dataSize_;
    return copy;
}

} // namespace predilp
