#include "ir/opcode.hh"

#include <array>

#include "support/logging.hh"

namespace predilp
{

namespace
{

// Shorthand builders for the opcode table. Fields default to the
// common case (plain ALU op with an integer destination).
struct InfoBuilder
{
    OpcodeInfo info;

    explicit InfoBuilder(const char *name,
                         LatencyClass lat = LatencyClass::IntAlu)
    {
        info = OpcodeInfo{};
        info.name = name;
        info.latency = lat;
        info.hasIntDest = true;
    }

    InfoBuilder &noDest() { info.hasIntDest = false; return *this; }
    InfoBuilder &
    floatDest()
    {
        info.hasIntDest = false;
        info.hasFloatDest = true;
        return *this;
    }
    InfoBuilder &condBranch()
    {
        info.isCondBranch = true;
        info.hasIntDest = false;
        info.latency = LatencyClass::Branch;
        return *this;
    }
    InfoBuilder &trap() { info.canTrap = true; return *this; }
    InfoBuilder &load() { info.isLoad = true; return *this; }
    InfoBuilder &store()
    {
        info.isStore = true;
        info.hasIntDest = false;
        return *this;
    }
    InfoBuilder &predDefine()
    {
        info.isPredDefine = true;
        info.hasIntDest = false;
        info.latency = LatencyClass::PredDefine;
        return *this;
    }
    InfoBuilder &predAll()
    {
        info.isPredAll = true;
        info.hasIntDest = false;
        info.latency = LatencyClass::PredDefine;
        return *this;
    }
    InfoBuilder &condMove() { info.isCondMove = true; return *this; }
    InfoBuilder &select() { info.isSelect = true; return *this; }
    InfoBuilder &effect() { info.sideEffect = true; return *this; }
};

const std::array<OpcodeInfo, static_cast<std::size_t>(Opcode::Nop) + 1>
buildTable()
{
    using L = LatencyClass;
    std::array<OpcodeInfo,
               static_cast<std::size_t>(Opcode::Nop) + 1> table{};
    auto put = [&](Opcode op, const InfoBuilder &b) {
        table[static_cast<std::size_t>(op)] = b.info;
    };

    put(Opcode::Add, InfoBuilder("add"));
    put(Opcode::Sub, InfoBuilder("sub"));
    put(Opcode::Mul, InfoBuilder("mul", L::IntMul));
    put(Opcode::Div, InfoBuilder("div", L::IntDiv).trap());
    put(Opcode::Rem, InfoBuilder("rem", L::IntDiv).trap());
    put(Opcode::And, InfoBuilder("and"));
    put(Opcode::Or, InfoBuilder("or"));
    put(Opcode::Xor, InfoBuilder("xor"));
    put(Opcode::AndNot, InfoBuilder("and_not"));
    put(Opcode::OrNot, InfoBuilder("or_not"));
    put(Opcode::Shl, InfoBuilder("shl"));
    put(Opcode::Shr, InfoBuilder("shr"));
    put(Opcode::Sra, InfoBuilder("sra"));
    put(Opcode::Mov, InfoBuilder("mov"));

    put(Opcode::CmpEq, InfoBuilder("eq"));
    put(Opcode::CmpNe, InfoBuilder("ne"));
    put(Opcode::CmpLt, InfoBuilder("lt"));
    put(Opcode::CmpLe, InfoBuilder("le"));
    put(Opcode::CmpGt, InfoBuilder("gt"));
    put(Opcode::CmpGe, InfoBuilder("ge"));
    put(Opcode::CmpLtu, InfoBuilder("ltu"));

    put(Opcode::FAdd, InfoBuilder("add_f", L::FpAlu).floatDest());
    put(Opcode::FSub, InfoBuilder("sub_f", L::FpAlu).floatDest());
    put(Opcode::FMul, InfoBuilder("mul_f", L::FpAlu).floatDest());
    put(Opcode::FDiv,
        InfoBuilder("div_f", L::FpDiv).floatDest().trap());
    put(Opcode::FMov, InfoBuilder("mov_f", L::FpAlu).floatDest());
    put(Opcode::CvtIf, InfoBuilder("cvt_if", L::FpAlu).floatDest());
    put(Opcode::CvtFi, InfoBuilder("cvt_fi", L::FpAlu));

    put(Opcode::FCmpEq, InfoBuilder("eq_f", L::FpAlu));
    put(Opcode::FCmpNe, InfoBuilder("ne_f", L::FpAlu));
    put(Opcode::FCmpLt, InfoBuilder("lt_f", L::FpAlu));
    put(Opcode::FCmpLe, InfoBuilder("le_f", L::FpAlu));
    put(Opcode::FCmpGt, InfoBuilder("gt_f", L::FpAlu));
    put(Opcode::FCmpGe, InfoBuilder("ge_f", L::FpAlu));

    put(Opcode::Ld, InfoBuilder("ld", L::Load).load().trap());
    put(Opcode::LdB, InfoBuilder("ld_b", L::Load).load().trap());
    put(Opcode::LdBu, InfoBuilder("ld_bu", L::Load).load().trap());
    put(Opcode::St,
        InfoBuilder("st", L::Store).store().trap().effect());
    put(Opcode::StB,
        InfoBuilder("st_b", L::Store).store().trap().effect());
    put(Opcode::FLd,
        InfoBuilder("ld_f", L::Load).load().floatDest().trap());
    put(Opcode::FSt,
        InfoBuilder("st_f", L::Store).store().trap().effect());

    put(Opcode::Beq, InfoBuilder("beq").condBranch());
    put(Opcode::Bne, InfoBuilder("bne").condBranch());
    put(Opcode::Blt, InfoBuilder("blt").condBranch());
    put(Opcode::Ble, InfoBuilder("ble").condBranch());
    put(Opcode::Bgt, InfoBuilder("bgt").condBranch());
    put(Opcode::Bge, InfoBuilder("bge").condBranch());

    {
        InfoBuilder b("jump", L::Branch);
        b.noDest().effect();
        b.info.isJump = true;
        put(Opcode::Jump, b);
    }
    {
        InfoBuilder b("jsr", L::Branch);
        b.effect();
        b.info.isCall = true;
        // A call may or may not define a register; the instruction's
        // dest field decides. hasIntDest stays true so the printer
        // shows it when present.
        put(Opcode::Call, b);
    }
    {
        InfoBuilder b("ret", L::Branch);
        b.noDest().effect();
        b.info.isRet = true;
        put(Opcode::Ret, b);
    }

    put(Opcode::GetC, InfoBuilder("getc", L::Load).effect());
    put(Opcode::PutC, InfoBuilder("putc", L::Store).noDest().effect());
    put(Opcode::ReadBlock,
        InfoBuilder("readblock", L::Load).effect().trap());

    put(Opcode::PredClear, InfoBuilder("pred_clear").predAll());
    put(Opcode::PredSet, InfoBuilder("pred_set").predAll());
    put(Opcode::PredEq, InfoBuilder("pred_eq").predDefine());
    put(Opcode::PredNe, InfoBuilder("pred_ne").predDefine());
    put(Opcode::PredLt, InfoBuilder("pred_lt").predDefine());
    put(Opcode::PredLe, InfoBuilder("pred_le").predDefine());
    put(Opcode::PredGt, InfoBuilder("pred_gt").predDefine());
    put(Opcode::PredGe, InfoBuilder("pred_ge").predDefine());
    put(Opcode::PredLtu, InfoBuilder("pred_ltu").predDefine());

    put(Opcode::CMov, InfoBuilder("cmov").condMove());
    put(Opcode::CMovCom, InfoBuilder("cmov_com").condMove());
    put(Opcode::Select, InfoBuilder("select").select());
    put(Opcode::FCMov,
        InfoBuilder("cmov_f", L::FpAlu).condMove().floatDest());
    put(Opcode::FCMovCom,
        InfoBuilder("cmov_com_f", L::FpAlu).condMove().floatDest());
    put(Opcode::FSelect,
        InfoBuilder("select_f", L::FpAlu).select().floatDest());

    put(Opcode::Nop, InfoBuilder("nop").noDest());
    return table;
}

const auto opcodeTable = buildTable();

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    return opcodeTable[static_cast<std::size_t>(op)];
}

bool
isControl(Opcode op)
{
    const auto &info = opcodeInfo(op);
    return info.isCondBranch || info.isJump || info.isCall || info.isRet;
}

bool
isBranchResource(Opcode op)
{
    return isControl(op);
}

bool
evalIntCondition(Opcode op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case Opcode::Beq: case Opcode::CmpEq: case Opcode::PredEq:
        return a == b;
      case Opcode::Bne: case Opcode::CmpNe: case Opcode::PredNe:
        return a != b;
      case Opcode::Blt: case Opcode::CmpLt: case Opcode::PredLt:
        return a < b;
      case Opcode::Ble: case Opcode::CmpLe: case Opcode::PredLe:
        return a <= b;
      case Opcode::Bgt: case Opcode::CmpGt: case Opcode::PredGt:
        return a > b;
      case Opcode::Bge: case Opcode::CmpGe: case Opcode::PredGe:
        return a >= b;
      case Opcode::CmpLtu: case Opcode::PredLtu:
        return static_cast<std::uint64_t>(a) <
               static_cast<std::uint64_t>(b);
      default:
        panic("evalIntCondition: not a condition opcode: ",
              opcodeName(op));
    }
}

bool
evalFloatCondition(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::FCmpEq: return a == b;
      case Opcode::FCmpNe: return a != b;
      case Opcode::FCmpLt: return a < b;
      case Opcode::FCmpLe: return a <= b;
      case Opcode::FCmpGt: return a > b;
      case Opcode::FCmpGe: return a >= b;
      default:
        panic("evalFloatCondition: not a float condition: ",
              opcodeName(op));
    }
}

Opcode
branchToCompare(Opcode op)
{
    switch (op) {
      case Opcode::Beq: return Opcode::CmpEq;
      case Opcode::Bne: return Opcode::CmpNe;
      case Opcode::Blt: return Opcode::CmpLt;
      case Opcode::Ble: return Opcode::CmpLe;
      case Opcode::Bgt: return Opcode::CmpGt;
      case Opcode::Bge: return Opcode::CmpGe;
      default:
        panic("branchToCompare: not a conditional branch: ",
              opcodeName(op));
    }
}

Opcode
branchToPredDefine(Opcode op)
{
    switch (op) {
      case Opcode::Beq: return Opcode::PredEq;
      case Opcode::Bne: return Opcode::PredNe;
      case Opcode::Blt: return Opcode::PredLt;
      case Opcode::Ble: return Opcode::PredLe;
      case Opcode::Bgt: return Opcode::PredGt;
      case Opcode::Bge: return Opcode::PredGe;
      default:
        panic("branchToPredDefine: not a conditional branch: ",
              opcodeName(op));
    }
}

Opcode
predDefineToCompare(Opcode op)
{
    switch (op) {
      case Opcode::PredEq: return Opcode::CmpEq;
      case Opcode::PredNe: return Opcode::CmpNe;
      case Opcode::PredLt: return Opcode::CmpLt;
      case Opcode::PredLe: return Opcode::CmpLe;
      case Opcode::PredGt: return Opcode::CmpGt;
      case Opcode::PredGe: return Opcode::CmpGe;
      case Opcode::PredLtu: return Opcode::CmpLtu;
      default:
        panic("predDefineToCompare: not a predicate define: ",
              opcodeName(op));
    }
}

Opcode
invertCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq: return Opcode::CmpNe;
      case Opcode::CmpNe: return Opcode::CmpEq;
      case Opcode::CmpLt: return Opcode::CmpGe;
      case Opcode::CmpLe: return Opcode::CmpGt;
      case Opcode::CmpGt: return Opcode::CmpLe;
      case Opcode::CmpGe: return Opcode::CmpLt;
      case Opcode::FCmpEq: return Opcode::FCmpNe;
      case Opcode::FCmpNe: return Opcode::FCmpEq;
      case Opcode::FCmpLt: return Opcode::FCmpGe;
      case Opcode::FCmpLe: return Opcode::FCmpGt;
      case Opcode::FCmpGt: return Opcode::FCmpLe;
      case Opcode::FCmpGe: return Opcode::FCmpLt;
      default:
        panic("invertCompare: cannot invert ", opcodeName(op));
    }
}

Opcode
invertBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq: return Opcode::Bne;
      case Opcode::Bne: return Opcode::Beq;
      case Opcode::Blt: return Opcode::Bge;
      case Opcode::Ble: return Opcode::Bgt;
      case Opcode::Bgt: return Opcode::Ble;
      case Opcode::Bge: return Opcode::Blt;
      default:
        panic("invertBranch: not a conditional branch: ",
              opcodeName(op));
    }
}

} // namespace predilp
