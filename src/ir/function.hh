/**
 * @file
 * Function: a CFG of basic blocks plus virtual-register counters.
 */

#ifndef PREDILP_IR_FUNCTION_HH
#define PREDILP_IR_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/block.hh"

namespace predilp
{

/** Return-value classes for functions. */
enum class RetKind : std::uint8_t { None, Int, Float };

/**
 * A function: an entry block, a set of blocks with a layout order,
 * and per-class virtual register counters. Blocks carry stable ids;
 * the layout vector determines code placement (and therefore
 * instruction addresses in the timing simulator).
 */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    RetKind retKind() const { return retKind_; }
    void setRetKind(RetKind kind) { retKind_ = kind; }

    /** Formal parameters, in order. */
    const std::vector<Reg> &params() const { return params_; }
    void addParam(Reg reg) { params_.push_back(reg); }

    // --- blocks ---

    /** Create a new block appended to the layout. */
    BasicBlock *newBlock(const std::string &name = "");

    /** @return the block with the given id (panics when absent). */
    BasicBlock *block(BlockId id);
    const BasicBlock *block(BlockId id) const;

    /** @return the entry block (first in layout). */
    BasicBlock *entry();
    const BasicBlock *entry() const;

    /** Layout order of block ids; code addresses follow this order. */
    const std::vector<BlockId> &layout() const { return layout_; }
    std::vector<BlockId> &layout() { return layout_; }

    /** Number of block ids ever created (ids are < this bound). */
    std::size_t numBlockIds() const { return blocks_.size(); }

    /**
     * Remove blocks unreachable from the entry from the layout.
     * Storage is retained so ids stay valid.
     */
    void pruneUnreachable();

    // --- virtual registers ---

    Reg newIntReg() { return intReg(numIntRegs_++); }
    Reg newFloatReg() { return floatReg(numFloatRegs_++); }
    Reg newPredReg() { return predReg(numPredRegs_++); }

    int numIntRegs() const { return numIntRegs_; }
    int numFloatRegs() const { return numFloatRegs_; }
    int numPredRegs() const { return numPredRegs_; }

    /** Reserve ids below @p n for pre-existing integer registers. */
    void reserveIntRegs(int n) { numIntRegs_ = std::max(numIntRegs_, n); }

    // --- instruction ids ---

    /** Assign a fresh within-function instruction id. */
    int nextInstrId() { return nextInstrId_++; }

    /** Upper bound on instruction ids in this function. */
    int instrIdBound() const { return nextInstrId_; }

    /** Create an instruction with a fresh id. */
    Instruction makeInstr(Opcode op);

    /**
     * Total number of instructions currently in reachable blocks.
     */
    std::size_t instructionCount() const;

    /**
     * Deep copy: blocks, layout, params, and — critically for
     * resuming compilation from a snapshot — the register and
     * instruction-id counters, so passes run on the clone allocate
     * exactly the ids they would have allocated on the original.
     */
    std::unique_ptr<Function> clone() const;

  private:
    std::string name_;
    RetKind retKind_ = RetKind::None;
    std::vector<Reg> params_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<BlockId> layout_;
    int numIntRegs_ = 0;
    int numFloatRegs_ = 0;
    int numPredRegs_ = 0;
    int nextInstrId_ = 0;
};

} // namespace predilp

#endif // PREDILP_IR_FUNCTION_HH
