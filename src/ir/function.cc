#include "ir/function.hh"

#include <algorithm>

#include "support/logging.hh"

namespace predilp
{

BasicBlock *
Function::newBlock(const std::string &name)
{
    auto id = static_cast<BlockId>(blocks_.size());
    std::string label = name.empty() ? "B" + std::to_string(id) : name;
    blocks_.push_back(std::make_unique<BasicBlock>(id, label));
    layout_.push_back(id);
    return blocks_.back().get();
}

BasicBlock *
Function::block(BlockId id)
{
    panicIf(id < 0 || static_cast<std::size_t>(id) >= blocks_.size(),
            "bad block id ", id, " in ", name_);
    return blocks_[static_cast<std::size_t>(id)].get();
}

const BasicBlock *
Function::block(BlockId id) const
{
    panicIf(id < 0 || static_cast<std::size_t>(id) >= blocks_.size(),
            "bad block id ", id, " in ", name_);
    return blocks_[static_cast<std::size_t>(id)].get();
}

BasicBlock *
Function::entry()
{
    panicIf(layout_.empty(), "function ", name_, " has no blocks");
    return block(layout_.front());
}

const BasicBlock *
Function::entry() const
{
    panicIf(layout_.empty(), "function ", name_, " has no blocks");
    return block(layout_.front());
}

void
Function::pruneUnreachable()
{
    if (layout_.empty())
        return;
    std::vector<bool> reachable(blocks_.size(), false);
    std::vector<BlockId> work{layout_.front()};
    reachable[static_cast<std::size_t>(layout_.front())] = true;
    while (!work.empty()) {
        BlockId id = work.back();
        work.pop_back();
        for (BlockId succ : block(id)->successors()) {
            auto s = static_cast<std::size_t>(succ);
            if (!reachable[s]) {
                reachable[s] = true;
                work.push_back(succ);
            }
        }
    }
    layout_.erase(
        std::remove_if(layout_.begin(), layout_.end(),
                       [&](BlockId id) {
                           return !reachable[static_cast<std::size_t>(id)];
                       }),
        layout_.end());
}

Instruction
Function::makeInstr(Opcode op)
{
    Instruction instr(op);
    instr.setId(nextInstrId());
    return instr;
}

std::size_t
Function::instructionCount() const
{
    std::size_t total = 0;
    for (BlockId id : layout_)
        total += block(id)->instrs().size();
    return total;
}

std::unique_ptr<Function>
Function::clone() const
{
    auto copy = std::make_unique<Function>(name_);
    copy->retKind_ = retKind_;
    copy->params_ = params_;
    copy->blocks_.reserve(blocks_.size());
    for (const auto &bb : blocks_)
        copy->blocks_.push_back(std::make_unique<BasicBlock>(*bb));
    copy->layout_ = layout_;
    copy->numIntRegs_ = numIntRegs_;
    copy->numFloatRegs_ = numFloatRegs_;
    copy->numPredRegs_ = numPredRegs_;
    copy->nextInstrId_ = nextInstrId_;
    return copy;
}

} // namespace predilp
