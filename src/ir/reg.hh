/**
 * @file
 * Virtual register identifiers. The machine modeled by the paper has
 * an infinite register file (ISCA'95 §4.1), so registers are simply
 * (class, index) pairs with no allocation step.
 */

#ifndef PREDILP_IR_REG_HH
#define PREDILP_IR_REG_HH

#include <cstdint>
#include <functional>
#include <string>

namespace predilp
{

/** Register classes of the target ISA. */
enum class RegClass : std::uint8_t
{
    Int,   ///< 64-bit integer registers (r0, r1, ...).
    Float, ///< double-precision registers (f0, f1, ...).
    Pred,  ///< 1-bit predicate registers (p0, p1, ...).
};

/**
 * A virtual register: a register class plus an index within that
 * class. Value type, freely copyable. A default-constructed Reg is
 * invalid and means "no register".
 */
class Reg
{
  public:
    /** Construct the invalid register. */
    Reg() = default;

    /** Construct register @p idx of class @p cls. */
    Reg(RegClass cls, int idx) : cls_(cls), idx_(idx) {}

    /** @return true when this names an actual register. */
    bool valid() const { return idx_ >= 0; }

    /** @return the register class; only meaningful when valid(). */
    RegClass cls() const { return cls_; }

    /** @return the index within the class. */
    int idx() const { return idx_; }

    bool
    operator==(const Reg &other) const
    {
        return cls_ == other.cls_ && idx_ == other.idx_;
    }

    bool operator!=(const Reg &other) const { return !(*this == other); }

    bool
    operator<(const Reg &other) const
    {
        if (cls_ != other.cls_)
            return cls_ < other.cls_;
        return idx_ < other.idx_;
    }

    /** Render as r7 / f3 / p12, or "-" when invalid. */
    std::string toString() const;

  private:
    RegClass cls_ = RegClass::Int;
    int idx_ = -1;
};

/** Convenience constructors. */
inline Reg intReg(int idx) { return Reg(RegClass::Int, idx); }
inline Reg floatReg(int idx) { return Reg(RegClass::Float, idx); }
inline Reg predReg(int idx) { return Reg(RegClass::Pred, idx); }

} // namespace predilp

namespace std
{

template <>
struct hash<predilp::Reg>
{
    size_t
    operator()(const predilp::Reg &r) const noexcept
    {
        return (static_cast<size_t>(r.cls()) << 30) ^
               static_cast<size_t>(r.idx() + 1);
    }
};

} // namespace std

#endif // PREDILP_IR_REG_HH
