/**
 * @file
 * Basic blocks. After hyperblock or superblock formation a "block" may
 * contain branches in the middle (side exits); the invariant is only
 * that control enters at the top.
 */

#ifndef PREDILP_IR_BLOCK_HH
#define PREDILP_IR_BLOCK_HH

#include <string>
#include <vector>

#include "ir/instr.hh"

namespace predilp
{

/** The role a block plays after region formation, for reporting. */
enum class BlockKind : std::uint8_t
{
    Plain,      ///< ordinary basic block.
    Superblock, ///< trace-formed block with side exits.
    Hyperblock, ///< if-converted block with predicated instructions.
};

/**
 * A basic block: a label, an instruction list, and an explicit
 * fallthrough successor. Control flow out of the block is the ordered
 * list of branch targets appearing in the instruction list, followed
 * by the fallthrough edge (when the block does not end in an
 * unconditional transfer).
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, std::string name)
        : id_(id), name_(std::move(name))
    {}

    BlockId id() const { return id_; }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    BlockKind kind() const { return kind_; }
    void setKind(BlockKind kind) { kind_ = kind; }

    /** Instruction list (mutable access for transforms). */
    std::vector<Instruction> &instrs() { return instrs_; }
    const std::vector<Instruction> &instrs() const { return instrs_; }

    /**
     * Fallthrough successor: the block control reaches when no branch
     * in this block is taken. invalidBlock when the block ends in an
     * unconditional jump or return.
     */
    BlockId fallthrough() const { return fallthrough_; }
    void setFallthrough(BlockId id) { fallthrough_ = id; }

    /** Profile weight: number of times the block entry executed. */
    std::uint64_t weight() const { return weight_; }
    void setWeight(std::uint64_t weight) { weight_ = weight; }

    /**
     * @return all successor block ids in control-flow priority order:
     * in-instruction branch targets first (program order), then the
     * fallthrough.
     */
    std::vector<BlockId> successors() const;

    /**
     * @return true when the block's last instruction unconditionally
     * leaves the block (unguarded jump or return).
     */
    bool endsInUnconditionalTransfer() const;

  private:
    BlockId id_;
    std::string name_;
    BlockKind kind_ = BlockKind::Plain;
    std::vector<Instruction> instrs_;
    BlockId fallthrough_ = invalidBlock;
    std::uint64_t weight_ = 0;
};

} // namespace predilp

#endif // PREDILP_IR_BLOCK_HH
