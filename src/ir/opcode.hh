/**
 * @file
 * Opcodes of the generic load/store ILP ISA modeled after the paper's
 * baseline architecture (§2), including the full-predication
 * extensions (predicate defines, pred_clear/pred_set) and the partial
 * predication extensions (cmov/cmov_com/select).
 */

#ifndef PREDILP_IR_OPCODE_HH
#define PREDILP_IR_OPCODE_HH

#include <cstdint>
#include <string>

namespace predilp
{

/** All instruction opcodes of the PredILP ISA. */
enum class Opcode : std::uint8_t
{
    // --- integer arithmetic and logic ---
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor,
    AndNot,         ///< dest = src1 & ~src2 (paper §3.2 "and_not").
    OrNot,          ///< dest = src1 | ~src2 (paper §3.2 "or_not").
    Shl, Shr, Sra,
    Mov,            ///< dest = src1 (register or immediate).

    // --- integer comparisons (dest is an int register, 0/1) ---
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpLtu,

    // --- floating point ---
    FAdd, FSub, FMul, FDiv, FMov,
    CvtIf,          ///< int -> float conversion.
    CvtFi,          ///< float -> int conversion (truncating).

    // --- floating point comparisons (dest is an int register) ---
    FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,

    // --- memory (base register + immediate-or-register offset) ---
    Ld,             ///< load 64-bit word.
    LdB,            ///< load sign-extended byte.
    LdBu,           ///< load zero-extended byte.
    St,             ///< store 64-bit word.
    StB,            ///< store low byte.
    FLd,            ///< load double.
    FSt,            ///< store double.

    // --- control transfer ---
    Beq, Bne, Blt, Ble, Bgt, Bge, ///< conditional branches.
    Jump,           ///< unconditional (possibly predicated) jump.
    Call,           ///< subroutine call with explicit operand list.
    Ret,            ///< return, optional value operand.

    // --- I/O intrinsics (workload input/output streams) ---
    GetC,           ///< dest = next input byte, or -1 at end.
    PutC,           ///< append low byte of src to the output stream.
    ReadBlock,      ///< dest = bytes copied from input to memory
                    ///< [src0+src1, +src2) — a read() syscall.

    // --- full predication extensions (§2.1) ---
    PredClear,      ///< set the entire predicate file to 0.
    PredSet,        ///< set the entire predicate file to 1.
    PredEq, PredNe, PredLt, PredLe, PredGt, PredGe, PredLtu,

    // --- partial predication extensions (§2.2) ---
    CMov,           ///< if (cond) dest = src.
    CMovCom,        ///< if (!cond) dest = src.
    Select,         ///< dest = cond ? src1 : src2.
    FCMov, FCMovCom, FSelect,

    Nop,
};

/** Coarse latency classes; the machine model maps these to cycles. */
enum class LatencyClass : std::uint8_t
{
    IntAlu,     ///< 1 cycle.
    IntMul,     ///< 3 cycles.
    IntDiv,     ///< 10 cycles.
    FpAlu,      ///< 2 cycles.
    FpDiv,      ///< 8 cycles.
    Load,       ///< 2 cycles on a cache hit.
    Store,      ///< 1 cycle.
    Branch,     ///< 1 cycle.
    PredDefine, ///< 1 cycle.
};

/** Static properties of an opcode. */
struct OpcodeInfo
{
    const char *name;       ///< mnemonic used by the printer.
    LatencyClass latency;   ///< latency class for scheduling/timing.
    bool isCondBranch;      ///< conditional branch (two srcs + target).
    bool isJump;            ///< unconditional jump.
    bool isCall;
    bool isRet;
    bool isLoad;
    bool isStore;
    bool isPredDefine;      ///< PredEq..PredLtu.
    bool isPredAll;         ///< PredClear / PredSet.
    bool isCondMove;        ///< CMov / CMovCom / FCMov / FCMovCom.
    bool isSelect;          ///< Select / FSelect.
    bool hasIntDest;        ///< writes an integer register.
    bool hasFloatDest;      ///< writes a float register.
    bool canTrap;           ///< excepting in its normal form (div, mem).
    bool sideEffect;        ///< I/O or other non-register effect.
};

/** @return the static property record for @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** @return the mnemonic for @p op. */
inline const char *opcodeName(Opcode op) { return opcodeInfo(op).name; }

/** @return true for any control-transfer opcode. */
bool isControl(Opcode op);

/** @return true when @p op is a branch counted against branch slots. */
bool isBranchResource(Opcode op);

/**
 * For a conditional branch or compare or predicate define, evaluate
 * the comparison it encodes on two integer values.
 */
bool evalIntCondition(Opcode op, std::int64_t a, std::int64_t b);

/** Evaluate the comparison of an FCmp* opcode. */
bool evalFloatCondition(Opcode op, double a, double b);

/**
 * Map a conditional branch opcode to the integer compare opcode with
 * the same condition (Beq -> CmpEq, ...).
 */
Opcode branchToCompare(Opcode op);

/** Map a conditional branch to the predicate define with the same
 * condition (Beq -> PredEq, ...). */
Opcode branchToPredDefine(Opcode op);

/** Map a predicate define to the integer compare opcode with the same
 * condition (PredEq -> CmpEq, ...). */
Opcode predDefineToCompare(Opcode op);

/** Map a compare opcode to the compare of the negated condition
 * (CmpEq -> CmpNe, CmpLt -> CmpGe, ...). */
Opcode invertCompare(Opcode op);

/** Map a conditional branch to the branch of the negated condition. */
Opcode invertBranch(Opcode op);

} // namespace predilp

#endif // PREDILP_IR_OPCODE_HH
