#include "ir/function.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** Evaluate a pure integer ALU op on constants. */
bool
foldIntOp(Opcode op, std::int64_t a, std::int64_t b,
          std::int64_t &out)
{
    auto u = [](std::int64_t v) {
        return static_cast<std::uint64_t>(v);
    };
    switch (op) {
      case Opcode::Add:
        out = static_cast<std::int64_t>(u(a) + u(b));
        return true;
      case Opcode::Sub:
        out = static_cast<std::int64_t>(u(a) - u(b));
        return true;
      case Opcode::Mul:
        out = static_cast<std::int64_t>(u(a) * u(b));
        return true;
      case Opcode::Div:
        if (b == 0 || (a == INT64_MIN && b == -1))
            return false;
        out = a / b;
        return true;
      case Opcode::Rem:
        if (b == 0 || (a == INT64_MIN && b == -1))
            return false;
        out = a % b;
        return true;
      case Opcode::And: out = a & b; return true;
      case Opcode::Or: out = a | b; return true;
      case Opcode::Xor: out = a ^ b; return true;
      case Opcode::AndNot: out = a & ~b; return true;
      case Opcode::OrNot: out = a | ~b; return true;
      case Opcode::Shl:
        out = static_cast<std::int64_t>(u(a) << (b & 63));
        return true;
      case Opcode::Shr:
        out = static_cast<std::int64_t>(u(a) >> (b & 63));
        return true;
      case Opcode::Sra:
        out = a >> (b & 63);
        return true;
      case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
      case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
      case Opcode::CmpLtu:
        out = evalIntCondition(op, a, b) ? 1 : 0;
        return true;
      default:
        return false;
    }
}

/** Identity simplifications with one constant operand. */
bool
simplifyIdentity(Instruction &instr)
{
    if (instr.srcs().size() != 2)
        return false;
    const Operand &a = instr.src(0);
    const Operand &b = instr.src(1);

    auto toMov = [&](Operand kept) {
        instr.setOp(Opcode::Mov);
        instr.srcs().clear();
        instr.addSrc(kept);
        return true;
    };

    switch (instr.op()) {
      case Opcode::Add:
        if (b.isImm() && b.immValue() == 0)
            return toMov(a);
        if (a.isImm() && a.immValue() == 0)
            return toMov(b);
        return false;
      case Opcode::Sub:
        if (b.isImm() && b.immValue() == 0)
            return toMov(a);
        return false;
      case Opcode::Mul: {
        if (b.isImm() && b.immValue() == 1)
            return toMov(a);
        if (a.isImm() && a.immValue() == 1)
            return toMov(b);
        // Strength reduction: multiply by a power of two becomes a
        // shift (1-cycle instead of the 3-cycle multiplier).
        auto powerOfTwo = [](std::int64_t v) {
            return v > 0 && (v & (v - 1)) == 0;
        };
        auto log2of = [](std::int64_t v) {
            int n = 0;
            while (v > 1) {
                v >>= 1;
                n += 1;
            }
            return n;
        };
        if (b.isImm() && powerOfTwo(b.immValue())) {
            Operand other = a;
            instr.setOp(Opcode::Shl);
            instr.srcs().clear();
            instr.addSrc(other);
            instr.addSrc(Operand::imm(log2of(b.immValue())));
            return true;
        }
        if (a.isImm() && powerOfTwo(a.immValue())) {
            Operand other = b;
            std::int64_t factor = a.immValue();
            instr.setOp(Opcode::Shl);
            instr.srcs().clear();
            instr.addSrc(other);
            instr.addSrc(Operand::imm(log2of(factor)));
            return true;
        }
        return false;
      }
      case Opcode::Or:
      case Opcode::Xor:
        if (b.isImm() && b.immValue() == 0)
            return toMov(a);
        if (a.isImm() && a.immValue() == 0)
            return toMov(b);
        return false;
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sra:
        if (b.isImm() && b.immValue() == 0)
            return toMov(a);
        return false;
      default:
        return false;
    }
}

} // namespace

int
constantFold(Function &fn)
{
    int changes = 0;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        auto &instrs = bb->instrs();
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            Instruction &instr = instrs[i];

            // Constant-condition conditional branch -> jump / drop.
            if (instr.isCondBranch() && instr.src(0).isImm() &&
                instr.src(1).isImm() && !instr.guarded()) {
                bool taken = evalIntCondition(instr.op(),
                                              instr.src(0).immValue(),
                                              instr.src(1).immValue());
                if (taken) {
                    Instruction jump = fn.makeInstr(Opcode::Jump);
                    jump.setTarget(instr.target());
                    jump.setId(instr.id());
                    instrs[i] = std::move(jump);
                    // Everything after an unconditional jump in this
                    // block is dead.
                    instrs.resize(i + 1);
                    bb->setFallthrough(invalidBlock);
                } else {
                    instrs.erase(instrs.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                    i -= 1;
                }
                changes += 1;
                continue;
            }

            if (instr.guarded() || instr.isPredDefine())
                continue;

            // Pure two-source integer ops with constant sources.
            if (instr.srcs().size() == 2 && instr.src(0).isImm() &&
                instr.src(1).isImm() && instr.dest().valid() &&
                instr.dest().cls() == RegClass::Int &&
                !instr.isMemory()) {
                std::int64_t out;
                if (foldIntOp(instr.op(), instr.src(0).immValue(),
                              instr.src(1).immValue(), out)) {
                    instr.setOp(Opcode::Mov);
                    instr.srcs().clear();
                    instr.addSrc(Operand::imm(out));
                    changes += 1;
                    continue;
                }
            }

            if (!instr.isMemory() && simplifyIdentity(instr))
                changes += 1;
        }
    }
    return changes;
}

namespace
{

class ConstantFoldPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.fold"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto folded = static_cast<std::uint64_t>(constantFold(fn));
        if (folded != 0)
            ctx.stats.counter("opt.fold.folded").add(folded);
        return folded;
    }
};

} // namespace

std::unique_ptr<Pass>
createConstantFoldPass()
{
    return std::make_unique<ConstantFoldPass>();
}

} // namespace predilp
