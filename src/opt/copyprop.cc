#include <unordered_map>

#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/** Per-block forward copy/constant propagation environment. */
class CopyEnv
{
  public:
    /** Resolve @p op through the current copy map. */
    Operand
    resolve(Operand op) const
    {
        if (!op.isReg())
            return op;
        auto it = map_.find(op.reg());
        return it == map_.end() ? op : it->second;
    }

    /** Record dest := src after resolution. */
    void
    record(Reg dest, Operand src)
    {
        if (src.isReg() && src.reg() == dest)
            return;
        map_[dest] = src;
    }

    /** Kill every mapping reading or writing @p reg. */
    void
    invalidate(Reg reg)
    {
        map_.erase(reg);
        for (auto it = map_.begin(); it != map_.end();) {
            if (it->second.isReg() && it->second.reg() == reg)
                it = map_.erase(it);
            else
                ++it;
        }
    }

  private:
    std::unordered_map<Reg, Operand> map_;
};

} // namespace

int
copyPropagate(Function &fn)
{
    int changes = 0;
    std::vector<Reg> defs;

    for (BlockId id : fn.layout()) {
        CopyEnv env;
        for (auto &instr : fn.block(id)->instrs()) {
            // Rewrite sources first. Guards stay: a guard must be a
            // predicate register, and predicate copies are never
            // recorded here.
            for (std::size_t s = 0; s < instr.srcs().size(); ++s) {
                Operand resolved = env.resolve(instr.src(s));
                if (resolved != instr.src(s)) {
                    instr.setSrc(s, resolved);
                    changes += 1;
                }
            }

            // Invalidate mappings clobbered by this instruction.
            defs.clear();
            collectDefs(instr, fn, defs);
            for (Reg reg : defs)
                env.invalidate(reg);

            // Record new copies from unguarded moves.
            if ((instr.op() == Opcode::Mov ||
                 instr.op() == Opcode::FMov) &&
                !instr.guarded() && instr.dest().valid() &&
                instr.dest().cls() != RegClass::Pred) {
                env.record(instr.dest(), instr.src(0));
            }
        }
    }
    return changes;
}

namespace
{

class CopyPropagatePass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.copyprop"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto propagated =
            static_cast<std::uint64_t>(copyPropagate(fn));
        if (propagated != 0)
            ctx.stats.counter("opt.copyprop.propagated")
                .add(propagated);
        return propagated;
    }
};

} // namespace

std::unique_ptr<Pass>
createCopyPropagatePass()
{
    return std::make_unique<CopyPropagatePass>();
}

} // namespace predilp
