/**
 * @file
 * Classical scalar optimizations and CFG cleanups. The paper's
 * partial-predication flow (§3.2) applies "common subexpression
 * elimination, copy propagation, and dead code removal" after the
 * basic conversions; these passes are that substrate, and they also
 * clean up frontend output before region formation.
 */

#ifndef PREDILP_OPT_PASSES_HH
#define PREDILP_OPT_PASSES_HH

#include "analysis/profile.hh"
#include "ir/program.hh"

namespace predilp
{

/**
 * Fold instructions whose sources are all constants, and turn
 * constant-condition branches into jumps or nothing.
 * @return true when anything changed.
 */
bool constantFold(Function &fn);

/**
 * Block-local copy and constant propagation: forward the sources of
 * unguarded mov/fmov instructions into later uses within the block.
 * @return true when anything changed.
 */
bool copyPropagate(Function &fn);

/**
 * Block-local common subexpression elimination over pure operations
 * and loads (loads are invalidated by stores and calls). Guarded
 * instructions participate only when guards match exactly.
 * @return true when anything changed.
 */
bool localCSE(Function &fn);

/**
 * Remove instructions whose results are never used and which have no
 * side effects, using global liveness.
 * @return true when anything changed.
 */
bool deadCodeElim(Function &fn);

/**
 * CFG cleanup: thread jumps through empty blocks, merge straight-line
 * block pairs, and prune unreachable blocks.
 * @return true when anything changed.
 */
bool simplifyCfg(Function &fn);

/**
 * Function inlining: splice small leaf callees (at most
 * @p maxCalleeInstrs instructions, no calls of their own) into their
 * call sites. Run before region formation — hyperblocks exclude
 * call-containing blocks, so inlining hot helpers (stdio-style
 * getchar, comparison kernels) is what lets the paper's loops
 * if-convert at all.
 * @return number of call sites inlined.
 */
int inlineFunctions(Program &prog, std::size_t maxCalleeInstrs = 32);

/**
 * Copy coalescing: fold "op t, ...; mov x, t" pairs (the frontend's
 * assignment pattern) into "op x, ..." when t is a single-def,
 * single-use temporary. Shrinks every model's code, and especially
 * the partial-predication lowering's expansion.
 * @return true when anything changed.
 */
bool coalesceCopies(Function &fn);

/**
 * Loop-invariant code motion (header-resident instructions only):
 * loads and pure operations whose sources are loop-invariant move to
 * a freshly created preheader; hoisted trapping instructions become
 * speculative (silent). Loads are only hoisted from loops free of
 * stores and calls.
 * @return number of instructions hoisted.
 */
int licmFunction(Function &fn);

/** licmFunction over every function. */
int licmProgram(Program &prog);

/**
 * Block-local memory forwarding: a load from a statically known slot
 * (immediate base + offset) whose current contents are known — from
 * a preceding store or load to the same slot — becomes a register
 * move. Breaks the store-to-load recurrences of stdio-style buffer
 * bookkeeping.
 * @return true when anything changed.
 */
bool forwardMemory(Function &fn);

/** Loop unrolling knobs. */
struct UnrollOptions
{
    std::uint64_t minCount = 256;    ///< minimum loop weight.
    std::size_t maxBodyInstrs = 40;  ///< only tight loops unroll.
    std::size_t targetInstrs = 96;   ///< unrolled body budget.
    std::size_t maxFactor = 4;
};

/**
 * Unroll hot self-loop blocks (formed superblock/hyperblock loops or
 * tight plain loops) in place, as the IMPACT compiler does during
 * superblock ILP optimization. Run after region formation, before
 * scheduling.
 * @return number of extra body copies created.
 */
int unrollLoops(Function &fn, const FunctionProfile &profile,
                const UnrollOptions &opts = {});

/** unrollLoops over every profiled function. */
int unrollLoops(Program &prog, const ProgramProfile &profile,
                const UnrollOptions &opts = {});

/**
 * Run the full scalar pipeline (fold, propagate, CSE, coalesce, DCE,
 * CFG simplify) to a fixpoint, on one function.
 */
void optimizeFunction(Function &fn);

/** optimizeFunction() over every function of a program. */
void optimizeProgram(Program &prog);

/**
 * Profile-guided code layout. Orders blocks so that likely successors
 * follow their predecessors, converts jumps-to-next into
 * fallthroughs, and inverts branch conditions so that off-path
 * targets are the taken direction where that saves a jump. After this
 * pass the function is in its final emission order, ready for
 * scheduling and timing simulation.
 *
 * @param profile profile for this function, or nullptr for static
 * heuristics.
 */
void layoutFunction(Function &fn, const FunctionProfile *profile);

/** layoutFunction() over every function. */
void layoutProgram(Program &prog, const ProgramProfile *profile);

} // namespace predilp

#endif // PREDILP_OPT_PASSES_HH
