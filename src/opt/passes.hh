/**
 * @file
 * Pass-object API of the classical optimizer. The raw algorithms
 * live in opt/transforms.hh (the unit-test seam); this header wraps
 * each one as a Pass (opt/pass.hh) so pipelines are declarative pass
 * lists run by a PassManager, with wall-time/change/IR-size
 * instrumentation recorded per pass into a StatsRegistry. Each pass
 * additionally owns detail counters under its own scope
 * (`opt.cse.removed`, `opt.licm.hoisted`, ...).
 */

#ifndef PREDILP_OPT_PASSES_HH
#define PREDILP_OPT_PASSES_HH

#include "opt/pass.hh"
#include "opt/transforms.hh"

namespace predilp
{

/** "opt.fold": constant folding. Counter: opt.fold.folded. */
std::unique_ptr<Pass> createConstantFoldPass();

/** "opt.copyprop": copy propagation. Counter: opt.copyprop.propagated. */
std::unique_ptr<Pass> createCopyPropagatePass();

/** "opt.cse": local CSE. Counter: opt.cse.removed. */
std::unique_ptr<Pass> createCSEPass();

/** "opt.memfwd": memory forwarding. Counter: opt.memfwd.forwarded. */
std::unique_ptr<Pass> createMemoryForwardPass();

/** "opt.coalesce": copy coalescing. Counter: opt.coalesce.coalesced. */
std::unique_ptr<Pass> createCoalescePass();

/** "opt.dce": dead code elimination. Counter: opt.dce.removed. */
std::unique_ptr<Pass> createDCEPass();

/** "opt.simplifycfg": CFG cleanup. Counter: opt.simplifycfg.simplified. */
std::unique_ptr<Pass> createSimplifyCfgPass();

/** "opt.inline": leaf inlining. Counter: opt.inline.sites. */
std::unique_ptr<Pass>
createInlinePass(std::size_t maxCalleeInstrs = 32);

/** "opt.licm": invariant code motion. Counter: opt.licm.hoisted. */
std::unique_ptr<Pass> createLicmPass();

/**
 * "opt.unroll": hot-loop unrolling. Requires a fresh
 * PassContext::regionProfile (run a region ProfilePass first).
 * Counter: opt.unroll.copies.
 */
std::unique_ptr<Pass> createUnrollPass(UnrollOptions opts = {});

/**
 * "opt.layout": profile-guided final block layout, using the
 * pre-formation PassContext::profile (static heuristics when no
 * profile ran). Counter: opt.layout.functions.
 */
std::unique_ptr<Pass> createLayoutPass();

/**
 * The scalar cleanup group (fold, copyprop, CSE, memfwd, coalesce,
 * DCE, simplifycfg) in canonical order, for
 * PassManager::addFixpoint("opt.scalar", scalarPassList()).
 */
std::vector<std::unique_ptr<Pass>> scalarPassList();

/**
 * Convenience fixpoint of the scalar group on one function / one
 * program, without external instrumentation — the classic
 * optimize-to-quiescence entry point used by tests, examples, and
 * the reference (oracle) pipeline.
 */
void optimizeFunction(Function &fn);
void optimizeProgram(Program &prog);

} // namespace predilp

#endif // PREDILP_OPT_PASSES_HH
