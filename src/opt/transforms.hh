/**
 * @file
 * Raw transformation entry points: the classical scalar optimizations
 * the paper's partial-predication flow (§3.2) applies — "common
 * subexpression elimination, copy propagation, and dead code removal"
 * — plus inlining, LICM, unrolling, and layout. These are the
 * algorithm seams used by unit tests and by the Pass wrappers in
 * passes.hh; production pipelines run them through a PassManager
 * (opt/pass.hh), which adds timing, change, and IR-size
 * instrumentation around every invocation.
 *
 * Count-returning functions report the number of individual rewrites
 * (instructions folded, propagated uses, eliminated instructions...)
 * so the PassManager's change counters carry real magnitudes, not
 * just changed/unchanged bits.
 */

#ifndef PREDILP_OPT_TRANSFORMS_HH
#define PREDILP_OPT_TRANSFORMS_HH

#include "analysis/profile.hh"
#include "ir/program.hh"

namespace predilp
{

/**
 * Fold instructions whose sources are all constants, and turn
 * constant-condition branches into jumps or nothing.
 * @return number of instructions folded or simplified.
 */
int constantFold(Function &fn);

/**
 * Block-local copy and constant propagation: forward the sources of
 * unguarded mov/fmov instructions into later uses within the block.
 * @return number of operands rewritten.
 */
int copyPropagate(Function &fn);

/**
 * Block-local common subexpression elimination over pure operations
 * and loads (loads are invalidated by stores and calls). Guarded
 * instructions participate only when guards match exactly.
 * @return number of redundant computations replaced by moves.
 */
int localCSE(Function &fn);

/**
 * Remove instructions whose results are never used and which have no
 * side effects, using global liveness.
 * @return number of instructions removed.
 */
int deadCodeElim(Function &fn);

/**
 * CFG cleanup: thread jumps through empty blocks, merge straight-line
 * block pairs, and prune unreachable blocks.
 * @return number of jumps threaded plus block pairs merged.
 */
int simplifyCfg(Function &fn);

/**
 * Function inlining: splice small leaf callees (at most
 * @p maxCalleeInstrs instructions, no calls of their own) into their
 * call sites. Run before region formation — hyperblocks exclude
 * call-containing blocks, so inlining hot helpers (stdio-style
 * getchar, comparison kernels) is what lets the paper's loops
 * if-convert at all.
 * @return number of call sites inlined.
 */
int inlineFunctions(Program &prog, std::size_t maxCalleeInstrs = 32);

/**
 * Copy coalescing: fold "op t, ...; mov x, t" pairs (the frontend's
 * assignment pattern) into "op x, ..." when t is a single-def,
 * single-use temporary. Shrinks every model's code, and especially
 * the partial-predication lowering's expansion.
 * @return number of pairs coalesced.
 */
int coalesceCopies(Function &fn);

/**
 * Loop-invariant code motion (header-resident instructions only):
 * loads and pure operations whose sources are loop-invariant move to
 * a freshly created preheader; hoisted trapping instructions become
 * speculative (silent). Loads are only hoisted from loops free of
 * stores and calls.
 * @return number of instructions hoisted.
 */
int licmFunction(Function &fn);

/** licmFunction over every function. */
int licmProgram(Program &prog);

/**
 * Block-local memory forwarding: a load from a statically known slot
 * (immediate base + offset) whose current contents are known — from
 * a preceding store or load to the same slot — becomes a register
 * move. Breaks the store-to-load recurrences of stdio-style buffer
 * bookkeeping.
 * @return number of loads forwarded.
 */
int forwardMemory(Function &fn);

/** Loop unrolling knobs. */
struct UnrollOptions
{
    std::uint64_t minCount = 256;    ///< minimum loop weight.
    std::size_t maxBodyInstrs = 40;  ///< only tight loops unroll.
    std::size_t targetInstrs = 96;   ///< unrolled body budget.
    std::size_t maxFactor = 4;
};

/**
 * Unroll hot self-loop blocks (formed superblock/hyperblock loops or
 * tight plain loops) in place, as the IMPACT compiler does during
 * superblock ILP optimization. Run after region formation, before
 * scheduling.
 * @return number of extra body copies created.
 */
int unrollLoops(Function &fn, const FunctionProfile &profile,
                const UnrollOptions &opts = {});

/** unrollLoops over every profiled function. */
int unrollLoops(Program &prog, const ProgramProfile &profile,
                const UnrollOptions &opts = {});

/**
 * Profile-guided code layout. Orders blocks so that likely successors
 * follow their predecessors, converts jumps-to-next into
 * fallthroughs, and inverts branch conditions so that off-path
 * targets are the taken direction where that saves a jump. After this
 * pass the function is in its final emission order, ready for
 * scheduling and timing simulation.
 *
 * @param profile profile for this function, or nullptr for static
 * heuristics.
 */
void layoutFunction(Function &fn, const FunctionProfile *profile);

/** layoutFunction() over every function. */
void layoutProgram(Program &prog, const ProgramProfile *profile);

} // namespace predilp

#endif // PREDILP_OPT_TRANSFORMS_HH
