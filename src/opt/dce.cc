#include <algorithm>

#include "analysis/liveness.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/** @return true when @p instr must be kept regardless of liveness. */
bool
hasObservableEffect(const Instruction &instr)
{
    const auto &info = instr.info();
    if (info.sideEffect)
        return true; // stores, putc/getc, jumps, calls, rets.
    if (instr.isCondBranch())
        return true;
    if (instr.isPredAll())
        return true; // rewrites the whole predicate file.
    // A trapping instruction in its excepting form is observable
    // (it may terminate the program).
    if (instr.mayTrap())
        return true;
    return false;
}

/** One backward sweep; @return number of instructions removed. */
int
sweepOnce(Function &fn)
{
    CfgInfo cfg(fn);
    Liveness liveness(fn, cfg);
    const RegIndexer &indexer = liveness.indexer();
    int removed = 0;
    std::vector<Reg> regs;

    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        auto &instrs = bb->instrs();

        // Seed with the fallthrough path's live-in; side-exit
        // targets are folded in by backwardStep as the walk passes
        // each branch (a value dead at the block end can still be
        // live at an earlier exit).
        BitVector live(indexer.size());
        if (bb->fallthrough() != invalidBlock)
            live.unionWith(liveness.liveIn(bb->fallthrough()));

        for (std::size_t i = instrs.size(); i > 0; --i) {
            Instruction &instr = instrs[i - 1];
            bool removable = false;
            if (!hasObservableEffect(instr) &&
                instr.definesSomething()) {
                regs.clear();
                collectDefs(instr, fn, regs);
                removable = std::none_of(
                    regs.begin(), regs.end(), [&](Reg reg) {
                        return live.test(indexer.index(reg));
                    });
            } else if (instr.op() == Opcode::Nop) {
                removable = true;
            }

            if (removable) {
                instrs.erase(instrs.begin() +
                             static_cast<std::ptrdiff_t>(i - 1));
                removed += 1;
                continue;
            }

            liveness.backwardStep(instr, fn, live);
        }
    }
    return removed;
}

} // namespace

int
deadCodeElim(Function &fn)
{
    int total = 0;
    for (int iter = 0; iter < 20; ++iter) {
        int removed = sweepOnce(fn);
        if (removed == 0)
            break;
        total += removed;
    }
    return total;
}

namespace
{

class DCEPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.dce"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto removed = static_cast<std::uint64_t>(deadCodeElim(fn));
        if (removed != 0)
            ctx.stats.counter("opt.dce.removed").add(removed);
        return removed;
    }
};

} // namespace

std::unique_ptr<Pass>
createDCEPass()
{
    return std::make_unique<DCEPass>();
}

} // namespace predilp
