#include <algorithm>
#include <set>
#include <vector>

#include "analysis/loops.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

void
retarget(Function &fn, BlockId from, BlockId oldTarget,
         BlockId newTarget)
{
    BasicBlock *bb = fn.block(from);
    for (auto &instr : bb->instrs()) {
        if ((instr.isCondBranch() || instr.isJump()) &&
            instr.target() == oldTarget) {
            instr.setTarget(newTarget);
        }
    }
    if (bb->fallthrough() == oldTarget)
        bb->setFallthrough(newTarget);
}

/** Hoist invariant header-resident instructions of one loop. */
int
hoistLoop(Function &fn, const Loop &loop, const CfgInfo &cfg)
{
    BlockId header = loop.header;
    std::set<BlockId> body(loop.body.begin(), loop.body.end());

    // Gather loop-defined registers, memory/call hazards, and use
    // positions of each register within the header.
    std::set<Reg> loopDefs;
    std::map<Reg, int> loopDefCount;
    bool hasStore = false;
    bool hasCall = false;
    std::vector<Reg> scratch;
    for (BlockId id : loop.body) {
        for (const auto &instr : fn.block(id)->instrs()) {
            scratch.clear();
            collectDefs(instr, fn, scratch);
            for (Reg reg : scratch) {
                loopDefs.insert(reg);
                loopDefCount[reg] += 1;
            }
            if (instr.isStore() ||
                instr.op() == Opcode::ReadBlock) {
                hasStore = true;
            }
            if (instr.isCall()) {
                hasCall = true;
                hasStore = true; // callee may store.
            }
        }
    }

    // Find candidate instructions: the prefix of the header before
    // any control transfer.
    BasicBlock *hb = fn.block(header);

    auto invariant = [&](const Instruction &instr) {
        const auto &info = instr.info();
        if (instr.isControlTransfer() || instr.isCall() ||
            info.sideEffect || instr.isStore() ||
            instr.isPredDefine() || instr.isPredAll() ||
            info.isCondMove || instr.guarded()) {
            return false;
        }
        if (!instr.dest().valid())
            return false;
        if (instr.isLoad() && (hasStore || hasCall))
            return false;
        for (const auto &src : instr.srcs()) {
            if (src.isReg() && loopDefs.count(src.reg()) != 0)
                return false;
        }
        if (loopDefCount[instr.dest()] != 1)
            return false;
        return true;
    };

    // Collect the hoist set iteratively (a hoisted def leaves the
    // loop-def set, enabling dependents).
    std::vector<std::size_t> toHoist;
    bool changed = true;
    std::set<std::size_t> chosen;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < hb->instrs().size(); ++i) {
            const Instruction &instr = hb->instrs()[i];
            if (instr.isControlTransfer() || instr.isCall())
                break; // only the always-executed header prefix.
            if (chosen.count(i) != 0)
                continue;
            if (!invariant(instr))
                continue;
            // No use of dest earlier in the header (it would read
            // the previous iteration's value on entry).
            bool earlyUse = false;
            for (std::size_t k = 0; k < i; ++k) {
                scratch.clear();
                collectUses(hb->instrs()[k], scratch);
                for (Reg reg : scratch) {
                    if (reg == instr.dest())
                        earlyUse = true;
                }
            }
            if (earlyUse)
                continue;
            chosen.insert(i);
            toHoist.push_back(i);
            loopDefs.erase(instr.dest());
            changed = true;
        }
    }
    if (toHoist.empty())
        return 0;

    // Build (or find) the preheader.
    std::vector<BlockId> outsidePreds;
    for (BlockId pred : cfg.preds(header)) {
        if (body.count(pred) == 0)
            outsidePreds.push_back(pred);
    }
    BasicBlock *pre = fn.newBlock(hb->name() + ".pre");
    hb = fn.block(header); // newBlock may reallocate.
    Instruction jump = fn.makeInstr(Opcode::Jump);
    jump.setTarget(header);
    for (BlockId pred : outsidePreds)
        retarget(fn, pred, header, pre->id());

    // Move the hoisted instructions (in original order).
    std::sort(toHoist.begin(), toHoist.end());
    for (std::size_t idx : toHoist) {
        Instruction instr = hb->instrs()[idx];
        if (instr.info().canTrap)
            instr.setSpeculative(true);
        pre->instrs().push_back(std::move(instr));
    }
    pre->instrs().push_back(std::move(jump));
    for (auto it = toHoist.rbegin(); it != toHoist.rend(); ++it) {
        hb->instrs().erase(hb->instrs().begin() +
                           static_cast<std::ptrdiff_t>(*it));
    }

    // If the header was the function entry, the preheader becomes
    // the entry.
    auto &layout = fn.layout();
    if (layout.front() == header) {
        layout.erase(std::find(layout.begin(), layout.end(),
                               pre->id()));
        layout.insert(layout.begin(), pre->id());
    }
    return static_cast<int>(toHoist.size());
}

} // namespace

int
licmFunction(Function &fn)
{
    // One loop at a time, innermost first, recomputing the CFG and
    // loop nest after every change: preheader insertion invalidates
    // predecessor lists and loop membership.
    int total = 0;
    for (int iter = 0; iter < 64; ++iter) {
        CfgInfo cfg(fn);
        DominatorTree dom(fn, cfg);
        LoopInfo loops(fn, cfg, dom);
        int hoisted = 0;
        for (const Loop &loop : loops.loops()) {
            hoisted = hoistLoop(fn, loop, cfg);
            if (hoisted > 0)
                break;
        }
        if (hoisted == 0)
            break;
        total += hoisted;
    }
    return total;
}

int
licmProgram(Program &prog)
{
    int hoisted = 0;
    for (auto &fn : prog.functions())
        hoisted += licmFunction(*fn);
    return hoisted;
}

namespace
{

class LicmPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.licm"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto hoisted = static_cast<std::uint64_t>(licmFunction(fn));
        if (hoisted != 0)
            ctx.stats.counter("opt.licm.hoisted").add(hoisted);
        return hoisted;
    }
};

} // namespace

std::unique_ptr<Pass>
createLicmPass()
{
    return std::make_unique<LicmPass>();
}

} // namespace predilp
