/**
 * @file
 * The compiler's uniform pass seam. Every transformation the driver
 * pipeline runs — scalar cleanups, region formation, lowering,
 * scheduling — implements Pass, and a PassManager executes a
 * declarative list of them, recording wall time, change counts, and
 * before/after IR size for each run into a StatsRegistry
 * (support/stats_registry.hh). The per-pass counter scope is the
 * pass's name: pass "opt.cse" owns `opt.cse.seconds`,
 * `opt.cse.changes`, ..., and may register extra counters of its own
 * (e.g. `opt.cse.removed`) through PassContext::stats.
 *
 * Scalar passes that iterate to a fixpoint are grouped with
 * addFixpoint(): the group reruns while any member reports changes,
 * up to an iteration cap. Because every member is function-local and
 * idempotent once a function reaches its fixpoint, this yields the
 * same final IR as the classic per-function
 * optimize-to-fixpoint loop it replaces.
 */

#ifndef PREDILP_OPT_PASS_HH
#define PREDILP_OPT_PASS_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/profile.hh"
#include "ir/program.hh"
#include "support/stats_registry.hh"

namespace predilp
{

/** What one pass invocation did. */
struct PassResult
{
    /** Number of individual rewrites (0 = nothing changed). */
    std::uint64_t changes = 0;

    bool changed() const { return changes != 0; }
};

/**
 * Shared state threaded through a pass pipeline: the stats registry
 * every pass records into, plus the execution profiles
 * profile-guided passes consume. The driver's ProfilePass fills
 * these; `profile` is the pre-formation profile (used by region
 * selection and final layout), `regionProfile` is re-measured on the
 * formed code (used by branch combining and unrolling, whose
 * decisions depend on instruction ids created during formation).
 */
struct PassContext
{
    explicit PassContext(StatsRegistry &statsRegistry)
        : stats(statsRegistry)
    {}

    StatsRegistry &stats;

    /**
     * When set, the IR verifier runs after every pass invocation
     * (including fixpoint-group members) and a violation throws
     * VerifyError naming the offending pass and the first broken
     * invariant. Off by default — it is meant for the differential
     * fuzz oracle, debugging, and tests, not the benchmark hot path.
     */
    bool verifyAfterEach = false;

    /** Pre-formation profile; null until a ProfilePass runs. */
    std::unique_ptr<ProgramProfile> profile;

    /** Post-formation re-profile; null until refreshed. */
    std::unique_ptr<ProgramProfile> regionProfile;

    /** Input fed to profiling emulation runs. */
    std::string profileInput;

    /** Emulator fuel for profiling runs. */
    std::uint64_t profileFuel = 2'000'000'000ull;

    /**
     * @return the freshest profile available — the re-measured
     * region profile when present, else the pre-formation profile;
     * null before any profiling pass ran.
     */
    const ProgramProfile *
    freshestProfile() const
    {
        if (regionProfile)
            return regionProfile.get();
        return profile.get();
    }
};

/** One unit of program transformation behind the uniform seam. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /**
     * Dotted stats scope and display name, e.g. "opt.cse" or
     * "hyperblock.form". Must be stable across invocations.
     */
    virtual std::string name() const = 0;

    /** Transform @p prog; @return what changed. */
    virtual PassResult run(Program &prog, PassContext &ctx) = 0;
};

/**
 * A pass that operates function-at-a-time with no cross-function
 * effects. run() maps runOnFunction over the program in layout
 * order.
 */
class FunctionPass : public Pass
{
  public:
    PassResult run(Program &prog, PassContext &ctx) final;

    /** @return number of rewrites performed in @p fn. */
    virtual std::uint64_t runOnFunction(Function &fn,
                                        PassContext &ctx) = 0;
};

/**
 * Wrap a count-returning free function as a FunctionPass:
 *   makeFunctionPass("opt.fold", constantFold)
 */
std::unique_ptr<Pass> makeFunctionPass(std::string name,
                                       int (*fn)(Function &));

/**
 * Runs a declarative list of passes in order, wrapping every
 * invocation in the uniform instrumentation seam. For a pass named
 * P, each run records into the registry:
 *   P.seconds        wall time (timer)
 *   P.runs           invocations
 *   P.changes        total rewrites reported
 *   P.changed_runs   invocations that changed anything
 *   P.instrs_removed / P.instrs_added   program-size delta
 * Fixpoint groups additionally record <group>.iterations.
 */
class PassManager
{
  public:
    PassManager() = default;

    /** Append one pass. */
    void add(std::unique_ptr<Pass> pass);

    /**
     * Append a group of passes iterated to a fixpoint: the group
     * reruns while any member reports changes, up to @p maxIters
     * iterations. @p groupName scopes the group's own counters
     * (<group>.iterations).
     */
    void addFixpoint(std::string groupName,
                     std::vector<std::unique_ptr<Pass>> group,
                     int maxIters = 10);

    /** Top-level pass names, in execution order. */
    std::vector<std::string> passNames() const;

    /** Run every pass on @p prog. @return aggregate changes. */
    PassResult run(Program &prog, PassContext &ctx);

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** Total instruction count of @p prog (all functions, all blocks). */
std::uint64_t programInstrCount(const Program &prog);

/**
 * Run @p pass once behind the uniform instrumentation seam
 * (the same recording PassManager::run applies). Exposed for
 * fixpoint-style custom drivers.
 */
PassResult runInstrumented(Pass &pass, Program &prog,
                           PassContext &ctx);

} // namespace predilp

#endif // PREDILP_OPT_PASS_HH
