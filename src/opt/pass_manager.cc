#include "opt/pass.hh"

#include "ir/verifier.hh"
#include "support/logging.hh"

namespace predilp
{

std::uint64_t
programInstrCount(const Program &prog)
{
    std::uint64_t count = 0;
    for (const auto &fn : prog.functions()) {
        for (BlockId id : fn->layout())
            count += fn->block(id)->instrs().size();
    }
    return count;
}

PassResult
FunctionPass::run(Program &prog, PassContext &ctx)
{
    PassResult result;
    for (auto &fn : prog.functions())
        result.changes += runOnFunction(*fn, ctx);
    return result;
}

PassResult
runInstrumented(Pass &pass, Program &prog, PassContext &ctx)
{
    const std::string scope = pass.name();
    const std::uint64_t before = programInstrCount(prog);
    PassResult result;
    {
        ScopedTimer timer(ctx.stats.timer(scope + ".seconds"));
        result = pass.run(prog, ctx);
    }
    const std::uint64_t after = programInstrCount(prog);
    if (ctx.verifyAfterEach) {
        std::string err = verifyProgram(prog);
        if (!err.empty())
            throw VerifyError(scope, err);
    }
    ctx.stats.counter(scope + ".runs").add();
    ctx.stats.counter(scope + ".changes").add(result.changes);
    if (result.changed())
        ctx.stats.counter(scope + ".changed_runs").add();
    if (after >= before)
        ctx.stats.counter(scope + ".instrs_added").add(after - before);
    else
        ctx.stats.counter(scope + ".instrs_removed")
            .add(before - after);
    return result;
}

namespace
{

/** makeFunctionPass adapter: name + count-returning free function. */
class FreeFunctionPass : public FunctionPass
{
  public:
    FreeFunctionPass(std::string name, int (*fn)(Function &))
        : name_(std::move(name)), fn_(fn)
    {}

    std::string name() const override { return name_; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &) override
    {
        int changes = fn_(fn);
        return changes > 0 ? static_cast<std::uint64_t>(changes) : 0;
    }

  private:
    std::string name_;
    int (*fn_)(Function &);
};

/**
 * A group of passes iterated to a fixpoint: rerun while any member
 * reports changes, up to the iteration cap. Members run behind the
 * same instrumentation seam as top-level passes, so their counters
 * accumulate per iteration.
 */
class FixpointPass : public Pass
{
  public:
    FixpointPass(std::string name,
                 std::vector<std::unique_ptr<Pass>> group,
                 int maxIters)
        : name_(std::move(name)), group_(std::move(group)),
          maxIters_(maxIters)
    {}

    std::string name() const override { return name_; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult total;
        Counter &iterations =
            ctx.stats.counter(name_ + ".iterations");
        for (int iter = 0; iter < maxIters_; ++iter) {
            iterations.add();
            std::uint64_t changes = 0;
            for (auto &pass : group_)
                changes += runInstrumented(*pass, prog, ctx).changes;
            total.changes += changes;
            if (changes == 0)
                break;
        }
        return total;
    }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Pass>> group_;
    int maxIters_;
};

} // namespace

std::unique_ptr<Pass>
makeFunctionPass(std::string name, int (*fn)(Function &))
{
    return std::make_unique<FreeFunctionPass>(std::move(name), fn);
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    panicIf(pass == nullptr, "PassManager::add: null pass");
    passes_.push_back(std::move(pass));
}

void
PassManager::addFixpoint(std::string groupName,
                         std::vector<std::unique_ptr<Pass>> group,
                         int maxIters)
{
    panicIf(group.empty(), "PassManager::addFixpoint: empty group");
    panicIf(maxIters <= 0,
            "PassManager::addFixpoint: nonpositive iteration cap");
    passes_.push_back(std::make_unique<FixpointPass>(
        std::move(groupName), std::move(group), maxIters));
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto &pass : passes_)
        names.push_back(pass->name());
    return names;
}

PassResult
PassManager::run(Program &prog, PassContext &ctx)
{
    PassResult total;
    for (auto &pass : passes_)
        total.changes += runInstrumented(*pass, prog, ctx).changes;
    return total;
}

} // namespace predilp
