#include <algorithm>

#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * Pick the successor most likely to execute next after @p bb: the
 * edge with the highest profile count, preferring the terminal
 * transfer on ties (it is the "rest of the weight" edge).
 */
BlockId
likelyNext(const FunctionProfile *profile, const BasicBlock &bb)
{
    std::uint64_t entries =
        profile != nullptr ? profile->blockCount(bb.id()) : 0;
    std::uint64_t remaining = entries;

    BlockId best = invalidBlock;
    std::uint64_t bestCount = 0;
    bool first = true;

    for (const auto &instr : bb.instrs()) {
        if (instr.isCondBranch() ||
            (instr.isJump() && instr.guarded())) {
            std::uint64_t taken =
                profile != nullptr
                    ? profile->takenCount(instr.id())
                    : 0;
            if (first || taken > bestCount) {
                best = instr.target();
                bestCount = taken;
                first = false;
            }
            remaining -= std::min(remaining, taken);
        } else if (instr.isJump()) {
            if (first || remaining >= bestCount)
                return instr.target();
            return best;
        } else if (instr.isRet() && !instr.guarded()) {
            return best;
        }
    }
    if (bb.fallthrough() != invalidBlock) {
        if (first || remaining >= bestCount)
            return bb.fallthrough();
    }
    return best;
}

} // namespace

void
layoutFunction(Function &fn, const FunctionProfile *profile)
{
    if (fn.layout().empty())
        return;

    // Step 1: make every fallthrough explicit so reordering is free.
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        if (bb->fallthrough() != invalidBlock) {
            if (!bb->endsInUnconditionalTransfer()) {
                Instruction jump = fn.makeInstr(Opcode::Jump);
                jump.setTarget(bb->fallthrough());
                bb->instrs().push_back(std::move(jump));
            }
            bb->setFallthrough(invalidBlock);
        }
    }

    // Step 2: order blocks in chains along likely successors.
    std::vector<bool> placed(fn.numBlockIds(), false);
    std::vector<BlockId> order;
    auto place = [&](BlockId seed) {
        BlockId cur = seed;
        while (cur != invalidBlock &&
               !placed[static_cast<std::size_t>(cur)]) {
            placed[static_cast<std::size_t>(cur)] = true;
            order.push_back(cur);
            cur = likelyNext(profile, *fn.block(cur));
        }
    };

    place(fn.layout().front());
    // Remaining seeds: heaviest blocks first.
    std::vector<BlockId> rest;
    for (BlockId id : fn.layout()) {
        if (!placed[static_cast<std::size_t>(id)])
            rest.push_back(id);
    }
    std::stable_sort(rest.begin(), rest.end(),
                     [&](BlockId a, BlockId b) {
                         std::uint64_t wa =
                             profile ? profile->blockCount(a) : 0;
                         std::uint64_t wb =
                             profile ? profile->blockCount(b) : 0;
                         return wa > wb;
                     });
    for (BlockId id : rest)
        place(id);
    fn.layout() = order;

    // Step 3: convert jumps-to-next into fallthroughs, inverting the
    // preceding conditional branch when that is what saves the jump.
    for (std::size_t i = 0; i < order.size(); ++i) {
        BasicBlock *bb = fn.block(order[i]);
        BlockId next =
            i + 1 < order.size() ? order[i + 1] : invalidBlock;
        auto &instrs = bb->instrs();
        if (instrs.empty())
            continue;
        Instruction &last = instrs.back();
        if (!last.isJump() || last.guarded())
            continue;

        if (last.target() == next) {
            instrs.pop_back();
            bb->setFallthrough(next);
            continue;
        }
        if (instrs.size() >= 2) {
            Instruction &prev = instrs[instrs.size() - 2];
            if (prev.isCondBranch() && !prev.guarded() &&
                prev.target() == next) {
                prev.setOp(invertBranch(prev.op()));
                prev.setTarget(last.target());
                instrs.pop_back();
                bb->setFallthrough(next);
            }
        }
    }
}

void
layoutProgram(Program &prog, const ProgramProfile *profile)
{
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp =
            profile != nullptr ? profile->find(fn->name()) : nullptr;
        layoutFunction(*fn, fp);
    }
}

namespace
{

/**
 * Final block layout. Deliberately reads PassContext::profile — the
 * pre-formation profile — not freshestProfile(): chain layout keys
 * off the original branch weights even after formation rewrote the
 * regions.
 */
class LayoutPass : public Pass
{
  public:
    std::string name() const override { return "opt.layout"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        layoutProgram(prog, ctx.profile.get());
        result.changes = prog.functions().size();
        ctx.stats.counter("opt.layout.functions")
            .add(result.changes);
        return result;
    }
};

} // namespace

std::unique_ptr<Pass>
createLayoutPass()
{
    return std::make_unique<LayoutPass>();
}

} // namespace predilp
