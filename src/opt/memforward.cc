#include <map>
#include <utility>

#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/** Key for a statically known memory slot: (base, offset). */
using SlotKey = std::pair<std::int64_t, std::int64_t>;

/** A remembered value in a slot, with the operand that holds it. */
struct SlotValue
{
    Operand value;  ///< register or immediate last stored/loaded.
    bool isFloat = false;
};

bool
slotOf(const Instruction &instr, SlotKey &key)
{
    if (!instr.src(0).isImm() || !instr.src(1).isImm())
        return false;
    key = {instr.src(0).immValue(), instr.src(1).immValue()};
    return true;
}

} // namespace

int
forwardMemory(Function &fn)
{
    int forwarded = 0;
    std::vector<Reg> defs;

    for (BlockId id : fn.layout()) {
        std::map<SlotKey, SlotValue> slots;
        for (auto &instr : fn.block(id)->instrs()) {
            // Forward a whole-word load from a known slot.
            if ((instr.op() == Opcode::Ld ||
                 instr.op() == Opcode::FLd)) {
                SlotKey key;
                if (slotOf(instr, key)) {
                    auto it = slots.find(key);
                    bool isFloat = instr.op() == Opcode::FLd;
                    if (it != slots.end() &&
                        it->second.isFloat == isFloat) {
                        Reg dest = instr.dest();
                        Reg guard = instr.guard();
                        Operand value = it->second.value;
                        instr.setOp(isFloat ? Opcode::FMov
                                            : Opcode::Mov);
                        instr.srcs().clear();
                        instr.addSrc(value);
                        instr.setDest(dest);
                        instr.setGuard(guard);
                        instr.setSpeculative(false);
                        forwarded += 1;
                        // Fall through to def-invalidations below.
                    } else if (!instr.guarded()) {
                        // Remember the loaded value.
                        slots[key] =
                            SlotValue{Operand(instr.dest()),
                                      isFloat};
                    }
                }
            } else if (instr.op() == Opcode::St ||
                       instr.op() == Opcode::FSt) {
                SlotKey key;
                if (slotOf(instr, key) && !instr.guarded()) {
                    slots[key] = SlotValue{
                        instr.src(2), instr.op() == Opcode::FSt};
                } else {
                    // Unknown or conditional store: anything may
                    // have changed.
                    slots.clear();
                }
            } else if (instr.isStore() || instr.isCall() ||
                       instr.op() == Opcode::ReadBlock) {
                // Byte stores, calls, bulk input: be conservative.
                slots.clear();
            }

            // Invalidate slots whose value register is overwritten.
            defs.clear();
            collectDefs(instr, fn, defs);
            for (Reg reg : defs) {
                for (auto it = slots.begin(); it != slots.end();) {
                    if (it->second.value.isReg() &&
                        it->second.value.reg() == reg) {
                        it = slots.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
        }
    }
    return forwarded;
}

namespace
{

class MemoryForwardPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.memfwd"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto forwarded =
            static_cast<std::uint64_t>(forwardMemory(fn));
        if (forwarded != 0)
            ctx.stats.counter("opt.memfwd.forwarded").add(forwarded);
        return forwarded;
    }
};

} // namespace

std::unique_ptr<Pass>
createMemoryForwardPass()
{
    return std::make_unique<MemoryForwardPass>();
}

} // namespace predilp
