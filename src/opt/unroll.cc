#include <algorithm>

#include "analysis/profile.hh"
#include "ir/function.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * Recognize a self-loop block (a formed superblock/hyperblock loop
 * or a tight plain loop): the last instruction transfers to the
 * block itself, either as an unguarded jump (hyperblock backedge) or
 * as a conditional branch (superblock backedge).
 */
bool
selfLoopShape(const BasicBlock &bb, bool &condBackedge,
              bool &trailingJump, BlockId &jumpExit)
{
    if (bb.instrs().empty())
        return false;
    const Instruction &last = bb.instrs().back();
    if (last.isJump() && !last.guarded() &&
        last.target() == bb.id()) {
        condBackedge = false;
        trailingJump = false;
        return true;
    }
    if (last.isCondBranch() && !last.guarded() &&
        last.target() == bb.id()) {
        condBackedge = true;
        trailingJump = false;
        return true;
    }
    // [..., bcc -> self, jump exit]
    if (bb.instrs().size() >= 2 && last.isJump() &&
        !last.guarded()) {
        const Instruction &prev =
            bb.instrs()[bb.instrs().size() - 2];
        if (prev.isCondBranch() && !prev.guarded() &&
            prev.target() == bb.id()) {
            condBackedge = true;
            trailingJump = true;
            jumpExit = last.target();
            return true;
        }
    }
    return false;
}

int
unrollBlock(Function &fn, BasicBlock &bb, int factor)
{
    bool condBackedge = false;
    bool trailingJump = false;
    BlockId jumpExit = invalidBlock;
    if (!selfLoopShape(bb, condBackedge, trailingJump, jumpExit))
        return 0;

    // The loop-exit continuation: where control goes when the
    // conditional backedge falls through.
    BlockId exitTarget =
        trailingJump ? jumpExit : bb.fallthrough();
    if (condBackedge && exitTarget == invalidBlock)
        return 0;

    std::vector<Instruction> body = bb.instrs();
    Instruction trailer;
    bool hasTrailer = trailingJump;
    if (trailingJump) {
        trailer = body.back();
        body.pop_back();
    }
    Instruction backedge = body.back();
    body.pop_back();

    std::vector<Instruction> unrolled;
    unrolled.reserve((body.size() + 1) *
                     static_cast<std::size_t>(factor));
    for (int copy = 0; copy < factor; ++copy) {
        for (const Instruction &orig : body) {
            Instruction instr = orig;
            if (copy > 0)
                instr.setId(fn.nextInstrId());
            unrolled.push_back(std::move(instr));
        }
        if (copy + 1 < factor) {
            if (condBackedge) {
                // Iterations continue by falling into the next
                // copy; leaving the loop branches to the exit.
                Instruction exitBr(invertBranch(backedge.op()));
                exitBr.setId(fn.nextInstrId());
                exitBr.addSrc(backedge.src(0));
                exitBr.addSrc(backedge.src(1));
                exitBr.setTarget(exitTarget);
                unrolled.push_back(std::move(exitBr));
            }
            // Unconditional backedges simply fall into the next
            // copy: the predicated exit jumps inside the body are
            // the only way out.
        } else {
            unrolled.push_back(backedge);
            if (hasTrailer)
                unrolled.push_back(trailer);
        }
    }
    bb.instrs() = std::move(unrolled);
    return factor - 1;
}

} // namespace

int
unrollLoops(Function &fn, const FunctionProfile &profile,
            const UnrollOptions &opts)
{
    int unrolled = 0;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        if (profile.blockCount(id) < opts.minCount)
            continue;
        std::size_t size = bb->instrs().size();
        if (size < 2 || size > opts.maxBodyInstrs)
            continue;
        int factor = static_cast<int>(
            std::min<std::size_t>(opts.maxFactor,
                                  opts.targetInstrs / size));
        if (factor < 2)
            continue;
        unrolled += unrollBlock(fn, *bb, factor);
    }
    return unrolled;
}

int
unrollLoops(Program &prog, const ProgramProfile &profile,
            const UnrollOptions &opts)
{
    int unrolled = 0;
    for (auto &fn : prog.functions()) {
        const FunctionProfile *fp = profile.find(fn->name());
        if (fp == nullptr)
            continue;
        unrolled += unrollLoops(*fn, *fp, opts);
    }
    return unrolled;
}

namespace
{

/**
 * Hot self-loop unrolling. Consumes PassContext::regionProfile (the
 * post-formation re-profile) — unrolling keys off block counts of
 * blocks created during formation, which the pre-formation profile
 * has never seen. A no-op when no region profile is available.
 */
class UnrollPass : public Pass
{
  public:
    explicit UnrollPass(UnrollOptions opts) : opts_(opts) {}

    std::string name() const override { return "opt.unroll"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        if (!ctx.regionProfile)
            return result;
        result.changes = static_cast<std::uint64_t>(
            unrollLoops(prog, *ctx.regionProfile, opts_));
        if (result.changed())
            ctx.stats.counter("opt.unroll.copies")
                .add(result.changes);
        return result;
    }

  private:
    UnrollOptions opts_;
};

} // namespace

std::unique_ptr<Pass>
createUnrollPass(UnrollOptions opts)
{
    return std::make_unique<UnrollPass>(opts);
}

} // namespace predilp
