#include <map>
#include <vector>

#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/** Count defs and uses of every register across the function. */
void
countOccurrences(const Function &fn, std::map<Reg, int> &defs,
                 std::map<Reg, int> &uses)
{
    std::vector<Reg> scratch;
    for (BlockId id : fn.layout()) {
        for (const auto &instr : fn.block(id)->instrs()) {
            scratch.clear();
            collectDefs(instr, fn, scratch);
            for (Reg reg : scratch)
                defs[reg] += 1;
            scratch.clear();
            collectUses(instr, scratch);
            for (Reg reg : scratch)
                uses[reg] += 1;
        }
    }
}

bool
touchesReg(const Instruction &instr, const Function &fn, Reg reg)
{
    std::vector<Reg> scratch;
    collectUses(instr, scratch);
    for (Reg r : scratch) {
        if (r == reg)
            return true;
    }
    scratch.clear();
    collectDefs(instr, fn, scratch);
    for (Reg r : scratch) {
        if (r == reg)
            return true;
    }
    return false;
}

/** One coalescing sweep over @p bb; @return true on change. */
bool
coalesceBlock(Function &fn, BasicBlock &bb,
              const std::map<Reg, int> &defs,
              const std::map<Reg, int> &uses)
{
    auto &instrs = bb.instrs();
    for (std::size_t j = 0; j < instrs.size(); ++j) {
        const Instruction &mov = instrs[j];
        if (mov.op() != Opcode::Mov && mov.op() != Opcode::FMov)
            continue;
        if (!mov.src(0).isReg())
            continue;
        Reg temp = mov.src(0).reg();
        Reg target = mov.dest();
        if (temp == target)
            continue;

        // temp must be a pure single-def single-use temporary.
        auto dIt = defs.find(temp);
        auto uIt = uses.find(temp);
        if (dIt == defs.end() || dIt->second != 1)
            continue;
        if (uIt == uses.end() || uIt->second != 1)
            continue;

        // Find temp's def above the mov in this block.
        for (std::size_t step = 1; step <= j; ++step) {
            std::size_t i = j - step;
            Instruction &def = instrs[i];
            if (def.dest() != temp)
                continue;
            // The def must write temp outright under the same
            // guard; conditional moves merge and cannot be
            // retargeted.
            if (def.info().isCondMove || def.isCall() ||
                def.guard() != mov.guard()) {
                break;
            }
            // target must be untouched strictly between def and
            // mov, and no control transfer may separate them: on a
            // side-exit path the write to target would become
            // visible too early.
            bool clean = true;
            for (std::size_t k = i + 1; k < j; ++k) {
                if (touchesReg(instrs[k], fn, target) ||
                    instrs[k].isControlTransfer() ||
                    instrs[k].isCall()) {
                    clean = false;
                    break;
                }
            }
            if (!clean)
                break;
            def.setDest(target);
            instrs.erase(instrs.begin() +
                         static_cast<std::ptrdiff_t>(j));
            return true;
        }
    }
    return false;
}

} // namespace

int
coalesceCopies(Function &fn)
{
    int coalesced = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::map<Reg, int> defs;
        std::map<Reg, int> uses;
        countOccurrences(fn, defs, uses);
        for (BlockId id : fn.layout()) {
            if (coalesceBlock(fn, *fn.block(id), defs, uses)) {
                changed = true;
                coalesced += 1;
                break; // re-count occurrences.
            }
        }
    }
    return coalesced;
}

namespace
{

class CoalescePass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.coalesce"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto coalesced =
            static_cast<std::uint64_t>(coalesceCopies(fn));
        if (coalesced != 0)
            ctx.stats.counter("opt.coalesce.coalesced")
                .add(coalesced);
        return coalesced;
    }
};

} // namespace

std::unique_ptr<Pass>
createCoalescePass()
{
    return std::make_unique<CoalescePass>();
}

} // namespace predilp
