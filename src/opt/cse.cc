#include <map>
#include <sstream>
#include <vector>

#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/** @return true when @p instr is eligible for value numbering. */
bool
cseEligible(const Instruction &instr)
{
    const auto &info = instr.info();
    if (!instr.dest().valid())
        return false;
    if (info.sideEffect || instr.isControlTransfer() ||
        instr.isCall() || instr.isPredDefine() || instr.isPredAll()) {
        return false;
    }
    if (instr.isStore())
        return false;
    if (instr.op() == Opcode::GetC)
        return false;
    // Conditional moves merge with the old destination value, so
    // their "result" is not a pure function of the sources.
    if (info.isCondMove)
        return false;
    return true;
}

std::string
makeKey(const Instruction &instr, int memEpoch)
{
    std::ostringstream os;
    os << static_cast<int>(instr.op()) << '|'
       << (instr.speculative() ? 1 : 0) << '|'
       << (instr.guarded() ? instr.guard().toString() : "-");
    for (const auto &src : instr.srcs())
        os << '|' << src.toString();
    if (instr.isLoad())
        os << "|mem" << memEpoch;
    os << '|'; // terminator so register tokens match exactly.
    return os.str();
}

} // namespace

int
localCSE(Function &fn)
{
    int changes = 0;
    std::vector<Reg> defs;

    for (BlockId id : fn.layout()) {
        std::map<std::string, Reg> available;
        int memEpoch = 0;

        for (auto &instr : fn.block(id)->instrs()) {
            std::string key;
            if (cseEligible(instr)) {
                key = makeKey(instr, memEpoch);
                auto it = available.find(key);
                if (it != available.end()) {
                    bool isFloat =
                        instr.dest().cls() == RegClass::Float;
                    Reg guard = instr.guard();
                    Reg dest = instr.dest();
                    Operand src(it->second);
                    instr.setOp(isFloat ? Opcode::FMov
                                        : Opcode::Mov);
                    instr.srcs().clear();
                    instr.addSrc(src);
                    instr.setDest(dest);
                    instr.setGuard(guard);
                    instr.setSpeculative(false);
                    changes += 1;
                    key.clear(); // the mov defines dest; fall through
                }
            }

            if (instr.isStore() || instr.isCall() ||
                instr.op() == Opcode::ReadBlock) {
                memEpoch += 1;
            }

            // Any definition invalidates expressions using or
            // producing the defined registers.
            defs.clear();
            collectDefs(instr, fn, defs);
            for (Reg reg : defs) {
                std::string regName = reg.toString();
                for (auto it = available.begin();
                     it != available.end();) {
                    bool kill = it->second == reg ||
                                it->first.find('|' + regName + '|') !=
                                    std::string::npos;
                    if (kill)
                        it = available.erase(it);
                    else
                        ++it;
                }
            }

            // Never record an instruction that reads its own
            // destination: the recorded key would describe the
            // pre-update value of the register.
            bool selfRef = false;
            for (const auto &src : instr.srcs()) {
                if (src.isReg() && src.reg() == instr.dest())
                    selfRef = true;
            }
            if (!key.empty() && !instr.guarded() && !selfRef)
                available[key] = instr.dest();
        }
    }
    return changes;
}

namespace
{

class CSEPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.cse"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto removed = static_cast<std::uint64_t>(localCSE(fn));
        if (removed != 0)
            ctx.stats.counter("opt.cse.removed").add(removed);
        return removed;
    }
};

} // namespace

std::unique_ptr<Pass>
createCSEPass()
{
    return std::make_unique<CSEPass>();
}

} // namespace predilp
