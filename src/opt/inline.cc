#include <map>

#include "ir/function.hh"
#include "ir/program.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** @return true when @p fn is a leaf (no calls) small enough. */
bool
inlinable(const Function &fn, std::size_t maxInstrs)
{
    if (fn.instructionCount() > maxInstrs)
        return false;
    for (BlockId id : fn.layout()) {
        for (const auto &instr : fn.block(id)->instrs()) {
            if (instr.isCall())
                return false;
            // Predicated or region-formed callees are never seen
            // here (inlining runs before formation), but guard
            // against misuse.
            if (instr.guarded() || instr.isPredDefine() ||
                instr.isPredAll()) {
                return false;
            }
        }
    }
    return true;
}

/** Remap one callee register into the caller's register space. */
class RegMap
{
  public:
    RegMap(Function &caller) : caller_(caller) {}

    Reg
    map(Reg reg)
    {
        if (!reg.valid())
            return reg;
        auto it = map_.find(reg);
        if (it != map_.end())
            return it->second;
        Reg fresh;
        switch (reg.cls()) {
          case RegClass::Int:
            fresh = caller_.newIntReg();
            break;
          case RegClass::Float:
            fresh = caller_.newFloatReg();
            break;
          case RegClass::Pred:
            fresh = caller_.newPredReg();
            break;
        }
        map_[reg] = fresh;
        return fresh;
    }

  private:
    Function &caller_;
    std::map<Reg, Reg> map_;
};

/**
 * Inline the call at @p callIndex of block @p blockId in @p caller.
 */
void
inlineCall(Function &caller, BlockId blockId, std::size_t callIndex,
           const Function &callee)
{
    // Split the caller block: everything after the call moves to a
    // fresh continuation block.
    BasicBlock *cont = caller.newBlock(
        caller.block(blockId)->name() + ".ret");
    BasicBlock *site = caller.block(blockId);
    BlockId contId = cont->id();
    for (std::size_t i = callIndex + 1; i < site->instrs().size();
         ++i) {
        cont->instrs().push_back(std::move(site->instrs()[i]));
    }
    cont->setFallthrough(site->fallthrough());
    site->setFallthrough(invalidBlock);
    Instruction call = std::move(site->instrs()[callIndex]);
    site->instrs().resize(callIndex);

    RegMap regs(caller);

    // Bind arguments to the remapped parameter registers.
    {
        const auto &params = callee.params();
        for (std::size_t i = 0; i < params.size(); ++i) {
            Reg param = regs.map(params[i]);
            Instruction mv = caller.makeInstr(
                param.cls() == RegClass::Float ? Opcode::FMov
                                               : Opcode::Mov);
            mv.setDest(param);
            mv.addSrc(call.src(i));
            site->instrs().push_back(std::move(mv));
        }
    }

    // Clone the callee body.
    std::map<BlockId, BlockId> blockMap;
    for (BlockId id : callee.layout()) {
        BasicBlock *copy = caller.newBlock(
            callee.name() + "." + callee.block(id)->name());
        blockMap[id] = copy->id();
    }
    for (BlockId id : callee.layout()) {
        const BasicBlock *src = callee.block(id);
        BasicBlock *dst = caller.block(blockMap[id]);
        for (const auto &orig : src->instrs()) {
            if (orig.isRet()) {
                // Return: move the value into the call destination
                // and jump to the continuation.
                if (call.dest().valid()) {
                    panicIf(orig.srcs().empty(),
                            "void return feeding a call value");
                    Operand value = orig.src(0);
                    if (value.isReg())
                        value = Operand(regs.map(value.reg()));
                    Instruction mv = caller.makeInstr(
                        call.dest().cls() == RegClass::Float
                            ? Opcode::FMov
                            : Opcode::Mov);
                    mv.setDest(call.dest());
                    mv.addSrc(value);
                    dst->instrs().push_back(std::move(mv));
                }
                Instruction jump = caller.makeInstr(Opcode::Jump);
                jump.setTarget(contId);
                dst->instrs().push_back(std::move(jump));
                continue;
            }
            Instruction copy = orig;
            copy.setId(caller.nextInstrId());
            if (copy.dest().valid())
                copy.setDest(regs.map(copy.dest()));
            for (auto &pd : copy.predDests())
                pd.reg = regs.map(pd.reg);
            for (std::size_t s = 0; s < copy.srcs().size(); ++s) {
                if (copy.src(s).isReg()) {
                    copy.setSrc(
                        s, Operand(regs.map(copy.src(s).reg())));
                }
            }
            if (copy.guarded())
                copy.setGuard(regs.map(copy.guard()));
            if (copy.target() != invalidBlock)
                copy.setTarget(blockMap.at(copy.target()));
            dst->instrs().push_back(std::move(copy));
        }
        if (src->fallthrough() != invalidBlock) {
            dst->setFallthrough(blockMap.at(src->fallthrough()));
        }
    }

    // Enter the inlined body.
    Instruction enter = caller.makeInstr(Opcode::Jump);
    enter.setTarget(blockMap.at(callee.layout().front()));
    site->instrs().push_back(std::move(enter));
}

} // namespace

int
inlineFunctions(Program &prog, std::size_t maxCalleeInstrs)
{
    int inlined = 0;
    // A few rounds so chains of small functions collapse (leaf-ness
    // is re-evaluated each round).
    for (int round = 0; round < 4; ++round) {
        bool changed = false;
        for (auto &fnPtr : prog.functions()) {
            Function &fn = *fnPtr;
            bool localChange = true;
            while (localChange) {
                localChange = false;
                for (BlockId id : fn.layout()) {
                    auto &instrs = fn.block(id)->instrs();
                    for (std::size_t i = 0; i < instrs.size();
                         ++i) {
                        if (!instrs[i].isCall())
                            continue;
                        const Function *callee =
                            prog.function(instrs[i].callee());
                        panicIf(callee == nullptr,
                                "call to unknown function");
                        if (callee == &fn ||
                            !inlinable(*callee, maxCalleeInstrs)) {
                            continue;
                        }
                        inlineCall(fn, id, i, *callee);
                        inlined += 1;
                        changed = true;
                        localChange = true;
                        break;
                    }
                    if (localChange)
                        break;
                }
            }
        }
        if (!changed)
            break;
    }
    return inlined;
}

namespace
{

class InlinePass : public Pass
{
  public:
    explicit InlinePass(std::size_t maxCalleeInstrs)
        : maxCalleeInstrs_(maxCalleeInstrs)
    {}

    std::string name() const override { return "opt.inline"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        PassResult result;
        result.changes = static_cast<std::uint64_t>(
            inlineFunctions(prog, maxCalleeInstrs_));
        if (result.changed())
            ctx.stats.counter("opt.inline.sites").add(result.changes);
        return result;
    }

  private:
    std::size_t maxCalleeInstrs_;
};

} // namespace

std::unique_ptr<Pass>
createInlinePass(std::size_t maxCalleeInstrs)
{
    return std::make_unique<InlinePass>(maxCalleeInstrs);
}

} // namespace predilp
