#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/**
 * @return the final destination of an empty-jump chain starting at
 * @p id: while the target block contains only an unguarded jump,
 * follow it (cycle-bounded).
 */
BlockId
threadTarget(Function &fn, BlockId id)
{
    BlockId cur = id;
    for (int hops = 0; hops < 16; ++hops) {
        const BasicBlock *bb = fn.block(cur);
        if (bb->instrs().size() != 1)
            return cur;
        const Instruction &only = bb->instrs().front();
        if (!only.isJump() || only.guarded())
            return cur;
        if (only.target() == cur)
            return cur; // self loop.
        cur = only.target();
    }
    return cur;
}

int
threadJumps(Function &fn)
{
    int threaded = 0;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        for (auto &instr : bb->instrs()) {
            if ((instr.isCondBranch() || instr.isJump()) &&
                instr.target() != invalidBlock) {
                BlockId dest = threadTarget(fn, instr.target());
                if (dest != instr.target()) {
                    instr.setTarget(dest);
                    threaded += 1;
                }
            }
        }
        if (bb->fallthrough() != invalidBlock) {
            BlockId dest = threadTarget(fn, bb->fallthrough());
            if (dest != bb->fallthrough()) {
                bb->setFallthrough(dest);
                threaded += 1;
            }
        }
    }
    return threaded;
}

/** Merge straight-line pairs: B -> C where C has exactly one pred. */
bool
mergePairs(Function &fn)
{
    CfgInfo cfg(fn);
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        if (bb->instrs().empty())
            continue;

        // B must transfer to exactly one block, unconditionally.
        BlockId succ = invalidBlock;
        bool viaJump = false;
        const Instruction &last = bb->instrs().back();
        if (last.isJump() && !last.guarded()) {
            // No other transfers before it?
            bool clean = true;
            for (std::size_t i = 0; i + 1 < bb->instrs().size(); ++i) {
                if (bb->instrs()[i].isControlTransfer())
                    clean = false;
            }
            if (clean) {
                succ = last.target();
                viaJump = true;
            }
        } else if (bb->fallthrough() != invalidBlock) {
            bool clean = true;
            for (const auto &instr : bb->instrs()) {
                if (instr.isControlTransfer())
                    clean = false;
            }
            if (clean)
                succ = bb->fallthrough();
        }
        if (succ == invalidBlock || succ == id)
            continue;
        if (succ == fn.layout().front())
            continue; // never merge the entry away.
        if (cfg.preds(succ).size() != 1)
            continue;

        BasicBlock *sb = fn.block(succ);
        if (viaJump)
            bb->instrs().pop_back();
        for (auto &instr : sb->instrs())
            bb->instrs().push_back(std::move(instr));
        sb->instrs().clear();
        bb->setFallthrough(sb->fallthrough());
        fn.pruneUnreachable();
        return true; // CFG changed; caller re-iterates.
    }
    return false;
}

} // namespace

int
simplifyCfg(Function &fn)
{
    int changes = threadJumps(fn);
    fn.pruneUnreachable();
    for (int iter = 0; iter < 200; ++iter) {
        if (!mergePairs(fn))
            break;
        changes += 1;
    }
    return changes;
}

namespace
{

class SimplifyCfgPass : public FunctionPass
{
  public:
    std::string name() const override { return "opt.simplifycfg"; }

    std::uint64_t
    runOnFunction(Function &fn, PassContext &ctx) override
    {
        auto simplified =
            static_cast<std::uint64_t>(simplifyCfg(fn));
        if (simplified != 0)
            ctx.stats.counter("opt.simplifycfg.simplified")
                .add(simplified);
        return simplified;
    }
};

} // namespace

std::unique_ptr<Pass>
createSimplifyCfgPass()
{
    return std::make_unique<SimplifyCfgPass>();
}

std::vector<std::unique_ptr<Pass>>
scalarPassList()
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(createConstantFoldPass());
    passes.push_back(createCopyPropagatePass());
    passes.push_back(createCSEPass());
    passes.push_back(createMemoryForwardPass());
    passes.push_back(createCoalescePass());
    passes.push_back(createDCEPass());
    passes.push_back(createSimplifyCfgPass());
    return passes;
}

void
optimizeFunction(Function &fn)
{
    for (int iter = 0; iter < 10; ++iter) {
        int changes = 0;
        changes += constantFold(fn);
        changes += copyPropagate(fn);
        changes += localCSE(fn);
        changes += forwardMemory(fn);
        changes += coalesceCopies(fn);
        changes += deadCodeElim(fn);
        changes += simplifyCfg(fn);
        if (changes == 0)
            break;
    }
}

void
optimizeProgram(Program &prog)
{
    for (auto &fn : prog.functions())
        optimizeFunction(*fn);
}

} // namespace predilp
