#include "analysis/cfg.hh"
#include "ir/function.hh"
#include "opt/passes.hh"

namespace predilp
{

namespace
{

/**
 * @return the final destination of an empty-jump chain starting at
 * @p id: while the target block contains only an unguarded jump,
 * follow it (cycle-bounded).
 */
BlockId
threadTarget(Function &fn, BlockId id)
{
    BlockId cur = id;
    for (int hops = 0; hops < 16; ++hops) {
        const BasicBlock *bb = fn.block(cur);
        if (bb->instrs().size() != 1)
            return cur;
        const Instruction &only = bb->instrs().front();
        if (!only.isJump() || only.guarded())
            return cur;
        if (only.target() == cur)
            return cur; // self loop.
        cur = only.target();
    }
    return cur;
}

bool
threadJumps(Function &fn)
{
    bool changed = false;
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        for (auto &instr : bb->instrs()) {
            if ((instr.isCondBranch() || instr.isJump()) &&
                instr.target() != invalidBlock) {
                BlockId dest = threadTarget(fn, instr.target());
                if (dest != instr.target()) {
                    instr.setTarget(dest);
                    changed = true;
                }
            }
        }
        if (bb->fallthrough() != invalidBlock) {
            BlockId dest = threadTarget(fn, bb->fallthrough());
            if (dest != bb->fallthrough()) {
                bb->setFallthrough(dest);
                changed = true;
            }
        }
    }
    return changed;
}

/** Merge straight-line pairs: B -> C where C has exactly one pred. */
bool
mergePairs(Function &fn)
{
    CfgInfo cfg(fn);
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        if (bb->instrs().empty())
            continue;

        // B must transfer to exactly one block, unconditionally.
        BlockId succ = invalidBlock;
        bool viaJump = false;
        const Instruction &last = bb->instrs().back();
        if (last.isJump() && !last.guarded()) {
            // No other transfers before it?
            bool clean = true;
            for (std::size_t i = 0; i + 1 < bb->instrs().size(); ++i) {
                if (bb->instrs()[i].isControlTransfer())
                    clean = false;
            }
            if (clean) {
                succ = last.target();
                viaJump = true;
            }
        } else if (bb->fallthrough() != invalidBlock) {
            bool clean = true;
            for (const auto &instr : bb->instrs()) {
                if (instr.isControlTransfer())
                    clean = false;
            }
            if (clean)
                succ = bb->fallthrough();
        }
        if (succ == invalidBlock || succ == id)
            continue;
        if (succ == fn.layout().front())
            continue; // never merge the entry away.
        if (cfg.preds(succ).size() != 1)
            continue;

        BasicBlock *sb = fn.block(succ);
        if (viaJump)
            bb->instrs().pop_back();
        for (auto &instr : sb->instrs())
            bb->instrs().push_back(std::move(instr));
        sb->instrs().clear();
        bb->setFallthrough(sb->fallthrough());
        fn.pruneUnreachable();
        return true; // CFG changed; caller re-iterates.
    }
    return false;
}

} // namespace

bool
simplifyCfg(Function &fn)
{
    bool changed = false;
    if (threadJumps(fn))
        changed = true;
    fn.pruneUnreachable();
    for (int iter = 0; iter < 200; ++iter) {
        if (!mergePairs(fn))
            break;
        changed = true;
    }
    return changed;
}

void
optimizeFunction(Function &fn)
{
    for (int iter = 0; iter < 10; ++iter) {
        bool changed = false;
        changed |= constantFold(fn);
        changed |= copyPropagate(fn);
        changed |= localCSE(fn);
        changed |= forwardMemory(fn);
        changed |= coalesceCopies(fn);
        changed |= deadCodeElim(fn);
        changed |= simplifyCfg(fn);
        if (!changed)
            break;
    }
}

void
optimizeProgram(Program &prog)
{
    for (auto &fn : prog.functions())
        optimizeFunction(*fn);
}

} // namespace predilp
