/**
 * @file
 * Cycle-driven list scheduler for the in-order ILP machine. Operates
 * per block (plain blocks, superblocks, hyperblocks), reorders the
 * instruction stream into issue order, and annotates issue cycles.
 */

#ifndef PREDILP_SCHED_SCHEDULER_HH
#define PREDILP_SCHED_SCHEDULER_HH

#include "ir/program.hh"
#include "opt/pass.hh"
#include "sched/machine.hh"

namespace predilp
{

/** Aggregate schedule metrics, for reporting and tests. */
struct ScheduleStats
{
    long totalCycles = 0;      ///< sum of block schedule lengths.
    long totalInstrs = 0;
    int speculated = 0;        ///< instructions made silent by motion.
};

/**
 * Schedule every block of @p fn for @p config.
 *
 * @param allowSpeculation permit moving silent instructions across
 * side-exit branches (superblock-style speculation). Instructions
 * that may trap and end up crossing a branch are switched to their
 * non-excepting forms.
 */
ScheduleStats scheduleFunction(Function &fn,
                               const MachineConfig &config,
                               bool allowSpeculation = true);

/** scheduleFunction over every function. */
ScheduleStats scheduleProgram(Program &prog,
                              const MachineConfig &config,
                              bool allowSpeculation = true);

/**
 * "sched.schedule": list scheduling as a Pass. Counters:
 * sched.schedule.cycles / .instrs / .speculated.
 */
std::unique_ptr<Pass>
createSchedulePass(MachineConfig config, bool allowSpeculation = true);

} // namespace predilp

#endif // PREDILP_SCHED_SCHEDULER_HH
