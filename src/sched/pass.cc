#include "sched/scheduler.hh"

namespace predilp
{

namespace
{

class SchedulePass : public Pass
{
  public:
    SchedulePass(MachineConfig config, bool allowSpeculation)
        : config_(config), allowSpeculation_(allowSpeculation)
    {}

    std::string name() const override { return "sched.schedule"; }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        ScheduleStats stats =
            scheduleProgram(prog, config_, allowSpeculation_);
        ctx.stats.counter("sched.schedule.cycles")
            .add(static_cast<std::uint64_t>(stats.totalCycles));
        ctx.stats.counter("sched.schedule.instrs")
            .add(static_cast<std::uint64_t>(stats.totalInstrs));
        ctx.stats.counter("sched.schedule.speculated")
            .add(static_cast<std::uint64_t>(stats.speculated));
        // Every block is reordered and annotated with issue cycles;
        // report the instructions touched.
        PassResult result;
        result.changes =
            static_cast<std::uint64_t>(stats.totalInstrs);
        return result;
    }

  private:
    MachineConfig config_;
    bool allowSpeculation_;
};

} // namespace

std::unique_ptr<Pass>
createSchedulePass(MachineConfig config, bool allowSpeculation)
{
    return std::make_unique<SchedulePass>(config, allowSpeculation);
}

} // namespace predilp
