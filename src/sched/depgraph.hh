/**
 * @file
 * Dependence graph over the instructions of one block, including
 * predicate-aware guard dependences and control dependences that
 * permit speculative code motion across side-exit branches (the
 * superblock/hyperblock scheduling freedom the paper relies on).
 */

#ifndef PREDILP_SCHED_DEPGRAPH_HH
#define PREDILP_SCHED_DEPGRAPH_HH

#include <vector>

#include "analysis/liveness.hh"
#include "ir/block.hh"
#include "sched/machine.hh"

namespace predilp
{

/** One dependence edge: @p to must issue >= @p latency cycles after
 * the source. Latency 0 permits same-cycle issue with ordering. */
struct DepEdge
{
    int to = 0;
    int latency = 0;
};

/** Dependence graph for one block. */
class DepGraph
{
  public:
    /**
     * Build for @p bb of @p fn.
     *
     * @param liveness whole-function liveness, used to decide which
     * instructions may move across which branches.
     * @param config machine latencies.
     * @param allowSpeculation when false, every instruction is
     * ordered with respect to every branch (no cross-branch motion).
     */
    DepGraph(const Function &fn, const BasicBlock &bb,
             const Liveness &liveness, const MachineConfig &config,
             bool allowSpeculation = true);

    std::size_t size() const { return succs_.size(); }

    const std::vector<DepEdge> &succs(std::size_t i) const
    {
        return succs_[i];
    }

    int predCount(std::size_t i) const { return predCount_[i]; }

    /**
     * Critical-path height of node @p i: its latency plus the
     * longest latency path to any sink.
     */
    long height(std::size_t i) const { return heights_[i]; }

  private:
    void addEdge(std::size_t from, std::size_t to, int latency);

    std::vector<std::vector<DepEdge>> succs_;
    std::vector<int> predCount_;
    std::vector<long> heights_;
};

} // namespace predilp

#endif // PREDILP_SCHED_DEPGRAPH_HH
