#include "sched/depgraph.hh"

#include <algorithm>
#include <map>
#include <set>

#include "support/logging.hh"

namespace predilp
{

namespace
{

/**
 * @return true when @p instr may cross branch @p branch (in either
 * direction): no side effects, no memory writes, cannot fault in its
 * final form (or can be made silent), and its results are dead where
 * the branch goes.
 */
bool
mayCrossBranch(const Function &fn, const Instruction &instr,
               const Instruction &branch, const Liveness &liveness)
{
    const auto &info = instr.info();
    if (info.sideEffect || instr.isStore() ||
        instr.isControlTransfer() || instr.isCall()) {
        return false;
    }
    if (!instr.definesSomething())
        return false;

    // Destinations must be dead at the branch target.
    const RegIndexer &indexer = liveness.indexer();
    const BitVector *liveAtTarget = nullptr;
    if (branch.target() != invalidBlock) {
        liveAtTarget = &liveness.liveIn(branch.target());
    } else {
        // ret: nothing in the frame survives.
        return true;
    }
    std::vector<Reg> defs;
    collectDefs(instr, fn, defs);
    for (Reg reg : defs) {
        if (liveAtTarget->test(indexer.index(reg)))
            return false;
    }
    return true;
}

/**
 * Lightweight alias test for the frontend's addressing discipline:
 * every global access uses the global's base address as an immediate
 * base operand, so two accesses with *different* immediate bases
 * touch different objects (type-based disambiguation; workloads are
 * bounds-safe by construction). Same-base accesses with immediate
 * offsets are compared by range; anything else may alias.
 */
bool
memMayAlias(const Instruction &a, const Instruction &b)
{
    const Operand &baseA = a.src(0);
    const Operand &baseB = b.src(0);
    if (!baseA.isImm() || !baseB.isImm())
        return true;
    if (baseA.immValue() != baseB.immValue())
        return false;
    const Operand &offA = a.src(1);
    const Operand &offB = b.src(1);
    if (!offA.isImm() || !offB.isImm())
        return true;
    std::int64_t lowA = offA.immValue();
    std::int64_t lowB = offB.immValue();
    return lowA < lowB + 8 && lowB < lowA + 8;
}

} // namespace

DepGraph::DepGraph(const Function &fn, const BasicBlock &bb,
                   const Liveness &liveness,
                   const MachineConfig &config, bool allowSpeculation)
{
    const auto &instrs = bb.instrs();
    std::size_t n = instrs.size();
    succs_.assign(n, {});
    predCount_.assign(n, 0);
    heights_.assign(n, 0);

    std::map<Reg, std::size_t> lastDef;
    std::map<Reg, std::vector<std::size_t>> usesSinceDef;
    // Accumulating (OR/AND-type) predicate defines since the last
    // ordinary writer of each predicate register. Same-sense
    // accumulators are unordered with respect to one another — the
    // paper's wired-OR simultaneous issue (§2.1).
    struct AccumGroup
    {
        std::vector<std::size_t> members;
        bool orSense = true;
    };
    std::map<Reg, AccumGroup> accum;

    auto accumSense = [](PredType type, bool &isOr) {
        switch (type) {
          case PredType::Or:
          case PredType::OrBar:
            isOr = true;
            return true;
          case PredType::And:
          case PredType::AndBar:
            isOr = false;
            return true;
          default:
            return false;
        }
    };
    // (index, is-store-or-barrier) of memory operations so far.
    std::vector<std::pair<std::size_t, bool>> memOps;
    bool haveIO = false;
    std::size_t lastIO = 0;
    std::vector<std::size_t> branches;
    std::vector<Reg> regs;

    auto isIO = [](const Instruction &instr) {
        return instr.op() == Opcode::GetC ||
               instr.op() == Opcode::PutC ||
               instr.op() == Opcode::ReadBlock || instr.isCall();
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Instruction &instr = instrs[i];

        // Accumulating predicate destinations of this instruction.
        std::set<Reg> accumDests;
        if (instr.isPredDefine()) {
            for (const auto &pd : instr.predDests()) {
                bool isOr = true;
                if (accumSense(pd.type, isOr))
                    accumDests.insert(pd.reg);
            }
        }

        // Register RAW edges. Merge-reads of this instruction's own
        // accumulating destinations are handled below.
        regs.clear();
        collectUses(instr, regs);
        for (Reg reg : regs) {
            if (accumDests.count(reg) != 0)
                continue;
            auto it = lastDef.find(reg);
            if (it != lastDef.end()) {
                addEdge(it->second, i,
                        config.latencyOf(instrs[it->second]));
            }
            // A reader must wait for every outstanding accumulation.
            auto ag = accum.find(reg);
            if (ag != accum.end()) {
                for (std::size_t member : ag->second.members) {
                    addEdge(member, i,
                            config.latencyOf(instrs[member]));
                }
            }
            usesSinceDef[reg].push_back(i);
        }

        // Register WAW / WAR edges.
        regs.clear();
        collectDefs(instr, fn, regs);
        for (Reg reg : regs) {
            auto it = lastDef.find(reg);
            if (accumDests.count(reg) != 0) {
                // Accumulating write: ordered against the
                // initializing writer and prior readers, but not
                // against same-sense accumulations (wired-OR/AND).
                bool isOr = true;
                for (const auto &pd : instr.predDests()) {
                    if (pd.reg == reg)
                        accumSense(pd.type, isOr);
                }
                if (it != lastDef.end()) {
                    addEdge(it->second, i,
                            config.latencyOf(instrs[it->second]));
                }
                for (std::size_t use : usesSinceDef[reg]) {
                    if (use != i)
                        addEdge(use, i, 0);
                }
                auto &group = accum[reg];
                if (!group.members.empty() &&
                    group.orSense != isOr) {
                    // Mixed senses do not commute: serialize.
                    for (std::size_t member : group.members) {
                        addEdge(member, i,
                                config.latencyOf(instrs[member]));
                    }
                    group.members.clear();
                }
                group.orSense = isOr;
                group.members.push_back(i);
                continue;
            }

            // Ordinary (killing or merging-move) writer.
            if (it != lastDef.end()) {
                // Full producer latency: an in-order writeback may
                // not be overtaken by a later, shorter operation.
                addEdge(it->second, i,
                        config.latencyOf(instrs[it->second]));
            }
            auto ag = accum.find(reg);
            if (ag != accum.end()) {
                for (std::size_t member : ag->second.members) {
                    addEdge(member, i,
                            config.latencyOf(instrs[member]));
                }
                accum.erase(ag);
            }
            for (std::size_t use : usesSinceDef[reg]) {
                if (use != i)
                    addEdge(use, i, 0);
            }
            usesSinceDef[reg].clear();
            lastDef[reg] = i;
        }

        // Memory ordering with global-base alias disambiguation.
        // Calls and readblock are full barriers.
        if (instr.isCall() || instr.op() == Opcode::ReadBlock) {
            for (const auto &[idx, isStore] : memOps)
                addEdge(idx, i, isStore ? 1 : 0);
            memOps.clear();
            memOps.emplace_back(i, true);
        } else if (instr.isLoad()) {
            for (const auto &[idx, isStore] : memOps) {
                if (!isStore)
                    continue;
                bool barrier =
                    instrs[idx].isCall() ||
                    instrs[idx].op() == Opcode::ReadBlock;
                if (barrier || memMayAlias(instrs[idx], instr)) {
                    addEdge(idx, i,
                            config.latencyOf(instrs[idx]));
                }
            }
            memOps.emplace_back(i, false);
        } else if (instr.isStore()) {
            for (const auto &[idx, isStore] : memOps) {
                bool barrier =
                    instrs[idx].isCall() ||
                    instrs[idx].op() == Opcode::ReadBlock;
                if (barrier || memMayAlias(instrs[idx], instr))
                    addEdge(idx, i, isStore ? 1 : 0);
            }
            memOps.emplace_back(i, true);
        }

        // I/O and call program order.
        if (isIO(instr)) {
            if (haveIO)
                addEdge(lastIO, i, 1);
            haveIO = true;
            lastIO = i;
        }

        // Control dependences.
        if (instr.isControlTransfer() || instr.isCall()) {
            // Nothing may sink below an unconditional transfer: the
            // block's terminator must stay last, and code after it
            // would never execute.
            bool terminator =
                (instr.isJump() || instr.isRet()) &&
                !instr.guarded();
            // Preserve branch order.
            if (!branches.empty())
                addEdge(branches.back(), i, 0);
            // Earlier non-speculable instructions stay before the
            // branch; they may share its cycle.
            for (std::size_t j = 0; j < i; ++j) {
                if (instrs[j].isControlTransfer() ||
                    instrs[j].isCall()) {
                    continue; // branch-order edge already added.
                }
                bool movable =
                    !terminator && allowSpeculation &&
                    !instr.isCall() &&
                    mayCrossBranch(fn, instrs[j], instr, liveness);
                if (!movable)
                    addEdge(j, i, 0);
            }
            branches.push_back(i);
        } else {
            // Later instructions may hoist above earlier branches
            // only when speculable.
            for (std::size_t b : branches) {
                bool movable =
                    allowSpeculation && !instrs[b].isCall() &&
                    mayCrossBranch(fn, instr, instrs[b], liveness);
                if (!movable)
                    addEdge(b, i, 1);
            }
        }
    }

    // Critical-path heights (reverse topological: indices ascend).
    for (std::size_t i = n; i > 0; --i) {
        std::size_t node = i - 1;
        long best = 0;
        for (const auto &edge : succs_[node])
            best = std::max(best, edge.latency + heights_[edge.to]);
        heights_[node] =
            best + config.latencyOf(instrs[node]);
    }
}

void
DepGraph::addEdge(std::size_t from, std::size_t to, int latency)
{
    panicIf(from >= to, "dependence edge must go forward");
    // Avoid exact duplicates to keep degree counts right-ish; dups
    // are harmless for correctness but waste time.
    for (const auto &edge : succs_[from]) {
        if (edge.to == static_cast<int>(to) &&
            edge.latency >= latency) {
            return;
        }
    }
    succs_[from].push_back(DepEdge{static_cast<int>(to), latency});
    predCount_[to] += 1;
}

} // namespace predilp
