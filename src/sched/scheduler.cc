#include "sched/scheduler.hh"

#include <algorithm>

#include "sched/depgraph.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** Schedule one block; @return its schedule length in cycles. */
long
scheduleBlock(Function &fn, BasicBlock &bb, const Liveness &liveness,
              const MachineConfig &config, bool allowSpeculation,
              ScheduleStats &stats)
{
    auto &instrs = bb.instrs();
    std::size_t n = instrs.size();
    if (n == 0)
        return 0;

    DepGraph graph(fn, bb, liveness, config, allowSpeculation);

    std::vector<int> remaining(n);
    std::vector<long> readyAt(n, 0);
    std::vector<bool> scheduled(n, false);
    for (std::size_t i = 0; i < n; ++i)
        remaining[i] = graph.predCount(i);

    std::vector<std::size_t> order; // emission order.
    std::vector<int> cycles(n, 0);
    order.reserve(n);

    long cycle = 0;
    int slots = 0;
    int branchSlots = 0;
    std::size_t done = 0;

    while (done < n) {
        // Pick the ready instruction with the greatest height.
        std::size_t best = n;
        long bestHeight = -1;
        if (slots < config.issueWidth) {
            for (std::size_t i = 0; i < n; ++i) {
                if (scheduled[i] || remaining[i] != 0 ||
                    readyAt[i] > cycle) {
                    continue;
                }
                bool isBranch = instrs[i].isControlTransfer() ||
                                instrs[i].isCall();
                if (isBranch &&
                    branchSlots >= config.branchesPerCycle) {
                    continue;
                }
                if (graph.height(i) > bestHeight) {
                    bestHeight = graph.height(i);
                    best = i;
                }
            }
        }

        if (best == n) {
            cycle += 1;
            slots = 0;
            branchSlots = 0;
            continue;
        }

        scheduled[best] = true;
        cycles[best] = static_cast<int>(cycle);
        order.push_back(best);
        slots += 1;
        if (instrs[best].isControlTransfer() ||
            instrs[best].isCall()) {
            branchSlots += 1;
        }
        done += 1;
        for (const auto &edge : graph.succs(best)) {
            remaining[static_cast<std::size_t>(edge.to)] -= 1;
            readyAt[static_cast<std::size_t>(edge.to)] = std::max(
                readyAt[static_cast<std::size_t>(edge.to)],
                cycle + edge.latency);
        }
    }

    // Rebuild the instruction list in emission order and annotate
    // issue cycles. Instructions that moved above a branch (their
    // original position was after it) become speculative.
    std::vector<Instruction> emitted;
    emitted.reserve(n);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        std::size_t idx = order[pos];
        Instruction instr = std::move(instrs[idx]);
        instr.setIssueCycle(cycles[idx]);
        emitted.push_back(std::move(instr));
    }

    // Mark hoisted trapping instructions silent: instruction with
    // original index oi emitted while some branch with original
    // index < oi is emitted later.
    std::vector<std::size_t> originalOf = order;
    for (std::size_t pos = 0; pos < emitted.size(); ++pos) {
        Instruction &instr = emitted[pos];
        if (!instr.info().canTrap || instr.speculative())
            continue;
        std::size_t oi = originalOf[pos];
        for (std::size_t later = pos + 1; later < emitted.size();
             ++later) {
            const Instruction &other = emitted[later];
            bool isBranch = other.isControlTransfer() ||
                            other.isCall();
            if (isBranch && originalOf[later] < oi) {
                instr.setSpeculative(true);
                stats.speculated += 1;
                break;
            }
        }
    }

    instrs = std::move(emitted);
    long length =
        instrs.empty() ? 0 : instrs.back().issueCycle() + 1;
    for (const auto &instr : instrs) {
        length = std::max(length,
                          static_cast<long>(instr.issueCycle()) + 1);
    }
    return length;
}

} // namespace

ScheduleStats
scheduleFunction(Function &fn, const MachineConfig &config,
                 bool allowSpeculation)
{
    ScheduleStats stats;
    CfgInfo cfg(fn);
    Liveness liveness(fn, cfg);
    for (BlockId id : fn.layout()) {
        BasicBlock *bb = fn.block(id);
        stats.totalCycles += scheduleBlock(fn, *bb, liveness, config,
                                           allowSpeculation, stats);
        stats.totalInstrs +=
            static_cast<long>(bb->instrs().size());
    }
    return stats;
}

ScheduleStats
scheduleProgram(Program &prog, const MachineConfig &config,
                bool allowSpeculation)
{
    ScheduleStats stats;
    for (auto &fn : prog.functions()) {
        ScheduleStats s =
            scheduleFunction(*fn, config, allowSpeculation);
        stats.totalCycles += s.totalCycles;
        stats.totalInstrs += s.totalInstrs;
        stats.speculated += s.speculated;
    }
    return stats;
}

} // namespace predilp
