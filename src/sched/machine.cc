#include "sched/machine.hh"

namespace predilp
{

int
MachineConfig::latencyOf(const Instruction &instr) const
{
    return latencyOf(instr.op());
}

int
MachineConfig::latencyOf(Opcode op) const
{
    return latencyOfClass(opcodeInfo(op).latency);
}

int
MachineConfig::latencyOfClass(LatencyClass cls) const
{
    switch (cls) {
      case LatencyClass::IntAlu: return latIntAlu;
      case LatencyClass::IntMul: return latIntMul;
      case LatencyClass::IntDiv: return latIntDiv;
      case LatencyClass::FpAlu: return latFpAlu;
      case LatencyClass::FpDiv: return latFpDiv;
      case LatencyClass::Load: return latLoad;
      case LatencyClass::Store: return latStore;
      case LatencyClass::Branch: return latBranch;
      case LatencyClass::PredDefine: return latPredDefine;
    }
    return 1;
}

MachineConfig
issue8Branch1()
{
    MachineConfig config;
    config.issueWidth = 8;
    config.branchesPerCycle = 1;
    return config;
}

MachineConfig
issue8Branch2()
{
    MachineConfig config;
    config.issueWidth = 8;
    config.branchesPerCycle = 2;
    return config;
}

MachineConfig
issue4Branch1()
{
    MachineConfig config;
    config.issueWidth = 4;
    config.branchesPerCycle = 1;
    return config;
}

MachineConfig
issue1()
{
    MachineConfig config;
    config.issueWidth = 1;
    config.branchesPerCycle = 1;
    return config;
}

} // namespace predilp
