/**
 * @file
 * Machine description: issue width, branch resources, and operation
 * latencies (HP PA-7100-like, per the paper's §4.1 methodology).
 */

#ifndef PREDILP_SCHED_MACHINE_HH
#define PREDILP_SCHED_MACHINE_HH

#include "ir/instr.hh"

namespace predilp
{

/** Static machine parameters shared by scheduler and simulator. */
struct MachineConfig
{
    /** Instructions issued per cycle (any mix except branches). */
    int issueWidth = 8;

    /** Control transfers issued per cycle. */
    int branchesPerCycle = 1;

    /** Branch misprediction penalty in cycles. */
    int mispredictPenalty = 2;

    // Latencies per class, in cycles.
    int latIntAlu = 1;
    int latIntMul = 3;
    int latIntDiv = 10;
    int latFpAlu = 2;
    int latFpDiv = 8;
    int latLoad = 2;
    int latStore = 1;
    int latBranch = 1;
    int latPredDefine = 1;

    /** @return the result latency of @p instr on this machine. */
    int latencyOf(const Instruction &instr) const;

    /**
     * @return the result latency of opcode @p op. Latency depends
     * only on the opcode's latency class, which lets the trace
     * replay path price instructions without IR pointers.
     */
    int latencyOf(Opcode op) const;

    /**
     * @return the latency of class @p cls. The class is the whole
     * story — latencyOf(op) is latencyOfClass(opcodeInfo(op).latency)
     * — so the replay hot path prices records through a 9-entry
     * per-class table instead of a per-static-instruction one.
     */
    int latencyOfClass(LatencyClass cls) const;
};

/** Preset: the paper's 8-issue, 1-branch configuration. */
MachineConfig issue8Branch1();

/** Preset: 8-issue, 2-branch (Figure 9). */
MachineConfig issue8Branch2();

/** Preset: 4-issue, 1-branch (Figure 10). */
MachineConfig issue4Branch1();

/** Preset: the scalar baseline used as the speedup denominator. */
MachineConfig issue1();

} // namespace predilp

#endif // PREDILP_SCHED_MACHINE_HH
