#include "frontend/irgen.hh"

#include <map>
#include <vector>

#include "frontend/parser.hh"
#include "ir/builder.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

/** A typed rvalue: an operand plus its source type (Int or Float). */
struct Value
{
    Operand op;
    Ty type = Ty::Int;
};

/** A local scalar variable bound to a virtual register. */
struct LocalVar
{
    Reg reg;
    Ty type = Ty::Int;
};

/** break/continue targets of the innermost enclosing loop. */
struct LoopTargets
{
    BlockId breakTarget;
    BlockId continueTarget;
};

class IRGen
{
  public:
    explicit IRGen(const Unit &unit) : unit_(unit) {}

    std::unique_ptr<Program>
    run()
    {
        prog_ = std::make_unique<Program>();

        for (const auto &g : unit_.globals)
            declareGlobal(g);
        for (const auto &fn : unit_.functions)
            declareFunction(fn);
        for (const auto &fn : unit_.functions)
            generateFunction(fn);
        return std::move(prog_);
    }

  private:
    // --- declarations ---

    void
    declareGlobal(const GlobalDecl &g)
    {
        if (signatures_.count(g.name) != 0 ||
            globalTypes_.count(g.name) != 0) {
            compileError(g.line, "duplicate global name ",
                  g.name);
        }
        int elemSize = g.elemType == Ty::Byte ? 1 : 8;
        std::int64_t size = g.count * elemSize;
        prog_->allocGlobal(g.name, size, elemSize,
                           g.elemType == Ty::Float);
        Global *global = prog_->global(g.name);
        global->initInts = g.initInts;
        global->initFloats = g.initFloats;
        globalTypes_[g.name] = g.elemType;
        globalIsArray_[g.name] = g.isArray;
    }

    void
    declareFunction(const FuncDecl &decl)
    {
        if (signatures_.count(decl.name) != 0 ||
            globalTypes_.count(decl.name) != 0) {
            compileError(decl.line, "duplicate name ", decl.name);
        }
        if (decl.name == "getc" || decl.name == "putc")
            compileError(decl.line, "", decl.name,
                  " is a builtin");
        signatures_[decl.name] = &decl;
        Function *fn = prog_->newFunction(decl.name);
        switch (decl.retType) {
          case Ty::Int:
            fn->setRetKind(RetKind::Int);
            break;
          case Ty::Float:
            fn->setRetKind(RetKind::Float);
            break;
          case Ty::Void:
            fn->setRetKind(RetKind::None);
            break;
          case Ty::Byte:
            compileError(decl.line, "byte return unsupported");
        }
        for (const auto &param : decl.params) {
            Reg reg = param.type == Ty::Float ? fn->newFloatReg()
                                              : fn->newIntReg();
            fn->addParam(reg);
        }
    }

    // --- function bodies ---

    void
    generateFunction(const FuncDecl &decl)
    {
        fn_ = prog_->function(decl.name);
        decl_ = &decl;
        builder_ = std::make_unique<IRBuilder>(fn_);
        scopes_.clear();
        loops_.clear();

        builder_->startBlock("entry");
        pushScope();
        for (std::size_t i = 0; i < decl.params.size(); ++i) {
            defineLocal(decl.params[i].name, decl.params[i].type,
                        fn_->params()[i], decl.line);
        }
        genStmt(*decl.body);
        popScope();

        if (!blockTerminated())
            emitDefaultReturn();
        fn_->pruneUnreachable();
    }

    void
    emitDefaultReturn()
    {
        switch (decl_->retType) {
          case Ty::Int:
            builder_->ret(Operand::imm(0));
            break;
          case Ty::Float:
            builder_->ret(Operand::fimm(0.0));
            break;
          default:
            builder_->ret();
            break;
        }
    }

    bool
    blockTerminated()
    {
        return builder_->blockPtr()->endsInUnconditionalTransfer();
    }

    // --- scopes ---

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    void
    defineLocal(const std::string &name, Ty type, Reg reg, int line)
    {
        if (type != Ty::Int && type != Ty::Float)
            compileError(line, "locals must be int or float");
        if (scopes_.back().count(name) != 0)
            compileError(line, "redefinition of ", name);
        scopes_.back()[name] = LocalVar{reg, type};
    }

    const LocalVar *
    findLocal(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    // --- type plumbing ---

    Operand
    toFloat(const Value &v)
    {
        if (v.type == Ty::Float)
            return v.op;
        if (v.op.isImm())
            return Operand::fimm(
                static_cast<double>(v.op.immValue()));
        Reg dest = fn_->newFloatReg();
        builder_->emit(Opcode::CvtIf, dest, v.op);
        return Operand(dest);
    }

    Operand
    toInt(const Value &v, int line)
    {
        if (v.type != Ty::Float)
            return v.op;
        if (v.op.isFImm())
            return Operand::imm(static_cast<std::int64_t>(
                v.op.fimmValue()));
        Reg dest = fn_->newIntReg();
        builder_->emit(Opcode::CvtFi, dest, v.op);
        (void)line;
        return Operand(dest);
    }

    /** Coerce @p v to @p type, emitting a conversion if needed. */
    Operand
    coerce(const Value &v, Ty type, int line)
    {
        if (type == Ty::Float)
            return toFloat(v);
        return toInt(v, line);
    }

    // --- condition generation ---

    static Opcode
    tokToBranch(Tok op)
    {
        switch (op) {
          case Tok::Eq: return Opcode::Beq;
          case Tok::Ne: return Opcode::Bne;
          case Tok::Lt: return Opcode::Blt;
          case Tok::Le: return Opcode::Ble;
          case Tok::Gt: return Opcode::Bgt;
          case Tok::Ge: return Opcode::Bge;
          default: panic("tokToBranch: not a comparison");
        }
    }

    static Opcode
    tokToFCmp(Tok op)
    {
        switch (op) {
          case Tok::Eq: return Opcode::FCmpEq;
          case Tok::Ne: return Opcode::FCmpNe;
          case Tok::Lt: return Opcode::FCmpLt;
          case Tok::Le: return Opcode::FCmpLe;
          case Tok::Gt: return Opcode::FCmpGt;
          case Tok::Ge: return Opcode::FCmpGe;
          default: panic("tokToFCmp: not a comparison");
        }
    }

    static bool
    isComparison(Tok op)
    {
        return op == Tok::Eq || op == Tok::Ne || op == Tok::Lt ||
               op == Tok::Le || op == Tok::Gt || op == Tok::Ge;
    }

    /**
     * Emit control flow so execution reaches @p tBlk when @p expr is
     * true and @p fBlk otherwise. Leaves no open block.
     */
    void
    genCond(const Expr &expr, BlockId tBlk, BlockId fBlk)
    {
        if (expr.kind == Expr::Kind::Binary &&
            isComparison(expr.op)) {
            Value lhs = genExpr(*expr.kids[0]);
            Value rhs = genExpr(*expr.kids[1]);
            if (lhs.type == Ty::Float || rhs.type == Ty::Float) {
                Operand a = toFloat(lhs);
                Operand b = toFloat(rhs);
                Reg cmp = fn_->newIntReg();
                builder_->emit(tokToFCmp(expr.op), cmp, a, b);
                builder_->branch(Opcode::Bne, Operand(cmp),
                                 Operand::imm(0), tBlk);
            } else {
                builder_->branch(tokToBranch(expr.op), lhs.op,
                                 rhs.op, tBlk);
            }
            builder_->jump(fBlk);
            return;
        }
        if (expr.kind == Expr::Kind::Binary &&
            expr.op == Tok::AmpAmp) {
            BasicBlock *mid = fn_->newBlock();
            genCond(*expr.kids[0], mid->id(), fBlk);
            builder_->setBlock(mid);
            genCond(*expr.kids[1], tBlk, fBlk);
            return;
        }
        if (expr.kind == Expr::Kind::Binary &&
            expr.op == Tok::PipePipe) {
            BasicBlock *mid = fn_->newBlock();
            genCond(*expr.kids[0], tBlk, mid->id());
            builder_->setBlock(mid);
            genCond(*expr.kids[1], tBlk, fBlk);
            return;
        }
        if (expr.kind == Expr::Kind::Unary && expr.op == Tok::Not) {
            genCond(*expr.kids[0], fBlk, tBlk);
            return;
        }
        if (expr.kind == Expr::Kind::IntLit) {
            builder_->jump(expr.intValue != 0 ? tBlk : fBlk);
            return;
        }
        Value v = genExpr(expr);
        Operand iv = toInt(v, expr.line);
        builder_->branch(Opcode::Bne, iv, Operand::imm(0), tBlk);
        builder_->jump(fBlk);
    }

    // --- expressions ---

    Value
    genExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::IntLit:
            return Value{Operand::imm(expr.intValue), Ty::Int};
          case Expr::Kind::FloatLit:
            return Value{Operand::fimm(expr.floatValue), Ty::Float};
          case Expr::Kind::Var:
            return genVarRead(expr);
          case Expr::Kind::Index:
            return genIndexRead(expr);
          case Expr::Kind::Call:
            return genCall(expr, false);
          case Expr::Kind::Unary:
            return genUnary(expr);
          case Expr::Kind::Binary:
            return genBinary(expr);
          case Expr::Kind::Assign:
            return genAssign(expr);
          case Expr::Kind::Ternary:
            return genTernary(expr);
        }
        panic("genExpr: bad expression kind");
    }

    Value
    genVarRead(const Expr &expr)
    {
        if (const LocalVar *local = findLocal(expr.name))
            return Value{Operand(local->reg), local->type};

        auto gt = globalTypes_.find(expr.name);
        if (gt == globalTypes_.end())
            compileError(expr.line, "unknown variable ",
                  expr.name);
        if (globalIsArray_.at(expr.name))
            compileError(expr.line, "array ", expr.name,
                  " used without index");
        const Global *g = prog_->global(expr.name);
        if (gt->second == Ty::Float) {
            Reg dest = fn_->newFloatReg();
            builder_->load(Opcode::FLd, dest, Operand::imm(g->addr),
                           Operand::imm(0));
            return Value{Operand(dest), Ty::Float};
        }
        Reg dest = fn_->newIntReg();
        builder_->load(Opcode::Ld, dest, Operand::imm(g->addr),
                       Operand::imm(0));
        return Value{Operand(dest), Ty::Int};
    }

    /**
     * Compute the (base, offset) address pair of array element
     * @p name [ @p index ]. Constant indices fold into the offset.
     */
    std::pair<Operand, Operand>
    genElementAddress(const std::string &name, const Expr &index,
                      int line, Ty *elemTypeOut)
    {
        auto gt = globalTypes_.find(name);
        if (gt == globalTypes_.end())
            compileError(line, "unknown array ", name);
        const Global *g = prog_->global(name);
        Ty elemType = gt->second;
        *elemTypeOut = elemType;
        int shift = elemType == Ty::Byte ? 0 : 3;

        Value idx = genExpr(index);
        Operand idxOp = toInt(idx, line);
        if (idxOp.isImm()) {
            return {Operand::imm(g->addr),
                    Operand::imm(idxOp.immValue() << shift)};
        }
        if (shift == 0)
            return {Operand::imm(g->addr), idxOp};
        Reg off = fn_->newIntReg();
        builder_->emit(Opcode::Shl, off, idxOp,
                       Operand::imm(shift));
        return {Operand::imm(g->addr), Operand(off)};
    }

    Value
    genIndexRead(const Expr &expr)
    {
        Ty elemType = Ty::Int;
        auto [base, off] = genElementAddress(expr.name,
                                             *expr.kids[0],
                                             expr.line, &elemType);
        if (elemType == Ty::Float) {
            Reg dest = fn_->newFloatReg();
            builder_->load(Opcode::FLd, dest, base, off);
            return Value{Operand(dest), Ty::Float};
        }
        Reg dest = fn_->newIntReg();
        builder_->load(elemType == Ty::Byte ? Opcode::LdBu
                                            : Opcode::Ld,
                       dest, base, off);
        return Value{Operand(dest), Ty::Int};
    }

    Value
    genCall(const Expr &expr, bool voidContext)
    {
        if (expr.name == "getc") {
            if (!expr.kids.empty())
                compileError(expr.line, "getc takes no args");
            Reg dest = fn_->newIntReg();
            builder_->getc(dest);
            return Value{Operand(dest), Ty::Int};
        }
        if (expr.name == "putc") {
            if (expr.kids.size() != 1)
                compileError(expr.line, "putc takes one arg");
            Value v = genExpr(*expr.kids[0]);
            builder_->putc(toInt(v, expr.line));
            return Value{Operand::imm(0), Ty::Int};
        }
        if (expr.name == "readblock") {
            // readblock(array, offset, maxlen): bulk input into a
            // global byte array, like a read() syscall. Returns the
            // byte count.
            if (expr.kids.size() != 3 ||
                expr.kids[0]->kind != Expr::Kind::Var) {
                compileError(expr.line,
                      "readblock(array, offset, maxlen) expects "
                      "a global array name first");
            }
            const std::string &arrayName = expr.kids[0]->name;
            auto gt = globalTypes_.find(arrayName);
            if (gt == globalTypes_.end() ||
                !globalIsArray_.at(arrayName) ||
                gt->second != Ty::Byte) {
                compileError(expr.line, "readblock target ",
                      arrayName, " must be a global byte array");
            }
            const Global *g = prog_->global(arrayName);
            Value off = genExpr(*expr.kids[1]);
            Value len = genExpr(*expr.kids[2]);
            Reg dest = fn_->newIntReg();
            Instruction instr(Opcode::ReadBlock);
            instr.setDest(dest);
            instr.addSrc(Operand::imm(g->addr));
            instr.addSrc(toInt(off, expr.line));
            instr.addSrc(toInt(len, expr.line));
            builder_->append(std::move(instr));
            return Value{Operand(dest), Ty::Int};
        }

        auto sig = signatures_.find(expr.name);
        if (sig == signatures_.end())
            compileError(expr.line, "unknown function ",
                  expr.name);
        const FuncDecl *callee = sig->second;
        if (callee->params.size() != expr.kids.size()) {
            compileError(expr.line, "", expr.name, " expects ",
                  callee->params.size(), " arguments, got ",
                  expr.kids.size());
        }
        std::vector<Operand> args;
        for (std::size_t i = 0; i < expr.kids.size(); ++i) {
            Value v = genExpr(*expr.kids[i]);
            args.push_back(
                coerce(v, callee->params[i].type, expr.line));
        }
        Reg dest;
        Ty retType = callee->retType;
        if (retType == Ty::Int) {
            dest = fn_->newIntReg();
        } else if (retType == Ty::Float) {
            dest = fn_->newFloatReg();
        } else if (!voidContext) {
            compileError(expr.line, "void function ", expr.name,
                  " used in an expression");
        }
        builder_->call(expr.name, dest, std::move(args));
        return Value{dest.valid() ? Operand(dest) : Operand::imm(0),
                     retType == Ty::Float ? Ty::Float : Ty::Int};
    }

    Value
    genUnary(const Expr &expr)
    {
        if (expr.op == Tok::Not) {
            Value v = genExpr(*expr.kids[0]);
            Reg dest = fn_->newIntReg();
            if (v.type == Ty::Float) {
                builder_->emit(Opcode::FCmpEq, dest, v.op,
                               Operand::fimm(0.0));
            } else {
                builder_->emit(Opcode::CmpEq, dest, v.op,
                               Operand::imm(0));
            }
            return Value{Operand(dest), Ty::Int};
        }
        Value v = genExpr(*expr.kids[0]);
        if (expr.op == Tok::Tilde) {
            Operand iv = toInt(v, expr.line);
            if (iv.isImm())
                return Value{Operand::imm(~iv.immValue()), Ty::Int};
            Reg dest = fn_->newIntReg();
            builder_->emit(Opcode::Xor, dest, iv, Operand::imm(-1));
            return Value{Operand(dest), Ty::Int};
        }
        // unary minus
        if (v.type == Ty::Float) {
            if (v.op.isFImm())
                return Value{Operand::fimm(-v.op.fimmValue()),
                             Ty::Float};
            Reg dest = fn_->newFloatReg();
            builder_->emit(Opcode::FSub, dest, Operand::fimm(0.0),
                           v.op);
            return Value{Operand(dest), Ty::Float};
        }
        if (v.op.isImm())
            return Value{Operand::imm(-v.op.immValue()), Ty::Int};
        Reg dest = fn_->newIntReg();
        builder_->emit(Opcode::Sub, dest, Operand::imm(0), v.op);
        return Value{Operand(dest), Ty::Int};
    }

    static Opcode
    tokToIntOp(Tok op, int line)
    {
        switch (op) {
          case Tok::Plus: return Opcode::Add;
          case Tok::Minus: return Opcode::Sub;
          case Tok::Star: return Opcode::Mul;
          case Tok::Slash: return Opcode::Div;
          case Tok::Percent: return Opcode::Rem;
          case Tok::Amp: return Opcode::And;
          case Tok::Pipe: return Opcode::Or;
          case Tok::Caret: return Opcode::Xor;
          case Tok::Shl: return Opcode::Shl;
          case Tok::Shr: return Opcode::Sra;
          default:
            compileError(line, "bad integer operator");
        }
    }

    static Opcode
    tokToCmp(Tok op)
    {
        switch (op) {
          case Tok::Eq: return Opcode::CmpEq;
          case Tok::Ne: return Opcode::CmpNe;
          case Tok::Lt: return Opcode::CmpLt;
          case Tok::Le: return Opcode::CmpLe;
          case Tok::Gt: return Opcode::CmpGt;
          case Tok::Ge: return Opcode::CmpGe;
          default: panic("tokToCmp: not a comparison");
        }
    }

    Value
    genBinary(const Expr &expr)
    {
        // Logical operators get short-circuit control flow even in
        // value contexts.
        if (expr.op == Tok::AmpAmp || expr.op == Tok::PipePipe)
            return materializeCond(expr);

        Value lhs = genExpr(*expr.kids[0]);
        Value rhs = genExpr(*expr.kids[1]);

        if (isComparison(expr.op)) {
            Reg dest = fn_->newIntReg();
            if (lhs.type == Ty::Float || rhs.type == Ty::Float) {
                builder_->emit(tokToFCmp(expr.op), dest,
                               toFloat(lhs), toFloat(rhs));
            } else {
                builder_->emit(tokToCmp(expr.op), dest, lhs.op,
                               rhs.op);
            }
            return Value{Operand(dest), Ty::Int};
        }

        bool isFloatOp = lhs.type == Ty::Float ||
                         rhs.type == Ty::Float;
        if (isFloatOp) {
            Opcode op;
            switch (expr.op) {
              case Tok::Plus: op = Opcode::FAdd; break;
              case Tok::Minus: op = Opcode::FSub; break;
              case Tok::Star: op = Opcode::FMul; break;
              case Tok::Slash: op = Opcode::FDiv; break;
              default:
                compileError(expr.line,
                      "operator not defined on float");
            }
            Reg dest = fn_->newFloatReg();
            builder_->emit(op, dest, toFloat(lhs), toFloat(rhs));
            return Value{Operand(dest), Ty::Float};
        }

        Reg dest = fn_->newIntReg();
        builder_->emit(tokToIntOp(expr.op, expr.line), dest, lhs.op,
                       rhs.op);
        return Value{Operand(dest), Ty::Int};
    }

    /** Evaluate a boolean expression to 0/1 via control flow. */
    Value
    materializeCond(const Expr &expr)
    {
        Reg dest = fn_->newIntReg();
        BasicBlock *tBlk = fn_->newBlock();
        BasicBlock *fBlk = fn_->newBlock();
        BasicBlock *join = fn_->newBlock();
        genCond(expr, tBlk->id(), fBlk->id());
        builder_->setBlock(tBlk);
        builder_->mov(dest, Operand::imm(1));
        builder_->jump(join->id());
        builder_->setBlock(fBlk);
        builder_->mov(dest, Operand::imm(0));
        builder_->jump(join->id());
        builder_->setBlock(join);
        return Value{Operand(dest), Ty::Int};
    }

    Value
    genTernary(const Expr &expr)
    {
        // Determine the result type by generating the arms in
        // separate blocks; the result register class must be chosen
        // first, so probe the arms' types syntactically: generate
        // the then-arm, observe its type, and coerce both arms.
        BasicBlock *tBlk = fn_->newBlock();
        BasicBlock *fBlk = fn_->newBlock();
        BasicBlock *join = fn_->newBlock();
        genCond(*expr.kids[0], tBlk->id(), fBlk->id());

        builder_->setBlock(tBlk);
        Value tv = genExpr(*expr.kids[1]);
        BasicBlock *tEnd = builder_->blockPtr();

        builder_->setBlock(fBlk);
        Value fv = genExpr(*expr.kids[2]);
        BasicBlock *fEnd = builder_->blockPtr();

        Ty type = (tv.type == Ty::Float || fv.type == Ty::Float)
                      ? Ty::Float
                      : Ty::Int;
        Reg dest = type == Ty::Float ? fn_->newFloatReg()
                                     : fn_->newIntReg();

        builder_->setBlock(tEnd);
        if (type == Ty::Float)
            builder_->fmov(dest, toFloat(tv));
        else
            builder_->mov(dest, tv.op);
        builder_->jump(join->id());

        builder_->setBlock(fEnd);
        if (type == Ty::Float)
            builder_->fmov(dest, toFloat(fv));
        else
            builder_->mov(dest, fv.op);
        builder_->jump(join->id());

        builder_->setBlock(join);
        return Value{Operand(dest), type};
    }

    Value
    genAssign(const Expr &expr)
    {
        const Expr &target = *expr.kids[0];
        const Expr &rhs = *expr.kids[1];

        if (target.kind == Expr::Kind::Var) {
            if (const LocalVar *local = findLocal(target.name))
                return assignLocal(*local, expr, rhs);
            return assignGlobalScalar(target, expr, rhs);
        }
        return assignElement(target, expr, rhs);
    }

    Value
    assignLocal(const LocalVar &local, const Expr &expr,
                const Expr &rhs)
    {
        Value value = genExpr(rhs);
        Operand coerced = coerce(value, local.type, expr.line);
        if (expr.op == Tok::Assign) {
            if (local.type == Ty::Float)
                builder_->fmov(local.reg, coerced);
            else
                builder_->mov(local.reg, coerced);
        } else {
            bool add = expr.op == Tok::PlusAssign;
            if (local.type == Ty::Float) {
                builder_->emit(add ? Opcode::FAdd : Opcode::FSub,
                               local.reg, Operand(local.reg),
                               coerced);
            } else {
                builder_->emit(add ? Opcode::Add : Opcode::Sub,
                               local.reg, Operand(local.reg),
                               coerced);
            }
        }
        return Value{Operand(local.reg), local.type};
    }

    Value
    assignGlobalScalar(const Expr &target, const Expr &expr,
                       const Expr &rhs)
    {
        auto gt = globalTypes_.find(target.name);
        if (gt == globalTypes_.end())
            compileError(target.line, "unknown variable ",
                  target.name);
        if (globalIsArray_.at(target.name))
            compileError(target.line, "array ", target.name,
                  " assigned without index");
        const Global *g = prog_->global(target.name);
        Ty type = gt->second;

        Value value = genExpr(rhs);
        Operand coerced = coerce(value, type, expr.line);

        if (expr.op != Tok::Assign) {
            // Read-modify-write for += / -=.
            bool add = expr.op == Tok::PlusAssign;
            if (type == Ty::Float) {
                Reg old = fn_->newFloatReg();
                builder_->load(Opcode::FLd, old,
                               Operand::imm(g->addr),
                               Operand::imm(0));
                Reg sum = fn_->newFloatReg();
                builder_->emit(add ? Opcode::FAdd : Opcode::FSub,
                               sum, Operand(old), coerced);
                coerced = Operand(sum);
            } else {
                Reg old = fn_->newIntReg();
                builder_->load(Opcode::Ld, old,
                               Operand::imm(g->addr),
                               Operand::imm(0));
                Reg sum = fn_->newIntReg();
                builder_->emit(add ? Opcode::Add : Opcode::Sub, sum,
                               Operand(old), coerced);
                coerced = Operand(sum);
            }
        }
        builder_->store(type == Ty::Float ? Opcode::FSt : Opcode::St,
                        Operand::imm(g->addr), Operand::imm(0),
                        coerced);
        return Value{coerced, type == Ty::Float ? Ty::Float : Ty::Int};
    }

    Value
    assignElement(const Expr &target, const Expr &expr,
                  const Expr &rhs)
    {
        Ty elemType = Ty::Int;
        auto [base, off] = genElementAddress(
            target.name, *target.kids[0], target.line, &elemType);
        Ty valueType = elemType == Ty::Float ? Ty::Float : Ty::Int;

        Value value = genExpr(rhs);
        Operand coerced = coerce(value, valueType, expr.line);

        if (expr.op != Tok::Assign) {
            bool add = expr.op == Tok::PlusAssign;
            if (elemType == Ty::Float) {
                Reg old = fn_->newFloatReg();
                builder_->load(Opcode::FLd, old, base, off);
                Reg sum = fn_->newFloatReg();
                builder_->emit(add ? Opcode::FAdd : Opcode::FSub,
                               sum, Operand(old), coerced);
                coerced = Operand(sum);
            } else {
                Reg old = fn_->newIntReg();
                builder_->load(elemType == Ty::Byte ? Opcode::LdBu
                                                    : Opcode::Ld,
                               old, base, off);
                Reg sum = fn_->newIntReg();
                builder_->emit(add ? Opcode::Add : Opcode::Sub, sum,
                               Operand(old), coerced);
                coerced = Operand(sum);
            }
        }

        Opcode storeOp = elemType == Ty::Float
                             ? Opcode::FSt
                             : (elemType == Ty::Byte ? Opcode::StB
                                                     : Opcode::St);
        builder_->store(storeOp, base, off, coerced);
        return Value{coerced, valueType};
    }

    // --- statements ---

    void
    genStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block: {
            pushScope();
            for (const auto &child : stmt.body) {
                if (blockTerminated()) {
                    // Dead code after return/break: park it in an
                    // unreachable block so structure stays valid.
                    builder_->startBlock();
                }
                genStmt(*child);
            }
            popScope();
            return;
          }
          case Stmt::Kind::VarDecl: {
            Reg reg = stmt.declTy == Ty::Float ? fn_->newFloatReg()
                                               : fn_->newIntReg();
            defineLocal(stmt.name, stmt.declTy, reg, stmt.line);
            if (stmt.expr != nullptr) {
                Value v = genExpr(*stmt.expr);
                Operand coerced = coerce(v, stmt.declTy, stmt.line);
                if (stmt.declTy == Ty::Float)
                    builder_->fmov(reg, coerced);
                else
                    builder_->mov(reg, coerced);
            } else {
                if (stmt.declTy == Ty::Float)
                    builder_->fmov(reg, Operand::fimm(0.0));
                else
                    builder_->mov(reg, Operand::imm(0));
            }
            return;
          }
          case Stmt::Kind::If: {
            BasicBlock *thenBlk = fn_->newBlock();
            BasicBlock *join = fn_->newBlock();
            BasicBlock *elseBlk =
                stmt.body.size() > 1 ? fn_->newBlock() : join;
            genCond(*stmt.expr, thenBlk->id(), elseBlk->id());

            builder_->setBlock(thenBlk);
            genStmt(*stmt.body[0]);
            if (!blockTerminated())
                builder_->jump(join->id());

            if (stmt.body.size() > 1) {
                builder_->setBlock(elseBlk);
                genStmt(*stmt.body[1]);
                if (!blockTerminated())
                    builder_->jump(join->id());
            }
            builder_->setBlock(join);
            return;
          }
          case Stmt::Kind::While: {
            BasicBlock *head = fn_->newBlock();
            BasicBlock *body = fn_->newBlock();
            BasicBlock *exit = fn_->newBlock();
            builder_->jump(head->id());
            builder_->setBlock(head);
            genCond(*stmt.expr, body->id(), exit->id());

            loops_.push_back(LoopTargets{exit->id(), head->id()});
            builder_->setBlock(body);
            genStmt(*stmt.body[0]);
            if (!blockTerminated())
                builder_->jump(head->id());
            loops_.pop_back();

            builder_->setBlock(exit);
            return;
          }
          case Stmt::Kind::DoWhile: {
            BasicBlock *body = fn_->newBlock();
            BasicBlock *latch = fn_->newBlock();
            BasicBlock *exit = fn_->newBlock();
            builder_->jump(body->id());

            loops_.push_back(LoopTargets{exit->id(), latch->id()});
            builder_->setBlock(body);
            genStmt(*stmt.body[0]);
            if (!blockTerminated())
                builder_->jump(latch->id());
            loops_.pop_back();

            builder_->setBlock(latch);
            genCond(*stmt.expr, body->id(), exit->id());
            builder_->setBlock(exit);
            return;
          }
          case Stmt::Kind::For: {
            pushScope();
            // The init clause's declarations live in the for's own
            // scope (visible to cond/step/body), so emit its children
            // directly instead of opening a nested block scope.
            for (const auto &child : stmt.body[0]->body)
                genStmt(*child);
            BasicBlock *head = fn_->newBlock();
            BasicBlock *body = fn_->newBlock();
            BasicBlock *step = fn_->newBlock();
            BasicBlock *exit = fn_->newBlock();
            builder_->jump(head->id());

            builder_->setBlock(head);
            if (stmt.expr != nullptr)
                genCond(*stmt.expr, body->id(), exit->id());
            else
                builder_->jump(body->id());

            loops_.push_back(LoopTargets{exit->id(), step->id()});
            builder_->setBlock(body);
            genStmt(*stmt.body[1]);
            if (!blockTerminated())
                builder_->jump(step->id());
            loops_.pop_back();

            builder_->setBlock(step);
            if (stmt.step != nullptr)
                genExpr(*stmt.step);
            builder_->jump(head->id());

            builder_->setBlock(exit);
            popScope();
            return;
          }
          case Stmt::Kind::Return: {
            if (stmt.expr != nullptr) {
                if (decl_->retType == Ty::Void) {
                    compileError(stmt.line,
                          "void function returns a value");
                }
                Value v = genExpr(*stmt.expr);
                builder_->ret(
                    coerce(v, decl_->retType, stmt.line));
            } else {
                if (decl_->retType != Ty::Void) {
                    compileError(stmt.line,
                          "non-void function returns nothing");
                }
                builder_->ret();
            }
            return;
          }
          case Stmt::Kind::Break: {
            if (loops_.empty())
                compileError(stmt.line, "break outside a loop");
            builder_->jump(loops_.back().breakTarget);
            return;
          }
          case Stmt::Kind::Continue: {
            if (loops_.empty())
                compileError(stmt.line,
                      "continue outside a loop");
            builder_->jump(loops_.back().continueTarget);
            return;
          }
          case Stmt::Kind::ExprStmt: {
            if (stmt.expr->kind == Expr::Kind::Call)
                genCall(*stmt.expr, true);
            else
                genExpr(*stmt.expr);
            return;
          }
          case Stmt::Kind::Empty:
            return;
        }
        panic("genStmt: bad statement kind");
    }

    const Unit &unit_;
    std::unique_ptr<Program> prog_;
    Function *fn_ = nullptr;
    const FuncDecl *decl_ = nullptr;
    std::unique_ptr<IRBuilder> builder_;
    std::map<std::string, const FuncDecl *> signatures_;
    std::map<std::string, Ty> globalTypes_;
    std::map<std::string, bool> globalIsArray_;
    std::vector<std::map<std::string, LocalVar>> scopes_;
    std::vector<LoopTargets> loops_;
};

} // namespace

std::unique_ptr<Program>
generateIR(const Unit &unit)
{
    return IRGen(unit).run();
}

std::unique_ptr<Program>
compileSource(const std::string &source)
{
    Unit unit = parseUnit(source);
    return generateIR(unit);
}

} // namespace predilp
