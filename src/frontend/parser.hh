/**
 * @file
 * Recursive-descent parser for ILC.
 */

#ifndef PREDILP_FRONTEND_PARSER_HH
#define PREDILP_FRONTEND_PARSER_HH

#include <string>

#include "frontend/ast.hh"

namespace predilp
{

/**
 * Parse ILC source text into an AST.
 * @throws FatalError with a line number on syntax errors.
 */
Unit parseUnit(const std::string &source);

} // namespace predilp

#endif // PREDILP_FRONTEND_PARSER_HH
