#include "frontend/parser.hh"

#include "frontend/lexer.hh"
#include "support/logging.hh"

namespace predilp
{

namespace
{

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {}

    Unit
    run()
    {
        Unit unit;
        while (!at(Tok::End))
            topLevel(unit);
        return unit;
    }

  private:
    const Token &peek(std::size_t ahead = 0) const
    {
        std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    bool at(Tok kind) const { return peek().kind == kind; }

    Token
    advance()
    {
        Token tok = peek();
        if (pos_ + 1 < tokens_.size())
            pos_ += 1;
        return tok;
    }

    bool
    match(Tok kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    Token
    expect(Tok kind, const char *where)
    {
        if (!at(kind)) {
            compileError(peek().line, "expected ", tokName(kind),
                  " ", where, ", got ", tokName(peek().kind));
        }
        return advance();
    }

    bool
    atType() const
    {
        return at(Tok::KwInt) || at(Tok::KwFloat) || at(Tok::KwByte) ||
               at(Tok::KwVoid);
    }

    Ty
    parseType()
    {
        if (match(Tok::KwInt))
            return Ty::Int;
        if (match(Tok::KwFloat))
            return Ty::Float;
        if (match(Tok::KwByte))
            return Ty::Byte;
        if (match(Tok::KwVoid))
            return Ty::Void;
        compileError(peek().line, "expected a type, got ",
              tokName(peek().kind));
    }

    void
    topLevel(Unit &unit)
    {
        int line = peek().line;
        Ty type = parseType();
        Token name = expect(Tok::Ident, "in declaration");

        if (at(Tok::LParen)) {
            unit.functions.push_back(
                parseFunction(type, name.text, line));
        } else {
            parseGlobal(unit, type, name.text, line);
        }
    }

    FuncDecl
    parseFunction(Ty retType, std::string name, int line)
    {
        FuncDecl fn;
        fn.name = std::move(name);
        fn.retType = retType;
        fn.line = line;
        panicIf(retType == Ty::Byte, "byte return type unsupported");

        expect(Tok::LParen, "after function name");
        if (!at(Tok::RParen)) {
            do {
                Param param;
                Ty pt = parseType();
                if (pt != Ty::Int && pt != Ty::Float) {
                    compileError(peek().line,
                          "parameters must be int or float");
                }
                param.type = pt;
                param.name =
                    expect(Tok::Ident, "in parameter list").text;
                fn.params.push_back(std::move(param));
            } while (match(Tok::Comma));
        }
        expect(Tok::RParen, "after parameters");
        fn.body = parseBlock();
        return fn;
    }

    void
    parseGlobal(Unit &unit, Ty type, std::string name, int line)
    {
        GlobalDecl g;
        g.name = std::move(name);
        g.elemType = type;
        g.line = line;
        if (type == Ty::Void)
            compileError(line, "void globals are not allowed");

        if (match(Tok::LBracket)) {
            g.isArray = true;
            if (!at(Tok::RBracket)) {
                g.count = expect(Tok::IntLit,
                                 "as array size").intValue;
            } else {
                g.count = -1; // size from initializer.
            }
            expect(Tok::RBracket, "after array size");
        } else if (type == Ty::Byte) {
            compileError(line, "byte is only valid for arrays");
        }

        if (match(Tok::Assign))
            parseGlobalInit(g);
        if (g.count < 0) {
            std::int64_t n = g.elemType == Ty::Float
                                 ? static_cast<std::int64_t>(
                                       g.initFloats.size())
                                 : static_cast<std::int64_t>(
                                       g.initInts.size());
            if (n == 0)
                compileError(line, "array ", g.name,
                      " has neither size nor initializer");
            g.count = n;
        }
        unit.globals.push_back(std::move(g));
        expect(Tok::Semi, "after global declaration");
    }

    void
    parseGlobalInit(GlobalDecl &g)
    {
        if (at(Tok::StrLit)) {
            Token lit = advance();
            if (g.elemType != Ty::Byte || !g.isArray) {
                compileError(lit.line,
                      "string initializer requires a byte array");
            }
            for (char c : lit.text)
                g.initInts.push_back(
                    static_cast<unsigned char>(c));
            g.initInts.push_back(0); // NUL terminator.
            return;
        }
        if (match(Tok::LBrace)) {
            do {
                readConstInto(g);
            } while (match(Tok::Comma));
            expect(Tok::RBrace, "after initializer list");
            return;
        }
        readConstInto(g);
    }

    void
    readConstInto(GlobalDecl &g)
    {
        bool neg = match(Tok::Minus);
        if (at(Tok::FloatLit)) {
            Token lit = advance();
            if (g.elemType != Ty::Float)
                compileError(lit.line,
                      "float initializer for non-float global");
            g.initFloats.push_back(neg ? -lit.floatValue
                                       : lit.floatValue);
            return;
        }
        Token lit = expect(Tok::IntLit, "in initializer");
        if (g.elemType == Ty::Float) {
            g.initFloats.push_back(static_cast<double>(
                neg ? -lit.intValue : lit.intValue));
        } else {
            g.initInts.push_back(neg ? -lit.intValue : lit.intValue);
        }
    }

    // --- statements ---

    StmtPtr
    parseBlock()
    {
        int line = peek().line;
        expect(Tok::LBrace, "to open block");
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::Block, line);
        while (!at(Tok::RBrace)) {
            if (at(Tok::End))
                compileError(line, "unterminated block");
            parseStmtInto(stmt->body);
        }
        expect(Tok::RBrace, "to close block");
        return stmt;
    }

    /**
     * Parse one statement; may append several (multi-declarator
     * variable declarations expand to one VarDecl each).
     */
    void
    parseStmtInto(std::vector<StmtPtr> &out)
    {
        if (at(Tok::KwInt) || at(Tok::KwFloat)) {
            parseVarDecl(out);
            return;
        }
        out.push_back(parseStmt());
    }

    void
    parseVarDecl(std::vector<StmtPtr> &out)
    {
        int line = peek().line;
        Ty type = parseType();
        do {
            Token name = expect(Tok::Ident, "in declaration");
            auto stmt =
                std::make_unique<Stmt>(Stmt::Kind::VarDecl, line);
            stmt->declTy = type;
            stmt->name = name.text;
            if (match(Tok::Assign))
                stmt->expr = parseExpr();
            out.push_back(std::move(stmt));
        } while (match(Tok::Comma));
        expect(Tok::Semi, "after variable declaration");
    }

    StmtPtr
    parseStmt()
    {
        int line = peek().line;
        if (at(Tok::LBrace))
            return parseBlock();
        if (match(Tok::Semi))
            return std::make_unique<Stmt>(Stmt::Kind::Empty, line);

        if (match(Tok::KwIf)) {
            auto stmt = std::make_unique<Stmt>(Stmt::Kind::If, line);
            expect(Tok::LParen, "after 'if'");
            stmt->expr = parseExpr();
            expect(Tok::RParen, "after condition");
            stmt->body.push_back(parseStmt());
            if (match(Tok::KwElse))
                stmt->body.push_back(parseStmt());
            return stmt;
        }
        if (match(Tok::KwWhile)) {
            auto stmt =
                std::make_unique<Stmt>(Stmt::Kind::While, line);
            expect(Tok::LParen, "after 'while'");
            stmt->expr = parseExpr();
            expect(Tok::RParen, "after condition");
            stmt->body.push_back(parseStmt());
            return stmt;
        }
        if (match(Tok::KwDo)) {
            auto stmt =
                std::make_unique<Stmt>(Stmt::Kind::DoWhile, line);
            stmt->body.push_back(parseStmt());
            expect(Tok::KwWhile, "after do-body");
            expect(Tok::LParen, "after 'while'");
            stmt->expr = parseExpr();
            expect(Tok::RParen, "after condition");
            expect(Tok::Semi, "after do-while");
            return stmt;
        }
        if (match(Tok::KwFor)) {
            auto stmt = std::make_unique<Stmt>(Stmt::Kind::For, line);
            expect(Tok::LParen, "after 'for'");
            // init clause
            std::vector<StmtPtr> init;
            if (at(Tok::KwInt) || at(Tok::KwFloat)) {
                parseVarDecl(init); // consumes the ';'.
            } else if (!at(Tok::Semi)) {
                auto es = std::make_unique<Stmt>(
                    Stmt::Kind::ExprStmt, line);
                es->expr = parseExpr();
                init.push_back(std::move(es));
                expect(Tok::Semi, "after for-init");
            } else {
                expect(Tok::Semi, "after for-init");
            }
            // Wrap multi-decl init into a block statement.
            auto initBlock =
                std::make_unique<Stmt>(Stmt::Kind::Block, line);
            initBlock->body = std::move(init);
            stmt->body.push_back(std::move(initBlock));

            if (!at(Tok::Semi))
                stmt->expr = parseExpr();
            expect(Tok::Semi, "after for-condition");
            if (!at(Tok::RParen))
                stmt->step = parseExpr();
            expect(Tok::RParen, "after for-step");
            stmt->body.push_back(parseStmt());
            return stmt;
        }
        if (match(Tok::KwReturn)) {
            auto stmt =
                std::make_unique<Stmt>(Stmt::Kind::Return, line);
            if (!at(Tok::Semi))
                stmt->expr = parseExpr();
            expect(Tok::Semi, "after return");
            return stmt;
        }
        if (match(Tok::KwBreak)) {
            expect(Tok::Semi, "after break");
            return std::make_unique<Stmt>(Stmt::Kind::Break, line);
        }
        if (match(Tok::KwContinue)) {
            expect(Tok::Semi, "after continue");
            return std::make_unique<Stmt>(Stmt::Kind::Continue, line);
        }

        auto stmt = std::make_unique<Stmt>(Stmt::Kind::ExprStmt, line);
        stmt->expr = parseExpr();
        expect(Tok::Semi, "after expression");
        return stmt;
    }

    // --- expressions (precedence climbing) ---

    ExprPtr
    parseExpr()
    {
        return parseAssign();
    }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseTernary();
        if (at(Tok::Assign) || at(Tok::PlusAssign) ||
            at(Tok::MinusAssign)) {
            Token op = advance();
            if (lhs->kind != Expr::Kind::Var &&
                lhs->kind != Expr::Kind::Index) {
                compileError(op.line,
                      "assignment target must be a variable or "
                      "array element");
            }
            auto node =
                std::make_unique<Expr>(Expr::Kind::Assign, op.line);
            node->op = op.kind;
            node->kids.push_back(std::move(lhs));
            node->kids.push_back(parseAssign());
            return node;
        }
        return lhs;
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (!at(Tok::Question))
            return cond;
        Token q = advance();
        auto node =
            std::make_unique<Expr>(Expr::Kind::Ternary, q.line);
        node->kids.push_back(std::move(cond));
        node->kids.push_back(parseExpr());
        expect(Tok::Colon, "in ternary expression");
        node->kids.push_back(parseTernary());
        return node;
    }

    /** Binary operator precedence; higher binds tighter. */
    static int
    precedence(Tok kind)
    {
        switch (kind) {
          case Tok::PipePipe: return 1;
          case Tok::AmpAmp: return 2;
          case Tok::Pipe: return 3;
          case Tok::Caret: return 4;
          case Tok::Amp: return 5;
          case Tok::Eq: case Tok::Ne: return 6;
          case Tok::Lt: case Tok::Le:
          case Tok::Gt: case Tok::Ge: return 7;
          case Tok::Shl: case Tok::Shr: return 8;
          case Tok::Plus: case Tok::Minus: return 9;
          case Tok::Star: case Tok::Slash:
          case Tok::Percent: return 10;
          default: return -1;
        }
    }

    ExprPtr
    parseBinary(int minPrec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int prec = precedence(peek().kind);
            if (prec < 0 || prec < minPrec)
                return lhs;
            Token op = advance();
            ExprPtr rhs = parseBinary(prec + 1);
            auto node =
                std::make_unique<Expr>(Expr::Kind::Binary, op.line);
            node->op = op.kind;
            node->kids.push_back(std::move(lhs));
            node->kids.push_back(std::move(rhs));
            lhs = std::move(node);
        }
    }

    ExprPtr
    parseUnary()
    {
        if (at(Tok::Minus) || at(Tok::Not) || at(Tok::Tilde)) {
            Token op = advance();
            auto node =
                std::make_unique<Expr>(Expr::Kind::Unary, op.line);
            node->op = op.kind;
            node->kids.push_back(parseUnary());
            return node;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr base = parsePrimary();
        while (true) {
            if (at(Tok::LBracket)) {
                Token tok = advance();
                if (base->kind != Expr::Kind::Var) {
                    compileError(tok.line,
                          "only named arrays can be indexed");
                }
                auto node = std::make_unique<Expr>(
                    Expr::Kind::Index, tok.line);
                node->name = base->name;
                node->kids.push_back(parseExpr());
                expect(Tok::RBracket, "after index");
                base = std::move(node);
            } else if (at(Tok::LParen)) {
                Token tok = advance();
                if (base->kind != Expr::Kind::Var) {
                    compileError(tok.line,
                          "call target must be a function name");
                }
                auto node = std::make_unique<Expr>(
                    Expr::Kind::Call, tok.line);
                node->name = base->name;
                if (!at(Tok::RParen)) {
                    do {
                        node->kids.push_back(parseExpr());
                    } while (match(Tok::Comma));
                }
                expect(Tok::RParen, "after call arguments");
                base = std::move(node);
            } else {
                return base;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        Token tok = peek();
        if (match(Tok::IntLit)) {
            auto node =
                std::make_unique<Expr>(Expr::Kind::IntLit, tok.line);
            node->intValue = tok.intValue;
            return node;
        }
        if (match(Tok::FloatLit)) {
            auto node = std::make_unique<Expr>(Expr::Kind::FloatLit,
                                               tok.line);
            node->floatValue = tok.floatValue;
            return node;
        }
        if (match(Tok::Ident)) {
            auto node =
                std::make_unique<Expr>(Expr::Kind::Var, tok.line);
            node->name = tok.text;
            return node;
        }
        if (match(Tok::LParen)) {
            ExprPtr inner = parseExpr();
            expect(Tok::RParen, "after parenthesized expression");
            return inner;
        }
        compileError(tok.line, "expected an expression, got ",
              tokName(tok.kind));
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

} // namespace

Unit
parseUnit(const std::string &source)
{
    return Parser(lex(source)).run();
}

} // namespace predilp
