/**
 * @file
 * Abstract syntax tree for ILC. A deliberately small surface: int and
 * float scalars, global arrays (int/float/byte), functions, and the
 * usual C control flow and expressions — enough to express the
 * paper's control-intensive benchmark kernels naturally.
 */

#ifndef PREDILP_FRONTEND_AST_HH
#define PREDILP_FRONTEND_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/token.hh"

namespace predilp
{

/** Source-level types. */
enum class Ty : std::uint8_t { Int, Float, Byte, Void };

/** Expression node. */
struct Expr
{
    enum class Kind : std::uint8_t
    {
        IntLit,   ///< intValue.
        FloatLit, ///< floatValue.
        Var,      ///< name.
        Index,    ///< name[kids[0]] — global array element.
        Call,     ///< name(kids...) — function or builtin.
        Unary,    ///< op kids[0] (-, !, ~).
        Binary,   ///< kids[0] op kids[1].
        Assign,   ///< kids[0] op= kids[1]; op in {=, +=, -=}.
        Ternary,  ///< kids[0] ? kids[1] : kids[2].
    };

    Kind kind;
    int line = 0;
    Tok op = Tok::End;             ///< operator for Unary/Binary/Assign.
    std::int64_t intValue = 0;
    double floatValue = 0.0;
    std::string name;
    std::vector<std::unique_ptr<Expr>> kids;

    Expr(Kind k, int ln) : kind(k), line(ln) {}
};

using ExprPtr = std::unique_ptr<Expr>;

/** Statement node. */
struct Stmt
{
    enum class Kind : std::uint8_t
    {
        Block,    ///< body holds the statements.
        VarDecl,  ///< name : declTy, optional init in expr.
        If,       ///< expr, body[0] = then, body[1] = else (opt).
        While,    ///< expr, body[0].
        DoWhile,  ///< body[0], expr.
        For,      ///< init (body[0]), expr cond, step, body[1].
        Return,   ///< optional expr.
        Break,
        Continue,
        ExprStmt, ///< expr.
        Empty,
    };

    Kind kind;
    int line = 0;
    Ty declTy = Ty::Int;
    std::string name;
    ExprPtr expr;              ///< condition / value / expression.
    ExprPtr step;              ///< for-loop step expression.
    std::vector<std::unique_ptr<Stmt>> body;

    Stmt(Kind k, int ln) : kind(k), line(ln) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

/** One function parameter. */
struct Param
{
    std::string name;
    Ty type = Ty::Int;
};

/** Function definition. */
struct FuncDecl
{
    std::string name;
    Ty retType = Ty::Void;
    std::vector<Param> params;
    StmtPtr body;
    int line = 0;
};

/** Global variable or array definition. */
struct GlobalDecl
{
    std::string name;
    Ty elemType = Ty::Int;
    /** Element count; 1 with isArray=false means scalar. */
    std::int64_t count = 1;
    bool isArray = false;
    std::vector<std::int64_t> initInts;
    std::vector<double> initFloats;
    int line = 0;
};

/** A parsed translation unit. */
struct Unit
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace predilp

#endif // PREDILP_FRONTEND_AST_HH
