/**
 * @file
 * IR generation from the ILC AST. Produces a Program whose control
 * flow is fully explicit (every block ends in a jump, branch+jump, or
 * return); later layout passes convert jumps to fallthroughs.
 */

#ifndef PREDILP_FRONTEND_IRGEN_HH
#define PREDILP_FRONTEND_IRGEN_HH

#include <memory>
#include <string>

#include "frontend/ast.hh"
#include "ir/program.hh"

namespace predilp
{

/** Lower a parsed unit to IR. @throws FatalError on semantic errors. */
std::unique_ptr<Program> generateIR(const Unit &unit);

/** Convenience: parse and lower ILC source text. */
std::unique_ptr<Program> compileSource(const std::string &source);

} // namespace predilp

#endif // PREDILP_FRONTEND_IRGEN_HH
