#include "frontend/lexer.hh"

#include <cctype>
#include <map>

#include "support/logging.hh"

namespace predilp
{

namespace
{

const std::map<std::string, Tok> keywords = {
    {"int", Tok::KwInt},         {"float", Tok::KwFloat},
    {"byte", Tok::KwByte},       {"void", Tok::KwVoid},
    {"if", Tok::KwIf},           {"else", Tok::KwElse},
    {"while", Tok::KwWhile},     {"for", Tok::KwFor},
    {"do", Tok::KwDo},           {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue}, {"return", Tok::KwReturn},
};

class Lexer
{
  public:
    explicit Lexer(const std::string &source) : src_(source) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> tokens;
        while (true) {
            skipWhitespaceAndComments();
            Token tok = next();
            tokens.push_back(tok);
            if (tok.kind == Tok::End)
                break;
        }
        return tokens;
    }

  private:
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        char c = peek();
        pos_ += 1;
        if (c == '\n')
            line_ += 1;
        return c;
    }

    bool
    match(char expected)
    {
        if (peek() != expected)
            return false;
        advance();
        return true;
    }

    void
    skipWhitespaceAndComments()
    {
        while (true) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() != '\n' && peek() != '\0')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (!(peek() == '*' && peek(1) == '/')) {
                    if (peek() == '\0')
                        compileError(line_,
                              "unterminated block comment");
                    advance();
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token
    make(Tok kind)
    {
        Token tok;
        tok.kind = kind;
        tok.line = line_;
        return tok;
    }

    std::int64_t
    readEscape()
    {
        char c = advance();
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default:
            compileError(line_, "bad escape sequence \\", c);
        }
    }

    Token
    next()
    {
        if (pos_ >= src_.size())
            return make(Tok::End);

        int startLine = line_;
        char c = advance();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident(1, c);
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                ident.push_back(advance());
            }
            Token tok = make(Tok::Ident);
            tok.line = startLine;
            auto it = keywords.find(ident);
            if (it != keywords.end()) {
                tok.kind = it->second;
            } else {
                tok.text = std::move(ident);
            }
            return tok;
        }

        if (std::isdigit(static_cast<unsigned char>(c)))
            return number(c, startLine);

        if (c == '\'') {
            std::int64_t value =
                peek() == '\\' ? (advance(), readEscape())
                               : advance();
            if (!match('\''))
                compileError(startLine,
                      "unterminated char literal");
            Token tok = make(Tok::IntLit);
            tok.line = startLine;
            tok.intValue = value;
            return tok;
        }

        if (c == '"') {
            Token tok = make(Tok::StrLit);
            tok.line = startLine;
            while (peek() != '"') {
                if (peek() == '\0')
                    compileError(startLine,
                          "unterminated string literal");
                char ch = advance();
                tok.text.push_back(
                    ch == '\\' ? static_cast<char>(readEscape()) : ch);
            }
            advance();
            return tok;
        }

        Token tok = make(Tok::End);
        tok.line = startLine;
        switch (c) {
          case '(': tok.kind = Tok::LParen; break;
          case ')': tok.kind = Tok::RParen; break;
          case '{': tok.kind = Tok::LBrace; break;
          case '}': tok.kind = Tok::RBrace; break;
          case '[': tok.kind = Tok::LBracket; break;
          case ']': tok.kind = Tok::RBracket; break;
          case ',': tok.kind = Tok::Comma; break;
          case ';': tok.kind = Tok::Semi; break;
          case ':': tok.kind = Tok::Colon; break;
          case '?': tok.kind = Tok::Question; break;
          case '~': tok.kind = Tok::Tilde; break;
          case '^': tok.kind = Tok::Caret; break;
          case '%': tok.kind = Tok::Percent; break;
          case '*': tok.kind = Tok::Star; break;
          case '/': tok.kind = Tok::Slash; break;
          case '+':
            tok.kind = match('=') ? Tok::PlusAssign : Tok::Plus;
            break;
          case '-':
            tok.kind = match('=') ? Tok::MinusAssign : Tok::Minus;
            break;
          case '&':
            tok.kind = match('&') ? Tok::AmpAmp : Tok::Amp;
            break;
          case '|':
            tok.kind = match('|') ? Tok::PipePipe : Tok::Pipe;
            break;
          case '=':
            tok.kind = match('=') ? Tok::Eq : Tok::Assign;
            break;
          case '!':
            tok.kind = match('=') ? Tok::Ne : Tok::Not;
            break;
          case '<':
            if (match('<'))
                tok.kind = Tok::Shl;
            else
                tok.kind = match('=') ? Tok::Le : Tok::Lt;
            break;
          case '>':
            if (match('>'))
                tok.kind = Tok::Shr;
            else
                tok.kind = match('=') ? Tok::Ge : Tok::Gt;
            break;
          default:
            compileError(startLine, "unexpected character '", c,
                  "'");
        }
        return tok;
    }

    Token
    number(char first, int startLine)
    {
        std::string digits(1, first);
        bool isFloat = false;

        if (first == '0' && (peek() == 'x' || peek() == 'X')) {
            advance();
            std::string hex;
            while (std::isxdigit(static_cast<unsigned char>(peek())))
                hex.push_back(advance());
            if (hex.empty())
                compileError(startLine, "bad hex literal");
            Token tok = make(Tok::IntLit);
            tok.line = startLine;
            tok.intValue = static_cast<std::int64_t>(
                std::stoull(hex, nullptr, 16));
            return tok;
        }

        while (std::isdigit(static_cast<unsigned char>(peek())))
            digits.push_back(advance());
        if (peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(peek(1)))) {
            isFloat = true;
            digits.push_back(advance());
            while (std::isdigit(static_cast<unsigned char>(peek())))
                digits.push_back(advance());
        }
        if (peek() == 'e' || peek() == 'E') {
            isFloat = true;
            digits.push_back(advance());
            if (peek() == '+' || peek() == '-')
                digits.push_back(advance());
            while (std::isdigit(static_cast<unsigned char>(peek())))
                digits.push_back(advance());
        }

        Token tok = make(isFloat ? Tok::FloatLit : Tok::IntLit);
        tok.line = startLine;
        if (isFloat)
            tok.floatValue = std::stod(digits);
        else
            tok.intValue = static_cast<std::int64_t>(
                std::stoull(digits));
        return tok;
    }

    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return Lexer(source).run();
}

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwFloat: return "'float'";
      case Tok::KwByte: return "'byte'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwReturn: return "'return'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Colon: return "':'";
      case Tok::Question: return "'?'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Not: return "'!'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
    }
    return "<bad token>";
}

} // namespace predilp
