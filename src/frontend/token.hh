/**
 * @file
 * Tokens of the ILC language — the small C-like language the
 * benchmark workloads are written in.
 */

#ifndef PREDILP_FRONTEND_TOKEN_HH
#define PREDILP_FRONTEND_TOKEN_HH

#include <cstdint>
#include <string>

namespace predilp
{

/** Token kinds of ILC. */
enum class Tok : std::uint8_t
{
    End,
    Ident,
    IntLit,
    FloatLit,
    StrLit,

    // keywords
    KwInt, KwFloat, KwByte, KwVoid,
    KwIf, KwElse, KwWhile, KwFor, KwDo,
    KwBreak, KwContinue, KwReturn,

    // punctuation / operators
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Colon, Question,
    Assign, PlusAssign, MinusAssign,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Not,
    AmpAmp, PipePipe,
    Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** One lexed token with its source position. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;          ///< identifier / string spelling.
    std::int64_t intValue = 0; ///< for IntLit (and char literals).
    double floatValue = 0.0;   ///< for FloatLit.
    int line = 0;              ///< 1-based source line.
};

/** @return a printable name for diagnostics. */
std::string tokName(Tok kind);

} // namespace predilp

#endif // PREDILP_FRONTEND_TOKEN_HH
