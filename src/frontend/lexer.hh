/**
 * @file
 * Hand-written lexer for ILC.
 */

#ifndef PREDILP_FRONTEND_LEXER_HH
#define PREDILP_FRONTEND_LEXER_HH

#include <string>
#include <vector>

#include "frontend/token.hh"

namespace predilp
{

/**
 * Tokenize @p source. Supports //-comments, C-style block comments,
 * decimal and hex integer literals, float literals, char literals
 * with the usual escapes, and string literals (for byte-array
 * initializers).
 *
 * @throws FatalError on malformed input, with a line number.
 */
std::vector<Token> lex(const std::string &source);

} // namespace predilp

#endif // PREDILP_FRONTEND_LEXER_HH
