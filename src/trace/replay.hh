/**
 * @file
 * The replay half of trace-once/replay-many: price a captured
 * TraceBuffer under a SimConfig without re-running the emulator.
 * replay() produces a SimResult bit-identical to what simulate()
 * returns for the same program/input/config — both drive the same
 * CycleModel; replay merely feeds it from the buffer instead of the
 * live emulator. The implementation lives with the cycle model in
 * src/sim/timing.cc.
 */

#ifndef PREDILP_TRACE_REPLAY_HH
#define PREDILP_TRACE_REPLAY_HH

#include "sim/timing.hh"
#include "trace/trace.hh"

namespace predilp
{

/**
 * Drive the timing model with a captured trace.
 *
 * One capture() per compiled program serves every SimConfig: issue
 * width, branch slots, misprediction penalty, cache and BTB
 * parameters only affect pricing, never the dynamic instruction
 * stream. (config.maxDynInstrs is ignored — the fuel limit applied
 * at capture time governs the trace.)
 */
SimResult replay(const TraceBuffer &trace, const SimConfig &config);

} // namespace predilp

#endif // PREDILP_TRACE_REPLAY_HH
