#include "trace/trace.hh"

#include <algorithm>

#include "emu/decoded.hh"
#include "support/logging.hh"

namespace predilp
{

AddressMap::AddressMap(const Program &prog)
{
    std::int64_t addr = 0x1000;
    tables_.reserve(prog.functions().size());
    for (const auto &fn : prog.functions()) {
        fnOrdinals_.emplace(fn.get(), tables_.size());
        auto &table = tables_.emplace_back();
        table.assign(
            static_cast<std::size_t>(fn->instrIdBound()), -1);
        for (BlockId id : fn->layout()) {
            for (const auto &instr : fn->block(id)->instrs()) {
                table[static_cast<std::size_t>(instr.id())] = addr;
                addr += 4;
            }
        }
        addr = (addr + 63) & ~std::int64_t{63}; // align functions.
    }
}

StaticIndex::StaticIndex(const Program &prog) : addresses_(prog)
{
    idTables_.reserve(prog.functions().size());
    for (const auto &fn : prog.functions()) {
        fnOrdinals_.emplace(fn.get(), idTables_.size());
        idTables_.emplace_back(
            static_cast<std::size_t>(fn->instrIdBound()), invalidId);
        auto bound = [this](RegClass cls, int n) {
            auto i = static_cast<std::size_t>(cls);
            regBounds_[i] = std::max(regBounds_[i], n);
        };
        bound(RegClass::Int, fn->numIntRegs());
        bound(RegClass::Float, fn->numFloatRegs());
        bound(RegClass::Pred, fn->numPredRegs());
    }
}

std::uint32_t
StaticIndex::addOp(const Function *fn, const Instruction *instr)
{
    panicIf(ops_.size() > traceMaxStaticId,
            "static index overflow: more than ", traceMaxStaticId + 1,
            " static instructions cannot be packed into ",
            traceIdBits, "-bit trace entries");
    StaticOp op;
    op.addr = addresses_.addressOf(fn, instr);
    op.op = instr->op();
    op.guard = instr->guard();
    op.dest = instr->dest();
    op.regBegin = static_cast<std::uint32_t>(regPool_.size());
    for (const auto &src : instr->srcs()) {
        if (src.isReg())
            regPool_.push_back(src.reg());
    }
    op.srcRegCount = static_cast<std::uint16_t>(
        regPool_.size() - op.regBegin);
    for (const auto &pd : instr->predDests())
        regPool_.push_back(pd.reg);
    op.predDestCount = static_cast<std::uint16_t>(
        regPool_.size() - op.regBegin - op.srcRegCount);
    op.isBranch = instr->isControlTransfer() || instr->isCall();
    op.isLoad = instr->isLoad();
    op.isStore = instr->isStore();
    op.isPredAll = instr->isPredAll();
    if (instr->isCondBranch())
        op.kind = StaticOp::Kind::CondBranch;
    else if (instr->isJump())
        op.kind = StaticOp::Kind::Jump;
    else if (instr->isCall() || instr->isRet())
        op.kind = StaticOp::Kind::CallRet;
    auto id = static_cast<std::uint32_t>(ops_.size());
    ops_.push_back(op);
    return id;
}

namespace
{

/** TraceSink that interns and appends every record. */
class Recorder : public TraceSink
{
  public:
    explicit Recorder(TraceBuffer &buffer) : buffer_(buffer) {}

    void
    onInstr(const DynRecord &record) override
    {
        std::uint32_t id =
            buffer_.index().intern(record.fn, record.instr);
        buffer_.append(id, traceFlagsOf(record), record.memAddr);
    }

  private:
    TraceBuffer &buffer_;
};

} // namespace

std::unique_ptr<TraceBuffer>
capture(const Program &prog, const std::string &input,
        std::uint64_t maxDynInstrs, EmuBackend backend)
{
    if (backend == EmuBackend::Threaded) {
        DecodedProgram decoded(prog);
        return captureDecoded(decoded, input, maxDynInstrs);
    }
    auto buffer = std::make_unique<TraceBuffer>(prog);
    Recorder recorder(*buffer);
    EmuOptions opts;
    opts.sink = &recorder;
    opts.maxDynInstrs = maxDynInstrs;
    opts.backend = EmuBackend::Interp;
    Emulator emu(prog);
    buffer->setRun(emu.run(input, opts));
    return buffer;
}

} // namespace predilp
