/**
 * @file
 * Trace capture for trace-once/replay-many simulation.
 *
 * The paper's methodology (§4.1) decouples functional execution from
 * timing: benchmarks were traced once on PA-RISC hardware and the
 * trace drove the cycle-level simulator. This module is that
 * decoupling for PredILP: capture() runs the functional emulator once
 * per compiled program and records the dynamic instruction stream in
 * a compact TraceBuffer; replay() (declared in trace/replay.hh,
 * implemented next to the cycle model in src/sim/timing.cc) then
 * prices the same buffer under any number of SimConfigs — issue
 * widths, branch slots, perfect vs. real caches, BTB sizes — without
 * re-emulating.
 *
 * Buffer format: one packed 4-byte TraceEntry per dynamic
 * instruction — the interned static-instruction id in the low 29
 * bits, the nullified/taken/has-memory flags in the top 3. Memory
 * addresses, present for only a fraction of records, live in a
 * parallel side stream of zigzag-varint *deltas* (consecutive
 * accesses are usually nearby, so most deltas fit in one or two
 * bytes). Both streams use chunked storage, split at the same entry
 * boundaries, so multi-million-instruction captures never reallocate
 * or copy and replay can consume whole chunks at a time
 * (ChunkCursor).
 *
 * Interning: a StaticIndex maps each (function, instruction) pair to
 * a dense uint32 id on first dynamic appearance, using per-function
 * vectors indexed by instruction id (no per-record map lookups), and
 * precomputes everything the timing model needs per static
 * instruction — fetch address, opcode, guard/source/destination
 * registers, and branch classification — exactly once. It also
 * publishes per-class register-index bounds so the cycle model can
 * size its dense scoreboard once (sim/scoreboard.hh).
 */

#ifndef PREDILP_TRACE_TRACE_HH
#define PREDILP_TRACE_TRACE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "emu/emulator.hh"
#include "ir/program.hh"
#include "support/diag.hh"
#include "support/logging.hh"

namespace predilp
{

/**
 * Instruction address assignment: 4 bytes per instruction, functions
 * and blocks laid out in program/layout order. Used by the I-cache
 * and BTB models. Lookup is a per-function ordinal plus a dense
 * per-function vector indexed by instruction id; the StaticIndex
 * calls it once per *static* instruction, never per record.
 */
class AddressMap
{
  public:
    /** Empty map, for indexes rebuilt from a serialized artifact. */
    AddressMap() = default;

    explicit AddressMap(const Program &prog);

    /** Address of @p instr inside @p fn. */
    std::int64_t
    addressOf(const Function *fn, const Instruction *instr) const
    {
        const auto &table = tables_[fnOrdinals_.at(fn)];
        return table[static_cast<std::size_t>(instr->id())];
    }

  private:
    std::unordered_map<const Function *, std::size_t> fnOrdinals_;
    std::vector<std::vector<std::int64_t>> tables_;
};

/**
 * Machine-independent decode summary of one static instruction,
 * precomputed at interning time so the cycle model never touches IR
 * data structures on the per-record path. Latency is *not* stored
 * here: it depends on the MachineConfig, so each replay prices
 * opcodes against its own machine (see CycleModel).
 */
struct StaticOp
{
    /** Control-flow classification used by the timing model. */
    enum class Kind : std::uint8_t
    {
        Plain,      ///< no control transfer.
        CondBranch, ///< conditional branch (BTB-predicted).
        Jump,       ///< unconditional jump.
        CallRet,    ///< call or return (drains interlocks).
    };

    std::int64_t addr = 0;   ///< fetch address (AddressMap).
    Opcode op = Opcode::Nop; ///< for per-machine latency pricing.
    Reg guard;               ///< invalid when unguarded.
    Reg dest;                ///< invalid when no register result.
    std::uint32_t regBegin = 0;      ///< offset into the reg pool.
    std::uint16_t srcRegCount = 0;   ///< register sources.
    std::uint16_t predDestCount = 0; ///< pred dests (after sources).
    Kind kind = Kind::Plain;
    bool isBranch = false; ///< consumes a branch issue slot.
    bool isLoad = false;
    bool isStore = false;
    bool isPredAll = false; ///< pred_clear / pred_set.
};

/**
 * Dense interner of (function, instruction) pairs. Mutable only
 * while a capture (or inline simulation) is producing records;
 * read-only — and therefore safely shareable across threads — once
 * the trace is complete.
 */
class StaticIndex
{
  public:
    /** Marker for "not interned yet". */
    static constexpr std::uint32_t invalidId = 0xFFFFFFFFu;

    explicit StaticIndex(const Program &prog);

    /**
     * Rebuild a read-only index from deserialized state (the on-disk
     * artifact store). The result supports every replay-side query
     * (op/regs/size/regBound) but must never be asked to intern():
     * the per-function id tables only exist on the capture path.
     */
    StaticIndex(std::vector<StaticOp> ops, std::vector<Reg> regPool,
                std::array<int, 3> regBounds)
        : ops_(std::move(ops)), regPool_(std::move(regPool)),
          regBounds_(regBounds)
    {}

    /**
     * Empty capture-side index for the pre-decoded backend, which
     * brings its own prototypes: only internDecoded() may add ops
     * (intern() has no id tables to consult). @p regBounds must be
     * the bounds the Program constructor would have computed.
     */
    explicit StaticIndex(std::array<int, 3> regBounds)
        : regBounds_(regBounds)
    {}

    /**
     * Append a pre-built static op (the decoded backend's interning
     * path; see emu/decoded.hh). @p proto is StaticIndex::addOp()'s
     * result except regBegin, which this assigns; @p regs points at
     * its srcRegCount + predDestCount pooled register operands. The
     * caller tracks first-appearance itself — every call appends.
     * @return the new op's id.
     */
    std::uint32_t internDecoded(const StaticOp &proto,
                                const Reg *regs);

    /** Id of @p instr, interning it on first use. */
    std::uint32_t
    intern(const Function *fn, const Instruction *instr)
    {
        // Consecutive records overwhelmingly share a function; cache
        // the last table so the hot path is one vector index.
        if (fn != lastFn_) {
            lastFn_ = fn;
            lastTable_ = &idTables_[fnOrdinals_.at(fn)];
        }
        std::uint32_t &slot =
            (*lastTable_)[static_cast<std::size_t>(instr->id())];
        if (slot == invalidId)
            slot = addOp(fn, instr);
        return slot;
    }

    const StaticOp &
    op(std::uint32_t id) const
    {
        return ops_[id];
    }

    /**
     * Pooled register operands of @p op: srcRegCount source
     * registers followed by predDestCount predicate destinations.
     */
    const Reg *
    regs(const StaticOp &op) const
    {
        return regPool_.data() + op.regBegin;
    }

    /** Number of interned static instructions. */
    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(ops_.size());
    }

    /** All interned ops, for serialization (artifact store). */
    const std::vector<StaticOp> &ops() const { return ops_; }

    /** The shared register pool, for serialization. */
    const std::vector<Reg> &regPool() const { return regPool_; }

    /**
     * Exclusive upper bound on register indices of class @p cls
     * anywhere in the program (computed once from the per-function
     * virtual-register counters). Sizes the cycle model's dense
     * scoreboard.
     */
    int
    regBound(RegClass cls) const
    {
        return regBounds_[static_cast<std::size_t>(cls)];
    }

  private:
    std::uint32_t addOp(const Function *fn, const Instruction *instr);

    AddressMap addresses_;
    std::unordered_map<const Function *, std::size_t> fnOrdinals_;
    std::vector<std::vector<std::uint32_t>> idTables_;
    std::vector<StaticOp> ops_;
    std::vector<Reg> regPool_;
    std::array<int, 3> regBounds_{};
    const Function *lastFn_ = nullptr;
    std::vector<std::uint32_t> *lastTable_ = nullptr;
};

/** TraceEntry flag bits (mirroring DynRecord). */
constexpr std::uint32_t traceNullified = 1u << 0;
constexpr std::uint32_t traceTaken = 1u << 1;
constexpr std::uint32_t traceHasMemAddr = 1u << 2;

/** Bits of a packed TraceEntry holding the static id. */
constexpr std::uint32_t traceIdBits = 29;

/** Largest static-instruction id a packed TraceEntry can hold. */
constexpr std::uint32_t traceMaxStaticId =
    (1u << traceIdBits) - 1;

inline std::uint32_t
StaticIndex::internDecoded(const StaticOp &proto, const Reg *regs)
{
    panicIf(ops_.size() > traceMaxStaticId,
            "static index overflow: more than ", traceMaxStaticId + 1,
            " static instructions cannot be packed into ",
            traceIdBits, "-bit trace entries");
    StaticOp op = proto;
    op.regBegin = static_cast<std::uint32_t>(regPool_.size());
    regPool_.insert(regPool_.end(), regs,
                    regs + op.srcRegCount + op.predDestCount);
    auto id = static_cast<std::uint32_t>(ops_.size());
    ops_.push_back(op);
    return id;
}

/**
 * One captured dynamic instruction, packed into 4 bytes: the
 * interned static id in the low 29 bits, the three dynamic flags in
 * the top 3. Construct via makeTraceEntry so out-of-range ids are
 * rejected instead of silently corrupting the flag bits.
 */
struct TraceEntry
{
    std::uint32_t packed = 0;

    /** Interned static-instruction id (low 29 bits). */
    std::uint32_t staticId() const { return packed & traceMaxStaticId; }

    /** Dynamic flags (traceNullified / traceTaken / traceHasMemAddr). */
    std::uint32_t flags() const { return packed >> traceIdBits; }
};

static_assert(std::is_trivially_copyable_v<TraceEntry> &&
                  sizeof(TraceEntry) == 4,
              "TraceEntry must stay a packed 4-byte POD");

/** Pack @p staticId and @p flags; panics when the id does not fit. */
inline TraceEntry
makeTraceEntry(std::uint32_t staticId, std::uint32_t flags)
{
    panicIf(staticId > traceMaxStaticId, "static id ", staticId,
            " exceeds the ", traceIdBits,
            "-bit packed TraceEntry limit");
    return TraceEntry{(flags << traceIdBits) | staticId};
}

// --- zigzag varint coding (memory-address side stream) ---

/** Map a signed delta to an unsigned value with small magnitudes. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

/** Append @p v to @p out as a little-endian base-128 varint. */
inline void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one varint at @p p, advancing it past the last byte. Never
 * reads at or past @p end: a stream that ends mid-varint, or one
 * whose continuation bits run past the 64-bit value range, throws
 * TraceCorruptError instead of overrunning the buffer. (Trace bytes
 * can now arrive from disk, so truncation is a reachable input, not
 * an internal invariant.)
 */
inline std::uint64_t
decodeVarint(const std::uint8_t *&p, const std::uint8_t *end)
{
    std::uint64_t v = 0;
    for (int shift = 0;; shift += 7) {
        if (p == end)
            throw TraceCorruptError(
                "truncated varint: side stream ends mid-value");
        if (shift >= 64)
            throw TraceCorruptError(
                "overlong varint: continuation bits exceed 64-bit "
                "range");
        std::uint8_t byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
}

/**
 * A captured dynamic trace: the interner, the packed entry stream,
 * the varint-delta memory side stream, and the functional run's
 * result. Append-only during capture; immutable afterwards.
 *
 * The side stream is split at the same boundaries as the entry
 * chunks: memory bytes of the addresses flagged inside entry chunk i
 * live in mem chunk i, so a chunk-at-a-time consumer can pre-decode
 * exactly the address run its entry span needs. Deltas chain across
 * chunk boundaries (decoding is sequential either way).
 */
class TraceBuffer
{
  public:
    /** Entries per storage chunk (64K entries = 256KiB packed). */
    static constexpr std::size_t chunkEntries = std::size_t{1} << 16;

    /**
     * One chunk of the two streams, by reference: a raw TraceEntry
     * span plus the varint bytes (and address count) of the entries
     * flagged inside it. The owned representation materializes these
     * views on demand from its vectors; a buffer adopted from the
     * artifact store points them straight into the mmap'd file, so
     * replay reads the page cache with zero deserialization copies.
     */
    struct ChunkView
    {
        const TraceEntry *entries = nullptr;
        std::size_t entryCount = 0;
        const std::uint8_t *memBytes = nullptr;
        std::size_t memSize = 0;
        std::uint32_t memCount = 0;
    };

    explicit TraceBuffer(const Program &prog) : index_(prog) {}

    /**
     * Empty owned buffer around a prebuilt index (the decoded
     * backend's capture path, which interns through internDecoded()
     * and appends through a Writer).
     */
    explicit TraceBuffer(StaticIndex index) : index_(std::move(index))
    {}

    /**
     * Adopt a deserialized trace (the artifact-store load path):
     * a rebuilt read-only StaticIndex, chunk views into externally
     * owned memory, and the functional run the capture recorded.
     * @p backing keeps that memory (typically a file mapping) alive
     * for the buffer's lifetime. The result is read-only: append()
     * panics.
     */
    TraceBuffer(StaticIndex index, std::vector<ChunkView> views,
                std::uint64_t count, RunResult run,
                std::shared_ptr<const void> backing)
        : index_(std::move(index)), views_(std::move(views)),
          mapped_(true), count_(count), run_(std::move(run)),
          backing_(std::move(backing))
    {}

    StaticIndex &index() { return index_; }
    const StaticIndex &index() const { return index_; }

    /** Append one record. @p memAddr is stored only when flagged. */
    void
    append(std::uint32_t staticId, std::uint32_t flags,
           std::int64_t memAddr)
    {
        panicIf(mapped_, "append to a read-only mapped TraceBuffer");
        if (chunks_.empty() || chunks_.back().size() == chunkEntries) {
            chunks_.emplace_back();
            chunks_.back().reserve(chunkEntries);
            memChunks_.emplace_back();
            memCounts_.push_back(0);
        }
        chunks_.back().push_back(makeTraceEntry(staticId, flags));
        count_ += 1;
        if ((flags & traceHasMemAddr) != 0) {
            appendVarint(memChunks_.back(),
                         zigzagEncode(memAddr - lastMemAddr_));
            lastMemAddr_ = memAddr;
            memCounts_.back() += 1;
        }
    }

    /** Total captured records. */
    std::uint64_t size() const { return count_; }

    /** Number of storage chunks in both streams. */
    std::size_t
    chunkCount() const
    {
        return mapped_ ? views_.size() : chunks_.size();
    }

    /** View of chunk @p i (entry span + varint bytes + count). */
    ChunkView
    chunk(std::size_t i) const
    {
        if (mapped_)
            return views_[i];
        return ChunkView{chunks_[i].data(), chunks_[i].size(),
                         memChunks_[i].data(), memChunks_[i].size(),
                         memCounts_[i]};
    }

    /** @return true when backed by an external (mmap'd) artifact. */
    bool mapped() const { return mapped_; }

    /** Approximate resident bytes of the two streams. */
    std::uint64_t
    memoryBytes() const
    {
        std::uint64_t bytes = 0;
        if (mapped_) {
            for (const ChunkView &view : views_) {
                bytes += view.entryCount * sizeof(TraceEntry) +
                         view.memSize;
            }
            return bytes;
        }
        for (const auto &chunk : chunks_)
            bytes += chunk.capacity() * sizeof(TraceEntry);
        for (const auto &chunk : memChunks_)
            bytes += chunk.capacity();
        return bytes;
    }

    /** Functional result of the capturing emulation run. */
    const RunResult &run() const { return run_; }
    void setRun(RunResult run) { run_ = std::move(run); }

    /**
     * Bulk appender for the capture hot loop. Produces byte-for-byte
     * the stream append() produces, but hands the caller a raw
     * cursor into the active entry chunk, so the per-record cost in
     * the engine is one pointer compare and a 4-byte store — no
     * vector bookkeeping. Protocol: keep `cur`/`end` locals starting
     * at nullptr; when cur == end call rollChunk() for a fresh
     * chunk-sized span; store packed entries through cur; call
     * noteMem(addr) right after storing an entry flagged
     * traceHasMemAddr; call finish(cur) once at the end to seal the
     * trailing chunk and the record count. Use on an empty owned
     * buffer only; do not mix with append().
     */
    class Writer
    {
      public:
        explicit Writer(TraceBuffer &buffer) : buffer_(buffer)
        {
            panicIf(buffer.mapped_ || buffer.count_ != 0,
                    "TraceBuffer::Writer requires an empty owned "
                    "buffer");
        }

        /**
         * Seal the previous chunk (it is exactly full by protocol)
         * and open the next one. @return the new chunk's base;
         * @p endOut gets base + chunkEntries.
         */
        TraceEntry *
        rollChunk(TraceEntry **endOut)
        {
            sealMemChunk();
            auto &chunk = buffer_.chunks_.emplace_back();
            chunk.resize(chunkEntries);
            buffer_.memChunks_.emplace_back();
            base_ = chunk.data();
            *endOut = base_ + chunkEntries;
            return base_;
        }

        /**
         * Record the address of the entry just stored. Encodes the
         * zigzag delta straight through a raw cursor (byte-identical
         * to appendVarint); the per-chunk address count stays in a
         * member until the chunk seals.
         */
        void
        noteMem(std::int64_t memAddr)
        {
            if (mend_ - mcur_ < 10) [[unlikely]]
                growMem();
            std::uint64_t v =
                zigzagEncode(memAddr - lastMemAddr_);
            lastMemAddr_ = memAddr;
            while (v >= 0x80) {
                *mcur_++ = static_cast<std::uint8_t>(v) | 0x80;
                v >>= 7;
            }
            *mcur_++ = static_cast<std::uint8_t>(v);
            memCount_ += 1;
        }

        /**
         * Seal bookkeeping the hot loop defers: shrink the trailing
         * chunk to @p cur and publish the record count.
         */
        void
        finish(TraceEntry *cur)
        {
            sealMemChunk();
            if (!buffer_.chunks_.empty()) {
                buffer_.chunks_.back().resize(
                    static_cast<std::size_t>(cur - base_));
            }
            std::uint64_t total = 0;
            for (const auto &chunk : buffer_.chunks_)
                total += chunk.size();
            buffer_.count_ = total;
            buffer_.lastMemAddr_ = lastMemAddr_;
        }

      private:
        /** Shrink the active mem chunk to its written bytes and
         * publish its address count. */
        void
        sealMemChunk()
        {
            if (!buffer_.memChunks_.empty()) {
                auto &m = buffer_.memChunks_.back();
                m.resize(mcur_ == nullptr
                             ? 0
                             : static_cast<std::size_t>(mcur_ -
                                                        m.data()));
                buffer_.memCounts_.push_back(memCount_);
            }
            mcur_ = nullptr;
            mend_ = nullptr;
            memCount_ = 0;
        }

        /** Grow the active mem chunk's backing (amortized). */
        void
        growMem()
        {
            auto &m = buffer_.memChunks_.back();
            const std::size_t used =
                mcur_ == nullptr
                    ? 0
                    : static_cast<std::size_t>(mcur_ - m.data());
            m.resize(std::max<std::size_t>(m.size() * 2, 256));
            mcur_ = m.data() + used;
            mend_ = m.data() + m.size();
        }

        TraceBuffer &buffer_;
        std::uint8_t *mcur_ = nullptr;
        std::uint8_t *mend_ = nullptr;
        TraceEntry *base_ = nullptr;
        std::int64_t lastMemAddr_ = 0;
        std::uint32_t memCount_ = 0;
    };

    /** Forward iterator over the two streams, record at a time. */
    class Cursor
    {
      public:
        explicit Cursor(const TraceBuffer &buffer) : buffer_(buffer)
        {}

        /**
         * Fetch the next record. @p memAddr is set only when the
         * entry's traceHasMemAddr flag is set.
         * @return false at end of trace.
         */
        bool
        next(TraceEntry &entry, std::int64_t &memAddr)
        {
            if (chunk_ >= buffer_.chunkCount())
                return false;
            const ChunkView view = buffer_.chunk(chunk_);
            entry = view.entries[offset_];
            if ((entry.flags() & traceHasMemAddr) != 0) {
                const std::uint8_t *p = view.memBytes + memOffset_;
                prevAddr_ += zigzagDecode(
                    decodeVarint(p, view.memBytes + view.memSize));
                memOffset_ =
                    static_cast<std::size_t>(p - view.memBytes);
                memAddr = prevAddr_;
            }
            if (++offset_ == view.entryCount) {
                chunk_ += 1;
                offset_ = 0;
                memOffset_ = 0;
            }
            return true;
        }

      private:
        const TraceBuffer &buffer_;
        std::size_t chunk_ = 0;
        std::size_t offset_ = 0;
        std::size_t memOffset_ = 0;
        std::int64_t prevAddr_ = 0;
    };

    /**
     * Chunk-at-a-time iterator for the replay hot loop: each step
     * yields one raw TraceEntry span plus that span's pre-decoded
     * absolute-address run (one address per flagged entry, in entry
     * order). The address buffer is reused between steps and is
     * valid until the next call.
     *
     * Pass decodeAddrs = false when no consumer reads memory
     * addresses (every config in the batch models perfect caches):
     * the varint side stream is skipped entirely — not even scanned —
     * and next() yields addrs == nullptr. Entry flags are untouched,
     * so pricing is bit-identical; the only observable difference is
     * that side-stream corruption goes undiagnosed on such passes.
     */
    class ChunkCursor
    {
      public:
        explicit ChunkCursor(const TraceBuffer &buffer,
                             bool decodeAddrs = true)
            : buffer_(buffer), decodeAddrs_(decodeAddrs)
        {}

        /** @return false at end of trace. */
        bool
        next(const TraceEntry *&entries, std::size_t &count,
             const std::int64_t *&addrs)
        {
            if (chunk_ >= buffer_.chunkCount())
                return false;
            const ChunkView view = buffer_.chunk(chunk_);
            entries = view.entries;
            count = view.entryCount;
            if (!decodeAddrs_) {
                addrs = nullptr;
                chunk_ += 1;
                return true;
            }
            const std::uint32_t n = view.memCount;
            addrBuf_.clear();
            addrBuf_.reserve(n);
            const std::uint8_t *p = view.memBytes;
            const std::uint8_t *end = view.memBytes + view.memSize;
            for (std::uint32_t i = 0; i < n; ++i) {
                prevAddr_ += zigzagDecode(decodeVarint(p, end));
                addrBuf_.push_back(prevAddr_);
            }
            if (p != end)
                throw TraceCorruptError(
                    "varint side stream has trailing bytes after "
                    "the chunk's declared address count");
            addrs = addrBuf_.data();
            chunk_ += 1;
            return true;
        }

      private:
        const TraceBuffer &buffer_;
        std::size_t chunk_ = 0;
        const bool decodeAddrs_;
        std::int64_t prevAddr_ = 0;
        std::vector<std::int64_t> addrBuf_;
    };

  private:
    StaticIndex index_;
    std::vector<std::vector<TraceEntry>> chunks_;
    /** Varint bytes for the addresses flagged in entry chunk i. */
    std::vector<std::vector<std::uint8_t>> memChunks_;
    /** Number of addresses encoded in mem chunk i. */
    std::vector<std::uint32_t> memCounts_;
    /** Mapped representation: chunk views into backing_'s memory. */
    std::vector<ChunkView> views_;
    bool mapped_ = false;
    std::int64_t lastMemAddr_ = 0;
    std::uint64_t count_ = 0;
    RunResult run_;
    /** Keeps externally owned (mmap'd) chunk memory alive. */
    std::shared_ptr<const void> backing_;
};

/** Pack a DynRecord's dynamic bits into TraceEntry flags. */
inline std::uint32_t
traceFlagsOf(const DynRecord &record)
{
    std::uint32_t flags = 0;
    if (record.nullified)
        flags |= traceNullified;
    if (record.taken)
        flags |= traceTaken;
    if (record.hasMemAddr)
        flags |= traceHasMemAddr;
    return flags;
}

/**
 * Emulate @p prog on @p input once, recording the dynamic trace.
 * The returned buffer is self-contained: it does not reference
 * @p prog and may outlive it. The trace bytes are identical under
 * either backend; Threaded decodes the program first (callers that
 * reuse a program across captures should hold a DecodedProgram and
 * call captureDecoded() directly — see emu/decoded.hh).
 *
 * @param maxDynInstrs emulator fuel limit.
 * @param backend functional engine to capture with.
 */
std::unique_ptr<TraceBuffer>
capture(const Program &prog, const std::string &input,
        std::uint64_t maxDynInstrs = 2'000'000'000ull,
        EmuBackend backend = defaultEmuBackend());

} // namespace predilp

#endif // PREDILP_TRACE_TRACE_HH
