/**
 * @file
 * Trace capture for trace-once/replay-many simulation.
 *
 * The paper's methodology (§4.1) decouples functional execution from
 * timing: benchmarks were traced once on PA-RISC hardware and the
 * trace drove the cycle-level simulator. This module is that
 * decoupling for PredILP: capture() runs the functional emulator once
 * per compiled program and records the dynamic instruction stream in
 * a compact TraceBuffer; replay() (declared in trace/replay.hh,
 * implemented next to the cycle model in src/sim/timing.cc) then
 * prices the same buffer under any number of SimConfigs — issue
 * widths, branch slots, perfect vs. real caches, BTB sizes — without
 * re-emulating.
 *
 * Buffer format: one fixed-width 8-byte POD TraceEntry per dynamic
 * instruction, holding an interned static-instruction id plus
 * nullified/taken/has-memory flags. Memory addresses, present for
 * only a fraction of records, live in a parallel side stream
 * consumed in order during replay. Both streams use chunked storage
 * so multi-million-instruction captures never reallocate or copy.
 *
 * Interning: a StaticIndex maps each (function, instruction) pair to
 * a dense uint32 id on first dynamic appearance, using per-function
 * vectors indexed by instruction id (no per-record map lookups), and
 * precomputes everything the timing model needs per static
 * instruction — fetch address, opcode, guard/source/destination
 * registers, and branch classification — exactly once.
 */

#ifndef PREDILP_TRACE_TRACE_HH
#define PREDILP_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "emu/emulator.hh"
#include "ir/program.hh"

namespace predilp
{

/**
 * Instruction address assignment: 4 bytes per instruction, functions
 * and blocks laid out in program/layout order. Used by the I-cache
 * and BTB models. Lookup is a per-function ordinal plus a dense
 * per-function vector indexed by instruction id; the StaticIndex
 * calls it once per *static* instruction, never per record.
 */
class AddressMap
{
  public:
    explicit AddressMap(const Program &prog);

    /** Address of @p instr inside @p fn. */
    std::int64_t
    addressOf(const Function *fn, const Instruction *instr) const
    {
        const auto &table = tables_[fnOrdinals_.at(fn)];
        return table[static_cast<std::size_t>(instr->id())];
    }

  private:
    std::unordered_map<const Function *, std::size_t> fnOrdinals_;
    std::vector<std::vector<std::int64_t>> tables_;
};

/**
 * Machine-independent decode summary of one static instruction,
 * precomputed at interning time so the cycle model never touches IR
 * data structures on the per-record path. Latency is *not* stored
 * here: it depends on the MachineConfig, so each replay prices
 * opcodes against its own machine (see CycleModel).
 */
struct StaticOp
{
    /** Control-flow classification used by the timing model. */
    enum class Kind : std::uint8_t
    {
        Plain,      ///< no control transfer.
        CondBranch, ///< conditional branch (BTB-predicted).
        Jump,       ///< unconditional jump.
        CallRet,    ///< call or return (drains interlocks).
    };

    std::int64_t addr = 0;   ///< fetch address (AddressMap).
    Opcode op = Opcode::Nop; ///< for per-machine latency pricing.
    Reg guard;               ///< invalid when unguarded.
    Reg dest;                ///< invalid when no register result.
    std::uint32_t regBegin = 0;      ///< offset into the reg pool.
    std::uint16_t srcRegCount = 0;   ///< register sources.
    std::uint16_t predDestCount = 0; ///< pred dests (after sources).
    Kind kind = Kind::Plain;
    bool isBranch = false; ///< consumes a branch issue slot.
    bool isLoad = false;
    bool isStore = false;
    bool isPredAll = false; ///< pred_clear / pred_set.
};

/**
 * Dense interner of (function, instruction) pairs. Mutable only
 * while a capture (or inline simulation) is producing records;
 * read-only — and therefore safely shareable across threads — once
 * the trace is complete.
 */
class StaticIndex
{
  public:
    /** Marker for "not interned yet". */
    static constexpr std::uint32_t invalidId = 0xFFFFFFFFu;

    explicit StaticIndex(const Program &prog);

    /** Id of @p instr, interning it on first use. */
    std::uint32_t
    intern(const Function *fn, const Instruction *instr)
    {
        // Consecutive records overwhelmingly share a function; cache
        // the last table so the hot path is one vector index.
        if (fn != lastFn_) {
            lastFn_ = fn;
            lastTable_ = &idTables_[fnOrdinals_.at(fn)];
        }
        std::uint32_t &slot =
            (*lastTable_)[static_cast<std::size_t>(instr->id())];
        if (slot == invalidId)
            slot = addOp(fn, instr);
        return slot;
    }

    const StaticOp &
    op(std::uint32_t id) const
    {
        return ops_[id];
    }

    /**
     * Pooled register operands of @p op: srcRegCount source
     * registers followed by predDestCount predicate destinations.
     */
    const Reg *
    regs(const StaticOp &op) const
    {
        return regPool_.data() + op.regBegin;
    }

    /** Number of interned static instructions. */
    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(ops_.size());
    }

  private:
    std::uint32_t addOp(const Function *fn, const Instruction *instr);

    AddressMap addresses_;
    std::unordered_map<const Function *, std::size_t> fnOrdinals_;
    std::vector<std::vector<std::uint32_t>> idTables_;
    std::vector<StaticOp> ops_;
    std::vector<Reg> regPool_;
    const Function *lastFn_ = nullptr;
    std::vector<std::uint32_t> *lastTable_ = nullptr;
};

/** One captured dynamic instruction: fixed-width POD. */
struct TraceEntry
{
    std::uint32_t staticId = 0;
    std::uint32_t flags = 0;
};

static_assert(std::is_trivially_copyable_v<TraceEntry> &&
                  sizeof(TraceEntry) == 8,
              "TraceEntry must stay a compact fixed-width POD");

/** TraceEntry::flags bits (mirroring DynRecord). */
constexpr std::uint32_t traceNullified = 1u << 0;
constexpr std::uint32_t traceTaken = 1u << 1;
constexpr std::uint32_t traceHasMemAddr = 1u << 2;

/**
 * A captured dynamic trace: the interner, the entry stream, the
 * memory-address side stream, and the functional run's result.
 * Append-only during capture; immutable afterwards.
 */
class TraceBuffer
{
  public:
    /** Entries per storage chunk (64K entries = 512KiB). */
    static constexpr std::size_t chunkEntries = std::size_t{1} << 16;

    explicit TraceBuffer(const Program &prog) : index_(prog) {}

    StaticIndex &index() { return index_; }
    const StaticIndex &index() const { return index_; }

    /** Append one record. @p memAddr is stored only when flagged. */
    void
    append(std::uint32_t staticId, std::uint32_t flags,
           std::int64_t memAddr)
    {
        if (chunks_.empty() || chunks_.back().size() == chunkEntries) {
            chunks_.emplace_back();
            chunks_.back().reserve(chunkEntries);
        }
        chunks_.back().push_back(TraceEntry{staticId, flags});
        count_ += 1;
        if ((flags & traceHasMemAddr) != 0) {
            if (memChunks_.empty() ||
                memChunks_.back().size() == chunkEntries) {
                memChunks_.emplace_back();
                memChunks_.back().reserve(chunkEntries);
            }
            memChunks_.back().push_back(memAddr);
        }
    }

    /** Total captured records. */
    std::uint64_t size() const { return count_; }

    /** Approximate resident bytes of the two streams. */
    std::uint64_t
    memoryBytes() const
    {
        std::uint64_t bytes = 0;
        for (const auto &chunk : chunks_)
            bytes += chunk.capacity() * sizeof(TraceEntry);
        for (const auto &chunk : memChunks_)
            bytes += chunk.capacity() * sizeof(std::int64_t);
        return bytes;
    }

    /** Functional result of the capturing emulation run. */
    const RunResult &run() const { return run_; }
    void setRun(RunResult run) { run_ = std::move(run); }

    /** Forward iterator over the two streams, for replay. */
    class Cursor
    {
      public:
        explicit Cursor(const TraceBuffer &buffer) : buffer_(buffer)
        {}

        /**
         * Fetch the next record. @p memAddr is set only when the
         * entry's traceHasMemAddr flag is set.
         * @return false at end of trace.
         */
        bool
        next(TraceEntry &entry, std::int64_t &memAddr)
        {
            if (chunk_ >= buffer_.chunks_.size())
                return false;
            const auto &chunk = buffer_.chunks_[chunk_];
            entry = chunk[offset_];
            if ((entry.flags & traceHasMemAddr) != 0) {
                memAddr =
                    buffer_.memChunks_[memChunk_][memOffset_];
                if (++memOffset_ ==
                    buffer_.memChunks_[memChunk_].size()) {
                    memChunk_ += 1;
                    memOffset_ = 0;
                }
            }
            if (++offset_ == chunk.size()) {
                chunk_ += 1;
                offset_ = 0;
            }
            return true;
        }

      private:
        const TraceBuffer &buffer_;
        std::size_t chunk_ = 0;
        std::size_t offset_ = 0;
        std::size_t memChunk_ = 0;
        std::size_t memOffset_ = 0;
    };

  private:
    StaticIndex index_;
    std::vector<std::vector<TraceEntry>> chunks_;
    std::vector<std::vector<std::int64_t>> memChunks_;
    std::uint64_t count_ = 0;
    RunResult run_;
};

/** Pack a DynRecord's dynamic bits into TraceEntry flags. */
inline std::uint32_t
traceFlagsOf(const DynRecord &record)
{
    std::uint32_t flags = 0;
    if (record.nullified)
        flags |= traceNullified;
    if (record.taken)
        flags |= traceTaken;
    if (record.hasMemAddr)
        flags |= traceHasMemAddr;
    return flags;
}

/**
 * Emulate @p prog on @p input once, recording the dynamic trace.
 * The returned buffer is self-contained: it does not reference
 * @p prog and may outlive it.
 *
 * @param maxDynInstrs emulator fuel limit.
 */
std::unique_ptr<TraceBuffer>
capture(const Program &prog, const std::string &input,
        std::uint64_t maxDynInstrs = 2'000'000'000ull);

} // namespace predilp

#endif // PREDILP_TRACE_TRACE_HH
