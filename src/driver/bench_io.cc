#include "driver/bench_io.hh"

#include <fstream>
#include <iomanip>

#include "support/logging.hh"
#include "support/string_utils.hh"

namespace predilp
{

namespace
{

const char *
modelJsonKey(Model model)
{
    switch (model) {
      case Model::Superblock:
        return "superblock";
      case Model::CondMove:
        return "cond_move";
      case Model::FullPred:
        return "full_pred";
    }
    return "unknown";
}

void
writeTiming(std::ostream &os, const BenchTiming &timing,
            double wallSeconds, int threads, const char *indent)
{
    os << indent << "\"elapsed_seconds\": " << wallSeconds << ",\n"
       << indent << "\"threads\": " << threads << ",\n"
       << indent << "\"phases\": {\n"
       << indent << "  \"compile_seconds\": "
       << timing.compileSeconds << ",\n"
       << indent << "  \"emulate_seconds\": "
       << timing.captureSeconds << ",\n"
       << indent << "  \"simulate_seconds\": "
       << timing.replaySeconds << "\n"
       << indent << "},\n"
       << indent << "\"counters\": {\n"
       << indent << "  \"compiles\": " << timing.compiles << ",\n"
       << indent << "  \"captures\": " << timing.captures << ",\n"
       << indent << "  \"replays\": " << timing.replays << ",\n"
       << indent << "  \"trace_cache_hits\": "
       << timing.traceCacheHits << ",\n"
       << indent << "  \"result_cache_hits\": "
       << timing.resultCacheHits << ",\n"
       << indent << "  \"trace_bytes\": " << timing.traceBytes
       << "\n"
       << indent << "},\n";
}

} // namespace

void
printPhaseTiming(std::ostream &os, const BenchTiming &timing,
                 double wallSeconds, int threads)
{
    os << "-- timing: wall " << formatFixed(wallSeconds, 2)
       << "s (threads=" << threads << ") | compile "
       << formatFixed(timing.compileSeconds, 2) << "s | emulate "
       << formatFixed(timing.captureSeconds, 2) << "s | simulate "
       << formatFixed(timing.replaySeconds, 2) << "s\n"
       << "-- cache: " << timing.compiles << " compiles, "
       << timing.captures << " emulations, " << timing.replays
       << " replays, " << timing.traceCacheHits
       << " trace hits, " << timing.resultCacheHits
       << " result hits, "
       << timing.traceBytes / (1024 * 1024)
       << " MiB traces\n";
}

std::string
writeBenchJson(const std::string &benchName,
               const std::vector<BenchmarkResult> &results,
               const BenchTiming &timing, double wallSeconds,
               int threads)
{
    std::string path = "BENCH_" + benchName + ".json";
    std::ofstream os(path);
    panicIf(!os, "cannot write ", path);
    os << std::setprecision(12);
    os << "{\n  \"bench\": \"" << benchName << "\",\n";
    writeTiming(os, timing, wallSeconds, threads, "  ");
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchmarkResult &r = results[i];
        os << "    {\n      \"name\": \"" << r.name << "\",\n"
           << "      \"base_cycles\": " << r.baseCycles << ",\n"
           << "      \"models\": {\n";
        std::size_t m = 0;
        for (const auto &[model, sim] : r.models) {
            os << "        \"" << modelJsonKey(model) << "\": {\n"
               << "          \"cycles\": " << sim.cycles << ",\n"
               << "          \"dyn_instrs\": " << sim.dynInstrs
               << ",\n"
               << "          \"branches\": " << sim.branches
               << ",\n"
               << "          \"mispredicts\": " << sim.mispredicts
               << ",\n"
               << "          \"speedup\": " << r.speedup(model)
               << "\n        }"
               << (++m == r.models.size() ? "\n" : ",\n");
        }
        os << "      }\n    }"
           << (i + 1 == results.size() ? "\n" : ",\n");
    }
    os << "  ]\n}\n";
    return path;
}

} // namespace predilp
