#include "driver/bench_io.hh"

#include <fstream>

#include "support/logging.hh"
#include "support/string_utils.hh"

namespace predilp
{

StatsSnapshot
timingSnapshot(const BenchTiming &timing, double wallSeconds,
               int threads)
{
    StatsSnapshot s;
    s.setSeconds("elapsed_seconds", wallSeconds);
    s.setCounter("threads", static_cast<std::uint64_t>(threads));
    s.setSeconds("phases.compile_seconds", timing.compileSeconds);
    s.setSeconds("phases.emulate_seconds", timing.captureSeconds);
    s.setSeconds("phases.simulate_seconds", timing.replaySeconds);
    s.setCounter("counters.compiles", timing.compiles);
    s.setCounter("counters.prefix_compiles", timing.prefixCompiles);
    s.setCounter("counters.prefix_cache_hits",
                 timing.prefixCacheHits);
    s.setCounter("counters.captures", timing.captures);
    s.setCounter("counters.replays", timing.replays);
    s.setCounter("counters.trace_cache_hits", timing.traceCacheHits);
    s.setCounter("counters.result_cache_hits",
                 timing.resultCacheHits);
    s.setCounter("counters.trace_bytes", timing.traceBytes);
    s.setCounter("counters.trace_peak_bytes", timing.tracePeakBytes);
    s.setCounter("counters.captured_bytes", timing.capturedBytes);
    s.setCounter("counters.captured_records",
                 timing.capturedRecords);
    s.setCounter("counters.replayed_records",
                 timing.replayedRecords);
    s.setCounter("emu.backend.threaded",
                 defaultEmuBackend() == EmuBackend::Threaded ? 1
                                                             : 0);
    s.setSeconds("emu.decode_seconds", timing.decodeSeconds);
    s.setCounter("emu.decodes", timing.decodes);
    s.setCounter("emu.decoded_cache_hits", timing.decodedCacheHits);
    s.setCounter("emu.decoded_bytes", timing.decodedBytes);
    s.setCounter("emu.records.threaded", timing.threadedRecords);
    s.setCounter("emu.records.interp", timing.interpRecords);
    s.setCounter("emu.backend_fallbacks", timing.backendFallbacks);
    s.setCounter("counters.batch_fallbacks", timing.batchFallbacks);
    s.setCounter("store.hit", timing.storeHits);
    s.setCounter("store.miss", timing.storeMisses);
    s.setCounter("store.repair", timing.storeRepairs);
    s.setCounter("store.write", timing.storeWrites);
    s.setCounter("store.bytes_mapped", timing.storeBytesMapped);
    if (timing.replaySeconds > 0) {
        s.setSeconds("throughput.replay_records_per_sec",
                     static_cast<double>(timing.replayedRecords) /
                         timing.replaySeconds);
    }
    if (timing.captureSeconds > 0) {
        s.setSeconds(
            "throughput.emulate_records_per_sec",
            static_cast<double>(timing.threadedRecords +
                                timing.interpRecords) /
                timing.captureSeconds);
    }
    if (timing.capturedRecords > 0) {
        s.setSeconds("throughput.trace_bytes_per_entry",
                     static_cast<double>(timing.capturedBytes) /
                         static_cast<double>(
                             timing.capturedRecords));
    }
    return s;
}

StatsSnapshot
cellSnapshot(const BenchmarkResult &result, Model model,
             const SimResult &sim)
{
    // Start from the simulator's detailed sim.* counters and add the
    // headline numbers as top-level leaves of the same snapshot.
    StatsSnapshot s = sim.stats;
    s.setCounter("cycles", sim.cycles);
    s.setCounter("dyn_instrs", sim.dynInstrs);
    s.setCounter("nullified", sim.nullified);
    s.setCounter("branches", sim.branches);
    s.setCounter("cond_branches", sim.condBranches);
    s.setCounter("mispredicts", sim.mispredicts);
    s.setCounter("loads", sim.loads);
    s.setCounter("stores", sim.stores);
    s.setSeconds("speedup", result.speedup(model));
    return s;
}

void
printPhaseTiming(std::ostream &os, const BenchTiming &timing,
                 double wallSeconds, int threads)
{
    os << "-- timing: wall " << formatFixed(wallSeconds, 2)
       << "s (threads=" << threads << ") | compile "
       << formatFixed(timing.compileSeconds, 2) << "s | emulate "
       << formatFixed(timing.captureSeconds, 2) << "s | simulate "
       << formatFixed(timing.replaySeconds, 2) << "s\n"
       << "-- cache: " << timing.compiles << " compiles (+"
       << timing.prefixCompiles << " prefix), "
       << timing.captures << " emulations, " << timing.replays
       << " replays, " << timing.traceCacheHits
       << " trace hits, " << timing.resultCacheHits
       << " result hits, "
       << timing.tracePeakBytes / (1024 * 1024)
       << " MiB traces peak\n";
    if (timing.decodes + timing.threadedRecords +
            timing.interpRecords >
        0) {
        os << "-- emu: " << emuBackendName(defaultEmuBackend())
           << " backend | decode "
           << formatFixed(timing.decodeSeconds, 2) << "s ("
           << timing.decodes << " decodes, "
           << timing.decodedCacheHits << " hits, "
           << timing.decodedBytes / 1024 << " KiB) | records "
           << timing.threadedRecords << " threaded, "
           << timing.interpRecords << " interp\n";
    }
    if (timing.storeHits + timing.storeMisses +
            timing.storeWrites >
        0) {
        os << "-- store: " << timing.storeHits << " hits, "
           << timing.storeMisses << " misses, "
           << timing.storeWrites << " writes, "
           << timing.storeRepairs << " repairs, "
           << timing.storeBytesMapped / (1024 * 1024)
           << " MiB mapped\n";
    }
}

std::string
writeBenchJson(const std::string &benchName,
               const std::vector<BenchmarkResult> &results,
               const BenchTiming &timing, double wallSeconds,
               int threads, const StatsSnapshot &compilerStats)
{
    std::string path = "BENCH_" + benchName + ".json";
    std::ofstream os(path);
    panicIf(!os, "cannot write ", path);
    os << "{\n  \"bench\": \"" << benchName << "\",\n"
       << "  \"timing\": "
       << timingSnapshot(timing, wallSeconds, threads).toJson(2)
       << ",\n"
       << "  \"compiler\": " << compilerStats.toJson(2) << ",\n"
       << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchmarkResult &r = results[i];
        os << "    {\n      \"name\": \"" << r.name << "\",\n"
           << "      \"base_cycles\": " << r.baseCycles << ",\n"
           << "      \"models\": {\n";
        std::size_t m = 0;
        for (const auto &[model, sim] : r.models) {
            os << "        \"" << modelKey(model) << "\": "
               << cellSnapshot(r, model, sim).toJson(8)
               << (++m == r.models.size() ? "\n" : ",\n");
        }
        // Per-cell provenance digests: what predilp_diff joins on
        // and cites as evidence when classifying figure drift.
        std::vector<std::pair<std::string, JsonValue>> provs;
        for (const auto &[model, prov] : r.provenance)
            provs.emplace_back(modelKey(model), prov.toJson());
        os << "      },\n      \"provenance\": "
           << JsonValue::makeObject(std::move(provs)).dump()
           << "\n    }"
           << (i + 1 == results.size() ? "\n" : ",\n");
    }
    os << "  ]\n}\n";
    return path;
}

} // namespace predilp
