#include "driver/pipeline.hh"

#include <algorithm>

#include "frontend/irgen.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "sched/scheduler.hh"
#include "support/logging.hh"

namespace predilp
{

std::string
modelName(Model model)
{
    switch (model) {
      case Model::Superblock:
        return "Superblock";
      case Model::CondMove:
        return "Cond. Move";
      case Model::FullPred:
        return "Full Pred.";
    }
    return "?";
}

std::unique_ptr<Program>
compileForModel(const std::string &source, const CompileOptions &opts)
{
    std::unique_ptr<Program> prog = compileSource(source);
    std::string err = verifyProgram(*prog);
    panicIf(!err.empty(), "frontend produced invalid IR: ", err);

    inlineFunctions(*prog);
    optimizeProgram(*prog);
    licmProgram(*prog);
    optimizeProgram(*prog);

    // Profile-run the optimized pre-formation code.
    ProgramProfile profile(*prog);
    {
        EmuOptions emuOpts;
        emuOpts.profile = &profile;
        emuOpts.maxDynInstrs = opts.maxProfileInstrs;
        Emulator emu(*prog);
        emu.run(opts.profileInput, emuOpts);
    }

    switch (opts.model) {
      case Model::Superblock:
        formSuperblocks(*prog, profile, opts.superblock);
        break;
      case Model::FullPred:
      case Model::CondMove: {
        HyperblockOptions hbOpts = opts.hyperblock;
        // The paper's concluding remark: "a compiler must be
        // extremely intelligent when exploiting conditional move".
        // The cmov model pays fetch slots for both representing the
        // predicates and executing all included paths, so its
        // formation tolerates less saturation.
        if (opts.model == Model::CondMove) {
            hbOpts.saturationFactor =
                std::min(hbOpts.saturationFactor, 1.25);
        }
        formHyperblocks(*prog, profile, hbOpts);
        if (opts.enableHeightReduction)
            reducePredicateHeight(*prog);
        if (opts.enablePromotion)
            promotePredicates(*prog);
        // Branch combining pays off for full predication (parallel
        // OR defines, one exit slot); under the cmov model the
        // lowered OR chain plus decode-block bubbles cost more than
        // the saved slots on this machine, so the "extremely
        // intelligent" cmov compiler the paper calls for skips it.
        if (opts.enableBranchCombining &&
            opts.model == Model::FullPred) {
            // Re-profile the formed code: exit jumps created by
            // if-conversion carry fresh instruction ids, so the
            // pre-formation profile says nothing about them.
            ProgramProfile formed(*prog);
            EmuOptions emuOpts;
            emuOpts.profile = &formed;
            emuOpts.maxDynInstrs = opts.maxProfileInstrs;
            Emulator emu(*prog);
            emu.run(opts.profileInput, emuOpts);
            combineExitBranches(*prog, formed, opts.branchCombine);
        }
        if (opts.model == Model::CondMove)
            lowerToPartial(*prog, opts.partial);
        break;
      }
    }

    optimizeProgram(*prog);
    if (opts.enableUnrolling) {
        // Re-profile the formed code so unrolling sees the final
        // loop blocks, then unroll hot tight loops in place.
        ProgramProfile formedProfile(*prog);
        EmuOptions emuOpts;
        emuOpts.profile = &formedProfile;
        emuOpts.maxDynInstrs = opts.maxProfileInstrs;
        Emulator emu(*prog);
        emu.run(opts.profileInput, emuOpts);
        unrollLoops(*prog, formedProfile);
        optimizeProgram(*prog);
    }
    layoutProgram(*prog, &profile);
    scheduleProgram(*prog, opts.machine, opts.schedulerSpeculation);

    err = verifyProgram(*prog);
    panicIf(!err.empty(), "pipeline produced invalid IR (",
            modelName(opts.model), "): ", err);
    return prog;
}

SimResult
runModel(const std::string &source, const std::string &input,
         const CompileOptions &compileOpts, const SimConfig &simConfig)
{
    std::unique_ptr<Program> prog =
        compileForModel(source, compileOpts);
    return simulate(*prog, input, simConfig);
}

RunResult
runReference(const std::string &source, const std::string &input,
             std::uint64_t maxDynInstrs)
{
    std::unique_ptr<Program> prog = compileSource(source);
    optimizeProgram(*prog);
    EmuOptions opts;
    opts.maxDynInstrs = maxDynInstrs;
    Emulator emu(*prog);
    return emu.run(input, opts);
}

} // namespace predilp
