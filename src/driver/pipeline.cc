#include "driver/pipeline.hh"

#include <algorithm>

#include "frontend/irgen.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "sched/scheduler.hh"
#include "support/logging.hh"

namespace predilp
{

std::string
modelName(Model model)
{
    switch (model) {
      case Model::Superblock:
        return "Superblock";
      case Model::CondMove:
        return "Cond. Move";
      case Model::FullPred:
        return "Full Pred.";
    }
    return "?";
}

const char *
modelKey(Model model)
{
    switch (model) {
      case Model::Superblock:
        return "superblock";
      case Model::CondMove:
        return "cond_move";
      case Model::FullPred:
        return "full_pred";
    }
    return "unknown";
}

Model
modelFromKey(const std::string &key)
{
    if (key == "superblock")
        return Model::Superblock;
    if (key == "cond_move")
        return Model::CondMove;
    if (key == "full_pred")
        return Model::FullPred;
    throw FatalError("unknown model key '" + key +
                     "' (expected superblock, cond_move or "
                     "full_pred)");
}

AblationFlags
AblationFlags::canonicalFor(Model model) const
{
    AblationFlags canonical;
    // Unrolling runs in every model's pipeline; everything else is
    // read only where the switch below says so.
    canonical.unrolling = unrolling;
    switch (model) {
      case Model::Superblock:
        break; // no predication passes reach this pipeline.
      case Model::FullPred:
        canonical.promotion = promotion;
        canonical.branchCombining = branchCombining;
        canonical.heightReduction = heightReduction;
        break;
      case Model::CondMove:
        canonical.promotion = promotion;
        canonical.heightReduction = heightReduction;
        canonical.orTree = orTree;
        canonical.useSelect = useSelect;
        break;
    }
    return canonical;
}

std::string
AblationFlags::key() const
{
    std::string key;
    key.reserve(6);
    for (bool flag : {promotion, branchCombining, heightReduction,
                      unrolling, orTree, useSelect}) {
        key.push_back(flag ? '1' : '0');
    }
    return key;
}

JsonValue
AblationFlags::toJson() const
{
    return JsonValue::makeObject({
        {"promotion", JsonValue::makeBool(promotion)},
        {"branch_combining", JsonValue::makeBool(branchCombining)},
        {"height_reduction", JsonValue::makeBool(heightReduction)},
        {"unrolling", JsonValue::makeBool(unrolling)},
        {"or_tree", JsonValue::makeBool(orTree)},
        {"use_select", JsonValue::makeBool(useSelect)},
    });
}

AblationFlags
AblationFlags::fromJson(const JsonValue &json)
{
    AblationFlags flags;
    for (const auto &[key, value] : json.members()) {
        if (key == "promotion")
            flags.promotion = value.asBool();
        else if (key == "branch_combining")
            flags.branchCombining = value.asBool();
        else if (key == "height_reduction")
            flags.heightReduction = value.asBool();
        else if (key == "unrolling")
            flags.unrolling = value.asBool();
        else if (key == "or_tree")
            flags.orTree = value.asBool();
        else if (key == "use_select")
            flags.useSelect = value.asBool();
        else
            throw FatalError("unknown ablation key '" + key + "'");
    }
    return flags;
}

bool
AblationFlags::operator==(const AblationFlags &other) const
{
    return promotion == other.promotion &&
           branchCombining == other.branchCombining &&
           heightReduction == other.heightReduction &&
           unrolling == other.unrolling && orTree == other.orTree &&
           useSelect == other.useSelect;
}

namespace
{

/**
 * Measure an execution profile by emulating the current program on
 * the pipeline's profile input. The Primary slot fills
 * PassContext::profile (pre-formation: consumed by region selection
 * and final layout); the Region slot fills
 * PassContext::regionProfile (re-measured on formed code, whose
 * fresh instruction ids the primary profile has never seen —
 * consumed by branch combining and unrolling).
 */
class ProfilePass : public Pass
{
  public:
    enum class Slot
    {
        Primary,
        Region,
    };

    explicit ProfilePass(Slot slot) : slot_(slot) {}

    std::string
    name() const override
    {
        return slot_ == Slot::Primary ? "driver.profile"
                                      : "driver.reprofile";
    }

    PassResult
    run(Program &prog, PassContext &ctx) override
    {
        auto profile = std::make_unique<ProgramProfile>(prog);
        EmuOptions emuOpts;
        emuOpts.profile = profile.get();
        emuOpts.maxDynInstrs = ctx.profileFuel;
        Emulator emu(prog);
        RunResult run = emu.run(ctx.profileInput, emuOpts);
        ctx.stats.counter(name() + ".dyn_instrs")
            .add(run.dynInstrs);
        if (slot_ == Slot::Primary)
            ctx.profile = std::move(profile);
        else
            ctx.regionProfile = std::move(profile);
        return {};
    }

  private:
    Slot slot_;
};

} // namespace

namespace
{

/** The model-independent prefix (see buildPrefixPipeline). */
void
addPrefixPasses(PassManager &pm)
{
    pm.add(createInlinePass());
    pm.addFixpoint("opt.scalar", scalarPassList());
    pm.add(createLicmPass());
    pm.addFixpoint("opt.scalar", scalarPassList());

    // Profile the optimized pre-formation code.
    pm.add(std::make_unique<ProfilePass>(ProfilePass::Slot::Primary));
}

/** The model-specific suffix (see buildModelPipeline). */
void
addModelPasses(PassManager &pm, const CompileOptions &opts)
{
    const AblationFlags &ablation = opts.ablation;
    switch (opts.model) {
      case Model::Superblock:
        pm.add(createSuperblockFormationPass(opts.superblock));
        break;
      case Model::FullPred:
      case Model::CondMove: {
        HyperblockOptions hbOpts = opts.hyperblock;
        // The paper's concluding remark: "a compiler must be
        // extremely intelligent when exploiting conditional move".
        // The cmov model pays fetch slots for both representing the
        // predicates and executing all included paths, so its
        // formation tolerates less saturation.
        if (opts.model == Model::CondMove) {
            hbOpts.saturationFactor =
                std::min(hbOpts.saturationFactor, 1.25);
        }
        pm.add(createHyperblockFormationPass(hbOpts));
        if (ablation.heightReduction)
            pm.add(createHeightReductionPass());
        if (ablation.promotion)
            pm.add(createPromotionPass());
        // Branch combining pays off for full predication (parallel
        // OR defines, one exit slot); under the cmov model the
        // lowered OR chain plus decode-block bubbles cost more than
        // the saved slots on this machine, so the "extremely
        // intelligent" cmov compiler the paper calls for skips it.
        if (ablation.branchCombining &&
            opts.model == Model::FullPred) {
            pm.add(std::make_unique<ProfilePass>(
                ProfilePass::Slot::Region));
            pm.add(createBranchCombinePass(opts.branchCombine));
        }
        if (opts.model == Model::CondMove) {
            PartialOptions partial = opts.partial;
            partial.orTree = ablation.orTree;
            partial.useSelect = ablation.useSelect;
            pm.add(createPartialLoweringPass(partial));
        }
        break;
      }
    }

    pm.addFixpoint("opt.scalar", scalarPassList());
    if (ablation.unrolling) {
        // Re-profile the formed code so unrolling sees the final
        // loop blocks, then unroll hot tight loops in place.
        pm.add(std::make_unique<ProfilePass>(
            ProfilePass::Slot::Region));
        pm.add(createUnrollPass());
        pm.addFixpoint("opt.scalar", scalarPassList());
    }
    pm.add(createLayoutPass());
    pm.add(createSchedulePass(opts.machine,
                              opts.schedulerSpeculation));
}

} // namespace

PassManager
buildPassPipeline(const CompileOptions &opts)
{
    PassManager pm;
    addPrefixPasses(pm);
    addModelPasses(pm, opts);
    return pm;
}

PassManager
buildPrefixPipeline()
{
    PassManager pm;
    addPrefixPasses(pm);
    return pm;
}

PassManager
buildModelPipeline(const CompileOptions &opts)
{
    PassManager pm;
    addModelPasses(pm, opts);
    return pm;
}

namespace
{

/** Verify @p prog as left by @p producer; throw VerifyError if bad. */
void
verifyOrThrow(const Program &prog, const std::string &producer)
{
    std::string err = verifyProgram(prog);
    if (!err.empty())
        throw VerifyError(producer, err);
}

} // namespace

std::unique_ptr<Program>
compileForModel(const std::string &source, const CompileOptions &opts,
                StatsRegistry *stats)
{
    std::unique_ptr<Program> prog = compileSource(source);
    verifyOrThrow(*prog, "frontend");

    StatsRegistry localStats;
    StatsRegistry &registry = stats != nullptr ? *stats : localStats;
    PassContext ctx(registry);
    ctx.profileInput = opts.profileInput;
    ctx.profileFuel = opts.maxProfileInstrs;
    ctx.verifyAfterEach = opts.verifyEachPass;

    PassManager pipeline = buildPassPipeline(opts);
    pipeline.run(*prog, ctx);

    verifyOrThrow(*prog, "pipeline(" + modelName(opts.model) + ")");
    return prog;
}

FrontendSnapshot
compilePrefix(const std::string &source,
              const std::string &profileInput,
              std::uint64_t maxProfileInstrs, StatsRegistry *stats,
              bool verifyEachPass)
{
    std::unique_ptr<Program> prog = compileSource(source);
    verifyOrThrow(*prog, "frontend");

    StatsRegistry localStats;
    StatsRegistry &registry = stats != nullptr ? *stats : localStats;
    PassContext ctx(registry);
    ctx.profileInput = profileInput;
    ctx.profileFuel = maxProfileInstrs;
    ctx.verifyAfterEach = verifyEachPass;

    PassManager prefix = buildPrefixPipeline();
    prefix.run(*prog, ctx);
    panicIf(ctx.profile == nullptr,
            "prefix pipeline produced no profile");

    FrontendSnapshot snapshot;
    snapshot.prog = std::move(prog);
    snapshot.profile = std::move(*ctx.profile);
    return snapshot;
}

std::unique_ptr<Program>
compileFromSnapshot(const FrontendSnapshot &snapshot,
                    const CompileOptions &opts, StatsRegistry *stats)
{
    panicIf(snapshot.prog == nullptr,
            "compileFromSnapshot: empty snapshot");
    std::unique_ptr<Program> prog = snapshot.prog->clone();

    StatsRegistry localStats;
    StatsRegistry &registry = stats != nullptr ? *stats : localStats;
    PassContext ctx(registry);
    ctx.profileInput = opts.profileInput;
    ctx.profileFuel = opts.maxProfileInstrs;
    ctx.verifyAfterEach = opts.verifyEachPass;
    ctx.profile =
        std::make_unique<ProgramProfile>(snapshot.profile);

    PassManager suffix = buildModelPipeline(opts);
    suffix.run(*prog, ctx);

    verifyOrThrow(*prog, "pipeline(" + modelName(opts.model) + ")");
    return prog;
}

SimResult
runModel(const std::string &source, const std::string &input,
         const CompileOptions &compileOpts, const SimConfig &simConfig)
{
    std::unique_ptr<Program> prog =
        compileForModel(source, compileOpts);
    return simulate(*prog, input, simConfig);
}

RunResult
runReference(const std::string &source, const std::string &input,
             std::uint64_t maxDynInstrs)
{
    std::unique_ptr<Program> prog = compileSource(source);
    optimizeProgram(*prog);
    EmuOptions opts;
    opts.maxDynInstrs = maxDynInstrs;
    Emulator emu(*prog);
    return emu.run(input, opts);
}

} // namespace predilp
